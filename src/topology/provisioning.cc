#include "topology/provisioning.h"

namespace xmap::topo {
namespace {

// Provisioning messages are exchanged with link-local addressing on the
// point-to-point access subnet; the server side uses this anchor.
const net::Ipv6Address& server_link_local() {
  static const net::Ipv6Address addr = *net::Ipv6Address::parse("fe80::1");
  return addr;
}

}  // namespace

bool Provisioner::maybe_handle(const pkt::Bytes& packet, int iface,
                               const Emit& emit) {
  auto offer_it = offers_.find(iface);
  if (offer_it == offers_.end()) return false;
  const Offer& offer = offer_it->second;

  pkt::Ipv6View ip{packet};
  if (!ip.valid()) return false;

  // --- Router Solicitation -> Router Advertisement -------------------------
  if (ip.next_header() == pkt::kProtoIcmpv6 &&
      is_router_solicit(ip.payload())) {
    RouterAdvertisement ra;
    ra.managed = false;
    ra.other_config = offer.delegated.has_value();
    PrefixInformation pi;
    pi.prefix = offer.wan_prefix;
    ra.prefixes.push_back(pi);
    emit(iface, build_router_advert(server_link_local(), ip.src(), ra));
    return true;
  }

  // --- DHCPv6-PD ------------------------------------------------------------
  if (ip.next_header() == pkt::kProtoUdp) {
    pkt::UdpView udp{ip.payload()};
    if (!udp.valid() || udp.dst_port() != kDhcpv6ServerPort) return false;
    auto request = Dhcpv6Message::decode(udp.payload());
    if (!request) return true;  // addressed to us, but malformed: swallow

    Dhcpv6Message reply = *request;
    reply.server_duid = server_duid_;
    switch (request->type) {
      case Dhcpv6MsgType::kSolicit:
        reply.type = Dhcpv6MsgType::kAdvertise;
        reply.delegated_prefix = offer.delegated;
        break;
      case Dhcpv6MsgType::kRequest:
        reply.type = Dhcpv6MsgType::kReply;
        reply.delegated_prefix = offer.delegated;
        break;
      default:
        return true;  // not a client message we serve
    }
    emit(iface, pkt::build_udp(server_link_local(), ip.src(),
                               kDhcpv6ServerPort, kDhcpv6ClientPort,
                               reply.encode()));
    return true;
  }

  return false;
}

}  // namespace xmap::topo
