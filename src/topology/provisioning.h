// The ISP-side provisioning plane: answers Router Solicitations with RAs
// advertising the subscriber's WAN /64 (SLAAC), and runs the DHCPv6-PD
// server side (SOLICIT -> ADVERTISE, REQUEST -> REPLY) delegating the LAN
// prefix — per access interface.
//
// Attached to a topo::Router via set_provisioner(); the router consults it
// before normal forwarding, which is exactly where a BNG terminates these
// link-scope protocols.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "packet/packet.h"
#include "topology/dhcpv6.h"
#include "topology/ndp.h"

namespace xmap::topo {

class Provisioner {
 public:
  struct Offer {
    net::Ipv6Prefix wan_prefix;  // advertised in the RA (SLAAC, /64)
    std::optional<net::Ipv6Prefix> delegated;  // IA_PD contents, if any
  };

  explicit Provisioner(std::uint64_t server_duid = 0x00b0d0'00000001ULL)
      : server_duid_(server_duid) {}

  // Registers what the subscriber on `iface` is entitled to.
  void set_offer(int iface, Offer offer) {
    offers_[iface] = std::move(offer);
  }
  [[nodiscard]] std::size_t offer_count() const { return offers_.size(); }

  // Inspects an inbound packet on `iface`. When it is a provisioning
  // message this handles it — emitting any reply through `emit` — and
  // returns true; otherwise returns false and the router proceeds normally.
  using Emit = std::function<void(int iface, pkt::Bytes packet)>;
  bool maybe_handle(const pkt::Bytes& packet, int iface, const Emit& emit);

  [[nodiscard]] std::uint64_t server_duid() const { return server_duid_; }

 private:
  std::uint64_t server_duid_;
  std::unordered_map<int, Offer> offers_;
};

}  // namespace xmap::topo
