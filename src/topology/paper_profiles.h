// Calibrated profiles reproducing the paper's measurement universe.
//
// The vendor catalogue and the fifteen ISP block specifications below are
// data, not mechanism: every probability is chosen so that the *shape* of
// the paper's results re-emerges from the generic builder — which ISPs are
// "same"- vs "diff"-dominated (Table II), the addr6 style mix (Table III),
// the vendor league table (Table IV, Figures 2/3/6), the per-ISP exposed
// service rates (Table VII) and the per-ISP routing-loop rates (Table XI).
// Absolute counts scale with BuildConfig::window_bits; proportions are what
// the experiments compare against the paper.
#pragma once

#include <string_view>
#include <vector>

#include "topology/builder.h"

namespace xmap::topo::paper {

// The device vendor catalogue (Table IV + Table XII vendors). OUIs are
// synthetic but stable; real OUI values are trademarked data we do not need.
[[nodiscard]] const std::vector<VendorProfile>& vendor_catalog();

// Index of a vendor by name within vendor_catalog(); -1 when absent.
[[nodiscard]] VendorId vendor_id(std::string_view name);

// The fifteen sample IPv6 blocks of Table I/II, calibrated.
[[nodiscard]] std::vector<IspSpec> isp_specs();

// A BGP-advertised-prefix universe for the global routing-loop sweep
// (Table IX/X, Figure 5): `n_ases` synthetic ASes across ~36 countries with
// per-country loop propensities matching the paper's top-10 ordering.
[[nodiscard]] std::vector<IspSpec> bgp_specs(int n_ases, std::uint64_t seed);

}  // namespace xmap::topo::paper
