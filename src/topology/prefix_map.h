// Longest-prefix-match container over IPv6 prefixes.
//
// A binary trie on address bits, generic over the mapped value so it backs
// both the forwarding tables (RoutingTable) and the measurement lookups
// (GeoDb's prefix -> AS/country mapping). Nodes live in a flat vector for
// locality; an ISP router holding one route per subscriber does a lookup per
// forwarded packet, so this is on the simulator's hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/ipv6.h"

namespace xmap::topo {

template <typename T>
class PrefixMap {
 public:
  PrefixMap() { nodes_.push_back(Node{}); }

  // Inserts or replaces the value at `prefix`.
  void insert(const net::Ipv6Prefix& prefix, T value) {
    std::size_t node = 0;
    const net::Uint128 bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      if (nodes_[node].child[b] < 0) {
        nodes_[node].child[b] = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(Node{});
      }
      node = static_cast<std::size_t>(nodes_[node].child[b]);
    }
    if (nodes_[node].value < 0) {
      nodes_[node].value = static_cast<std::int32_t>(values_.size());
      values_.push_back(std::move(value));
      ++size_;
    } else {
      values_[static_cast<std::size_t>(nodes_[node].value)] = std::move(value);
    }
  }

  // Longest-prefix match; nullptr when nothing matches.
  [[nodiscard]] const T* lookup(const net::Ipv6Address& addr) const {
    const net::Uint128 bits = addr.value();
    std::size_t node = 0;
    std::int32_t best = nodes_[0].value;
    for (int depth = 0; depth < 128; ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      const std::int32_t next = nodes_[node].child[b];
      if (next < 0) break;
      node = static_cast<std::size_t>(next);
      if (nodes_[node].value >= 0) best = nodes_[node].value;
    }
    return best < 0 ? nullptr : &values_[static_cast<std::size_t>(best)];
  }

  // Exact-match lookup at a specific prefix; nullptr when absent.
  [[nodiscard]] const T* exact(const net::Ipv6Prefix& prefix) const {
    const net::Uint128 bits = prefix.address().value();
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      const std::int32_t next = nodes_[node].child[b];
      if (next < 0) return nullptr;
      node = static_cast<std::size_t>(next);
    }
    return nodes_[node].value < 0
               ? nullptr
               : &values_[static_cast<std::size_t>(nodes_[node].value)];
  }

  // Removes the exact entry; returns whether one existed. (The trie node is
  // left in place — removal is rare and the memory cost is negligible.)
  bool erase(const net::Ipv6Prefix& prefix) {
    const net::Uint128 bits = prefix.address().value();
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      const std::int32_t next = nodes_[node].child[b];
      if (next < 0) return false;
      node = static_cast<std::size_t>(next);
    }
    if (nodes_[node].value < 0) return false;
    nodes_[node].value = -1;
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Visits every (prefix, value) pair in trie order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    net::Uint128 bits{};
    walk(0, 0, bits, fn);
  }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t value = -1;
  };

  template <typename Fn>
  void walk(std::size_t node, int depth, net::Uint128& bits, Fn&& fn) const {
    if (nodes_[node].value >= 0) {
      fn(net::Ipv6Prefix{net::Ipv6Address::from_value(bits), depth},
         values_[static_cast<std::size_t>(nodes_[node].value)]);
    }
    for (int b = 0; b < 2; ++b) {
      if (nodes_[node].child[b] < 0) continue;
      if (b) bits.set_bit(127 - depth, true);
      walk(static_cast<std::size_t>(nodes_[node].child[b]), depth + 1, bits,
           fn);
      if (b) bits.set_bit(127 - depth, false);
    }
  }

  std::vector<Node> nodes_;
  std::vector<T> values_;
  std::size_t size_ = 0;
};

}  // namespace xmap::topo
