// Compatibility shim: PrefixMap moved to src/netbase/prefix_map.h so the
// results store (src/store) can index snapshots with the LC-trie without
// depending on the topology layer. Topology code keeps using
// topo::PrefixMap via this alias.
#pragma once

#include "netbase/prefix_map.h"

namespace xmap::topo {

template <typename T>
using PrefixMap = net::PrefixMap<T>;

}  // namespace xmap::topo
