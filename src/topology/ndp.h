// Neighbor Discovery (RFC 4861) Router Solicitation / Router Advertisement
// wire formats, with the Prefix Information option (type 3).
//
// This is the SLAAC half of the provisioning plane described in the paper's
// §II: the ISP router advertises the WAN /64 on the point-to-point subnet,
// and the CPE forms its WAN address from the advertised prefix plus its
// interface identifier (RFC 4862).
#pragma once

#include <optional>
#include <vector>

#include "packet/packet.h"

namespace xmap::topo {

inline constexpr std::uint8_t kIcmpv6RouterSolicit = 133;
inline constexpr std::uint8_t kIcmpv6RouterAdvert = 134;

// The all-routers link-scope multicast group RS messages are sent to.
[[nodiscard]] net::Ipv6Address all_routers_address();

struct PrefixInformation {
  net::Ipv6Prefix prefix;
  bool on_link = true;
  bool autonomous = true;  // the A flag: usable for SLAAC
  std::uint32_t valid_lifetime = 86400;
  std::uint32_t preferred_lifetime = 14400;
};

struct RouterAdvertisement {
  std::uint8_t cur_hop_limit = 64;
  bool managed = false;        // M flag: addresses via DHCPv6
  bool other_config = true;    // O flag: other config via DHCPv6 (e.g. PD)
  std::uint16_t router_lifetime = 1800;
  std::vector<PrefixInformation> prefixes;
};

// Builds a Router Solicitation packet from `src` to all-routers.
[[nodiscard]] pkt::Bytes build_router_solicit(const net::Ipv6Address& src);

// Builds a Router Advertisement from `src` (the router) to `dst`.
[[nodiscard]] pkt::Bytes build_router_advert(const net::Ipv6Address& src,
                                             const net::Ipv6Address& dst,
                                             const RouterAdvertisement& ra);

// Parses the ICMPv6 payload of a Router Advertisement; nullopt when the
// message is not a structurally valid RA.
[[nodiscard]] std::optional<RouterAdvertisement> parse_router_advert(
    std::span<const std::uint8_t> icmpv6_message);

// True when the ICMPv6 payload is a Router Solicitation.
[[nodiscard]] bool is_router_solicit(std::span<const std::uint8_t> icmpv6_message);

}  // namespace xmap::topo
