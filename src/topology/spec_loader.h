// Topology specification loading from JSON configuration files.
//
// Lets a user define custom measurement universes for xmap_sim and the
// library without recompiling. Schema (all per-block fields except
// "name"/"block_base" optional, with the defaults of topo::IspSpec):
//
// {
//   "blocks": [
//     {
//       "name": "ExampleNet",           // required
//       "block_base": "3fff:abc::",     // required
//       "country": "XX", "network": "Broadband", "asn": 64500,
//       "delegated_len": 60,            // 56 | 60 | 64
//       "ue_model": false,
//       "density": 0.2,
//       "separate_wan_fraction": 0.0,
//       "wan_inside_lan_fraction": 0.1,
//       "iid_weights": [0.1, 0.01, 0.02, 0.05, 0.82],
//       "vendors": {"ZTE": 0.5, "Huawei": 0.5},   // catalogue names
//       "unallocated": "blackhole",     // or "unreachable"
//       "service_scale": 1.0,
//       "loop_scale": 0.5
//     }
//   ],
//   "faults": {                         // optional fault-injection plan
//     "seed": 0,                        // 0 = inherit the world seed
//     "access": {                       // likewise "core" and "other"
//       "loss": 0.02,                   // keyed i.i.d. loss probability
//       "burst": {"rate_per_sec": 2, "mean_ms": 80, "loss": 0.9},
//       "duplicate": 0.01, "corrupt": 0.005, "jitter_ms": 3,
//       "flap": {"period_ms": 2000, "down_ms": 200, "fraction": 0.3}
//     },
//     "silent": {"fraction": 0.05, "start_ms": 0, "duration_ms": 500}
//   },
//   "obs": {                            // optional observability defaults
//     "trace_level": "off",             // off | scan | packet
//     "metrics": false,                 // labeled metrics registry
//     "profile": false                  // wall-clock stage timers
//   }
// }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/config.h"
#include "sim/faults.h"
#include "topology/builder.h"

namespace xmap::topo {

struct SpecLoadResult {
  std::optional<std::vector<IspSpec>> specs;  // nullopt on error
  std::string error;
  // Fault plan from the optional top-level "faults" object.
  std::optional<sim::FaultPlan> faults;
  // Observability defaults from the optional top-level "obs" object
  // (explicit CLI flags override these).
  std::optional<obs::ObsConfig> obs;
};

// Parses a JSON document text into block specifications, resolving vendor
// names against `vendors` (use paper::vendor_catalog()).
[[nodiscard]] SpecLoadResult load_specs_from_json(
    std::string_view json_text, const std::vector<VendorProfile>& vendors);

// Convenience: reads the file, then parses.
[[nodiscard]] SpecLoadResult load_specs_from_file(
    const std::string& path, const std::vector<VendorProfile>& vendors);

}  // namespace xmap::topo
