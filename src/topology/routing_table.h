// IPv6 forwarding table.
//
// The routing semantics under test come straight from the paper's Figure 4:
// an ISP router holds per-subscriber routes for WAN and delegated LAN
// prefixes, a CPE holds routes for its own subnet plus a default — and the
// presence or absence of an RFC 7084 "unreachable" route for the not-used
// delegated space is exactly the routing-loop vulnerability.
#pragma once

#include <string>
#include <vector>

#include "topology/prefix_map.h"

namespace xmap::topo {

enum class RouteAction : std::uint8_t {
  kForward,      // send out `iface`
  kDeliver,      // destined to this node's stack
  kUnreachable,  // respond ICMPv6 Destination Unreachable (no route)
  kBlackhole,    // silently discard
};

struct Route {
  net::Ipv6Prefix prefix;
  RouteAction action = RouteAction::kForward;
  int iface = -1;

  friend bool operator==(const Route&, const Route&) = default;
};

class RoutingTable {
 public:
  void add(const Route& route) { map_.insert(route.prefix, route); }
  void add_forward(const net::Ipv6Prefix& prefix, int iface) {
    add(Route{prefix, RouteAction::kForward, iface});
  }
  void add_unreachable(const net::Ipv6Prefix& prefix) {
    add(Route{prefix, RouteAction::kUnreachable, -1});
  }
  void add_default(int iface) {
    add(Route{net::Ipv6Prefix{}, RouteAction::kForward, iface});
  }

  bool remove(const net::Ipv6Prefix& prefix) { return map_.erase(prefix); }

  // Longest-prefix match; nullptr when no route (not even default) matches.
  [[nodiscard]] const Route* lookup(const net::Ipv6Address& addr) const {
    return map_.lookup(addr);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  // Precompiles the LC-trie lookup index (otherwise built on first lookup);
  // required before sharing the table read-only across threads.
  void compile() const { map_.compile(); }

  [[nodiscard]] std::vector<Route> routes() const {
    std::vector<Route> out;
    out.reserve(size());
    map_.for_each([&out](const net::Ipv6Prefix&, const Route& r) {
      out.push_back(r);
    });
    return out;
  }

 private:
  PrefixMap<Route> map_;
};

}  // namespace xmap::topo
