#include "topology/paper_profiles.h"

#include <cmath>

namespace xmap::topo::paper {
namespace {

using svc::ServiceKind;
using svc::SoftwareInfo;

ServiceDeployment dep(ServiceKind kind, double p,
                      std::vector<ServiceDeployment::Choice> sw) {
  ServiceDeployment d;
  d.kind = kind;
  d.probability = p;
  d.software = std::move(sw);
  return d;
}

ServiceDeployment::Choice ch(const char* software, const char* version,
                             double weight = 1.0) {
  return ServiceDeployment::Choice{SoftwareInfo{software, version}, weight};
}

VendorProfile cpe(const char* name, std::uint32_t oui, double loop_wan,
                  double loop_lan, int loop_cap,
                  std::vector<ServiceDeployment> services) {
  VendorProfile v;
  v.name = name;
  v.device_class = DeviceClass::kCpe;
  v.oui = oui;
  v.loop_wan_prob = loop_wan;
  v.loop_lan_prob = loop_lan;
  v.loop_cap = loop_cap;
  v.services = std::move(services);
  return v;
}

VendorProfile ue(const char* name, std::uint32_t oui) {
  VendorProfile v;
  v.name = name;
  v.device_class = DeviceClass::kUe;
  v.oui = oui;
  return v;
}

std::vector<VendorProfile> make_catalog() {
  std::vector<VendorProfile> v;
  // --- CPE vendors (synthetic OUIs in the b0:dx:xx range) ------------------
  // Loop probabilities are per-vendor firmware base rates; the per-ISP
  // loop_scale multiplies them to reach the Table XI per-ISP rates.
  v.push_back(cpe("China Mobile", 0xb0d001, 0.45, 0.62, -1,
                  {dep(ServiceKind::kHttp8080, 0.62, {ch("Jetty", "6.1.26")}),
                   dep(ServiceKind::kHttp, 0.18,
                       {ch("MiniWeb HTTP Server", "0.8.19")}),
                   dep(ServiceKind::kDns, 0.035,
                       {ch("dnsmasq", "2.52", 2), ch("dnsmasq", "2.62", 1)}),
                   dep(ServiceKind::kTelnet, 0.012, {ch("telnetd", "")}),
                   dep(ServiceKind::kTls, 0.02, {ch("embedded-tls", "1.0")})}));
  v.push_back(cpe("ZTE", 0xb0d002, 0.40, 0.55, -1,
                  {dep(ServiceKind::kDns, 0.22,
                       {ch("dnsmasq", "2.52", 3), ch("dnsmasq", "2.45", 1)}),
                   dep(ServiceKind::kTelnet, 0.22, {ch("telnetd", "")}),
                   dep(ServiceKind::kHttp, 0.10,
                       {ch("GoAhead Embedded", "2.5")}),
                   dep(ServiceKind::kHttp8080, 0.05, {ch("Jetty", "6.1.26")})}));
  v.push_back(cpe("Skyworth", 0xb0d003, 0.42, 0.58, -1,
                  {dep(ServiceKind::kHttp, 0.24,
                       {ch("MiniWeb HTTP Server", "0.8.19")}),
                   dep(ServiceKind::kDns, 0.05, {ch("dnsmasq", "2.52")})}));
  v.push_back(cpe("Fiberhome", 0xb0d004, 0.30, 0.42, -1,
                  {dep(ServiceKind::kDns, 0.72,
                       {ch("dnsmasq", "2.40", 5), ch("dnsmasq", "2.45", 1)}),
                   dep(ServiceKind::kSsh, 0.52, {ch("dropbear", "0.48", 9),
                                                 ch("dropbear", "0.46", 1)}),
                   dep(ServiceKind::kFtp, 0.52,
                       {ch("GNU Inetutils", "1.4.1")}),
                   dep(ServiceKind::kTelnet, 0.50, {ch("telnetd", "")}),
                   dep(ServiceKind::kHttp, 0.50, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kTls, 0.50,
                       {ch("embedded-tls", "1.0")})}));
  v.push_back(cpe("Youhua Tech", 0xb0d005, 0.35, 0.50, -1,
                  {dep(ServiceKind::kDns, 0.97, {ch("dnsmasq", "2.40")}),
                   dep(ServiceKind::kSsh, 0.95, {ch("dropbear", "0.48")}),
                   dep(ServiceKind::kTelnet, 0.95, {ch("telnetd", "")}),
                   dep(ServiceKind::kFtp, 0.95,
                       {ch("GNU Inetutils", "1.4.1")}),
                   dep(ServiceKind::kHttp, 0.90, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kTls, 0.22,
                       {ch("embedded-tls", "1.0")})}));
  v.push_back(cpe("China Unicom", 0xb0d006, 0.40, 0.55, -1,
                  {dep(ServiceKind::kTelnet, 0.55, {ch("telnetd", "")}),
                   dep(ServiceKind::kHttp, 0.45,
                       {ch("MiniWeb HTTP Server", "0.8.19")}),
                   dep(ServiceKind::kDns, 0.28, {ch("dnsmasq", "2.62")})}));
  v.push_back(cpe("AVM GmbH", 0xb0d007, 0.10, 0.15, -1,
                  {dep(ServiceKind::kFtp, 0.25, {ch("Fritz!Box", "7.21")}),
                   dep(ServiceKind::kTls, 0.40, {ch("embedded-tls", "1.2")}),
                   dep(ServiceKind::kHttp, 0.15,
                       {ch("FRITZ!OS httpd", "7.21")}),
                   dep(ServiceKind::kNtp, 0.05, {ch("ntpd", "4.2.8")})}));
  v.push_back(cpe("Technicolor", 0xb0d008, 0.08, 0.12, -1,
                  {dep(ServiceKind::kHttp, 0.04, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kTls, 0.03, {ch("embedded-tls", "1.0")}),
                   dep(ServiceKind::kNtp, 0.02, {ch("ntpd", "4.2.8")}),
                   dep(ServiceKind::kSsh, 0.01, {ch("dropbear", "2012.55")}),
                   dep(ServiceKind::kDns, 0.01, {ch("dnsmasq", "2.62")})}));
  v.push_back(cpe("Huawei", 0xb0d009, 0.35, 0.45, -1,
                  {dep(ServiceKind::kHttp, 0.06,
                       {ch("GoAhead Embedded", "2.5")}),
                   dep(ServiceKind::kDns, 0.04, {ch("dnsmasq", "2.62")}),
                   dep(ServiceKind::kTelnet, 0.02, {ch("telnetd", "")})}));
  v.push_back(cpe("StarNet", 0xb0d00a, 0.40, 0.55, -1,
                  {dep(ServiceKind::kHttp8080, 0.85,
                       {ch("Jetty", "6.1.26")})}));
  v.push_back(cpe("TP-Link", 0xb0d00b, 0.30, 0.40, -1,
                  {dep(ServiceKind::kHttp, 0.40, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kDns, 0.30,
                       {ch("dnsmasq", "2.62", 2), ch("dnsmasq", "2.73", 1)}),
                   dep(ServiceKind::kSsh, 0.10,
                       {ch("dropbear", "2012.55")})}));
  v.push_back(cpe("D-Link", 0xb0d00c, 0.25, 0.35, -1,
                  {dep(ServiceKind::kHttp, 0.10,
                       {ch("GoAhead Embedded", "2.5")}),
                   dep(ServiceKind::kDns, 0.08, {ch("dnsmasq", "2.73")}),
                   dep(ServiceKind::kFtp, 0.02, {ch("vsftpd", "2.3.4")})}));
  v.push_back(cpe("Xiaomi", 0xb0d00d, 0.30, 0.40, 20,
                  {dep(ServiceKind::kHttp, 0.08, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kDns, 0.06, {ch("dnsmasq", "2.76")})}));
  v.push_back(cpe("Hitron Tech", 0xb0d00e, 0.15, 0.20, -1,
                  {dep(ServiceKind::kHttp, 0.30, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kTls, 0.20, {ch("embedded-tls", "1.0")}),
                   dep(ServiceKind::kSsh, 0.10, {ch("openssh", "5.3")})}));
  v.push_back(cpe("Netgear", 0xb0d00f, 0.20, 0.30, -1,
                  {dep(ServiceKind::kHttp, 0.05, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kDns, 0.03, {ch("dnsmasq", "2.76")})}));
  v.push_back(cpe("Linksys", 0xb0d010, 0.20, 0.30, -1,
                  {dep(ServiceKind::kHttp, 0.05,
                       {ch("MiniWeb HTTP Server", "0.8.19")})}));
  v.push_back(cpe("Asus", 0xb0d011, 0.20, 0.30, -1,
                  {dep(ServiceKind::kHttp, 0.04, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kSsh, 0.02, {ch("dropbear", "2017.75")})}));
  v.push_back(cpe("Optilink", 0xb0d012, 0.45, 0.55, -1,
                  {dep(ServiceKind::kDns, 0.85,
                       {ch("dnsmasq", "2.73", 3), ch("dnsmasq", "2.76", 1)}),
                   dep(ServiceKind::kHttp, 0.03, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kTelnet, 0.01, {ch("telnetd", "")})}));
  v.push_back(cpe("Tenda", 0xb0d013, 0.30, 0.40, -1,
                  {dep(ServiceKind::kHttp, 0.05,
                       {ch("GoAhead Embedded", "2.5")})}));
  v.push_back(cpe("MikroTik", 0xb0d014, 0.25, 0.35, -1,
                  {dep(ServiceKind::kSsh, 0.10, {ch("openssh", "6.6")}),
                   dep(ServiceKind::kFtp, 0.05, {ch("vsftpd", "3.0.3")}),
                   dep(ServiceKind::kHttp, 0.05, {ch("micro_httpd", "1.0")})}));
  v.push_back(cpe("China Telecom", 0xb0d015, 0.40, 0.55, -1,
                  {dep(ServiceKind::kDns, 0.30, {ch("dnsmasq", "2.52")}),
                   dep(ServiceKind::kHttp, 0.25,
                       {ch("MiniWeb HTTP Server", "0.8.19")}),
                   dep(ServiceKind::kTelnet, 0.10, {ch("telnetd", "")})}));
  v.push_back(cpe("OpenWrt", 0xb0d016, 0.30, 0.40, 20,
                  {dep(ServiceKind::kDns, 0.40, {ch("dnsmasq", "2.76")}),
                   dep(ServiceKind::kSsh, 0.20, {ch("dropbear", "2017.75")}),
                   dep(ServiceKind::kHttp, 0.15, {ch("uhttpd", "2.0")}),
                   dep(ServiceKind::kTelnet, 0.05, {ch("telnetd", "")})}));
  v.push_back(cpe("Mercury", 0xb0d017, 0.35, 0.45, -1,
                  {dep(ServiceKind::kHttp, 0.10, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kDns, 0.05, {ch("dnsmasq", "2.62")})}));
  v.push_back(cpe("Xfinity", 0xb0d018, 0.002, 0.004, -1,
                  {dep(ServiceKind::kHttp8080, 0.004,
                       {ch("Jetty", "9.4.30")}),
                   dep(ServiceKind::kNtp, 0.003, {ch("ntpd", "4.2.8")}),
                   dep(ServiceKind::kTelnet, 0.001, {ch("telnetd", "")}),
                   dep(ServiceKind::kTls, 0.001,
                       {ch("embedded-tls", "1.2")})}));
  v.push_back(cpe("Totolink", 0xb0d019, 0.35, 0.45, -1,
                  {dep(ServiceKind::kHttp, 0.10,
                       {ch("GoAhead Embedded", "2.5")})}));
  v.push_back(cpe("Arris", 0xb0d01a, 0.05, 0.08, -1,
                  {dep(ServiceKind::kHttp, 0.05, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kTls, 0.05, {ch("embedded-tls", "1.0")}),
                   dep(ServiceKind::kSsh, 0.02, {ch("openssh", "5.3")}),
                   dep(ServiceKind::kNtp, 0.01, {ch("ntpd", "4.2.8")})}));
  v.push_back(cpe("Zyxel", 0xb0d01b, 0.15, 0.25, -1,
                  {dep(ServiceKind::kNtp, 0.55, {ch("ntpd", "4.2.8")}),
                   dep(ServiceKind::kDns, 0.07,
                       {ch("dnsmasq", "2.62", 1), ch("dnsmasq", "2.45", 1)}),
                   dep(ServiceKind::kTls, 0.08, {ch("embedded-tls", "1.0")}),
                   dep(ServiceKind::kHttp, 0.05, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kSsh, 0.04, {ch("openssh", "3.5")}),
                   dep(ServiceKind::kFtp, 0.012,
                       {ch("FreeBSD", "6.00ls", 1), ch("vsftpd", "2.2.2", 1)}),
                   dep(ServiceKind::kTelnet, 0.03, {ch("telnetd", "")})}));
  v.push_back(cpe("FAST", 0xb0d01c, 0.35, 0.45, -1,
                  {dep(ServiceKind::kHttp, 0.08, {ch("micro_httpd", "1.0")})}));
  v.push_back(cpe("H3C", 0xb0d01d, 0.35, 0.45, -1,
                  {dep(ServiceKind::kTelnet, 0.08, {ch("telnetd", "")})}));
  v.push_back(cpe("Hisense", 0xb0d01e, 0.35, 0.45, -1, {}));
  v.push_back(cpe("iKuai", 0xb0d01f, 0.35, 0.45, -1,
                  {dep(ServiceKind::kHttp, 0.10, {ch("nginx", "1.10")})}));
  v.push_back(cpe("Generic CPE", 0xb0d020, 0.30, 0.40, -1,
                  {dep(ServiceKind::kHttp, 0.05, {ch("micro_httpd", "1.0")}),
                   dep(ServiceKind::kDns, 0.04, {ch("dnsmasq", "2.52")}),
                   dep(ServiceKind::kSsh, 0.02, {ch("dropbear", "0.46")})}));
  // --- UE vendors (phones; they do not forward, hence never loop) ----------
  v.push_back(ue("NTMore", 0xb0dd01));
  v.push_back(ue("HMD Global", 0xb0dd02));
  v.push_back(ue("Vivo", 0xb0dd03));
  v.push_back(ue("Oppo", 0xb0dd04));
  v.push_back(ue("Apple", 0xb0dd05));
  v.push_back(ue("Samsung", 0xb0dd06));
  v.push_back(ue("Nokia", 0xb0dd07));
  v.push_back(ue("LG", 0xb0dd08));
  v.push_back(ue("Motorola", 0xb0dd09));
  v.push_back(ue("Lenovo", 0xb0dd0a));
  v.push_back(ue("Nubia", 0xb0dd0b));
  v.push_back(ue("OnePlus", 0xb0dd0c));
  return v;
}

}  // namespace

const std::vector<VendorProfile>& vendor_catalog() {
  static const std::vector<VendorProfile> catalog = make_catalog();
  return catalog;
}

VendorId vendor_id(std::string_view name) {
  const auto& catalog = vendor_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == name) return static_cast<VendorId>(i);
  }
  return -1;
}

namespace {

std::vector<std::pair<VendorId, double>> mix(
    std::initializer_list<std::pair<const char*, double>> shares) {
  std::vector<std::pair<VendorId, double>> out;
  for (const auto& [name, weight] : shares) {
    const VendorId id = vendor_id(name);
    out.emplace_back(id, weight);
  }
  return out;
}

// Common UE mixes.
std::vector<std::pair<VendorId, double>> india_ue_mix() {
  return mix({{"NTMore", 0.24}, {"HMD Global", 0.14}, {"Vivo", 0.12},
              {"Oppo", 0.11}, {"Samsung", 0.11}, {"Apple", 0.07},
              {"Nokia", 0.06}, {"LG", 0.04}, {"Motorola", 0.03},
              {"Lenovo", 0.02}, {"TP-Link", 0.03}, {"Huawei", 0.03}});
}

std::vector<std::pair<VendorId, double>> cn_ue_mix() {
  return mix({{"Vivo", 0.26}, {"Oppo", 0.26}, {"Apple", 0.12},
              {"Samsung", 0.06}, {"Nubia", 0.05}, {"Lenovo", 0.05},
              {"OnePlus", 0.04}, {"Xiaomi", 0.10}, {"Huawei", 0.06}});
}

IspSpec isp(const char* country, const char* network, const char* name,
            std::uint32_t asn, const char* paper_block,
            const char* paper_range, const char* block_base,
            int delegated_len, bool ue_model, double density) {
  IspSpec s;
  s.country = country;
  s.network = network;
  s.name = name;
  s.asn = asn;
  s.paper_block = paper_block;
  s.paper_range = paper_range;
  s.block_base = *net::Ipv6Address::parse(block_base);
  s.delegated_len = delegated_len;
  s.ue_model = ue_model;
  s.density = density;
  return s;
}

void set_iid(IspSpec& s, double eui, double low, double embed, double pattern) {
  s.iid_weights[0] = eui;
  s.iid_weights[1] = low;
  s.iid_weights[2] = embed;
  s.iid_weights[3] = pattern;
  s.iid_weights[4] = std::max(0.0, 1.0 - eui - low - embed - pattern);
}

}  // namespace

std::vector<IspSpec> isp_specs() {
  std::vector<IspSpec> out;

  // 1. Reliance Jio — IN broadband, /64 delegations, 99.8% "same".
  {
    auto s = isp("IN", "Broadband", "Reliance Jio", 55836, "/32", "/32-64",
                 "3fff:100::", 64, false, 0.137);
    s.paper_hops = 3365175;
    s.separate_wan_fraction = 0.002;
    set_iid(s, 0.014, 0.002, 0.03, 0.06);
    s.vendor_mix = mix({{"Optilink", 0.45}, {"D-Link", 0.20},
                        {"TP-Link", 0.20}, {"Huawei", 0.15}});
    s.loop_scale = 0.006;
    s.service_scale = 0.012;
    out.push_back(std::move(s));
  }
  // 2. BSNL — IN broadband; tiny usable population, chatty edge router.
  {
    auto s = isp("IN", "Broadband", "BSNL", 9829, "/32", "/32-64",
                 "3fff:200::", 64, false, 0.008);
    s.paper_hops = 2404;
    s.separate_wan_fraction = 0.656;
    set_iid(s, 0.767, 0.01, 0.02, 0.05);
    s.vendor_mix = mix({{"Optilink", 0.40}, {"Huawei", 0.30},
                        {"D-Link", 0.30}});
    s.loop_scale = 0.30;
    s.service_scale = 0.10;
    s.unallocated = RouteAction::kUnreachable;
    out.push_back(std::move(s));
  }
  // 3. Bharti Airtel — IN mobile (UE model), the largest block.
  {
    auto s = isp("IN", "Mobile", "Bharti Airtel", 45609, "/32", "/32-64",
                 "3fff:300::", 64, true, 0.70);
    s.paper_hops = 22542690;
    s.separate_wan_fraction = 0.011;
    set_iid(s, 0.014, 0.001, 0.05, 0.09);
    s.vendor_mix = india_ue_mix();
    s.loop_scale = 0.25;  // applies to the small hotspot-CPE share
    s.service_scale = 0.08;
    out.push_back(std::move(s));
  }
  // 4. Vodafone — IN mobile.
  {
    auto s = isp("IN", "Mobile", "Vadafone", 38266, "/32", "/32-64",
                 "3fff:400::", 64, true, 0.113);
    s.paper_hops = 2307784;
    s.separate_wan_fraction = 0.002;
    set_iid(s, 0.013, 0.001, 0.05, 0.08);
    s.vendor_mix = india_ue_mix();
    s.loop_scale = 0.04;
    s.service_scale = 0.12;
    out.push_back(std::move(s));
  }
  // 5. Comcast — US broadband, /56 delegations, EUI-64 dominated.
  {
    auto s = isp("US", "Broadband", "Comcast", 7922, "/24", "/24-56",
                 "3fff:500::", 56, false, 0.024);
    s.paper_hops = 87308;
    s.wan_inside_lan_fraction = 0.0;
    set_iid(s, 0.95, 0.002, 0.003, 0.01);
    s.vendor_mix = mix({{"Xfinity", 0.55}, {"Technicolor", 0.20},
                        {"Netgear", 0.10}, {"Hitron Tech", 0.10},
                        {"Linksys", 0.05}});
    s.loop_scale = 0.10;
    s.service_scale = 0.50;
    s.unallocated = RouteAction::kUnreachable;
    s.infra_per_flow = true;
    s.infra_answer_fraction = 0.35;
    s.infra_pool_64s = 4;
    s.infra_iid_style = net::IidStyle::kEui64;
    s.infra_oui = 0xb0dc01;  // synthetic CMTS line-card OUI
    out.push_back(std::move(s));
  }
  // 6. AT&T — US broadband, /60 delegations.
  {
    auto s = isp("US", "Broadband", "AT&T", 7018, "/24", "/28-60",
                 "3fff:600::", 60, false, 0.065);
    s.paper_hops = 740141;
    s.wan_inside_lan_fraction = 0.0;
    set_iid(s, 0.128, 0.005, 0.01, 0.03);
    s.vendor_mix = mix({{"Arris", 0.60}, {"Technicolor", 0.30},
                        {"Netgear", 0.10}});
    s.loop_scale = 0.030;
    s.service_scale = 0.40;
    out.push_back(std::move(s));
  }
  // 7. Charter — US broadband.
  {
    auto s = isp("US", "Broadband", "Charter", 20115, "/24", "/24-56",
                 "3fff:700::", 56, false, 0.010);
    s.paper_hops = 13027;
    s.wan_inside_lan_fraction = 0.26;
    set_iid(s, 0.006, 0.004, 0.01, 0.03);
    s.vendor_mix = mix({{"Arris", 0.40}, {"Technicolor", 0.30},
                        {"Netgear", 0.15}, {"Hitron Tech", 0.15}});
    s.loop_scale = 0.10;
    s.service_scale = 4.0;
    s.unallocated = RouteAction::kUnreachable;
    s.infra_per_flow = true;
    s.infra_answer_fraction = 0.07;
    s.infra_pool_64s = 3;
    out.push_back(std::move(s));
  }
  // 8. CenturyLink — US broadband; the NTP hotspot (93% of exposed NTP).
  {
    auto s = isp("US", "Broadband", "CenturyLink", 209, "/24", "/24-56",
                 "3fff:800::", 56, false, 0.039);
    s.paper_hops = 249835;
    s.wan_inside_lan_fraction = 0.0;
    set_iid(s, 0.37, 0.01, 0.02, 0.05);
    s.vendor_mix = mix({{"Zyxel", 0.35}, {"Technicolor", 0.25},
                        {"AVM GmbH", 0.35}, {"Arris", 0.05}});
    s.loop_scale = 0.22;
    s.service_scale = 0.14;
    out.push_back(std::move(s));
  }
  // 9. AT&T — US mobile (UE model).
  {
    auto s = isp("US", "Mobile", "AT&T", 20057, "/32", "/32-64",
                 "3fff:900::", 64, true, 0.098);
    s.paper_hops = 1734506;
    s.separate_wan_fraction = 0.055;
    set_iid(s, 0.0003, 0.001, 0.002, 0.01);
    s.vendor_mix = mix({{"Apple", 0.45}, {"Samsung", 0.30}, {"LG", 0.08},
                        {"Motorola", 0.07}, {"OnePlus", 0.04},
                        {"Netgear", 0.06}});
    s.loop_scale = 0.0;
    s.service_scale = 0.02;
    out.push_back(std::move(s));
  }
  // 10. Mediacom — US enterprise; chatty edge (alias-detection exercise).
  {
    auto s = isp("US", "Enterprise", "Mediacom", 30036, "/28", "/28-56",
                 "3fff:a00::", 56, false, 0.017);
    s.paper_hops = 38399;
    s.wan_inside_lan_fraction = 0.0;
    set_iid(s, 0.004, 0.01, 0.02, 0.04);
    s.vendor_mix = mix({{"Arris", 0.50}, {"Technicolor", 0.30},
                        {"Netgear", 0.20}});
    s.loop_scale = 1.1;
    s.service_scale = 2.0;
    s.unallocated = RouteAction::kUnreachable;
    s.infra_per_flow = true;
    s.infra_answer_fraction = 0.50;
    s.infra_pool_64s = 2;
    out.push_back(std::move(s));
  }
  // 11. China Telecom — CN broadband, /60 delegations.
  {
    auto s = isp("CN", "Broadband", "Telecom", 4134, "/24", "/28-60",
                 "3fff:b00::", 60, false, 0.109);
    s.paper_hops = 2122292;
    s.wan_inside_lan_fraction = 0.032;
    set_iid(s, 0.122, 0.01, 0.10, 0.16);
    s.vendor_mix = mix({{"China Telecom", 0.28}, {"ZTE", 0.24},
                        {"Huawei", 0.22}, {"TP-Link", 0.16},
                        {"Skyworth", 0.10}});
    s.loop_scale = 0.80;
    s.service_scale = 0.12;
    out.push_back(std::move(s));
  }
  // 12. China Unicom — CN broadband.
  {
    auto s = isp("CN", "Broadband", "Unicom", 4837, "/24", "/28-60",
                 "3fff:c00::", 60, false, 0.085);
    s.paper_hops = 1273075;
    s.wan_inside_lan_fraction = 0.48;
    set_iid(s, 0.533, 0.01, 0.06, 0.12);
    s.vendor_mix = mix({{"China Unicom", 0.32}, {"ZTE", 0.28},
                        {"Huawei", 0.20}, {"TP-Link", 0.20}});
    s.loop_scale = 1.50;
    s.service_scale = 0.38;
    out.push_back(std::move(s));
  }
  // 13. China Mobile — CN broadband; the largest service exposure (57.5%).
  {
    auto s = isp("CN", "Broadband", "Mobile", 9808, "/24", "/28-60",
                 "3fff:d00::", 60, false, 0.200);
    s.paper_hops = 7316861;
    s.wan_inside_lan_fraction = 0.38;
    set_iid(s, 0.331, 0.012, 0.09, 0.17);
    s.vendor_mix = mix({{"China Mobile", 0.52}, {"ZTE", 0.15},
                        {"Skyworth", 0.13}, {"Fiberhome", 0.08},
                        {"Youhua Tech", 0.05}, {"StarNet", 0.04},
                        {"Mercury", 0.03}});
    s.loop_scale = 1.00;
    s.service_scale = 1.00;
    out.push_back(std::move(s));
  }
  // 14. China Unicom — CN mobile (UE model).
  {
    auto s = isp("CN", "Mobile", "Unicom", 4837, "/32", "/32-64",
                 "3fff:e00::", 64, true, 0.144);
    s.paper_hops = 3696275;
    s.separate_wan_fraction = 0.021;
    set_iid(s, 0.004, 0.001, 0.04, 0.08);
    s.vendor_mix = cn_ue_mix();
    s.loop_scale = 0.012;
    s.service_scale = 0.02;
    out.push_back(std::move(s));
  }
  // 15. China Mobile — CN mobile (UE model).
  {
    auto s = isp("CN", "Mobile", "Mobile", 9808, "/32", "/32-64",
                 "3fff:f00::", 64, true, 0.200);
    s.paper_hops = 7193972;
    s.separate_wan_fraction = 0.016;
    set_iid(s, 0.003, 0.001, 0.04, 0.08);
    s.vendor_mix = cn_ue_mix();
    s.loop_scale = 0.012;
    s.service_scale = 0.02;
    out.push_back(std::move(s));
  }

  return out;
}

std::vector<IspSpec> bgp_specs(int n_ases, std::uint64_t seed) {
  // Country table for the BGP-wide sweep: (code, share of ASes, loop
  // propensity, base ASN). Shares and propensities are calibrated so the
  // top-10 loop countries come out in the paper's Figure 5 order:
  // BR, CN, EC, VN, US, MM, IN, GB, DE, CH (CZ close behind).
  struct Country {
    const char* code;
    double as_share;
    double loop;
    std::uint32_t base_asn;
    double density;
  };
  static const Country kCountries[] = {
      {"BR", 0.070, 0.62, 28006, 0.62}, {"CN", 0.075, 0.46, 4134, 0.55},
      {"EC", 0.020, 0.74, 27947, 0.58}, {"VN", 0.030, 0.44, 7552, 0.50},
      {"US", 0.120, 0.12, 7922, 0.45},  {"MM", 0.012, 0.58, 9988, 0.48},
      {"IN", 0.060, 0.16, 55836, 0.42}, {"GB", 0.045, 0.13, 2856, 0.40},
      {"DE", 0.055, 0.11, 3320, 0.42},  {"CH", 0.020, 0.20, 6830, 0.40},
      {"CZ", 0.020, 0.20, 5610, 0.38},  {"NL", 0.030, 0.07, 1136, 0.35},
      {"FR", 0.035, 0.07, 3215, 0.35},  {"JP", 0.035, 0.06, 2516, 0.35},
      {"KR", 0.020, 0.06, 4766, 0.35},  {"AU", 0.020, 0.07, 1221, 0.32},
      {"RU", 0.030, 0.09, 12389, 0.32}, {"IT", 0.025, 0.07, 3269, 0.32},
      {"ES", 0.020, 0.07, 3352, 0.30},  {"SE", 0.015, 0.06, 3301, 0.30},
      {"PL", 0.020, 0.08, 5617, 0.30},  {"TR", 0.015, 0.10, 9121, 0.32},
      {"ZA", 0.012, 0.10, 5713, 0.30},  {"MX", 0.015, 0.11, 8151, 0.32},
      {"AR", 0.015, 0.11, 7303, 0.32},  {"CL", 0.012, 0.10, 7418, 0.30},
      {"CO", 0.012, 0.11, 13489, 0.30}, {"TH", 0.015, 0.10, 9931, 0.32},
      {"MY", 0.012, 0.09, 4788, 0.30},  {"ID", 0.015, 0.10, 7713, 0.32},
      {"PH", 0.012, 0.10, 9299, 0.30},  {"SG", 0.010, 0.06, 7473, 0.28},
      {"HK", 0.010, 0.07, 4760, 0.28},  {"TW", 0.012, 0.06, 3462, 0.28},
      {"NZ", 0.008, 0.06, 9500, 0.26},  {"CA", 0.020, 0.08, 812, 0.30},
  };

  std::vector<double> weights;
  for (const auto& c : kCountries) weights.push_back(c.as_share);

  net::Rng rng{seed};
  std::vector<IspSpec> out;
  out.reserve(static_cast<std::size_t>(n_ases));
  for (int i = 0; i < n_ases; ++i) {
    const Country& c = kCountries[rng.pick_weighted(weights)];
    IspSpec s;
    s.country = c.code;
    s.network = "BGP";
    s.name = std::string{"AS"} + std::to_string(c.base_asn) + "-" +
             std::to_string(i);
    s.asn = c.base_asn + static_cast<std::uint32_t>(i % 7 == 0 ? 0 : i);
    s.paper_block = "/32";
    s.paper_range = "/32-48";
    // Unique block base per AS inside 3fff:8000::/17 (clear of the 15
    // sample ISP blocks which live under 3fff:0000::/20). Bit 36 spacing
    // keeps blocks distinct for any window_bits <= 19.
    const std::uint64_t hi = 0x3fff800000000000ULL |
                             (static_cast<std::uint64_t>(i) << 36);
    s.block_base = net::Ipv6Address::from_value(net::Uint128{hi, 0});
    s.delegated_len = 48;  // business-site delegations (RFC 6177)
    s.ue_model = false;
    s.density = c.density * rng.unit() * 0.8 + 0.08;
    // Two addressing cultures (Table X): ~30% of ASes address their edge
    // manually (low-byte heavy, loop-prone), the rest look like consumer
    // CPE populations.
    const bool manual = rng.bernoulli(0.30);
    if (manual) {
      s.iid_weights[0] = 0.22;
      s.iid_weights[1] = 0.25;
      s.iid_weights[2] = 0.05;
      s.iid_weights[3] = 0.01;
      s.iid_weights[4] = 0.47;
      s.loop_scale = c.loop * 0.9;
    } else {
      s.iid_weights[0] = 0.20;
      s.iid_weights[1] = 0.03;
      s.iid_weights[2] = 0.02;
      s.iid_weights[3] = 0.01;
      s.iid_weights[4] = 0.74;
      s.loop_scale = c.loop * 0.3;
    }
    s.wan_inside_lan_fraction = 0.10;
    s.vendor_mix = mix({{"ZTE", 0.15}, {"Huawei", 0.15}, {"MikroTik", 0.15},
                        {"TP-Link", 0.15}, {"Netgear", 0.10},
                        {"Generic CPE", 0.30}});
    s.service_scale = 0.10;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace xmap::topo::paper
