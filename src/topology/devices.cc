#include "topology/devices.h"

namespace xmap::topo {
namespace {

// Flow key for loop-cap bookkeeping: keyed hash of the packet's 4 address
// words (src/dst), so repeated forwards of one looping flow share a counter.
std::uint64_t flow_key(const pkt::Bytes& packet) {
  pkt::Ipv6View ip{packet};
  const net::Uint128 s = ip.src().value();
  const net::Uint128 d = ip.dst().value();
  return net::hash_combine64(net::hash_combine64(s.hi(), s.lo()),
                             net::hash_combine64(d.hi(), d.lo()));
}

bool is_echo_request(const pkt::Ipv6View& ip) {
  if (ip.next_header() != pkt::kProtoIcmpv6) return false;
  pkt::Icmpv6View icmp{ip.payload()};
  return icmp.valid() && icmp.type() == pkt::Icmpv6Type::kEchoRequest;
}

}  // namespace

bool IcmpRateLimiter::allow(sim::SimTime now) {
  if (rate_ == 0) return true;
  const double refill = static_cast<double>(now - last_) *
                        static_cast<double>(rate_) /
                        static_cast<double>(sim::kSecond);
  tokens_ = std::min<double>(burst_, tokens_ + refill);
  last_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  ++suppressed_;
  return false;
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

void Router::receive(pkt::Bytes packet, int iface) {
  ++counters_.received;
  if (provisioner_ != nullptr &&
      provisioner_->maybe_handle(packet, iface, [this](int ifc, pkt::Bytes p) {
        emit(ifc, std::move(p));
      })) {
    return;
  }
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst().is_multicast() || ip.dst().is_link_local()) {
    ++counters_.dropped;
    return;
  }

  if (ip.dst() == config_.address) {
    deliver_local(packet, iface);
    return;
  }

  const Route* route = table_.lookup(ip.dst());
  const RouteAction action =
      route != nullptr ? route->action
                       : (config_.no_route_action == RouteAction::kUnreachable
                              ? RouteAction::kUnreachable
                              : RouteAction::kBlackhole);

  switch (action) {
    case RouteAction::kDeliver:
      deliver_local(packet, iface);
      return;
    case RouteAction::kUnreachable:
      ++counters_.dropped;
      send_error(pkt::Icmpv6Type::kDestUnreachable,
                 static_cast<std::uint8_t>(pkt::UnreachCode::kNoRoute), packet,
                 iface);
      return;
    case RouteAction::kBlackhole:
      ++counters_.dropped;
      return;
    case RouteAction::kForward: {
      // decrement_hop_limit leaves the packet untouched on expiry, so the
      // error can quote it as received — no copy needed to forward.
      if (!pkt::decrement_hop_limit(packet)) {
        ++counters_.dropped;
        send_error(pkt::Icmpv6Type::kTimeExceeded,
                   static_cast<std::uint8_t>(
                       pkt::TimeExceededCode::kHopLimitExceeded),
                   packet, iface);
        return;
      }
      ++counters_.forwarded;
      emit(route->iface, std::move(packet));
      return;
    }
  }
}

void Router::deliver_local(const pkt::Bytes& packet, int iface) {
  ++counters_.delivered_local;
  pkt::Ipv6View ip{packet};
  if (is_echo_request(ip)) {
    ++counters_.echo_replies_sent;
    emit(iface, pkt::build_echo_reply(packet));
  }
}

void Router::send_error(pkt::Icmpv6Type type, std::uint8_t code,
                        const pkt::Bytes& invoking, int iface) {
  // Never answer an ICMPv6 error with an error (RFC 4443 §2.4(e)).
  pkt::Ipv6View ip{invoking};
  if (ip.next_header() == pkt::kProtoIcmpv6) {
    pkt::Icmpv6View icmp{ip.payload()};
    if (icmp.valid() && icmp.is_error()) return;
  }

  net::Ipv6Address source = config_.address;
  if (type == pkt::Icmpv6Type::kDestUnreachable &&
      config_.error_source == ErrorSource::kPerFlowInfra) {
    // Deterministic per destination: the same probe address always elicits
    // the same infra responder.
    const net::Uint128 dst = ip.dst().value();
    const std::uint64_t h =
        net::hash_combine64(net::hash_combine64(0x1f7a, dst.hi()), dst.lo());
    if (config_.unreachable_answer_fraction < 1.0) {
      const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (unit >= config_.unreachable_answer_fraction) return;
    }
    const int pool =
        config_.infra_pool_64s > 0 ? config_.infra_pool_64s : 1;
    const auto slot = net::Uint128{h % static_cast<std::uint64_t>(pool)};
    const net::Ipv6Prefix p64 = config_.infra_pool.nth_subprefix(64, slot);
    std::uint64_t iid;
    if (config_.infra_iid_style == net::IidStyle::kEui64) {
      const std::uint64_t nic = net::mix64(h) & 0xffffff;
      iid = net::MacAddress::from_u64(
                (static_cast<std::uint64_t>(config_.infra_oui) << 24) | nic)
                .to_eui64_iid();
    } else {
      iid = net::mix64(h ^ 0x5ca1ab1e);
    }
    source = p64.address_with_suffix(net::Uint128{iid});
  }

  if (!limiter_.allow(network()->now())) {
    network()->note_icmp_rate_limited(id());
    return;
  }
  if (type == pkt::Icmpv6Type::kDestUnreachable) {
    ++counters_.unreachable_sent;
  } else {
    ++counters_.time_exceeded_sent;
  }
  emit(iface, pkt::build_icmpv6_error(source, type, code, invoking));
}

// ---------------------------------------------------------------------------
// CpeRouter
// ---------------------------------------------------------------------------

void CpeRouter::receive(pkt::Bytes packet, int iface) {
  ++counters_.received;
  if (provision_active_ && handle_provisioning(packet)) return;
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst().is_multicast() || ip.dst().is_link_local()) {
    ++counters_.dropped;
    return;
  }
  const net::Ipv6Address dst = ip.dst();

  // 1. Our own addresses: the WAN interface address and the LAN-side
  //    gateway address (subnet_prefix::1).
  const net::Ipv6Address lan_gw =
      config_.subnet_prefix.address_with_suffix(net::Uint128{1});
  if (dst == config_.wan_address || dst == lan_gw) {
    deliver_local(packet);
    return;
  }

  // 2. The advertised LAN subnet: deliver to a host if it exists; otherwise
  //    this router is the last hop and must report Address Unreachable —
  //    the error that exposes its WAN address to the scanner (Section III).
  if (config_.subnet_prefix.contains(dst)) {
    if (lan_hosts_.count(dst) != 0 && lan_iface_ >= 0) {
      if (!pkt::decrement_hop_limit(packet)) {
        send_error(pkt::Icmpv6Type::kTimeExceeded,
                   static_cast<std::uint8_t>(
                       pkt::TimeExceededCode::kHopLimitExceeded),
                   packet);
        return;
      }
      ++counters_.forwarded;
      send(lan_iface_, std::move(packet));
      return;
    }
    if (lan_hosts_.count(dst) != 0) {
      // Host exists but its LAN segment is not instantiated in this run:
      // the packet is considered delivered.
      ++counters_.delivered_local;
      return;
    }
    ++counters_.dropped;
    send_error(
        pkt::Icmpv6Type::kDestUnreachable,
        static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable),
        packet);
    return;
  }

  // 3. Delegated LAN space the router did NOT assign ("Not-used Prefix").
  //    Patched firmware null-routes it (RFC 7084 WAA-8); vulnerable
  //    firmware lets it match the default route -> loop.
  if (config_.lan_prefix.contains(dst)) {
    if (config_.loop_lan) {
      forward_wan(std::move(packet), /*looping=*/true);
    } else {
      ++counters_.dropped;
      send_error(pkt::Icmpv6Type::kDestUnreachable,
                 static_cast<std::uint8_t>(pkt::UnreachCode::kNoRoute),
                 packet);
    }
    return;
  }

  // 4. Our WAN /64 but not our address ("NX WAN Address").
  if (config_.wan_prefix.contains(dst)) {
    if (config_.loop_wan) {
      forward_wan(std::move(packet), /*looping=*/true);
    } else {
      ++counters_.dropped;
      send_error(
          pkt::Icmpv6Type::kDestUnreachable,
          static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable),
          packet);
    }
    return;
  }

  // 5. Anything else: default route towards the ISP (traffic from the LAN
  //    heading for the Internet). Packets arriving *from* the WAN for a
  //    foreign destination are bounced back the same way — the ISP's
  //    routing, not ours, decides whether that loops.
  (void)iface;
  forward_wan(std::move(packet), /*looping=*/false);
}

void CpeRouter::forward_wan(pkt::Bytes packet, bool looping) {
  if (looping && config_.loop_cap >= 0) {
    if (loop_counts_.size() > 4096) loop_counts_.clear();
    int& count = loop_counts_[flow_key(packet)];
    if (++count > config_.loop_cap) {
      ++counters_.dropped;
      return;
    }
  }
  // decrement_hop_limit leaves the packet untouched on expiry, so the Time
  // Exceeded error quotes it exactly as received — no copy needed.
  if (!pkt::decrement_hop_limit(packet)) {
    send_error(
        pkt::Icmpv6Type::kTimeExceeded,
        static_cast<std::uint8_t>(pkt::TimeExceededCode::kHopLimitExceeded),
        packet);
    return;
  }
  ++counters_.forwarded;
  send(kWanIface, std::move(packet));
}

void CpeRouter::deliver_local(const pkt::Bytes& packet) {
  ++counters_.delivered_local;
  pkt::Ipv6View ip{packet};
  if (is_echo_request(ip)) {
    if (icmp_filtered_) return;
    ++counters_.echo_replies_sent;
    send(kWanIface, pkt::build_echo_reply(packet));
    return;
  }
  // Services are reachable on any of the device's own addresses; responses
  // are sourced from the address the client targeted.
  for (pkt::Bytes& resp : services_.handle(packet, ip.dst())) {
    send(kWanIface, std::move(resp));
  }
}

void CpeRouter::send_error(pkt::Icmpv6Type type, std::uint8_t code,
                           const pkt::Bytes& invoking) {
  if (icmp_filtered_) {
    ++counters_.dropped;
    return;
  }
  pkt::Ipv6View ip{invoking};
  if (ip.next_header() == pkt::kProtoIcmpv6) {
    pkt::Icmpv6View icmp{ip.payload()};
    if (icmp.valid() && icmp.is_error()) return;
  }
  if (!limiter_.allow(network()->now())) {
    network()->note_icmp_rate_limited(id());
    return;
  }
  if (type == pkt::Icmpv6Type::kDestUnreachable) {
    ++counters_.unreachable_sent;
  } else {
    ++counters_.time_exceeded_sent;
  }
  send(kWanIface, pkt::build_icmpv6_error(config_.wan_address, type, code,
                                          invoking));
}

void CpeRouter::begin_provisioning(const ProvisionParams& params) {
  provision_params_ = params;
  provision_active_ = true;
  provision_done_ = false;
  // Link-local source for the exchange, formed from the interface id.
  link_local_ = net::Ipv6Prefix{*net::Ipv6Address::parse("fe80::"), 64}
                    .address_with_suffix(net::Uint128{params.iid});
  send(kWanIface, build_router_solicit(link_local_));
}

bool CpeRouter::handle_provisioning(const pkt::Bytes& packet) {
  pkt::Ipv6View ip{packet};
  if (!ip.valid()) return false;

  // Router Advertisement: adopt the WAN prefix, form the WAN address by
  // SLAAC, then ask for a delegation.
  if (ip.next_header() == pkt::kProtoIcmpv6) {
    auto ra = parse_router_advert(ip.payload());
    if (!ra) return false;
    for (const PrefixInformation& pi : ra->prefixes) {
      if (!pi.autonomous || pi.prefix.length() != 64) continue;
      config_.wan_prefix = pi.prefix;
      config_.wan_address =
          pi.prefix.address_with_suffix(net::Uint128{provision_params_.iid});
      break;
    }
    if (ra->other_config) {
      Dhcpv6Message solicit;
      solicit.type = Dhcpv6MsgType::kSolicit;
      solicit.transaction_id =
          static_cast<std::uint32_t>(provision_params_.iid) & 0xffffff;
      solicit.client_duid = provision_params_.iid;
      send(kWanIface,
           pkt::build_udp(link_local_, *net::Ipv6Address::parse("fe80::1"),
                          kDhcpv6ClientPort, kDhcpv6ServerPort,
                          solicit.encode()));
    } else {
      // SLAAC-only subscriber (single-prefix device): the WAN /64 is all
      // there is; anchor the LAN branches so they match nothing.
      config_.lan_prefix = net::Ipv6Prefix{config_.wan_prefix.address(), 128};
      config_.subnet_prefix =
          net::Ipv6Prefix{config_.wan_prefix.address(), 128};
      provision_done_ = true;
      provision_active_ = false;
    }
    return true;
  }

  // DHCPv6 server messages.
  if (ip.next_header() == pkt::kProtoUdp) {
    pkt::UdpView udp{ip.payload()};
    if (!udp.valid() || udp.dst_port() != kDhcpv6ClientPort) return false;
    auto msg = Dhcpv6Message::decode(udp.payload());
    if (!msg) return true;
    if (msg->type == Dhcpv6MsgType::kAdvertise) {
      Dhcpv6Message request = *msg;
      request.type = Dhcpv6MsgType::kRequest;
      send(kWanIface,
           pkt::build_udp(link_local_, ip.src(), kDhcpv6ClientPort,
                          kDhcpv6ServerPort, request.encode()));
      return true;
    }
    if (msg->type == Dhcpv6MsgType::kReply && msg->delegated_prefix) {
      config_.lan_prefix = *msg->delegated_prefix;
      const std::uint64_t subnets =
          config_.lan_prefix.length() >= 64
              ? 1
              : (1ULL << (64 - config_.lan_prefix.length()));
      config_.subnet_prefix = config_.lan_prefix.nth_subprefix(
          64, net::Uint128{provision_params_.subnet_index % subnets});
      provision_done_ = true;
      provision_active_ = false;
      return true;
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// UeDevice
// ---------------------------------------------------------------------------

void UeDevice::receive(pkt::Bytes packet, int iface) {
  ++counters_.received;
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst().is_multicast() || ip.dst().is_link_local()) {
    ++counters_.dropped;
    return;
  }

  if (ip.dst() == config_.ue_address) {
    ++counters_.delivered_local;
    if (is_echo_request(ip)) {
      if (icmp_filtered_) return;
      ++counters_.echo_replies_sent;
      send(iface, pkt::build_echo_reply(packet));
      return;
    }
    for (pkt::Bytes& resp : services_.handle(packet, ip.dst())) {
      send(iface, std::move(resp));
    }
    return;
  }

  // The rest of the delegated /64 does not exist: the UE's IPv6 stack
  // itself originates Address Unreachable (RFC 4443 §3.1, "by the IPv6
  // layer in the originating node" — here the destination's last hop).
  if (config_.ue_prefix.contains(ip.dst())) {
    pkt::Ipv6View view{packet};
    if (view.next_header() == pkt::kProtoIcmpv6) {
      pkt::Icmpv6View icmp{view.payload()};
      if (icmp.valid() && icmp.is_error()) {
        ++counters_.dropped;
        return;
      }
    }
    if (icmp_filtered_) {
      ++counters_.dropped;
      return;
    }
    if (limiter_.allow(network()->now())) {
      ++counters_.unreachable_sent;
      send(iface,
           pkt::build_icmpv6_error(
               config_.ue_address, pkt::Icmpv6Type::kDestUnreachable,
               static_cast<std::uint8_t>(pkt::UnreachCode::kAddressUnreachable),
               packet));
    } else {
      network()->note_icmp_rate_limited(id());
    }
    return;
  }

  ++counters_.dropped;  // not ours, and a UE does not forward
}

// ---------------------------------------------------------------------------
// AliasedPrefixHost
// ---------------------------------------------------------------------------

void AliasedPrefixHost::receive(pkt::Bytes packet, int iface) {
  ++counters_.received;
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || !prefix_.contains(ip.dst())) {
    ++counters_.dropped;
    return;
  }
  ++counters_.delivered_local;
  if (is_echo_request(ip)) {
    ++counters_.echo_replies_sent;
    // The reply is sourced from whatever address was probed — the aliased
    // signature.
    send(iface, pkt::build_echo_reply(packet));
  }
}

// ---------------------------------------------------------------------------
// LanHost
// ---------------------------------------------------------------------------

void LanHost::receive(pkt::Bytes packet, int iface) {
  ++counters_.received;
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != address_) {
    ++counters_.dropped;
    return;
  }
  ++counters_.delivered_local;
  if (is_echo_request(ip)) {
    ++counters_.echo_replies_sent;
    send(iface, pkt::build_echo_reply(packet));
    return;
  }
  for (pkt::Bytes& resp : services_.handle(packet, ip.dst())) {
    send(iface, std::move(resp));
  }
}

}  // namespace xmap::topo
