// World-selector resolution.
//
// A "world" names the measurement universe a scan runs against. The
// selector grammar is shared by tools/xmap_sim and the parallel engine:
//
//   paper          the fifteen calibrated ISP blocks of Tables I/II
//   bgp:<n>        a synthetic BGP universe with <n> ASes (1..100000)
//   file:<path>    a JSON block-spec document (topology/spec_loader.h)
//
// Resolution is deterministic for a given (selector, seed) pair, which is
// what lets every parallel worker rebuild an identical world replica from
// the spec list alone.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/config.h"
#include "topology/builder.h"

namespace xmap::topo {

struct WorldResult {
  std::optional<std::vector<IspSpec>> specs;  // nullopt on error
  std::string error;                          // set on error
  // Fault plan embedded in a file: world's optional "faults" object.
  // Callers use it when the command line supplies no fault flags of its
  // own (CLI flags build a complete plan and take precedence).
  std::optional<sim::FaultPlan> faults;
  // Observability defaults from a file: world's optional "obs" object;
  // explicit CLI observability flags override these field by field.
  std::optional<obs::ObsConfig> obs;
};

// Resolves `selector` into block specifications. Vendor names inside JSON
// spec files are resolved against `vendors` (use paper::vendor_catalog()).
[[nodiscard]] WorldResult resolve_world(
    const std::string& selector, std::uint64_t seed,
    const std::vector<VendorProfile>& vendors);

}  // namespace xmap::topo
