#include "topology/world.h"

#include <charconv>

#include "topology/paper_profiles.h"
#include "topology/spec_loader.h"

namespace xmap::topo {
namespace {

WorldResult fail(std::string message) {
  return WorldResult{std::nullopt, std::move(message), std::nullopt,
                     std::nullopt};
}

}  // namespace

WorldResult resolve_world(const std::string& selector, std::uint64_t seed,
                          const std::vector<VendorProfile>& vendors) {
  if (selector == "paper") {
    return WorldResult{paper::isp_specs(), {}, std::nullopt, std::nullopt};
  }
  if (selector.rfind("bgp:", 0) == 0) {
    const std::string_view count = std::string_view{selector}.substr(4);
    int n_ases = 0;
    const auto [ptr, ec] =
        std::from_chars(count.data(), count.data() + count.size(), n_ases);
    if (ec != std::errc{} || ptr != count.data() + count.size() ||
        n_ases < 1 || n_ases > 100000) {
      return fail("bad world '" + selector +
                  "': bgp:<n> needs an AS count in 1..100000");
    }
    return WorldResult{paper::bgp_specs(n_ases, seed), {}, std::nullopt,
                       std::nullopt};
  }
  if (selector.rfind("file:", 0) == 0) {
    auto loaded = load_specs_from_file(selector.substr(5), vendors);
    if (!loaded.specs) return fail(std::move(loaded.error));
    return WorldResult{std::move(*loaded.specs), {}, loaded.faults,
                       loaded.obs};
  }
  return fail("unknown world '" + selector +
              "' (want paper, bgp:<n> or file:<path>)");
}

}  // namespace xmap::topo
