#include "topology/dhcpv6.h"

namespace xmap::topo {
namespace {

constexpr std::uint16_t kOptClientId = 1;
constexpr std::uint16_t kOptServerId = 2;
constexpr std::uint16_t kOptIaPd = 25;
constexpr std::uint16_t kOptIaPrefix = 26;

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v >> 32));
  put32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t read16(std::span<const std::uint8_t> d, std::size_t i) {
  return static_cast<std::uint16_t>((d[i] << 8) | d[i + 1]);
}

std::uint32_t read32(std::span<const std::uint8_t> d, std::size_t i) {
  return (static_cast<std::uint32_t>(read16(d, i)) << 16) | read16(d, i + 2);
}

std::uint64_t read64(std::span<const std::uint8_t> d, std::size_t i) {
  return (static_cast<std::uint64_t>(read32(d, i)) << 32) | read32(d, i + 4);
}

}  // namespace

std::vector<std::uint8_t> Dhcpv6Message::encode() const {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>((transaction_id >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((transaction_id >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(transaction_id & 0xff));

  // Client identifier (DUID-LL, hardware type 1 + 8-byte identifier).
  put16(out, kOptClientId);
  put16(out, 10);
  put16(out, 3);  // DUID-LL
  put64(out, client_duid);

  if (server_duid != 0) {
    put16(out, kOptServerId);
    put16(out, 10);
    put16(out, 3);
    put64(out, server_duid);
  }

  // IA_PD with an optional IAPREFIX.
  const std::uint16_t iaprefix_len = delegated_prefix ? 25 + 4 : 0;
  put16(out, kOptIaPd);
  put16(out, static_cast<std::uint16_t>(12 + iaprefix_len));
  put32(out, iaid);
  put32(out, 3600);  // T1
  put32(out, 5400);  // T2
  if (delegated_prefix) {
    put16(out, kOptIaPrefix);
    put16(out, 25);
    put32(out, preferred_lifetime);
    put32(out, valid_lifetime);
    out.push_back(static_cast<std::uint8_t>(delegated_prefix->length()));
    const net::Ipv6Address prefix_addr = delegated_prefix->address();
    const auto& bytes = prefix_addr.bytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  return out;
}

std::optional<Dhcpv6Message> Dhcpv6Message::decode(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < 4) return std::nullopt;
  Dhcpv6Message msg;
  const std::uint8_t type = wire[0];
  if (type != 1 && type != 2 && type != 3 && type != 7) return std::nullopt;
  msg.type = static_cast<Dhcpv6MsgType>(type);
  msg.transaction_id = (static_cast<std::uint32_t>(wire[1]) << 16) |
                       (static_cast<std::uint32_t>(wire[2]) << 8) | wire[3];

  std::size_t pos = 4;
  while (pos + 4 <= wire.size()) {
    const std::uint16_t opt = read16(wire, pos);
    const std::uint16_t len = read16(wire, pos + 2);
    pos += 4;
    if (pos + len > wire.size()) return std::nullopt;
    switch (opt) {
      case kOptClientId:
        if (len == 10 && read16(wire, pos) == 3) {
          msg.client_duid = read64(wire, pos + 2);
        }
        break;
      case kOptServerId:
        if (len == 10 && read16(wire, pos) == 3) {
          msg.server_duid = read64(wire, pos + 2);
        }
        break;
      case kOptIaPd: {
        if (len < 12) return std::nullopt;
        msg.iaid = read32(wire, pos);
        // Walk sub-options.
        std::size_t sub = pos + 12;
        const std::size_t end = pos + len;
        while (sub + 4 <= end) {
          const std::uint16_t sub_opt = read16(wire, sub);
          const std::uint16_t sub_len = read16(wire, sub + 2);
          sub += 4;
          if (sub + sub_len > end) return std::nullopt;
          if (sub_opt == kOptIaPrefix && sub_len >= 25) {
            msg.preferred_lifetime = read32(wire, sub);
            msg.valid_lifetime = read32(wire, sub + 4);
            const int prefix_len = wire[sub + 8];
            if (prefix_len > 128) return std::nullopt;
            std::array<std::uint8_t, 16> addr{};
            for (int i = 0; i < 16; ++i) {
              addr[static_cast<std::size_t>(i)] =
                  wire[sub + 9 + static_cast<std::size_t>(i)];
            }
            msg.delegated_prefix =
                net::Ipv6Prefix{net::Ipv6Address{addr}, prefix_len};
          }
          sub += sub_len;
        }
        break;
      }
      default:
        break;  // unknown options are skipped
    }
    pos += len;
  }
  return msg;
}

}  // namespace xmap::topo
