// Device vendor profiles.
//
// A vendor profile captures everything the paper attributes to a device
// maker: the OUI space its MACs come from (recovered through EUI-64
// addresses), which services its firmware exposes to the WAN and with what
// software versions (Tables IV, VII, VIII; Figures 2, 3), and whether its
// IPv6 routing module carries the loop flaw of Section VI (Table XII).
// All OUIs here are synthetic but stable; see DESIGN.md's substitution table.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "services/service.h"

namespace xmap::topo {

enum class DeviceClass : std::uint8_t { kCpe, kUe };

// Probability that a device of this vendor exposes a service on its WAN,
// with a weighted choice of software/version when it does.
struct ServiceDeployment {
  svc::ServiceKind kind;
  double probability = 0.0;
  struct Choice {
    svc::SoftwareInfo software;
    double weight = 1.0;
  };
  std::vector<Choice> software;
};

struct VendorProfile {
  std::string name;
  DeviceClass device_class = DeviceClass::kCpe;
  std::uint32_t oui = 0;
  // Probability that a device ships with the flawed routing module for the
  // WAN / delegated-LAN prefix respectively (Section VI-A distinguishes the
  // two ways the default route can swallow undelegated space).
  double loop_wan_prob = 0.0;
  double loop_lan_prob = 0.0;
  // Forwarding cap for a looping flow; <0 = loops until hop-limit expiry.
  int loop_cap = -1;
  std::vector<ServiceDeployment> services;
};

using VendorId = int;

// OUI -> vendor name registry (the IEEE file, miniaturised).
class OuiDb {
 public:
  void add(std::uint32_t oui, std::string vendor) {
    map_[oui] = std::move(vendor);
  }

  [[nodiscard]] const std::string* lookup(std::uint32_t oui) const {
    auto it = map_.find(oui);
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  [[nodiscard]] static OuiDb from_vendors(
      const std::vector<VendorProfile>& vendors) {
    OuiDb db;
    for (const auto& v : vendors) db.add(v.oui, v.name);
    return db;
  }

 private:
  std::unordered_map<std::uint32_t, std::string> map_;
};

}  // namespace xmap::topo
