// Simulated network devices: generic routers, CPE routers, UE devices and
// LAN hosts.
//
// These nodes implement the RFC behaviours the paper's technique rests on:
//
//  * RFC 4443: a router (or the IPv6 layer of an end device) that cannot
//    deliver a packet responds with Destination Unreachable; hop-limit
//    expiry produces Time Exceeded; ICMPv6 error generation is rate-limited.
//  * RFC 7084 (WAA-*): a CPE router receives a delegated prefix and must
//    null-route the portion it did not assign to its LAN. The widespread
//    bug of Section VI is a CPE that instead matches such packets against
//    its default route, bouncing them back at the ISP — that behaviour is a
//    per-device configuration flag here, interpreted by the same forwarding
//    code that implements the patched behaviour.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "netbase/iid.h"
#include "netbase/pool.h"
#include "services/service_host.h"
#include "sim/network.h"
#include "topology/provisioning.h"
#include "topology/routing_table.h"

namespace xmap::topo {

// RFC 4443 §2.4(f) token-bucket limiter for ICMPv6 error origination.
class IcmpRateLimiter {
 public:
  // `rate_per_sec` == 0 disables limiting entirely.
  explicit IcmpRateLimiter(std::uint32_t rate_per_sec = 0,
                           std::uint32_t burst = 10)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  // Returns true when an error message may be originated at sim time `now`.
  [[nodiscard]] bool allow(sim::SimTime now);

  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }

 private:
  std::uint32_t rate_;
  std::uint32_t burst_;
  double tokens_;
  sim::SimTime last_ = 0;
  std::uint64_t suppressed_ = 0;
};

// Per-device traffic counters, read by tests and experiment harnesses.
struct DeviceCounters {
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered_local = 0;
  std::uint64_t unreachable_sent = 0;
  std::uint64_t time_exceeded_sent = 0;
  std::uint64_t echo_replies_sent = 0;
  std::uint64_t dropped = 0;
};

// ---------------------------------------------------------------------------
// Generic router: routing table + RFC 4443 error generation. Used for the
// transit core and for ISP edge routers.
// ---------------------------------------------------------------------------
class Router : public sim::Node {
 public:
  // How the router sources Destination Unreachable errors for unroutable
  // space. Big aggregation devices (CMTS/BNG line cards) often answer from
  // per-flow interface addresses spread over a handful of infrastructure
  // /64s — the behaviour behind the paper's Table II ISPs whose "last
  // hops" vastly outnumber their unique /64 prefixes (Comcast: 87k hops,
  // 5.7k /64s, 95% EUI-64).
  enum class ErrorSource : std::uint8_t {
    kRouterAddress,  // errors come from the router's own address
    kPerFlowInfra,   // errors come from hash(dst)-derived infra addresses
  };

  struct Config {
    net::Ipv6Address address;  // the router's own (loopback/interface) address
    // What to do with packets matching no route at all:
    RouteAction no_route_action = RouteAction::kBlackhole;
    std::uint32_t icmp_rate_per_sec = 0;  // 0 = unlimited
    std::uint32_t icmp_burst = 10;

    ErrorSource error_source = ErrorSource::kRouterAddress;
    // kPerFlowInfra parameters: the /64 pool the per-flow addresses are
    // drawn from, its size, the IID style of the derived addresses, and
    // (for EUI-64) the OUI of the synthesised MACs.
    net::Ipv6Prefix infra_pool;  // a prefix carved into infra_pool_64s /64s
    int infra_pool_64s = 4;
    net::IidStyle infra_iid_style = net::IidStyle::kRandomized;
    std::uint32_t infra_oui = 0;
    // Fraction of unreachable-eligible packets actually answered
    // (deterministic per destination); models partial upstream filtering.
    double unreachable_answer_fraction = 1.0;
  };

  explicit Router(Config config)
      : config_(std::move(config)),
        limiter_(config_.icmp_rate_per_sec, config_.icmp_burst) {}

  [[nodiscard]] RoutingTable& table() { return table_; }
  [[nodiscard]] const RoutingTable& table() const { return table_; }

  // Attaches the ISP provisioning plane (SLAAC RAs + DHCPv6-PD server);
  // consulted before forwarding, as a BNG terminates these protocols.
  // Not owned; must outlive the router.
  void set_provisioner(Provisioner* provisioner) {
    provisioner_ = provisioner;
  }
  [[nodiscard]] const net::Ipv6Address& address() const {
    return config_.address;
  }
  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }

  void receive(pkt::Bytes packet, int iface) override;

  // Stamp-pure unless the ICMPv6 token bucket is live (its refill depends
  // on inter-arrival order across links) or a provisioning plane is
  // attached (allocations follow request order).
  [[nodiscard]] bool time_sensitive() const override {
    return config_.icmp_rate_per_sec > 0 || provisioner_ != nullptr;
  }

  // Compile the LC-trie forwarding index up front; lazily it would build
  // on the first lookup, inside the measured scan.
  void prepare_run() override { table_.compile(); }

 protected:
  // Local delivery hook; the base answers ICMPv6 echo.
  virtual void deliver_local(const pkt::Bytes& packet, int iface);

  void send_error(pkt::Icmpv6Type type, std::uint8_t code,
                  const pkt::Bytes& invoking, int iface);
  void emit(int iface, pkt::Bytes packet) { send(iface, std::move(packet)); }

  Config config_;
  RoutingTable table_;
  IcmpRateLimiter limiter_;
  DeviceCounters counters_;
  Provisioner* provisioner_ = nullptr;
};

// ---------------------------------------------------------------------------
// CPE router (home router / gateway), Figure 1a.
// ---------------------------------------------------------------------------
class CpeRouter : public sim::Node {
 public:
  struct Config {
    net::Ipv6Prefix wan_prefix;     // /64 point-to-point subnet with the ISP
    net::Ipv6Address wan_address;   // inside wan_prefix
    net::Ipv6Prefix lan_prefix;     // delegated (/56, /60 or /64)
    net::Ipv6Prefix subnet_prefix;  // /64 actually advertised on the LAN
    // Vulnerability flags (Section VI): true = the not-used space follows
    // the default route instead of an unreachable route.
    bool loop_wan = false;
    bool loop_lan = false;
    // Some firmware (OpenWrt & friends in Table XII) stops forwarding a
    // looping flow after ~10 rounds; <0 = no cap (loops until hop limit).
    int loop_cap = -1;
    std::uint32_t icmp_rate_per_sec = 0;  // 0 = unlimited
    std::uint32_t icmp_burst = 10;
  };

  explicit CpeRouter(Config config)
      : config_(std::move(config)),
        limiter_(config_.icmp_rate_per_sec, config_.icmp_burst) {}

  // --- Provisioning client (SLAAC + DHCPv6-PD) ---------------------------
  // When enabled, the CPE boots unconfigured and acquires its WAN prefix
  // from a Router Advertisement and its delegated LAN prefix over
  // DHCPv6-PD, then self-configures exactly as the direct constructor path
  // would have. `iid` forms the WAN address; `subnet_index` picks which /64
  // of the delegation is advertised to the LAN.
  struct ProvisionParams {
    std::uint64_t iid = 1;
    std::uint64_t subnet_index = 0;
  };
  // Sends the Router Solicitation; the rest of the exchange is driven by
  // the replies. Call after the WAN link is connected.
  void begin_provisioning(const ProvisionParams& params);
  [[nodiscard]] bool provisioned() const { return provision_done_; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const net::Ipv6Address& wan_address() const {
    return config_.wan_address;
  }
  [[nodiscard]] svc::ServiceHost& services() { return services_; }
  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }

  // LAN-side state: addresses that exist behind the router. Delivery to
  // them is forwarded onto the LAN interface when one is connected.
  void add_lan_host(const net::Ipv6Address& addr) { lan_hosts_.insert(addr); }
  void set_lan_iface(int iface) { lan_iface_ = iface; }

  // Applies the RFC 7084 mitigation: install unreachable routes for the
  // delegated-but-unassigned space (used by the mitigation experiments).
  void install_unreachable_routes() {
    config_.loop_wan = false;
    config_.loop_lan = false;
  }

  // Mitigation #2 of the paper's §VII: filter probe-elicited ICMPv6 on the
  // periphery. A filtered device silently drops instead of answering with
  // echo replies or Destination Unreachable — and becomes invisible to the
  // discovery technique.
  void set_icmp_filtered(bool filtered) { icmp_filtered_ = filtered; }
  [[nodiscard]] bool icmp_filtered() const { return icmp_filtered_; }

  void receive(pkt::Bytes packet, int iface) override;

  // Stamp-pure unless rate-limiting ICMPv6 errors or provisioned over the
  // wire (the DHCPv6-PD exchange is a stateful protocol conversation).
  [[nodiscard]] bool time_sensitive() const override {
    return config_.icmp_rate_per_sec > 0 || provision_active_ ||
           provision_done_;
  }

 private:
  static constexpr int kWanIface = 0;

  void deliver_local(const pkt::Bytes& packet);
  void forward_wan(pkt::Bytes packet, bool looping);
  void send_error(pkt::Icmpv6Type type, std::uint8_t code,
                  const pkt::Bytes& invoking);

  Config config_;
  IcmpRateLimiter limiter_;
  svc::ServiceHost services_;
  DeviceCounters counters_;
  std::unordered_set<net::Ipv6Address> lan_hosts_;
  int lan_iface_ = -1;
  bool icmp_filtered_ = false;
  // Loop-cap bookkeeping: forwards per flow key (hash of src/dst).
  net::PoolMap<std::uint64_t, int> loop_counts_;

  // Provisioning-client state.
  [[nodiscard]] bool handle_provisioning(const pkt::Bytes& packet);
  bool provision_active_ = false;
  bool provision_done_ = false;
  ProvisionParams provision_params_;
  net::Ipv6Address link_local_;
};

// ---------------------------------------------------------------------------
// UE device (smartphone with a delegated /64), Figure 1b.
// ---------------------------------------------------------------------------
class UeDevice : public sim::Node {
 public:
  struct Config {
    net::Ipv6Prefix ue_prefix;    // the delegated /64
    net::Ipv6Address ue_address;  // inside ue_prefix
    std::uint32_t icmp_rate_per_sec = 0;
    std::uint32_t icmp_burst = 10;
  };

  explicit UeDevice(Config config)
      : config_(std::move(config)),
        limiter_(config_.icmp_rate_per_sec, config_.icmp_burst) {}

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] svc::ServiceHost& services() { return services_; }
  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }

  void set_icmp_filtered(bool filtered) { icmp_filtered_ = filtered; }

  void receive(pkt::Bytes packet, int iface) override;

  [[nodiscard]] bool time_sensitive() const override {
    return config_.icmp_rate_per_sec > 0;
  }

 private:
  Config config_;
  IcmpRateLimiter limiter_;
  svc::ServiceHost services_;
  DeviceCounters counters_;
  bool icmp_filtered_ = false;
};

// ---------------------------------------------------------------------------
// Aliased prefix: a host (or middlebox) that answers ICMPv6 echo for EVERY
// address of a whole prefix — hosting providers and CDNs do this, and it is
// why the paper reports "unique, non-aliased" last hops. Each probe gets an
// echo reply sourced from the probed address itself, so naive counting sees
// one fake device per probe; alias detection (analysis/alias_detection.h)
// exists to strip these.
// ---------------------------------------------------------------------------
class AliasedPrefixHost : public sim::Node {
 public:
  explicit AliasedPrefixHost(net::Ipv6Prefix prefix) : prefix_(prefix) {}

  [[nodiscard]] const net::Ipv6Prefix& prefix() const { return prefix_; }
  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }

  void receive(pkt::Bytes packet, int iface) override;

  // Pure function of the probed address: bulk-safe.
  [[nodiscard]] bool time_sensitive() const override { return false; }

 private:
  net::Ipv6Prefix prefix_;
  DeviceCounters counters_;
};

// ---------------------------------------------------------------------------
// Plain LAN host: answers echo on its single address.
// ---------------------------------------------------------------------------
class LanHost : public sim::Node {
 public:
  explicit LanHost(net::Ipv6Address address) : address_(address) {}

  [[nodiscard]] const net::Ipv6Address& address() const { return address_; }
  [[nodiscard]] svc::ServiceHost& services() { return services_; }
  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }

  void receive(pkt::Bytes packet, int iface) override;

  // Echo + stateless services (keyed-hash sequence numbers): bulk-safe.
  [[nodiscard]] bool time_sensitive() const override { return false; }

 private:
  net::Ipv6Address address_;
  svc::ServiceHost services_;
  DeviceCounters counters_;
};

}  // namespace xmap::topo
