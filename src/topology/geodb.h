// Prefix -> (ASN, country) mapping, standing in for the MaxMind GeoIP
// database the paper uses to attribute routing-loop devices to ASes and
// countries (Table IX, Figures 5 and 6).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "topology/prefix_map.h"

namespace xmap::topo {

struct GeoInfo {
  std::uint32_t asn = 0;
  std::string country;  // ISO-3166 alpha-2
  std::string as_name;

  friend bool operator==(const GeoInfo&, const GeoInfo&) = default;
};

class GeoDb {
 public:
  void add(const net::Ipv6Prefix& prefix, GeoInfo info) {
    map_.insert(prefix, std::move(info));
  }

  // Longest-prefix lookup; nullptr for unmapped space.
  [[nodiscard]] const GeoInfo* lookup(const net::Ipv6Address& addr) const {
    return map_.lookup(addr);
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  // Visits every (prefix, GeoInfo) pair in trie (prefix) order — the
  // results store embeds the mapping as its attribution section.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each(std::forward<Fn>(fn));
  }

 private:
  PrefixMap<GeoInfo> map_;
};

}  // namespace xmap::topo
