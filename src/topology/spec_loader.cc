#include "topology/spec_loader.h"

#include <fstream>
#include <sstream>

#include "netbase/json.h"

namespace xmap::topo {
namespace {

SpecLoadResult fail(std::string message) {
  return SpecLoadResult{std::nullopt, std::move(message)};
}

VendorId vendor_by_name(const std::vector<VendorProfile>& vendors,
                        const std::string& name) {
  for (std::size_t i = 0; i < vendors.size(); ++i) {
    if (vendors[i].name == name) return static_cast<VendorId>(i);
  }
  return -1;
}

// Parses one per-link-class fault block ("access"/"core"/"other").
std::string parse_link_faults(const net::JsonValue& entry,
                              sim::LinkFaultParams& out) {
  if (!entry.is_object()) return "must be an object";
  out.loss = entry.number_or("loss", 0.0);
  out.duplicate = entry.number_or("duplicate", 0.0);
  out.corrupt = entry.number_or("corrupt", 0.0);
  out.jitter_ms = entry.number_or("jitter_ms", 0.0);
  if (out.loss < 0 || out.loss > 1 || out.duplicate < 0 ||
      out.duplicate > 1 || out.corrupt < 0 || out.corrupt > 1 ||
      out.jitter_ms < 0) {
    return "probabilities must be in [0, 1] and jitter_ms >= 0";
  }
  if (const net::JsonValue* burst = entry.find("burst")) {
    if (!burst->is_object()) return "\"burst\" must be an object";
    out.burst.rate_per_sec = burst->number_or("rate_per_sec", 0.0);
    out.burst.mean_ms = burst->number_or("mean_ms", 50.0);
    out.burst.loss = burst->number_or("loss", 1.0);
    if (out.burst.rate_per_sec < 0 || out.burst.mean_ms <= 0 ||
        out.burst.loss < 0 || out.burst.loss > 1) {
      return "bad \"burst\" parameters";
    }
  }
  if (const net::JsonValue* flap = entry.find("flap")) {
    if (!flap->is_object()) return "\"flap\" must be an object";
    out.flap.period_ms = flap->number_or("period_ms", 0.0);
    out.flap.down_ms = flap->number_or("down_ms", 0.0);
    out.flap.fraction = flap->number_or("fraction", 1.0);
    if (out.flap.period_ms < 0 || out.flap.down_ms < 0 ||
        out.flap.down_ms > out.flap.period_ms || out.flap.fraction < 0 ||
        out.flap.fraction > 1) {
      return "bad \"flap\" parameters";
    }
  }
  return {};
}

std::string parse_fault_plan(const net::JsonValue& entry,
                             sim::FaultPlan& out) {
  if (!entry.is_object()) return "\"faults\" must be an object";
  out.seed =
      static_cast<std::uint64_t>(entry.number_or("seed", 0.0));
  const struct {
    const char* key;
    sim::LinkFaultParams* params;
  } classes[] = {{"access", &out.access},
                 {"core", &out.core},
                 {"other", &out.other}};
  for (const auto& cls : classes) {
    if (const net::JsonValue* v = entry.find(cls.key)) {
      const std::string err = parse_link_faults(*v, *cls.params);
      if (!err.empty()) {
        return std::string{"faults."} + cls.key + ": " + err;
      }
    }
  }
  if (const net::JsonValue* silent = entry.find("silent")) {
    if (!silent->is_object()) return "\"faults.silent\" must be an object";
    out.silent.fraction = silent->number_or("fraction", 0.0);
    out.silent.start_ms = silent->number_or("start_ms", 0.0);
    out.silent.duration_ms = silent->number_or("duration_ms", 0.0);
    if (out.silent.fraction < 0 || out.silent.fraction > 1 ||
        out.silent.start_ms < 0 || out.silent.duration_ms < 0) {
      return "bad \"faults.silent\" parameters";
    }
  }
  return {};
}

}  // namespace

SpecLoadResult load_specs_from_json(std::string_view json_text,
                                    const std::vector<VendorProfile>& vendors) {
  auto parsed = net::json_parse(json_text);
  if (!parsed.value) return fail("JSON: " + parsed.error.to_string());
  const net::JsonValue& root = *parsed.value;
  if (!root.is_object()) return fail("top level must be an object");
  const net::JsonValue* blocks = root.find("blocks");
  if (blocks == nullptr || !blocks->is_array()) {
    return fail("missing \"blocks\" array");
  }

  std::vector<IspSpec> out;
  int index = 0;
  for (const net::JsonValue& entry : blocks->as_array()) {
    const std::string where = "blocks[" + std::to_string(index++) + "]";
    if (!entry.is_object()) return fail(where + " must be an object");

    IspSpec spec;
    spec.name = entry.string_or("name", "");
    if (spec.name.empty()) return fail(where + ": \"name\" is required");

    const std::string base_text = entry.string_or("block_base", "");
    auto base = net::Ipv6Address::parse(base_text);
    if (!base) {
      return fail(where + ": bad or missing \"block_base\": " + base_text);
    }
    spec.block_base = *base;

    spec.country = entry.string_or("country", "XX");
    spec.network = entry.string_or("network", "Broadband");
    spec.asn = static_cast<std::uint32_t>(entry.number_or("asn", 64500));
    spec.paper_block = entry.string_or("paper_block", "-");
    spec.paper_range = entry.string_or("paper_range", "-");
    spec.paper_hops = entry.number_or("paper_hops", 0);

    const double len = entry.number_or("delegated_len", 64);
    if (len != 56 && len != 60 && len != 64) {
      return fail(where + ": \"delegated_len\" must be 56, 60 or 64");
    }
    spec.delegated_len = static_cast<int>(len);
    spec.ue_model = entry.bool_or("ue_model", false);

    spec.density = entry.number_or("density", 0.2);
    if (spec.density < 0 || spec.density > 1) {
      return fail(where + ": \"density\" must be in [0, 1]");
    }
    spec.separate_wan_fraction = entry.number_or("separate_wan_fraction", 0.0);
    spec.wan_inside_lan_fraction =
        entry.number_or("wan_inside_lan_fraction", 0.0);
    spec.service_scale = entry.number_or("service_scale", 1.0);
    spec.loop_scale = entry.number_or("loop_scale", 1.0);
    spec.mac_clone_fraction = entry.number_or("mac_clone_fraction", 0.035);

    const std::string unallocated = entry.string_or("unallocated", "blackhole");
    if (unallocated == "blackhole") {
      spec.unallocated = RouteAction::kBlackhole;
    } else if (unallocated == "unreachable") {
      spec.unallocated = RouteAction::kUnreachable;
    } else {
      return fail(where + ": \"unallocated\" must be blackhole|unreachable");
    }

    if (const net::JsonValue* weights = entry.find("iid_weights")) {
      if (!weights->is_array() ||
          weights->as_array().size() != net::kIidStyleCount) {
        return fail(where + ": \"iid_weights\" must be an array of 5 numbers");
      }
      for (int i = 0; i < net::kIidStyleCount; ++i) {
        const auto& w = weights->as_array()[static_cast<std::size_t>(i)];
        if (!w.is_number() || w.as_number() < 0) {
          return fail(where + ": bad iid weight");
        }
        spec.iid_weights[i] = w.as_number();
      }
    }

    const net::JsonValue* vendor_map = entry.find("vendors");
    if (vendor_map == nullptr || !vendor_map->is_object() ||
        vendor_map->as_object().empty()) {
      return fail(where + ": \"vendors\" object is required");
    }
    for (const auto& [name, weight] : vendor_map->as_object()) {
      const VendorId id = vendor_by_name(vendors, name);
      if (id < 0) return fail(where + ": unknown vendor \"" + name + "\"");
      if (!weight.is_number() || weight.as_number() <= 0) {
        return fail(where + ": vendor \"" + name + "\" needs a positive weight");
      }
      spec.vendor_mix.emplace_back(id, weight.as_number());
    }

    out.push_back(std::move(spec));
  }
  if (out.empty()) return fail("\"blocks\" is empty");

  SpecLoadResult result{std::move(out), {}, std::nullopt, std::nullopt};
  if (const net::JsonValue* faults = root.find("faults")) {
    sim::FaultPlan plan;
    const std::string err = parse_fault_plan(*faults, plan);
    if (!err.empty()) return fail(err);
    result.faults = plan;
  }
  if (const net::JsonValue* obs_entry = root.find("obs")) {
    if (!obs_entry->is_object()) return fail("\"obs\" must be an object");
    obs::ObsConfig config;
    const std::string level_text = obs_entry->string_or("trace_level", "off");
    if (!obs::trace_level_from_string(level_text, config.trace_level)) {
      return fail("\"obs.trace_level\" must be off, scan or packet");
    }
    config.metrics = obs_entry->bool_or("metrics", false);
    config.profile = obs_entry->bool_or("profile", false);
    result.obs = config;
  }
  return result;
}

SpecLoadResult load_specs_from_file(const std::string& path,
                                    const std::vector<VendorProfile>& vendors) {
  std::ifstream in{path};
  if (!in) return fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_specs_from_json(buffer.str(), vendors);
}

}  // namespace xmap::topo
