#include "topology/spec_loader.h"

#include <fstream>
#include <sstream>

#include "netbase/json.h"

namespace xmap::topo {
namespace {

SpecLoadResult fail(std::string message) {
  return SpecLoadResult{std::nullopt, std::move(message)};
}

VendorId vendor_by_name(const std::vector<VendorProfile>& vendors,
                        const std::string& name) {
  for (std::size_t i = 0; i < vendors.size(); ++i) {
    if (vendors[i].name == name) return static_cast<VendorId>(i);
  }
  return -1;
}

}  // namespace

SpecLoadResult load_specs_from_json(std::string_view json_text,
                                    const std::vector<VendorProfile>& vendors) {
  auto parsed = net::json_parse(json_text);
  if (!parsed.value) return fail("JSON: " + parsed.error.to_string());
  const net::JsonValue& root = *parsed.value;
  if (!root.is_object()) return fail("top level must be an object");
  const net::JsonValue* blocks = root.find("blocks");
  if (blocks == nullptr || !blocks->is_array()) {
    return fail("missing \"blocks\" array");
  }

  std::vector<IspSpec> out;
  int index = 0;
  for (const net::JsonValue& entry : blocks->as_array()) {
    const std::string where = "blocks[" + std::to_string(index++) + "]";
    if (!entry.is_object()) return fail(where + " must be an object");

    IspSpec spec;
    spec.name = entry.string_or("name", "");
    if (spec.name.empty()) return fail(where + ": \"name\" is required");

    const std::string base_text = entry.string_or("block_base", "");
    auto base = net::Ipv6Address::parse(base_text);
    if (!base) {
      return fail(where + ": bad or missing \"block_base\": " + base_text);
    }
    spec.block_base = *base;

    spec.country = entry.string_or("country", "XX");
    spec.network = entry.string_or("network", "Broadband");
    spec.asn = static_cast<std::uint32_t>(entry.number_or("asn", 64500));
    spec.paper_block = entry.string_or("paper_block", "-");
    spec.paper_range = entry.string_or("paper_range", "-");
    spec.paper_hops = entry.number_or("paper_hops", 0);

    const double len = entry.number_or("delegated_len", 64);
    if (len != 56 && len != 60 && len != 64) {
      return fail(where + ": \"delegated_len\" must be 56, 60 or 64");
    }
    spec.delegated_len = static_cast<int>(len);
    spec.ue_model = entry.bool_or("ue_model", false);

    spec.density = entry.number_or("density", 0.2);
    if (spec.density < 0 || spec.density > 1) {
      return fail(where + ": \"density\" must be in [0, 1]");
    }
    spec.separate_wan_fraction = entry.number_or("separate_wan_fraction", 0.0);
    spec.wan_inside_lan_fraction =
        entry.number_or("wan_inside_lan_fraction", 0.0);
    spec.service_scale = entry.number_or("service_scale", 1.0);
    spec.loop_scale = entry.number_or("loop_scale", 1.0);
    spec.mac_clone_fraction = entry.number_or("mac_clone_fraction", 0.035);

    const std::string unallocated = entry.string_or("unallocated", "blackhole");
    if (unallocated == "blackhole") {
      spec.unallocated = RouteAction::kBlackhole;
    } else if (unallocated == "unreachable") {
      spec.unallocated = RouteAction::kUnreachable;
    } else {
      return fail(where + ": \"unallocated\" must be blackhole|unreachable");
    }

    if (const net::JsonValue* weights = entry.find("iid_weights")) {
      if (!weights->is_array() ||
          weights->as_array().size() != net::kIidStyleCount) {
        return fail(where + ": \"iid_weights\" must be an array of 5 numbers");
      }
      for (int i = 0; i < net::kIidStyleCount; ++i) {
        const auto& w = weights->as_array()[static_cast<std::size_t>(i)];
        if (!w.is_number() || w.as_number() < 0) {
          return fail(where + ": bad iid weight");
        }
        spec.iid_weights[i] = w.as_number();
      }
    }

    const net::JsonValue* vendor_map = entry.find("vendors");
    if (vendor_map == nullptr || !vendor_map->is_object() ||
        vendor_map->as_object().empty()) {
      return fail(where + ": \"vendors\" object is required");
    }
    for (const auto& [name, weight] : vendor_map->as_object()) {
      const VendorId id = vendor_by_name(vendors, name);
      if (id < 0) return fail(where + ": unknown vendor \"" + name + "\"");
      if (!weight.is_number() || weight.as_number() <= 0) {
        return fail(where + ": vendor \"" + name + "\" needs a positive weight");
      }
      spec.vendor_mix.emplace_back(id, weight.as_number());
    }

    out.push_back(std::move(spec));
  }
  if (out.empty()) return fail("\"blocks\" is empty");
  return SpecLoadResult{std::move(out), {}};
}

SpecLoadResult load_specs_from_file(const std::string& path,
                                    const std::vector<VendorProfile>& vendors) {
  std::ifstream in{path};
  if (!in) return fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_specs_from_json(buffer.str(), vendors);
}

}  // namespace xmap::topo
