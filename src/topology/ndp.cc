#include "topology/ndp.h"

#include "netbase/checksum.h"

namespace xmap::topo {
namespace {

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t read32(std::span<const std::uint8_t> d, std::size_t i) {
  return (static_cast<std::uint32_t>(d[i]) << 24) |
         (static_cast<std::uint32_t>(d[i + 1]) << 16) |
         (static_cast<std::uint32_t>(d[i + 2]) << 8) | d[i + 3];
}

pkt::Bytes wrap_icmpv6(const net::Ipv6Address& src,
                       const net::Ipv6Address& dst,
                       std::vector<std::uint8_t> msg) {
  // ND messages travel with hop limit 255 (RFC 4861 §4).
  const std::uint16_t csum =
      net::ipv6_upper_layer_checksum(src, dst, pkt::kProtoIcmpv6, msg);
  msg[2] = static_cast<std::uint8_t>(csum >> 8);
  msg[3] = static_cast<std::uint8_t>(csum & 0xff);
  return pkt::build_ipv6(src, dst, pkt::kProtoIcmpv6, 255, msg);
}

}  // namespace

net::Ipv6Address all_routers_address() {
  return *net::Ipv6Address::parse("ff02::2");
}

pkt::Bytes build_router_solicit(const net::Ipv6Address& src) {
  std::vector<std::uint8_t> msg{kIcmpv6RouterSolicit, 0, 0, 0, 0, 0, 0, 0};
  return wrap_icmpv6(src, all_routers_address(), std::move(msg));
}

pkt::Bytes build_router_advert(const net::Ipv6Address& src,
                               const net::Ipv6Address& dst,
                               const RouterAdvertisement& ra) {
  std::vector<std::uint8_t> msg;
  msg.reserve(16 + ra.prefixes.size() * 32);
  msg.push_back(kIcmpv6RouterAdvert);
  msg.push_back(0);  // code
  msg.push_back(0);  // checksum (filled later)
  msg.push_back(0);
  msg.push_back(ra.cur_hop_limit);
  std::uint8_t flags = 0;
  if (ra.managed) flags |= 0x80;
  if (ra.other_config) flags |= 0x40;
  msg.push_back(flags);
  msg.push_back(static_cast<std::uint8_t>(ra.router_lifetime >> 8));
  msg.push_back(static_cast<std::uint8_t>(ra.router_lifetime & 0xff));
  put32(msg, 0);  // reachable time (unspecified)
  put32(msg, 0);  // retrans timer (unspecified)

  for (const PrefixInformation& pi : ra.prefixes) {
    msg.push_back(3);  // option: Prefix Information
    msg.push_back(4);  // length in units of 8 octets (32 bytes)
    msg.push_back(static_cast<std::uint8_t>(pi.prefix.length()));
    std::uint8_t pi_flags = 0;
    if (pi.on_link) pi_flags |= 0x80;
    if (pi.autonomous) pi_flags |= 0x40;
    msg.push_back(pi_flags);
    put32(msg, pi.valid_lifetime);
    put32(msg, pi.preferred_lifetime);
    put32(msg, 0);  // reserved2
    const net::Ipv6Address prefix_addr = pi.prefix.address();
    const auto& bytes = prefix_addr.bytes();
    msg.insert(msg.end(), bytes.begin(), bytes.end());
  }
  return wrap_icmpv6(src, dst, std::move(msg));
}

std::optional<RouterAdvertisement> parse_router_advert(
    std::span<const std::uint8_t> m) {
  if (m.size() < 16 || m[0] != kIcmpv6RouterAdvert || m[1] != 0) {
    return std::nullopt;
  }
  RouterAdvertisement ra;
  ra.cur_hop_limit = m[4];
  ra.managed = (m[5] & 0x80) != 0;
  ra.other_config = (m[5] & 0x40) != 0;
  ra.router_lifetime = static_cast<std::uint16_t>((m[6] << 8) | m[7]);

  std::size_t pos = 16;
  while (pos + 2 <= m.size()) {
    const std::uint8_t type = m[pos];
    const std::size_t len = static_cast<std::size_t>(m[pos + 1]) * 8;
    if (len == 0 || pos + len > m.size()) return std::nullopt;
    if (type == 3 && len == 32) {
      PrefixInformation pi;
      const int prefix_len = m[pos + 2];
      if (prefix_len > 128) return std::nullopt;
      pi.on_link = (m[pos + 3] & 0x80) != 0;
      pi.autonomous = (m[pos + 3] & 0x40) != 0;
      pi.valid_lifetime = read32(m, pos + 4);
      pi.preferred_lifetime = read32(m, pos + 8);
      std::array<std::uint8_t, 16> addr{};
      for (int i = 0; i < 16; ++i) {
        addr[static_cast<std::size_t>(i)] = m[pos + 16 + static_cast<std::size_t>(i)];
      }
      pi.prefix = net::Ipv6Prefix{net::Ipv6Address{addr}, prefix_len};
      ra.prefixes.push_back(pi);
    }
    pos += len;
  }
  return ra;
}

bool is_router_solicit(std::span<const std::uint8_t> m) {
  return m.size() >= 8 && m[0] == kIcmpv6RouterSolicit && m[1] == 0;
}

}  // namespace xmap::topo
