// DHCPv6 Prefix Delegation (RFC 8415) wire formats — the subset an ISP
// uses to delegate a LAN prefix to a requesting CPE router: SOLICIT ->
// ADVERTISE -> REQUEST -> REPLY carrying an IA_PD option with one IAPREFIX.
//
// Together with ndp.h this forms the provisioning plane of the paper's §II:
// the CPE's WAN address comes from an RA (SLAAC) and its delegated LAN
// prefix from DHCPv6-PD, exactly the "multiple prefixes" allocation model
// whose consequences the paper measures.
#pragma once

#include <optional>
#include <vector>

#include "packet/packet.h"

namespace xmap::topo {

inline constexpr std::uint16_t kDhcpv6ClientPort = 546;
inline constexpr std::uint16_t kDhcpv6ServerPort = 547;

enum class Dhcpv6MsgType : std::uint8_t {
  kSolicit = 1,
  kAdvertise = 2,
  kRequest = 3,
  kReply = 7,
};

struct Dhcpv6Message {
  Dhcpv6MsgType type = Dhcpv6MsgType::kSolicit;
  std::uint32_t transaction_id = 0;  // 24 bits used
  std::uint32_t iaid = 1;
  // Delegated prefix; empty (length 0 prefix, valid=0) in a bare SOLICIT.
  std::optional<net::Ipv6Prefix> delegated_prefix;
  std::uint32_t valid_lifetime = 86400;
  std::uint32_t preferred_lifetime = 14400;
  // DUID-LL identifiers (client option 1 / server option 2).
  std::uint64_t client_duid = 0;
  std::uint64_t server_duid = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<Dhcpv6Message> decode(
      std::span<const std::uint8_t> wire);
};

}  // namespace xmap::topo
