// Synthetic-Internet construction.
//
// Builds the measurement substrate: a transit core, one edge router per ISP
// block, and a population of CPE/UE periphery devices whose address styles,
// vendor mix, exposed services and routing-flaw rates are drawn from
// per-ISP specifications (see paper_profiles.{h,cc} for the calibrated
// instances reproducing the paper's twelve ISPs).
//
// Scale note: the paper scans 32-bit sub-prefix spaces (2^32 slots per
// block). Experiments here use `window_bits`-sized windows (default 2^12
// slots); the ISP block is sized so that block-length + window = delegated
// prefix length, which preserves the probing geometry exactly — every slot
// is one potential customer delegation, probed once.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "topology/devices.h"
#include "topology/geodb.h"
#include "topology/vendor.h"

namespace xmap::topo {

// One ISP block to populate (calibration data: Tables I and II).
struct IspSpec {
  std::string country;   // "IN", "US", "CN"
  std::string network;   // "Broadband", "Mobile", "Enterprise"
  std::string name;      // e.g. "Reliance Jio"
  std::uint32_t asn = 0;
  std::string paper_block;  // the paper's block length, e.g. "/32" (reporting)
  std::string paper_range;  // the paper's scan range, e.g. "/32-64" (reporting)
  // The paper's reported unique-last-hop count for this block (Table II);
  // used by the harnesses to form paper-weighted totals, since the scaled
  // windows change the cross-block population ratios.
  double paper_hops = 0;

  net::Ipv6Address block_base;  // synthetic block location
  int delegated_len = 64;       // Table I "Length": 56, 60 or 64
  bool ue_model = false;        // mobile UE population vs CPE population

  // Fraction of delegation slots occupied by an active subscriber.
  double density = 0.5;

  // "same"/"diff" mechanics (Table II):
  //  * delegated_len == 64: `separate_wan_fraction` of devices keep a WAN
  //    /64 distinct from the probed slot (responders land in a different
  //    /64 -> "diff"); the rest respond from inside the slot -> "same".
  //  * delegated_len < 64: all devices have a distinct WAN /64;
  //    `wan_inside_lan_fraction` of them draw it from inside the delegated
  //    slot, so a probe occasionally lands in the responder's own /64.
  double separate_wan_fraction = 0.0;
  double wan_inside_lan_fraction = 0.0;

  // IID style weights for device WAN/UE addresses, indexed by IidStyle.
  double iid_weights[net::kIidStyleCount] = {0, 0, 0, 0, 1};

  // Vendor mix: (vendor id, weight) into the vendor catalogue.
  std::vector<std::pair<VendorId, double>> vendor_mix;

  // Policy for probes hitting unallocated slots: kBlackhole models upstream
  // filtering (most ISPs); kUnreachable models a chatty edge router.
  RouteAction unallocated = RouteAction::kBlackhole;
  // With kUnreachable: answer from per-flow infrastructure addresses
  // (CMTS/BNG line-card behaviour) instead of the router's own address.
  // Reproduces the paper's ISPs whose last-hop counts dwarf their unique
  // /64 counts (Comcast/Charter/Mediacom in Table II).
  bool infra_per_flow = false;
  double infra_answer_fraction = 1.0;
  int infra_pool_64s = 4;
  net::IidStyle infra_iid_style = net::IidStyle::kRandomized;
  std::uint32_t infra_oui = 0;

  // Number of delegation slots occupied by aliased prefixes (hosting/CDN
  // space that echo-replies on every address) instead of periphery devices.
  int aliased_slots = 0;

  double service_scale = 1.0;  // multiplies vendor service probabilities
  double loop_scale = 1.0;     // multiplies vendor loop probabilities
  double mac_clone_fraction = 0.035;  // Table II: ~3.5% of MACs repeat
};

struct BuildConfig {
  int window_bits = 12;  // slots per block = 2^window_bits
  std::uint64_t seed = 1;
  // Prefix-placement seed; 0 = derive from `seed`. Rebuilding the same
  // (seed, specs) with a different placement_seed renumbers every
  // subscriber (new delegations/WAN prefixes) while keeping device
  // identities — vendor, MAC, IID style, services, flaw flags — fixed.
  // Substrate for the prefix-rotation / host-tracking experiments.
  std::uint64_t placement_seed = 0;
  // When true, CPE routers boot unconfigured and acquire their WAN prefix
  // (SLAAC Router Advertisement) and delegated LAN prefix (DHCPv6-PD) over
  // the wire from the ISP router's provisioning plane, instead of being
  // configured directly. The exchanges are drained before build_internet
  // returns. UE devices are RA-only in reality and stay direct-configured.
  bool provision_via_protocols = false;
  sim::LinkParams core_link{};    // vantage/core and core/ISP links
  sim::LinkParams access_link{};  // ISP/device links
  std::uint32_t device_icmp_rate = 0;  // 0 = unlimited (deterministic scans)
  std::uint32_t router_icmp_rate = 0;
};

// Ground truth for one built device (consumed by analysis validation and by
// the experiment harnesses when computing denominators).
struct DeviceRecord {
  sim::NodeId node = sim::kInvalidNode;
  VendorId vendor = -1;
  DeviceClass device_class = DeviceClass::kCpe;
  net::IidStyle iid_style = net::IidStyle::kRandomized;
  std::optional<net::MacAddress> mac;  // set for EUI-64 devices
  net::Ipv6Prefix slot;        // the probed delegation
  net::Ipv6Prefix wan_prefix;  // == slot's /64 for single-prefix devices
  net::Ipv6Address address;    // expected responder address
  bool separate_wan = false;
  bool loop_wan = false;
  bool loop_lan = false;
  std::vector<std::pair<svc::ServiceKind, svc::SoftwareInfo>> services;
};

struct IspInstance {
  IspSpec spec;
  Router* router = nullptr;
  int uplink_iface = 0;          // router's interface towards the core
  net::Ipv6Prefix block;         // the whole synthetic block
  net::Ipv6Prefix scan_base;     // lower half: the probing window
  net::Ipv6Prefix wan_pool;      // upper half: infrastructure /64 pool
  int window_lo = 0;             // scan_base.length()
  int window_hi = 0;             // delegated_len
  std::vector<DeviceRecord> devices;
  std::vector<net::Ipv6Prefix> aliased_prefixes;  // ground truth

  [[nodiscard]] std::string scan_range_string() const {
    return scan_base.to_string() + "-" + std::to_string(window_hi);
  }
};

struct BuiltInternet {
  Router* core = nullptr;
  std::vector<IspInstance> isps;
  std::vector<VendorProfile> vendors;
  GeoDb geo;
  OuiDb oui;
  // ISP-side provisioning planes, keyed by edge router (only populated
  // when BuildConfig::provision_via_protocols is set).
  std::map<Router*, std::unique_ptr<Provisioner>> provisioners;

  [[nodiscard]] const VendorProfile& vendor(VendorId id) const {
    return vendors[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t total_devices() const {
    std::size_t n = 0;
    for (const auto& isp : isps) n += isp.devices.size();
    return n;
  }
};

// Placement of one ISP's probing window — a pure function of the spec and
// the window size (no seed, no device population). The parallel engine uses
// this to derive default targets without paying for a throwaway world build.
struct ScanWindow {
  net::Ipv6Prefix scan_base;
  int window_lo = 0;
  int window_hi = 0;
};
[[nodiscard]] ScanWindow scan_window(const IspSpec& spec, int window_bits);

// Builds the full topology into `net`. Deterministic for a given config.
[[nodiscard]] BuiltInternet build_internet(
    sim::Network& net, const std::vector<IspSpec>& isps,
    const std::vector<VendorProfile>& vendors, const BuildConfig& config);

// Attaches a measurement node (scanner/attacker) to the core with a routed
// prefix; returns the node-side interface index.
int attach_vantage(sim::Network& net, BuiltInternet& internet, sim::Node* node,
                   const net::Ipv6Prefix& vantage_prefix,
                   const sim::LinkParams& link = {});

}  // namespace xmap::topo
