#include "topology/builder.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace xmap::topo {
namespace {

// Samples `count` distinct slot indices out of [0, slots) — a partial
// Fisher-Yates over an index vector.
std::vector<std::uint32_t> sample_slots(std::uint32_t slots,
                                        std::uint32_t count, net::Rng& rng) {
  std::vector<std::uint32_t> all(slots);
  std::iota(all.begin(), all.end(), 0u);
  count = std::min(count, slots);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t j =
        i + static_cast<std::uint32_t>(rng.uniform(slots - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

net::IidStyle pick_style(const double (&weights)[net::kIidStyleCount],
                         net::Rng& rng) {
  return static_cast<net::IidStyle>(
      rng.pick_weighted(std::span<const double>{weights}));
}

VendorId pick_vendor(const std::vector<std::pair<VendorId, double>>& mix,
                     net::Rng& rng) {
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const auto& [id, w] : mix) weights.push_back(w);
  return mix[rng.pick_weighted(weights)].first;
}

// Service deployment correlates with addressing style: modern SLAAC devices
// (EUI-64, randomized) carry the exposed service stacks, while byte-pattern
// and embed-IPv4 addresses — typically older or manually-addressed gear —
// almost never do (the paper's Table V vs Table III contrast).
double service_style_factor(net::IidStyle style) {
  switch (style) {
    case net::IidStyle::kEui64: return 1.0;
    case net::IidStyle::kRandomized: return 1.0;
    case net::IidStyle::kLowByte: return 0.3;
    case net::IidStyle::kEmbedIpv4: return 0.4;
    case net::IidStyle::kBytePattern: return 0.02;
  }
  return 1.0;
}

}  // namespace

ScanWindow scan_window(const IspSpec& spec, int window_bits) {
  ScanWindow window;
  const int scan_len = spec.delegated_len - window_bits;
  const net::Ipv6Prefix block{spec.block_base, scan_len - 1};
  window.scan_base = block.nth_subprefix(scan_len, net::Uint128{0});
  window.window_lo = scan_len;
  window.window_hi = spec.delegated_len;
  return window;
}

BuiltInternet build_internet(sim::Network& net,
                             const std::vector<IspSpec>& isps,
                             const std::vector<VendorProfile>& vendors,
                             const BuildConfig& raw_config) {
  // Tag the link tiers for class-scoped fault plans (sim::FaultPlan): the
  // caller dials loss/flap/etc. per class, not per link.
  BuildConfig config = raw_config;
  config.core_link.fault_class = sim::LinkClass::kCore;
  config.access_link.fault_class = sim::LinkClass::kAccess;
  BuiltInternet out;
  out.vendors = vendors;
  out.oui = OuiDb::from_vendors(vendors);

  struct PendingProvision {
    CpeRouter* cpe;
    Router* router;
    Provisioner::Offer offer;
    CpeRouter::ProvisionParams params;
  };
  std::vector<PendingProvision> pending_offers;

  Router::Config core_cfg;
  core_cfg.address = *net::Ipv6Address::parse("2001:ffff::1");
  core_cfg.no_route_action = RouteAction::kBlackhole;
  out.core = net.make_node<Router>(core_cfg);

  net::Rng rng{config.seed};

  for (const auto& spec : isps) {
    // Two independent streams: device *identity* (vendor, IID/MAC,
    // services, flaw flags) is keyed by device index and the world seed
    // only, while prefix *placement* additionally keys on placement_seed.
    // Rebuilding with a different placement_seed renumbers every
    // subscriber without changing who they are — the substrate for the
    // prefix-rotation / host-tracking experiments.
    const std::uint64_t isp_key = net::hash_combine64(
        spec.asn, static_cast<std::uint64_t>(out.isps.size()));
    net::Rng identity_base = rng.fork(isp_key);
    const std::uint64_t placement_seed =
        config.placement_seed != 0 ? config.placement_seed : config.seed;
    net::Rng placement_rng{net::hash_combine64(
        net::hash_combine64(placement_seed, isp_key), 0x70'6c61'6365ULL)};

    IspInstance inst;
    inst.spec = spec;
    const ScanWindow window = scan_window(spec, config.window_bits);
    const int scan_len = window.window_lo;
    inst.block = net::Ipv6Prefix{spec.block_base, scan_len - 1};
    inst.scan_base = window.scan_base;
    inst.wan_pool = inst.block.nth_subprefix(scan_len, net::Uint128{1});
    inst.window_lo = window.window_lo;
    inst.window_hi = window.window_hi;

    Router::Config rcfg;
    rcfg.address = inst.block.address_with_suffix(net::Uint128{1});
    rcfg.no_route_action = spec.unallocated;
    rcfg.icmp_rate_per_sec = config.router_icmp_rate;
    if (spec.infra_per_flow) {
      rcfg.error_source = Router::ErrorSource::kPerFlowInfra;
      // Carve the infra /64 pool from the top of the wan_pool half so it
      // can never collide with subscriber WAN allocations (which grow
      // upward from index 0).
      const int pool_bits = 6;  // room for up to 64 infra /64s
      const net::Uint128 groups = inst.wan_pool.subprefix_count(64 - pool_bits);
      rcfg.infra_pool = inst.wan_pool.nth_subprefix(
          64 - pool_bits, groups - net::Uint128{1});
      rcfg.infra_pool_64s = spec.infra_pool_64s;
      rcfg.infra_iid_style = spec.infra_iid_style;
      rcfg.infra_oui = spec.infra_oui;
      rcfg.unreachable_answer_fraction = spec.infra_answer_fraction;
    }
    auto* router = net.make_node<Router>(rcfg);
    inst.router = router;

    // Uplink first so the router's interface 0 faces the core.
    const auto uplink =
        net.connect(router->id(), out.core->id(), config.core_link);
    inst.uplink_iface = uplink.iface_a;
    router->table().add_default(uplink.iface_a);
    // Null-route the aggregate: unallocated space inside the advertised
    // block must not fall through to the default route, or the ISP router
    // and its transit would loop — the AS-level twin of the CPE flaw.
    router->table().add(
        Route{inst.block,
              spec.unallocated == RouteAction::kUnreachable
                  ? RouteAction::kUnreachable
                  : RouteAction::kBlackhole,
              -1});
    out.core->table().add_forward(inst.block, uplink.iface_b);
    out.geo.add(inst.block, GeoInfo{spec.asn, spec.country, spec.name});

    const std::uint32_t slots = 1u << config.window_bits;
    const auto device_count =
        static_cast<std::uint32_t>(spec.density * static_cast<double>(slots));
    const auto aliased_count = static_cast<std::uint32_t>(
        std::max(0, spec.aliased_slots));
    auto indices =
        sample_slots(slots, device_count + aliased_count, placement_rng);

    // The last `aliased_count` sampled slots become aliased prefixes.
    for (std::uint32_t k = 0; k < aliased_count && !indices.empty(); ++k) {
      const std::uint32_t slot_idx = indices.back();
      indices.pop_back();
      const net::Ipv6Prefix slot = inst.scan_base.nth_subprefix(
          spec.delegated_len, net::Uint128{slot_idx});
      auto* host = net.make_node<AliasedPrefixHost>(slot);
      const auto att =
          net.connect(router->id(), host->id(), config.access_link);
      router->table().add_forward(slot, att.iface_a);
      inst.aliased_prefixes.push_back(slot);
    }

    std::uint64_t wan_counter = 0;
    // Scatter this world's WAN /64 allocations by placement so renumbering
    // also moves separate-WAN addresses. The offset leaves room for every
    // possible allocation below the infra pool at the top of the wan half.
    const std::uint64_t wan_capacity =
        net::Uint128::pow2(64 - inst.wan_pool.length()).fits_u64()
            ? net::Uint128::pow2(64 - inst.wan_pool.length()).to_u64()
            : ~std::uint64_t{0};
    const std::uint64_t wan_headroom =
        wan_capacity > device_count + 64 ? wan_capacity - device_count - 64
                                         : 1;
    const std::uint64_t wan_offset = placement_rng.uniform(wan_headroom);
    // Cloned MACs come from the same vendor's firmware line.
    std::unordered_map<VendorId, std::vector<net::MacAddress>> clone_pool;

    for (std::size_t device_index = 0; device_index < indices.size();
         ++device_index) {
      const std::uint32_t slot_idx = indices[device_index];
      net::Rng isp_rng = identity_base.fork(device_index);
      DeviceRecord rec;
      rec.vendor = pick_vendor(spec.vendor_mix, isp_rng);
      const VendorProfile& vendor =
          vendors[static_cast<std::size_t>(rec.vendor)];
      rec.device_class = vendor.device_class;
      rec.slot =
          inst.scan_base.nth_subprefix(spec.delegated_len, net::Uint128{slot_idx});

      rec.iid_style = pick_style(spec.iid_weights, isp_rng);
      net::MacAddress mac;
      std::uint64_t iid =
          net::generate_iid(rec.iid_style, isp_rng, vendor.oui, &mac);
      if (rec.iid_style == net::IidStyle::kEui64) {
        // A small share of devices ship cloned MACs (Table II: ~96.5% of
        // recovered MACs are unique).
        auto& vendor_pool = clone_pool[rec.vendor];
        if (!vendor_pool.empty() &&
            isp_rng.bernoulli(spec.mac_clone_fraction)) {
          mac = vendor_pool[isp_rng.uniform(vendor_pool.size())];
          iid = mac.to_eui64_iid();
        } else {
          vendor_pool.push_back(mac);
        }
        rec.mac = mac;
      }

      const bool is_ue = spec.ue_model &&
                         vendor.device_class == DeviceClass::kUe;
      rec.separate_wan =
          spec.delegated_len == 64
              ? isp_rng.bernoulli(spec.separate_wan_fraction)
              : true;

      sim::Node* device_node = nullptr;
      if (is_ue && !rec.separate_wan) {
        UeDevice::Config cfg;
        cfg.ue_prefix = rec.slot;
        cfg.ue_address = rec.slot.address_with_suffix(net::Uint128{iid});
        cfg.icmp_rate_per_sec = config.device_icmp_rate;
        auto* ue = net.make_node<UeDevice>(cfg);
        rec.wan_prefix = rec.slot;
        rec.address = cfg.ue_address;
        rec.loop_wan = rec.loop_lan = false;  // UEs do not forward
        device_node = ue;
        for (const auto& dep : vendor.services) {
          if (!isp_rng.bernoulli(dep.probability * spec.service_scale *
                                 service_style_factor(rec.iid_style)))
            continue;
          std::vector<double> w;
          for (const auto& choice : dep.software) w.push_back(choice.weight);
          const auto& sw = dep.software[isp_rng.pick_weighted(w)].software;
          ue->services().bind(svc::make_service(dep.kind, sw, vendor.name));
          rec.services.emplace_back(dep.kind, sw);
        }
      } else {
        CpeRouter::Config cfg;
        cfg.icmp_rate_per_sec = config.device_icmp_rate;
        std::uint64_t chosen_subnet_idx = 0;
        if (spec.delegated_len == 64 && !rec.separate_wan) {
          // Single-prefix device: the /64 is simultaneously WAN and LAN;
          // only the device's own address is routed, the rest follows
          // either an unreachable route or (flawed) the default route.
          cfg.wan_prefix = rec.slot;
          // Nothing separately delegated: use /128 anchors so the LAN
          // branches of the forwarding code match (essentially) nothing —
          // the default-constructed ::/0 would swallow every destination.
          cfg.lan_prefix = net::Ipv6Prefix{rec.slot.address(), 128};
          cfg.subnet_prefix = net::Ipv6Prefix{rec.slot.address(), 128};
          cfg.wan_address = rec.slot.address_with_suffix(net::Uint128{iid});
          rec.loop_wan =
              isp_rng.bernoulli(vendor.loop_wan_prob * spec.loop_scale);
          rec.loop_lan = false;
        } else if (spec.delegated_len == 64) {
          // Separate WAN /64; the whole slot is the (single-subnet) LAN.
          cfg.wan_prefix = inst.wan_pool.nth_subprefix(
              64, net::Uint128{wan_offset + wan_counter++});
          cfg.lan_prefix = rec.slot;
          cfg.subnet_prefix = rec.slot;
          cfg.wan_address = cfg.wan_prefix.address_with_suffix(net::Uint128{iid});
          rec.loop_wan =
              isp_rng.bernoulli(vendor.loop_wan_prob * spec.loop_scale);
          rec.loop_lan = false;  // subnet == whole delegation: nothing unused
        } else {
          // Delegated /56 or /60: one /64 subnet is advertised to the LAN,
          // the rest of the delegation is the "Not-used Prefix".
          cfg.lan_prefix = rec.slot;
          const std::uint64_t subnets =
              1ULL << (64 - spec.delegated_len);
          const std::uint64_t subnet_idx = isp_rng.uniform(subnets);
          chosen_subnet_idx = subnet_idx;
          cfg.subnet_prefix =
              rec.slot.nth_subprefix(64, net::Uint128{subnet_idx});
          if (isp_rng.bernoulli(spec.wan_inside_lan_fraction)) {
            std::uint64_t wan_idx = isp_rng.uniform(subnets);
            cfg.wan_prefix = rec.slot.nth_subprefix(64, net::Uint128{wan_idx});
          } else {
            cfg.wan_prefix = inst.wan_pool.nth_subprefix(
                64, net::Uint128{wan_offset + wan_counter++});
          }
          cfg.wan_address = cfg.wan_prefix.address_with_suffix(net::Uint128{iid});
          rec.loop_wan =
              isp_rng.bernoulli(vendor.loop_wan_prob * spec.loop_scale);
          rec.loop_lan =
              isp_rng.bernoulli(vendor.loop_lan_prob * spec.loop_scale);
        }
        cfg.loop_wan = rec.loop_wan;
        cfg.loop_lan = rec.loop_lan;
        cfg.loop_cap = vendor.loop_cap;
        rec.wan_prefix = cfg.wan_prefix;
        rec.address = cfg.wan_address;

        CpeRouter* cpe = nullptr;
        if (config.provision_via_protocols) {
          // The CPE boots unconfigured and acquires its prefixes over the
          // wire (RA + DHCPv6-PD); the ISP side is told what this
          // subscriber is entitled to. Ground truth (rec) is unchanged —
          // tests assert the acquired state matches it.
          Provisioner::Offer offer;
          offer.wan_prefix = cfg.wan_prefix;
          const bool single_prefix =
              spec.delegated_len == 64 && !rec.separate_wan;
          if (!single_prefix) offer.delegated = cfg.lan_prefix;

          CpeRouter::Config blank;
          blank.icmp_rate_per_sec = cfg.icmp_rate_per_sec;
          blank.loop_wan = cfg.loop_wan;
          blank.loop_lan = cfg.loop_lan;
          blank.loop_cap = cfg.loop_cap;
          // Anchor the unconfigured prefixes away from real space.
          blank.wan_prefix = net::Ipv6Prefix{net::Ipv6Address{}, 128};
          blank.lan_prefix = net::Ipv6Prefix{net::Ipv6Address{}, 128};
          blank.subnet_prefix = net::Ipv6Prefix{net::Ipv6Address{}, 128};
          cpe = net.make_node<CpeRouter>(blank);
          pending_offers.push_back(PendingProvision{
              cpe, inst.router, offer,
              CpeRouter::ProvisionParams{iid, chosen_subnet_idx}});
        } else {
          cpe = net.make_node<CpeRouter>(cfg);
        }
        device_node = cpe;
        for (const auto& dep : vendor.services) {
          if (!isp_rng.bernoulli(dep.probability * spec.service_scale *
                                 service_style_factor(rec.iid_style)))
            continue;
          std::vector<double> w;
          for (const auto& choice : dep.software) w.push_back(choice.weight);
          const auto& sw = dep.software[isp_rng.pick_weighted(w)].software;
          cpe->services().bind(svc::make_service(dep.kind, sw, vendor.name));
          rec.services.emplace_back(dep.kind, sw);
        }
      }

      const auto att =
          net.connect(router->id(), device_node->id(), config.access_link);
      if (config.provision_via_protocols && !pending_offers.empty() &&
          pending_offers.back().cpe ==
              dynamic_cast<CpeRouter*>(device_node)) {
        PendingProvision& pending = pending_offers.back();
        if (out.provisioners.find(router) == out.provisioners.end()) {
          out.provisioners.emplace(router, std::make_unique<Provisioner>());
          router->set_provisioner(out.provisioners[router].get());
        }
        out.provisioners[router]->set_offer(att.iface_a, pending.offer);
        CpeRouter* cpe = pending.cpe;
        const auto params = pending.params;
        net.loop().schedule_after(0, [cpe, params] {
          cpe->begin_provisioning(params);
        });
      }
      router->table().add_forward(rec.slot, att.iface_a);
      if (rec.separate_wan || spec.delegated_len != 64) {
        if (rec.wan_prefix != rec.slot &&
            !rec.slot.contains(rec.wan_prefix)) {
          router->table().add_forward(rec.wan_prefix, att.iface_a);
        }
      }
      rec.node = device_node->id();
      inst.devices.push_back(std::move(rec));
    }

    out.isps.push_back(std::move(inst));
  }

  if (config.provision_via_protocols) {
    // Drain the provisioning exchanges so every CPE is configured before
    // any measurement traffic is scheduled.
    net.run();
  }

  return out;
}

int attach_vantage(sim::Network& net, BuiltInternet& internet, sim::Node* node,
                   const net::Ipv6Prefix& vantage_prefix,
                   const sim::LinkParams& link) {
  sim::LinkParams tagged = link;
  tagged.fault_class = sim::LinkClass::kCore;
  const auto att = net.connect(node->id(), internet.core->id(), tagged);
  internet.core->table().add_forward(vantage_prefix, att.iface_b);
  return att.iface_a;
}

}  // namespace xmap::topo
