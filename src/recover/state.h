// Crash-safe checkpoint state for interrupted scans.
//
// A checkpoint is everything a future process needs to continue a scan and
// end with artifacts byte-identical to an uninterrupted run: a config
// fingerprint (refuse to resume a *different* scan), one permutation
// cursor per worker, the merged ScanStats so far, every collected record
// (with the raw permutation slot of the probe that elicited it), and — for
// quiescent (graceful-drain) checkpoints — the trace events and metrics
// snapshot accumulated so far.
//
// Determinism argument: the scanner's slot pacing makes send times a pure
// function of (seed, targets, rate, retries), fault verdicts are keyed by
// (seed, link, packet hash, attempt), and a graceful drain completes every
// copy of every drawn target plus its responses before the snapshot. The
// resumed process fast-forwards each worker's cyclic-group iterator to its
// cursor, scans only the remainder, and merges; the union of record /
// trace / metrics content equals the uninterrupted run's, and the
// deterministic content sorts make the serialized bytes equal too.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/faults.h"
#include "xmap/blocklist.h"
#include "xmap/probe_module.h"
#include "xmap/stats.h"
#include "xmap/target_spec.h"

namespace xmap::recover {

inline constexpr int kCheckpointVersion = 1;

// The scan-configuration identity a checkpoint is bound to. Every field
// that changes which packets go on the wire (or how records serialize) is
// included; resuming under a different fingerprint is refused with a
// field-precise diagnostic instead of silently producing garbage.
struct Fingerprint {
  std::uint64_t seed = 1;
  std::string world = "paper";
  int window_bits = 10;
  std::string probe_module = "icmp_echo";
  double rate_pps = 25000;
  int shard = 0;
  int shards = 1;
  int threads = 1;
  int retries = 0;
  double retry_spacing_ms = 100;
  double cooldown_secs = 8;
  std::uint64_t max_probes = 0;
  bool adaptive_rate = false;
  std::string output_format = "csv";
  std::uint64_t blocklist_hash = 0;
  std::uint64_t fault_plan_hash = 0;
  std::vector<std::string> targets;  // TargetSpec::to_string() forms

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  // "" when equal; otherwise a precise, human-readable list of differing
  // fields ("seed: checkpoint 7, run 9; threads: checkpoint 4, run 2").
  [[nodiscard]] std::string diff(const Fingerprint& run) const;
};

// Deterministic content hashes for the two config blobs that do not have a
// compact text form of their own.
[[nodiscard]] std::uint64_t blocklist_fingerprint(const scan::Blocklist&);
[[nodiscard]] std::uint64_t fault_plan_fingerprint(const sim::FaultPlan&);

// One-word identity of the whole fingerprint (every field, including the
// blocklist/fault-plan hashes). The fabric layer stamps this into shard
// assignments so a worker can refuse a checkpoint handoff from a different
// scan configuration with a "stored …, computed …" diagnostic.
[[nodiscard]] std::uint64_t fingerprint_hash(const Fingerprint&);

// One worker's permutation position: shard-local raw-cycle steps consumed
// per target spec (the fast-forward argument), plus the global raw slot of
// the first target the resumed worker will draw (used to filter records in
// non-quiescent checkpoints; informational otherwise).
struct WorkerCursor {
  std::vector<std::uint64_t> spec_steps;
  std::uint64_t frontier_slot = 0;
};

// One collected response, as the resumed process must re-emit it.
struct CheckpointRecord {
  scan::ProbeResponse response;
  std::uint64_t when = 0;  // sim-clock arrival (sim::SimTime)
  int worker = 0;
  std::uint64_t raw_slot = 0;  // slot of the probe that elicited it
};

struct CheckpointState {
  int version = kCheckpointVersion;
  // A quiescent checkpoint was taken after a graceful drain: every drawn
  // target's copies were sent and their responses collected, so records,
  // trace and metrics are exact. Periodic (mid-flight) checkpoints are
  // not quiescent: records are filtered to closed lifecycles below the
  // cursor and obs state is omitted (the resumed tail re-scans from the
  // cursor, so trace/metrics resumption would double-count).
  bool quiescent = true;
  int signal = 0;  // the signal that triggered it (0 = none/periodic)
  Fingerprint fingerprint;
  scan::ScanStats stats;  // merged over workers, cumulative across resumes
  std::vector<WorkerCursor> cursors;  // one per worker (size == threads)
  std::vector<CheckpointRecord> records;
  bool has_obs = false;  // trace/metrics sections present (quiescent only)
  std::vector<obs::TraceEvent> trace;
  obs::MetricsSnapshot metrics;
};

// Serializes to the versioned line-based text form ("xmap-checkpoint v1").
[[nodiscard]] std::string serialize_checkpoint(const CheckpointState& state);

struct ParseResult {
  std::optional<CheckpointState> state;  // nullopt on error
  std::string error;
};

// Parses serialize_checkpoint() output; rejects unknown versions, missing
// sections and malformed lines with a diagnostic naming the bad line.
[[nodiscard]] ParseResult parse_checkpoint(const std::string& text);

}  // namespace xmap::recover
