#include "recover/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace xmap::recover {

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) {
      if (error != nullptr) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool write_checkpoint(const std::string& path, const CheckpointState& state,
                      std::string* error) {
  return write_file_atomic(path, serialize_checkpoint(state), error);
}

LoadResult load_checkpoint(const std::string& path) {
  LoadResult result;
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    result.error = "cannot open checkpoint file " + path;
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ParseResult parsed = parse_checkpoint(text.str());
  if (!parsed.state) {
    result.error = path + ": " + parsed.error;
    return result;
  }
  result.state = std::move(parsed.state);
  return result;
}

}  // namespace xmap::recover
