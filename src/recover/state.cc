#include "recover/state.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "netbase/random.h"

namespace xmap::recover {
namespace {

// Tokens are space-separated; anything that could contain a space, '%' or a
// newline (help strings, future label values) is percent-escaped. "-" is
// the reserved empty/null token.
std::string escape_token(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == ' ' || c == '%' || c == '\n' || c == '\r' || c == '\t') {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_token(const std::string& s) {
  if (s == "-") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

// Exact-round-trip double encoding (hexfloat).
std::string double_token(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h = net::hash_combine64(h, static_cast<std::uint64_t>(
                                   static_cast<unsigned char>(c)));
  }
  return net::hash_combine64(h, s.size());
}

std::uint64_t hash_double(std::uint64_t h, double v) {
  return net::hash_combine64(h, std::bit_cast<std::uint64_t>(v));
}

// TraceEvent strings must point at static storage; events parsed back from
// a checkpoint intern their strings in a process-lifetime pool. Node-based
// set: c_str() stays stable across inserts.
const char* intern(const std::string& s) {
  static std::mutex mu;
  static std::unordered_set<std::string> pool;
  std::lock_guard lock{mu};
  return pool.insert(s).first->c_str();
}

// Line-oriented reader with a running line number for diagnostics.
struct Reader {
  std::istringstream in;
  int line_no = 0;
  std::string line;
  std::string error;

  explicit Reader(const std::string& text) : in(text) {}

  bool next_line() {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty()) return true;
    }
    return false;
  }

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = "checkpoint line " + std::to_string(line_no) + ": " + what;
    }
    return false;
  }
};

bool read_tok(std::istringstream& ls, std::string& out) {
  return static_cast<bool>(ls >> out);
}

bool read_u64(std::istringstream& ls, std::uint64_t& out) {
  std::string tok;
  if (!(ls >> tok)) return false;
  char* end = nullptr;
  out = std::strtoull(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool read_int(std::istringstream& ls, int& out) {
  std::uint64_t v = 0;
  std::string tok;
  if (!(ls >> tok)) return false;
  if (!tok.empty() && tok[0] == '-') {
    out = std::atoi(tok.c_str());
    return true;
  }
  char* end = nullptr;
  v = std::strtoull(tok.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

bool read_double(std::istringstream& ls, double& out) {
  std::string tok;
  if (!(ls >> tok)) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool read_addr(std::istringstream& ls, net::Ipv6Address& out) {
  std::string tok;
  if (!(ls >> tok)) return false;
  const auto parsed = net::Ipv6Address::parse(tok);
  if (!parsed) return false;
  out = *parsed;
  return true;
}

// One trace-event argument string: "-" token or interned text.
const char* read_cstr(std::istringstream& ls, bool& ok) {
  std::string tok;
  if (!(ls >> tok)) {
    ok = false;
    return nullptr;
  }
  if (tok == "-") return nullptr;
  return intern(unescape_token(tok));
}

void append_field_diff(std::string& out, const char* field,
                       const std::string& a, const std::string& b) {
  if (!out.empty()) out += "; ";
  out += field;
  out += ": checkpoint ";
  out += a;
  out += ", run ";
  out += b;
}

template <typename T>
void diff_num(std::string& out, const char* field, const T& a, const T& b) {
  if (a != b) {
    std::ostringstream sa, sb;
    sa << a;
    sb << b;
    append_field_diff(out, field, sa.str(), sb.str());
  }
}

}  // namespace

std::string Fingerprint::diff(const Fingerprint& run) const {
  std::string out;
  diff_num(out, "seed", seed, run.seed);
  diff_num(out, "world", world, run.world);
  diff_num(out, "window_bits", window_bits, run.window_bits);
  diff_num(out, "probe_module", probe_module, run.probe_module);
  diff_num(out, "rate", rate_pps, run.rate_pps);
  diff_num(out, "shard", shard, run.shard);
  diff_num(out, "shards", shards, run.shards);
  diff_num(out, "threads", threads, run.threads);
  diff_num(out, "retries", retries, run.retries);
  diff_num(out, "retry_spacing_ms", retry_spacing_ms, run.retry_spacing_ms);
  diff_num(out, "cooldown_secs", cooldown_secs, run.cooldown_secs);
  diff_num(out, "max_probes", max_probes, run.max_probes);
  diff_num(out, "adaptive_rate", adaptive_rate, run.adaptive_rate);
  diff_num(out, "output_format", output_format, run.output_format);
  if (blocklist_hash != run.blocklist_hash) {
    append_field_diff(out, "blocklist",
                      std::to_string(blocklist_hash) + " (hash)",
                      std::to_string(run.blocklist_hash) + " (hash)");
  }
  if (fault_plan_hash != run.fault_plan_hash) {
    append_field_diff(out, "fault_plan",
                      std::to_string(fault_plan_hash) + " (hash)",
                      std::to_string(run.fault_plan_hash) + " (hash)");
  }
  if (targets != run.targets) {
    const auto join = [](const std::vector<std::string>& v) {
      std::string s;
      for (const auto& t : v) {
        if (!s.empty()) s += ",";
        s += t;
      }
      return s.empty() ? std::string{"(none)"} : s;
    };
    append_field_diff(out, "targets", join(targets), join(run.targets));
  }
  return out;
}

std::uint64_t fingerprint_hash(const Fingerprint& fp) {
  std::uint64_t h = 0x5846414250524f54ULL;  // "XFABPROT"
  h = net::hash_combine64(h, fp.seed);
  h = hash_string(h, fp.world);
  h = net::hash_combine64(h, static_cast<std::uint64_t>(fp.window_bits));
  h = hash_string(h, fp.probe_module);
  h = hash_double(h, fp.rate_pps);
  h = net::hash_combine64(h, static_cast<std::uint64_t>(fp.shard));
  h = net::hash_combine64(h, static_cast<std::uint64_t>(fp.shards));
  h = net::hash_combine64(h, static_cast<std::uint64_t>(fp.threads));
  h = net::hash_combine64(h, static_cast<std::uint64_t>(fp.retries));
  h = hash_double(h, fp.retry_spacing_ms);
  h = hash_double(h, fp.cooldown_secs);
  h = net::hash_combine64(h, fp.max_probes);
  h = net::hash_combine64(h, fp.adaptive_rate ? 1 : 0);
  h = hash_string(h, fp.output_format);
  h = net::hash_combine64(h, fp.blocklist_hash);
  h = net::hash_combine64(h, fp.fault_plan_hash);
  for (const auto& target : fp.targets) h = hash_string(h, target);
  return net::hash_combine64(h, fp.targets.size());
}

std::uint64_t blocklist_fingerprint(const scan::Blocklist& blocklist) {
  return blocklist.fingerprint();
}

std::uint64_t fault_plan_fingerprint(const sim::FaultPlan& plan) {
  const auto hash_link = [](std::uint64_t h, const sim::LinkFaultParams& p) {
    h = hash_double(h, p.loss);
    h = hash_double(h, p.burst.rate_per_sec);
    h = hash_double(h, p.burst.mean_ms);
    h = hash_double(h, p.burst.loss);
    h = hash_double(h, p.duplicate);
    h = hash_double(h, p.corrupt);
    h = hash_double(h, p.jitter_ms);
    h = hash_double(h, p.flap.period_ms);
    h = hash_double(h, p.flap.down_ms);
    h = hash_double(h, p.flap.fraction);
    return h;
  };
  std::uint64_t h = net::hash_combine64(0x9e3779b97f4a7c15ULL, plan.seed);
  h = hash_link(h, plan.access);
  h = hash_link(h, plan.core);
  h = hash_link(h, plan.other);
  h = hash_double(h, plan.silent.fraction);
  h = hash_double(h, plan.silent.start_ms);
  h = hash_double(h, plan.silent.duration_ms);
  return h;
}

std::string serialize_checkpoint(const CheckpointState& state) {
  std::ostringstream out;
  out << "xmap-checkpoint v" << state.version << "\n";
  out << "quiescent " << (state.quiescent ? 1 : 0) << "\n";
  out << "signal " << state.signal << "\n";

  const Fingerprint& fp = state.fingerprint;
  out << "fp seed " << fp.seed << "\n";
  out << "fp world " << escape_token(fp.world) << "\n";
  out << "fp window_bits " << fp.window_bits << "\n";
  out << "fp probe_module " << escape_token(fp.probe_module) << "\n";
  out << "fp rate " << double_token(fp.rate_pps) << "\n";
  out << "fp shard " << fp.shard << "\n";
  out << "fp shards " << fp.shards << "\n";
  out << "fp threads " << fp.threads << "\n";
  out << "fp retries " << fp.retries << "\n";
  out << "fp retry_spacing_ms " << double_token(fp.retry_spacing_ms) << "\n";
  out << "fp cooldown_secs " << double_token(fp.cooldown_secs) << "\n";
  out << "fp max_probes " << fp.max_probes << "\n";
  out << "fp adaptive_rate " << (fp.adaptive_rate ? 1 : 0) << "\n";
  out << "fp output_format " << escape_token(fp.output_format) << "\n";
  out << "fp blocklist " << fp.blocklist_hash << "\n";
  out << "fp faults " << fp.fault_plan_hash << "\n";
  out << "fp targets " << fp.targets.size() << "\n";
  for (const auto& t : fp.targets) {
    out << "fp target " << escape_token(t) << "\n";
  }

  const scan::ScanStats& s = state.stats;
  out << "stats " << s.targets_generated << " " << s.blocked << " " << s.sent
      << " " << s.received << " " << s.validated << " " << s.discarded << " "
      << s.retransmits << " " << s.duplicates << " " << s.corrupted << " "
      << s.late << " " << s.rate_adjustments << " " << s.first_send << " "
      << s.last_send << "\n";

  out << "cursors " << state.cursors.size() << "\n";
  for (const auto& cursor : state.cursors) {
    out << "cursor " << cursor.frontier_slot << " "
        << cursor.spec_steps.size();
    for (const std::uint64_t steps : cursor.spec_steps) out << " " << steps;
    out << "\n";
  }

  out << "records " << state.records.size() << "\n";
  for (const auto& record : state.records) {
    out << "r " << static_cast<int>(record.response.kind) << " "
        << record.response.responder.to_string() << " "
        << record.response.probe_dst.to_string() << " "
        << static_cast<unsigned>(record.response.icmp_code) << " "
        << static_cast<unsigned>(record.response.hop_limit) << " "
        << record.when << " " << record.worker << " " << record.raw_slot
        << "\n";
  }

  out << "obs " << (state.has_obs ? 1 : 0) << "\n";
  if (state.has_obs) {
    const auto cstr_token = [](const char* s) {
      return s == nullptr ? std::string{"-"} : escape_token(s);
    };
    out << "trace " << state.trace.size() << "\n";
    for (const auto& e : state.trace) {
      out << "t " << e.ts << " " << e.dur << " " << cstr_token(e.name) << " "
          << cstr_token(e.cat) << " " << cstr_token(e.addr1_key) << " "
          << e.addr1.to_string() << " " << cstr_token(e.addr2_key) << " "
          << e.addr2.to_string() << " " << cstr_token(e.str_key) << " "
          << cstr_token(e.str_val) << " " << cstr_token(e.i0.key) << " "
          << e.i0.value << " " << cstr_token(e.i1.key) << " " << e.i1.value
          << " " << cstr_token(e.i2.key) << " " << e.i2.value << "\n";
    }
    out << "metrics " << state.metrics.entries.size() << "\n";
    for (const auto& entry : state.metrics.entries) {
      out << "m " << static_cast<int>(entry.kind) << " "
          << (entry.wall_clock ? 1 : 0) << " " << escape_token(entry.name)
          << " " << entry.labels.size();
      for (const auto& [k, v] : entry.labels) {
        out << " " << escape_token(k) << " " << escape_token(v);
      }
      out << " " << escape_token(entry.help);
      if (entry.kind == obs::MetricKind::kHistogram && entry.histogram) {
        const obs::Histogram& h = *entry.histogram;
        out << " h " << h.bounds().size();
        for (const std::uint64_t b : h.bounds()) out << " " << b;
        for (const std::uint64_t c : h.counts()) out << " " << c;
        out << " " << h.sum() << " " << h.count();
      } else {
        out << " v " << entry.value;
      }
      out << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

ParseResult parse_checkpoint(const std::string& text) {
  ParseResult result;
  Reader rd{text};
  CheckpointState state;

  const auto expect_line = [&rd](const char* head,
                                 std::istringstream& ls) -> bool {
    if (!rd.next_line()) return rd.fail(std::string{"missing '"} + head + "'");
    ls.str(rd.line);
    ls.clear();
    std::string tok;
    if (!(ls >> tok) || tok != head) {
      return rd.fail(std::string{"expected '"} + head + "', got '" + rd.line +
                     "'");
    }
    return true;
  };

  std::istringstream ls;
  // Header: "xmap-checkpoint v<version>".
  if (!rd.next_line() || rd.line.rfind("xmap-checkpoint v", 0) != 0) {
    rd.fail("not an xmap checkpoint (bad header)");
    result.error = rd.error;
    return result;
  }
  state.version = std::atoi(rd.line.c_str() + 17);
  if (state.version != kCheckpointVersion) {
    result.error = "unsupported checkpoint version v" +
                   std::to_string(state.version) + " (this build reads v" +
                   std::to_string(kCheckpointVersion) + ")";
    return result;
  }

  int flag = 0;
  if (!expect_line("quiescent", ls) || !read_int(ls, flag)) {
    rd.fail("bad 'quiescent'");
    result.error = rd.error;
    return result;
  }
  state.quiescent = flag != 0;
  if (!expect_line("signal", ls) || !read_int(ls, state.signal)) {
    rd.fail("bad 'signal'");
    result.error = rd.error;
    return result;
  }

  // Fingerprint block: "fp <field> <value>" lines in fixed order.
  Fingerprint& fp = state.fingerprint;
  const auto fp_line = [&](const char* field, auto&& read_value) -> bool {
    if (!expect_line("fp", ls)) return false;
    std::string name;
    if (!(ls >> name) || name != field) {
      return rd.fail(std::string{"expected fingerprint field '"} + field +
                     "'");
    }
    if (!read_value(ls)) {
      return rd.fail(std::string{"bad fingerprint value for '"} + field +
                     "'");
    }
    return true;
  };
  std::string tok;
  bool ok =
      fp_line("seed", [&](auto& s) { return read_u64(s, fp.seed); }) &&
      fp_line("world",
              [&](auto& s) {
                if (!read_tok(s, tok)) return false;
                fp.world = unescape_token(tok);
                return true;
              }) &&
      fp_line("window_bits",
              [&](auto& s) { return read_int(s, fp.window_bits); }) &&
      fp_line("probe_module",
              [&](auto& s) {
                if (!read_tok(s, tok)) return false;
                fp.probe_module = unescape_token(tok);
                return true;
              }) &&
      fp_line("rate", [&](auto& s) { return read_double(s, fp.rate_pps); }) &&
      fp_line("shard", [&](auto& s) { return read_int(s, fp.shard); }) &&
      fp_line("shards", [&](auto& s) { return read_int(s, fp.shards); }) &&
      fp_line("threads", [&](auto& s) { return read_int(s, fp.threads); }) &&
      fp_line("retries", [&](auto& s) { return read_int(s, fp.retries); }) &&
      fp_line("retry_spacing_ms",
              [&](auto& s) { return read_double(s, fp.retry_spacing_ms); }) &&
      fp_line("cooldown_secs",
              [&](auto& s) { return read_double(s, fp.cooldown_secs); }) &&
      fp_line("max_probes",
              [&](auto& s) { return read_u64(s, fp.max_probes); }) &&
      fp_line("adaptive_rate",
              [&](auto& s) {
                int v = 0;
                if (!read_int(s, v)) return false;
                fp.adaptive_rate = v != 0;
                return true;
              }) &&
      fp_line("output_format",
              [&](auto& s) {
                if (!read_tok(s, tok)) return false;
                fp.output_format = unescape_token(tok);
                return true;
              }) &&
      fp_line("blocklist",
              [&](auto& s) { return read_u64(s, fp.blocklist_hash); }) &&
      fp_line("faults",
              [&](auto& s) { return read_u64(s, fp.fault_plan_hash); });
  if (!ok) {
    result.error = rd.error;
    return result;
  }

  std::uint64_t count = 0;
  if (!expect_line("fp", ls) || !(ls >> tok) || tok != "targets" ||
      !read_u64(ls, count)) {
    rd.fail("bad 'fp targets'");
    result.error = rd.error;
    return result;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!expect_line("fp", ls) || !(ls >> tok) || tok != "target" ||
        !read_tok(ls, tok)) {
      rd.fail("bad 'fp target'");
      result.error = rd.error;
      return result;
    }
    fp.targets.push_back(unescape_token(tok));
  }

  scan::ScanStats& s = state.stats;
  if (!expect_line("stats", ls) || !read_u64(ls, s.targets_generated) ||
      !read_u64(ls, s.blocked) || !read_u64(ls, s.sent) ||
      !read_u64(ls, s.received) || !read_u64(ls, s.validated) ||
      !read_u64(ls, s.discarded) || !read_u64(ls, s.retransmits) ||
      !read_u64(ls, s.duplicates) || !read_u64(ls, s.corrupted) ||
      !read_u64(ls, s.late) || !read_u64(ls, s.rate_adjustments) ||
      !read_u64(ls, s.first_send) || !read_u64(ls, s.last_send)) {
    rd.fail("bad 'stats'");
    result.error = rd.error;
    return result;
  }

  if (!expect_line("cursors", ls) || !read_u64(ls, count)) {
    rd.fail("bad 'cursors'");
    result.error = rd.error;
    return result;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    WorkerCursor cursor;
    std::uint64_t nspecs = 0;
    if (!expect_line("cursor", ls) || !read_u64(ls, cursor.frontier_slot) ||
        !read_u64(ls, nspecs)) {
      rd.fail("bad 'cursor'");
      result.error = rd.error;
      return result;
    }
    for (std::uint64_t j = 0; j < nspecs; ++j) {
      std::uint64_t steps = 0;
      if (!read_u64(ls, steps)) {
        rd.fail("bad 'cursor' spec steps");
        result.error = rd.error;
        return result;
      }
      cursor.spec_steps.push_back(steps);
    }
    state.cursors.push_back(std::move(cursor));
  }

  if (!expect_line("records", ls) || !read_u64(ls, count)) {
    rd.fail("bad 'records'");
    result.error = rd.error;
    return result;
  }
  state.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    CheckpointRecord record;
    int kind = 0;
    int icmp_code = 0;
    int hop_limit = 0;
    if (!expect_line("r", ls) || !read_int(ls, kind) ||
        !read_addr(ls, record.response.responder) ||
        !read_addr(ls, record.response.probe_dst) ||
        !read_int(ls, icmp_code) || !read_int(ls, hop_limit) ||
        !read_u64(ls, record.when) || !read_int(ls, record.worker) ||
        !read_u64(ls, record.raw_slot)) {
      rd.fail("bad record");
      result.error = rd.error;
      return result;
    }
    record.response.kind = static_cast<scan::ResponseKind>(kind);
    record.response.icmp_code = static_cast<std::uint8_t>(icmp_code);
    record.response.hop_limit = static_cast<std::uint8_t>(hop_limit);
    state.records.push_back(record);
  }

  if (!expect_line("obs", ls) || !read_int(ls, flag)) {
    rd.fail("bad 'obs'");
    result.error = rd.error;
    return result;
  }
  state.has_obs = flag != 0;
  if (state.has_obs) {
    if (!expect_line("trace", ls) || !read_u64(ls, count)) {
      rd.fail("bad 'trace'");
      result.error = rd.error;
      return result;
    }
    state.trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::TraceEvent e;
      bool str_ok = true;
      if (!expect_line("t", ls) || !read_u64(ls, e.ts) ||
          !read_u64(ls, e.dur)) {
        rd.fail("bad trace event");
        result.error = rd.error;
        return result;
      }
      const char* name = read_cstr(ls, str_ok);
      const char* cat = read_cstr(ls, str_ok);
      e.name = name != nullptr ? name : "";
      e.cat = cat != nullptr ? cat : "";
      e.addr1_key = read_cstr(ls, str_ok);
      if (!str_ok || !read_addr(ls, e.addr1)) {
        rd.fail("bad trace event addr1");
        result.error = rd.error;
        return result;
      }
      e.addr2_key = read_cstr(ls, str_ok);
      if (!str_ok || !read_addr(ls, e.addr2)) {
        rd.fail("bad trace event addr2");
        result.error = rd.error;
        return result;
      }
      e.str_key = read_cstr(ls, str_ok);
      e.str_val = read_cstr(ls, str_ok);
      e.i0.key = read_cstr(ls, str_ok);
      if (!str_ok || !read_u64(ls, e.i0.value)) {
        rd.fail("bad trace event i0");
        result.error = rd.error;
        return result;
      }
      e.i1.key = read_cstr(ls, str_ok);
      if (!str_ok || !read_u64(ls, e.i1.value)) {
        rd.fail("bad trace event i1");
        result.error = rd.error;
        return result;
      }
      e.i2.key = read_cstr(ls, str_ok);
      if (!str_ok || !read_u64(ls, e.i2.value)) {
        rd.fail("bad trace event i2");
        result.error = rd.error;
        return result;
      }
      state.trace.push_back(e);
    }

    if (!expect_line("metrics", ls) || !read_u64(ls, count)) {
      rd.fail("bad 'metrics'");
      result.error = rd.error;
      return result;
    }
    state.metrics.entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::MetricsSnapshot::Entry entry;
      int kind = 0;
      std::uint64_t nlabels = 0;
      if (!expect_line("m", ls) || !read_int(ls, kind) ||
          !read_int(ls, flag) || !read_tok(ls, tok) ||
          !read_u64(ls, nlabels)) {
        rd.fail("bad metric entry");
        result.error = rd.error;
        return result;
      }
      entry.kind = static_cast<obs::MetricKind>(kind);
      entry.wall_clock = flag != 0;
      entry.name = unescape_token(tok);
      for (std::uint64_t j = 0; j < nlabels; ++j) {
        std::string k, v;
        if (!read_tok(ls, k) || !read_tok(ls, v)) {
          rd.fail("bad metric labels");
          result.error = rd.error;
          return result;
        }
        entry.labels.emplace_back(unescape_token(k), unescape_token(v));
      }
      std::string marker;
      if (!read_tok(ls, tok) || !read_tok(ls, marker)) {
        rd.fail("bad metric help/marker");
        result.error = rd.error;
        return result;
      }
      entry.help = unescape_token(tok);
      if (marker == "v") {
        if (!read_u64(ls, entry.value)) {
          rd.fail("bad metric value");
          result.error = rd.error;
          return result;
        }
      } else if (marker == "h") {
        std::uint64_t nbounds = 0;
        if (!read_u64(ls, nbounds)) {
          rd.fail("bad histogram bounds count");
          result.error = rd.error;
          return result;
        }
        std::vector<std::uint64_t> bounds(nbounds);
        std::vector<std::uint64_t> counts(nbounds + 1);
        std::uint64_t sum = 0;
        std::uint64_t n = 0;
        bool nums_ok = true;
        for (auto& b : bounds) nums_ok = nums_ok && read_u64(ls, b);
        for (auto& c : counts) nums_ok = nums_ok && read_u64(ls, c);
        nums_ok = nums_ok && read_u64(ls, sum) && read_u64(ls, n);
        if (!nums_ok) {
          rd.fail("bad histogram data");
          result.error = rd.error;
          return result;
        }
        entry.histogram = obs::Histogram::from_parts(
            std::move(bounds), std::move(counts), sum, n);
      } else {
        rd.fail("unknown metric marker '" + marker + "'");
        result.error = rd.error;
        return result;
      }
      state.metrics.entries.push_back(std::move(entry));
    }
  }

  if (!expect_line("end", ls)) {
    rd.fail("missing 'end' (truncated checkpoint)");
    result.error = rd.error;
    return result;
  }

  result.state = std::move(state);
  return result;
}

}  // namespace xmap::recover
