#include "recover/signals.h"

#include <fcntl.h>
#include <unistd.h>

namespace xmap::recover {
namespace {

// The handler has no instance argument, so the installed controller is a
// process-global pointer — consistent with signal dispositions themselves
// being process-global.
std::atomic<ShutdownController*> g_controller{nullptr};

}  // namespace

void ShutdownController::handle_signal(int sig) {
  ShutdownController* self = g_controller.load(std::memory_order_relaxed);
  if (self == nullptr) return;
  // Both operations below are async-signal-safe: a lock-free atomic store
  // and a write(2) to a non-blocking pipe. Everything else happens on
  // normal threads polling flag().
  self->signal_.store(sig, std::memory_order_relaxed);
  if (self->pipe_write_ >= 0) {
    const char byte = 1;
    // A full pipe means a wakeup is already pending; dropping the write is
    // fine. (void) silences unused-result warnings.
    const auto ignored = ::write(self->pipe_write_, &byte, 1);
    (void)ignored;
  }
}

void ShutdownController::install() {
  if (installed_) return;
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    pipe_read_ = fds[0];
    pipe_write_ = fds[1];
  }
  g_controller.store(this, std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = &ShutdownController::handle_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a blocked read in the main loop should see EINTR and
  // come around to check the flag.
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  installed_ = true;
}

void ShutdownController::uninstall() {
  if (!installed_) return;
  struct sigaction action{};
  action.sa_handler = SIG_DFL;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  g_controller.store(nullptr, std::memory_order_relaxed);
  if (pipe_read_ >= 0) ::close(pipe_read_);
  if (pipe_write_ >= 0) ::close(pipe_write_);
  pipe_read_ = -1;
  pipe_write_ = -1;
  installed_ = false;
}

}  // namespace xmap::recover
