// Async-signal-safe graceful-shutdown plumbing.
//
// The handler does exactly two things, both async-signal-safe: store the
// signal number into a lock-free atomic and write one byte to a self-pipe
// (so threads blocked in poll/condvar-with-timeout style waits can be woken
// by a file descriptor if they ever need to be). All real shutdown work —
// draining in-flight probes, closing the cooldown window, writing the
// checkpoint — happens on normal threads that poll the flag.
#pragma once

#include <atomic>
#include <csignal>

namespace xmap::recover {

class ShutdownController {
 public:
  // Installs SIGINT + SIGTERM handlers routing into this controller.
  // At most one controller can be installed at a time (process-global
  // signal disposition); install() is idempotent for the same instance.
  void install();
  // Restores the default disposition (used by tests).
  void uninstall();

  // The scanner-facing flag: non-zero = a shutdown signal arrived (value =
  // signal number). Safe to poll from any thread.
  [[nodiscard]] const std::atomic<int>* flag() const { return &signal_; }
  [[nodiscard]] int signal() const {
    return signal_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool requested() const { return signal() != 0; }

  // Test hook / programmatic trigger: behaves exactly like receiving `sig`.
  void request(int sig) { signal_.store(sig, std::memory_order_relaxed); }

  // The read end of the self-pipe (-1 until install()); becomes readable
  // once a signal arrives.
  [[nodiscard]] int wake_fd() const { return pipe_read_; }

 private:
  static void handle_signal(int sig);

  std::atomic<int> signal_{0};
  int pipe_read_ = -1;
  int pipe_write_ = -1;
  bool installed_ = false;
};

}  // namespace xmap::recover
