// Checkpoint file I/O: atomic artifact writes and state-file load/store.
//
// Every artifact the scanner produces (checkpoint, output, trace, metrics,
// status) goes through write_file_atomic(): the content lands in
// "<path>.tmp" first and is renamed over the destination only after a
// successful close, so a crash at any instant leaves either the previous
// complete file or the new complete file — never a truncated one.
#pragma once

#include <optional>
#include <string>

#include "recover/state.h"

namespace xmap::recover {

// Writes `content` to `path` via <path>.tmp + rename. Returns false (and
// fills *error when given) on any I/O failure; the destination is
// untouched on failure.
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error = nullptr);

// Serializes and atomically writes `state` to `path`.
bool write_checkpoint(const std::string& path, const CheckpointState& state,
                      std::string* error = nullptr);

struct LoadResult {
  std::optional<CheckpointState> state;
  std::string error;
};

// Reads and parses a checkpoint file.
[[nodiscard]] LoadResult load_checkpoint(const std::string& path);

}  // namespace xmap::recover
