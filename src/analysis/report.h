// Small aggregation and table-rendering helpers shared by the experiment
// harnesses. Every bench binary prints paper-style tables through these.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace xmap::ana {

// Ordered counter keyed by string (vendor names, countries, versions, ...).
class Counter {
 public:
  void add(const std::string& key, std::uint64_t n = 1) { map_[key] += n; }

  [[nodiscard]] std::uint64_t get(const std::string& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [k, v] : map_) sum += v;
    return sum;
  }
  [[nodiscard]] std::size_t distinct() const { return map_.size(); }

  // Top-k entries by count (descending), ties broken by key for stability.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top(
      std::size_t k) const {
    std::vector<std::pair<std::string, std::uint64_t>> all(map_.begin(),
                                                           map_.end());
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (all.size() > k) all.resize(k);
    return all;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& raw() const {
    return map_;
  }

 private:
  std::map<std::string, std::uint64_t> map_;
};

[[nodiscard]] inline double percent(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

// Fixed-width text table, printed in the style of the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        std::fprintf(out, "%c %-*s", i == 0 ? '|' : '|',
                     static_cast<int>(width[i]), cell.c_str());
      }
      std::fprintf(out, " |\n");
    };
    std::size_t total = 1;
    for (std::size_t w : width) total += w + 3;
    const std::string rule(total, '-');
    std::fprintf(out, "%s\n", rule.c_str());
    print_row(header_);
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
    std::fprintf(out, "%s\n", rule.c_str());
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
[[nodiscard]] inline std::string fmt_count(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  return buf;
}
[[nodiscard]] inline std::string fmt_pct(double p, int decimals = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, p);
  return buf;
}
[[nodiscard]] inline std::string fmt_double(double v, int decimals = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace xmap::ana
