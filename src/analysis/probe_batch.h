// A small utility node that sends an explicit list of ICMPv6 echo probes
// (each with its own hop limit) and collects the validated responses.
// Used by the adaptive experiments — subnet-boundary inference and the
// confirmation stage of the routing-loop scan — where the next probe
// depends on earlier answers, so the bulk scanner's permutation machinery
// does not apply.
#pragma once

#include <vector>

#include "sim/network.h"
#include "xmap/probe_module.h"

namespace xmap::ana {

class ProbeBatch : public sim::Node {
 public:
  struct Config {
    net::Ipv6Address source;
    std::uint64_t seed = 1;
    double probes_per_sec = 100000;
  };

  explicit ProbeBatch(Config config) : config_(std::move(config)) {}

  void set_iface(int iface) { iface_ = iface; }

  void enqueue(const net::Ipv6Address& target, std::uint8_t hop_limit) {
    jobs_.push_back(Job{target, hop_limit});
  }

  // Schedules all probes; run the network afterwards.
  void start() {
    const double rate =
        config_.probes_per_sec > 0 ? config_.probes_per_sec : 1e9;
    const auto gap =
        static_cast<sim::SimTime>(static_cast<double>(sim::kSecond) / rate);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      network()->loop().schedule_after(gap * i, [this, i] {
        scan::IcmpEchoProbe module{jobs_[i].hop_limit};
        send(iface_,
             module.make_probe(config_.source, jobs_[i].target, config_.seed));
      });
    }
  }

  void receive(pkt::Bytes packet, int /*iface*/) override {
    static const scan::IcmpEchoProbe kClassifier{64};
    if (auto response =
            kClassifier.classify(packet, config_.source, config_.seed)) {
      responses_.push_back(*response);
    }
  }

  [[nodiscard]] const std::vector<scan::ProbeResponse>& responses() const {
    return responses_;
  }
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }

  void clear() {
    jobs_.clear();
    responses_.clear();
  }

 private:
  struct Job {
    net::Ipv6Address target;
    std::uint8_t hop_limit;
  };

  Config config_;
  int iface_ = 0;
  std::vector<Job> jobs_;
  std::vector<scan::ProbeResponse> responses_;
};

}  // namespace xmap::ana
