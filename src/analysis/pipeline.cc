#include "analysis/pipeline.h"

#include <unordered_map>
#include <unordered_set>

#include "analysis/probe_batch.h"

namespace xmap::ana {
namespace {

std::vector<int> all_indices(const topo::BuiltInternet& internet) {
  std::vector<int> out(internet.isps.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<int>(i);
  return out;
}

}  // namespace

DiscoveryResult run_discovery_scan(sim::Network& net,
                                   topo::BuiltInternet& internet,
                                   std::span<const int> isp_indices,
                                   const DiscoveryOptions& options) {
  std::vector<int> indices(isp_indices.begin(), isp_indices.end());
  if (indices.empty()) indices = all_indices(internet);

  scan::ResultCollector collector{options.alias_threshold};
  DiscoveryResult out;

  const int passes = options.both_parities ? 2 : 1;
  for (int pass = 0; pass < passes; ++pass) {
    scan::ScanConfig cfg;
    for (int i : indices) {
      const auto& isp = internet.isps[static_cast<std::size_t>(i)];
      cfg.targets.push_back(
          scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    }
    cfg.source = options.source;
    cfg.seed = options.seed;  // same seed: identical probe addresses
    cfg.probes_per_sec = options.probes_per_sec;

    scan::IcmpEchoProbe module{
        static_cast<std::uint8_t>(options.hop_limit + pass)};
    auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, module);
    const int iface =
        topo::attach_vantage(net, internet, scanner, options.vantage);
    scanner->set_iface(iface);
    scanner->on_response([&collector](const scan::ProbeResponse& r,
                                      sim::SimTime) { collector.add(r); });
    scanner->start();
    net.run();

    out.stats.targets_generated += scanner->stats().targets_generated;
    out.stats.blocked += scanner->stats().blocked;
    out.stats.sent += scanner->stats().sent;
    out.stats.received += scanner->stats().received;
    out.stats.validated += scanner->stats().validated;
    out.stats.discarded += scanner->stats().discarded;
    if (pass == 0) out.stats.first_send = scanner->stats().first_send;
    out.stats.last_send = scanner->stats().last_send;
  }

  out.last_hops = collector.last_hops();
  out.aliased = collector.aliased();
  return out;
}

IidHistogram iid_histogram(std::span<const scan::LastHop> hops) {
  IidHistogram hist;
  for (const auto& hop : hops) hist.add(hop.address);
  return hist;
}

std::optional<std::string> vendor_from_address(const net::Ipv6Address& addr,
                                               const topo::OuiDb& oui) {
  const auto mac = net::MacAddress::from_eui64_iid(addr.iid());
  if (!mac) return std::nullopt;
  const std::string* name = oui.lookup(mac->oui());
  if (name == nullptr) return std::nullopt;
  return *name;
}

std::vector<GrabResult> grab_services(sim::Network& net,
                                      topo::BuiltInternet& internet,
                                      std::span<const net::Ipv6Address> targets,
                                      const GrabOptions& options) {
  ServiceGrabber::Config cfg;
  cfg.source = options.source;
  cfg.seed = options.seed;
  cfg.grabs_per_sec = options.grabs_per_sec;
  auto* grabber = net.make_node<ServiceGrabber>(cfg);
  const int iface =
      topo::attach_vantage(net, internet, grabber, options.vantage);
  grabber->set_iface(iface);
  for (const auto& target : targets) {
    for (svc::ServiceKind kind : svc::kAllServices) {
      grabber->enqueue(target, kind);
    }
  }
  grabber->start();
  net.run();
  return grabber->results();
}

SubnetInferenceResult infer_subnet_length(sim::Network& net,
                                          topo::BuiltInternet& internet,
                                          int isp_index,
                                          const SubnetInferenceOptions& options) {
  SubnetInferenceResult result;
  const auto& isp = internet.isps[static_cast<std::size_t>(isp_index)];

  // Stage 1 — preliminary scan: probe window slots until enough witnesses
  // (periphery responders) are collected.
  scan::ScanConfig cfg;
  cfg.targets.push_back(
      scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
  cfg.source = options.source;
  cfg.seed = options.seed;
  cfg.probes_per_sec = 1e6;
  cfg.max_probes = options.max_preliminary_probes;
  scan::IcmpEchoProbe module{64};
  auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, module);
  const int scanner_iface =
      topo::attach_vantage(net, internet, scanner, options.vantage);
  scanner->set_iface(scanner_iface);

  std::vector<scan::ProbeResponse> responses;
  scanner->on_response([&responses](const scan::ProbeResponse& r,
                                    sim::SimTime) { responses.push_back(r); });
  scanner->start();
  net.run();
  result.probes = scanner->stats().sent;

  // Witness selection: a periphery-like responder answers for exactly one
  // delegation. Aggregation infrastructure — an edge router answering for
  // the whole block, or CMTS line cards answering from a shared /64 pool —
  // is recognisable because its responder /64 shows up for many distinct
  // probed prefixes, and is skipped (the paper keys on periphery-like
  // EUI-64 responders for the same reason).
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>>
      probes_per_responder64;
  for (const auto& r : responses) {
    probes_per_responder64[r.responder.prefix64()].insert(
        r.probe_dst.prefix64());
  }
  struct Witness {
    net::Ipv6Address address;
    net::Ipv6Address first_probe_dst;
  };
  std::vector<Witness> witnesses;
  std::unordered_set<net::Ipv6Address> seen;
  for (const auto& r : responses) {
    if (r.kind != scan::ResponseKind::kDestUnreachable) continue;
    if (probes_per_responder64[r.responder.prefix64()].size() > 1) continue;
    if (!seen.insert(r.responder).second) continue;
    witnesses.push_back(Witness{r.responder, r.probe_dst});
    if (static_cast<int>(witnesses.size()) >= options.repeats) break;
  }
  if (witnesses.empty()) return result;

  // Stage 2 — bit walk per witness. Flipping bit b (0-indexed from the top)
  // of the probed address leaves every prefix of length <= b unchanged; the
  // delegated length L is the smallest length whose flip changes or loses
  // the responder, i.e. the first b (walking down from 63) where the
  // response no longer comes from the witness, giving L = b + 1.
  auto* batch = net.make_node<ProbeBatch>(ProbeBatch::Config{
      options.source, options.seed + 1, 1e6});
  const int batch_iface =
      topo::attach_vantage(net, internet, batch, options.vantage);
  batch->set_iface(batch_iface);

  std::unordered_map<int, int> votes;
  for (const auto& witness : witnesses) {
    int boundary = isp.window_lo;  // assume the whole window if never lost
    for (int b = 63; b >= isp.window_lo; --b) {
      net::Uint128 v = witness.first_probe_dst.value();
      v.set_bit(127 - b, !v.bit(127 - b));
      const auto flipped = net::Ipv6Address::from_value(v);

      batch->clear();
      batch->enqueue(flipped, 64);
      batch->start();
      net.run();
      ++result.probes;

      bool same_responder = false;
      for (const auto& r : batch->responses()) {
        if (r.responder == witness.address) same_responder = true;
      }
      if (!same_responder) {
        boundary = b + 1;
        break;
      }
    }
    ++votes[boundary];
  }

  // Majority vote (the paper replicates the test and picks the primary
  // length).
  int best_len = 0, best_votes = 0;
  for (const auto& [len, n] : votes) {
    if (n > best_votes || (n == best_votes && len > best_len)) {
      best_len = len;
      best_votes = n;
    }
  }
  result.ok = true;
  result.inferred_len = best_len;
  result.witnesses = static_cast<int>(witnesses.size());
  return result;
}

LoopScanResult run_loop_scan(sim::Network& net, topo::BuiltInternet& internet,
                             std::span<const int> isp_indices,
                             const LoopScanOptions& options) {
  std::vector<int> indices(isp_indices.begin(), isp_indices.end());
  if (indices.empty()) indices = all_indices(internet);

  LoopScanResult out;

  // Stage 1: sweep with h and h+1 (the two expiry parities; with a fixed
  // simulated path length the hop limit's parity decides whether the ISP
  // or the CPE side of the loop zeroes the counter).
  struct Candidate {
    net::Ipv6Address responder;
    net::Ipv6Address probe_dst;
    std::uint8_t hop_limit_used;
  };
  std::unordered_map<net::Ipv6Address, Candidate> candidates;

  for (int pass = 0; pass < 2; ++pass) {
    scan::ScanConfig cfg;
    for (int i : indices) {
      const auto& isp = internet.isps[static_cast<std::size_t>(i)];
      cfg.targets.push_back(
          scan::TargetSpec{isp.scan_base, isp.window_lo, isp.window_hi});
    }
    cfg.source = options.source;
    cfg.seed = options.seed;  // same seed: same probe addresses both passes
    cfg.probes_per_sec = options.probes_per_sec;

    const auto h = static_cast<std::uint8_t>(options.hop_limit + pass);
    scan::IcmpEchoProbe module{h};
    auto* scanner = net.make_node<scan::SimChannelScanner>(cfg, module);
    const int iface =
        topo::attach_vantage(net, internet, scanner, options.vantage);
    scanner->set_iface(iface);
    scanner->on_response([&candidates, h](const scan::ProbeResponse& r,
                                          sim::SimTime) {
      if (r.kind != scan::ResponseKind::kTimeExceeded) return;
      candidates.try_emplace(r.responder, Candidate{r.responder, r.probe_dst, h});
    });
    scanner->start();
    net.run();
    out.probes_sent += scanner->stats().sent;
  }
  out.candidates = candidates.size();

  // Stage 2: confirm each candidate with hop limit h+2 at the same address.
  auto* batch = net.make_node<ProbeBatch>(
      ProbeBatch::Config{options.source, options.seed, options.probes_per_sec});
  const int batch_iface =
      topo::attach_vantage(net, internet, batch, options.vantage);
  batch->set_iface(batch_iface);
  for (const auto& [addr, cand] : candidates) {
    batch->enqueue(cand.probe_dst,
                   static_cast<std::uint8_t>(cand.hop_limit_used + 2));
  }
  batch->start();
  net.run();
  out.probes_sent += batch->job_count();

  std::unordered_set<net::Ipv6Address> confirmed;
  for (const auto& r : batch->responses()) {
    if (r.kind != scan::ResponseKind::kTimeExceeded) continue;
    auto it = candidates.find(r.responder);
    if (it == candidates.end()) continue;
    if (confirmed.insert(r.responder).second) {
      out.confirmed.push_back(LoopDevice{r.responder, it->second.probe_dst});
    }
  }
  return out;
}

}  // namespace xmap::ana
