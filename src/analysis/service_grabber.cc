#include "analysis/service_grabber.h"

#include "netbase/random.h"
#include "services/dns_codec.h"

namespace xmap::ana {
namespace {

std::uint64_t dispatch_key(const net::Ipv6Address& target,
                           std::uint16_t port) {
  const net::Uint128 v = target.value();
  return net::hash_combine64(net::hash_combine64(v.hi(), v.lo()), port);
}

std::string to_text(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size());
  for (std::uint8_t b : data) {
    out.push_back(static_cast<char>(b));
  }
  return out;
}

// Splits "name-1.2.3" at the last '-' into software identity.
svc::SoftwareInfo split_software(const std::string& full) {
  const std::size_t dash = full.rfind('-');
  if (dash == std::string::npos || dash + 1 >= full.size()) {
    return svc::SoftwareInfo{full, ""};
  }
  return svc::SoftwareInfo{full.substr(0, dash), full.substr(dash + 1)};
}

std::string strip_telnet_iac(const std::string& raw) {
  std::string out;
  for (std::size_t i = 0; i < raw.size();) {
    const auto b = static_cast<std::uint8_t>(raw[i]);
    if (b == 0xff && i + 2 < raw.size()) {
      i += 3;  // IAC <verb> <option>
      continue;
    }
    out.push_back(raw[i]);
    ++i;
  }
  return out;
}

std::string find_between(const std::string& hay, const std::string& pre,
                         const std::string& post) {
  const std::size_t a = hay.find(pre);
  if (a == std::string::npos) return {};
  const std::size_t start = a + pre.size();
  const std::size_t b = hay.find(post, start);
  if (b == std::string::npos) return {};
  return hay.substr(start, b - start);
}

}  // namespace

void parse_banner(GrabResult& result) {
  const std::string& banner = result.banner;
  switch (result.kind) {
    case svc::ServiceKind::kDns: {
      // The banner holds the version.bind TXT text, e.g. "dnsmasq-2.45".
      if (!banner.empty()) {
        result.alive = true;
        result.software = split_software(banner);
      }
      break;
    }
    case svc::ServiceKind::kNtp: {
      if (!banner.empty()) {
        result.alive = true;
        result.software = svc::SoftwareInfo{"ntpd", banner};  // version bits
      }
      break;
    }
    case svc::ServiceKind::kSsh: {
      if (banner.rfind("SSH-2.0-", 0) == 0) {
        result.alive = true;
        std::string ident = banner.substr(8);
        while (!ident.empty() && (ident.back() == '\r' || ident.back() == '\n'))
          ident.pop_back();
        const std::size_t underscore = ident.find('_');
        if (underscore != std::string::npos) {
          result.software = svc::SoftwareInfo{
              ident.substr(0, underscore), ident.substr(underscore + 1)};
        } else {
          result.software = svc::SoftwareInfo{ident, ""};
        }
      }
      break;
    }
    case svc::ServiceKind::kFtp: {
      if (banner.rfind("220 ", 0) == 0) {
        result.alive = true;
        result.vendor_hint = find_between(banner, "220 ", " FTP server");
        const std::string sw = find_between(banner, "(", ")");
        if (!sw.empty()) result.software = split_software(sw);
      }
      break;
    }
    case svc::ServiceKind::kTelnet: {
      const std::string text = strip_telnet_iac(banner);
      const std::size_t login = text.find(" login: ");
      if (login != std::string::npos) {
        result.alive = true;
        result.vendor_hint = text.substr(0, login);
      }
      break;
    }
    case svc::ServiceKind::kHttp:
    case svc::ServiceKind::kHttp8080: {
      if (banner.rfind("HTTP/1.1", 0) == 0) {
        result.alive = true;
        const std::string server = find_between(banner, "Server: ", "\r\n");
        if (!server.empty()) result.software = split_software(server);
        const std::string title = find_between(banner, "<title>", "</title>");
        if (title.find("Router Login") != std::string::npos) {
          result.management_page = true;
          result.vendor_hint = find_between(banner, "<title>", " Router Login");
        }
      }
      break;
    }
    case svc::ServiceKind::kTls: {
      if (!banner.empty() && banner.find("CERT CN=") != std::string::npos) {
        result.alive = true;
        result.vendor_hint = find_between(banner, "CERT CN=", " ISSUER=");
        const std::string issuer = find_between(banner, "ISSUER=", " CIPHER=");
        if (!issuer.empty()) result.software = split_software(issuer);
      }
      break;
    }
  }
}

std::uint16_t ServiceGrabber::job_sport(const Job& job) const {
  const net::Uint128 v = job.target.value();
  std::uint64_t h = net::hash_combine64(config_.seed, v.lo() ^ v.hi());
  h = net::hash_combine64(h, svc::port_of(job.kind));
  return static_cast<std::uint16_t>(0x8000 | (h & 0x7fff));
}

void ServiceGrabber::start() {
  const double rate = config_.grabs_per_sec > 0 ? config_.grabs_per_sec : 1e9;
  const auto gap =
      static_cast<sim::SimTime>(static_cast<double>(sim::kSecond) / rate);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    dispatch_[dispatch_key(queue_[i].target, svc::port_of(queue_[i].kind))] = i;
    network()->loop().schedule_after(gap * i, [this, i] { launch(i); });
  }
}

void ServiceGrabber::launch(std::size_t index) {
  Job& job = queue_[index];
  job.launched = true;
  job.result.target = job.target;
  job.result.kind = job.kind;
  const std::uint16_t sport = job_sport(job);
  const std::uint16_t dport = svc::port_of(job.kind);

  if (!svc::is_tcp(job.kind)) {
    pkt::Bytes payload;
    if (job.kind == svc::ServiceKind::kDns) {
      const auto wire = svc::make_version_query(
                            static_cast<std::uint16_t>(sport ^ 0x5aa5))
                            .encode();
      payload.assign(wire.begin(), wire.end());
    } else {  // NTP client (mode 3, version 4)
      payload.assign(48, 0);
      payload[0] = (4 << 3) | 3;
      payload[40] = 0xc3;
    }
    send(iface_, pkt::build_udp(config_.source, job.target, sport, dport,
                                payload));
  } else {
    job.client_seq = static_cast<std::uint32_t>(
        net::hash_combine64(config_.seed, dispatch_key(job.target, dport)));
    send(iface_, pkt::build_tcp(config_.source, job.target, sport, dport,
                                job.client_seq, 0, pkt::kTcpSyn, 65535));
  }

  network()->loop().schedule_after(config_.job_timeout,
                                   [this, index] { finish(index); });
}

void ServiceGrabber::send_request_data(Job& job) {
  const std::uint16_t sport = job_sport(job);
  const std::uint16_t dport = svc::port_of(job.kind);
  pkt::Bytes request;
  switch (job.kind) {
    case svc::ServiceKind::kHttp:
    case svc::ServiceKind::kHttp8080: {
      const std::string get = "GET / HTTP/1.1\r\nHost: [" +
                              job.target.to_string() + "]\r\n\r\n";
      request.assign(get.begin(), get.end());
      break;
    }
    case svc::ServiceKind::kTls:
      request = {0x16, 0x03, 0x01, 0x00, 0x2f, 0x01, 0x00, 0x00, 0x2b};
      break;
    default:
      return;  // banner services: the greeting is all we need
  }
  send(iface_, pkt::build_tcp(config_.source, job.target, sport, dport,
                              job.client_seq + 1, job.server_next,
                              pkt::kTcpPsh | pkt::kTcpAck, 65535, request));
}

void ServiceGrabber::receive(pkt::Bytes packet, int /*iface*/) {
  pkt::Ipv6View ip{packet};
  if (!ip.valid() || ip.dst() != config_.source) return;

  if (ip.next_header() == pkt::kProtoUdp) {
    pkt::UdpView udp{ip.payload()};
    if (!udp.valid()) return;
    auto it = dispatch_.find(dispatch_key(ip.src(), udp.src_port()));
    if (it == dispatch_.end()) return;
    Job& job = queue_[it->second];
    if (job.finished || udp.dst_port() != job_sport(job)) return;
    job.result.port_open = true;
    if (job.kind == svc::ServiceKind::kDns) {
      if (auto msg = svc::DnsMessage::decode(udp.payload());
          msg && msg->is_response && !msg->answers.empty() &&
          !msg->answers[0].rdata.empty()) {
        const auto& rdata = msg->answers[0].rdata;
        job.result.banner.assign(rdata.begin() + 1, rdata.end());
      }
    } else if (job.kind == svc::ServiceKind::kNtp) {
      const auto data = udp.payload();
      if (data.size() >= 48 && (data[0] & 0x7) == 4) {
        job.result.banner = std::to_string((data[0] >> 3) & 0x7);
      }
    }
    return;
  }

  if (ip.next_header() == pkt::kProtoTcp) {
    pkt::TcpView tcp{ip.payload()};
    if (!tcp.valid()) return;
    auto it = dispatch_.find(dispatch_key(ip.src(), tcp.src_port()));
    if (it == dispatch_.end()) return;
    Job& job = queue_[it->second];
    if (job.finished || tcp.dst_port() != job_sport(job)) return;

    if (tcp.flags() & pkt::kTcpRst) return;  // closed: port_open stays false

    if ((tcp.flags() & (pkt::kTcpSyn | pkt::kTcpAck)) ==
        (pkt::kTcpSyn | pkt::kTcpAck)) {
      job.result.port_open = true;
      job.handshake_done = true;
      job.server_next = tcp.seq() + 1;
      // Complete the handshake; banner services will greet in response.
      send(iface_,
           pkt::build_tcp(config_.source, job.target, job_sport(job),
                          svc::port_of(job.kind), job.client_seq + 1,
                          job.server_next, pkt::kTcpAck, 65535));
      // And push the application request where one is needed.
      network()->loop().schedule_after(
          sim::kMillisecond, [this, index = it->second] {
            if (!queue_[index].finished) send_request_data(queue_[index]);
          });
      return;
    }

    const auto data = tcp.payload();
    if (!data.empty()) {
      job.result.banner += to_text(data);
      job.server_next = tcp.seq() + static_cast<std::uint32_t>(data.size());
    }
  }
}

void ServiceGrabber::finish(std::size_t index) {
  Job& job = queue_[index];
  if (job.finished) return;
  job.finished = true;
  parse_banner(job.result);
  if (!svc::is_tcp(job.kind) && !job.result.banner.empty()) {
    job.result.port_open = true;
  }
  results_.push_back(job.result);
}

}  // namespace xmap::ana
