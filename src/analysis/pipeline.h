// The measurement pipeline: high-level experiment drivers composing the
// scanner, the grabber and the probe batches into the paper's methodology.
//
//   discovery scan  (Section III / IV) -> unique non-aliased last hops
//   IID analysis    (Tables III/V/X)   -> addr6-style histograms
//   vendor identity (Table IV)         -> EUI-64 OUI + app-level banners
//   subnet inference(Section IV-A)     -> delegated prefix length per block
//   loop scan       (Section VI-B)     -> h / h+2 Time-Exceeded confirmation
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/service_grabber.h"
#include "topology/builder.h"
#include "xmap/results.h"
#include "xmap/scanner.h"

namespace xmap::ana {

// ---------------------------------------------------------------------------
// Discovery scan
// ---------------------------------------------------------------------------

struct DiscoveryOptions {
  net::Ipv6Address source = *net::Ipv6Address::parse("2001:500::1");
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");
  std::uint64_t seed = 7;
  double probes_per_sec = 1e6;  // simulated-time pacing
  std::uint8_t hop_limit = 64;
  std::uint64_t alias_threshold = 16;
  // Probe each window twice with hop limits h and h+1. On the fixed-length
  // simulated paths the hop limit's parity decides whether a looping
  // probe's Time Exceeded is emitted by the CPE or the ISP router; real
  // Internet paths vary in length, so one pass samples both cases. Both
  // parities recover the paper's behaviour of loop-flawed peripheries also
  // surfacing in the discovery scan.
  bool both_parities = true;
};

struct DiscoveryResult {
  scan::ScanStats stats;
  std::vector<scan::LastHop> last_hops;  // unique, non-aliased
  std::vector<scan::LastHop> aliased;
};

// Scans the probing windows of the given ISP instances (all of them when
// `isp_indices` is empty) with the ICMPv6 echo module.
[[nodiscard]] DiscoveryResult run_discovery_scan(
    sim::Network& net, topo::BuiltInternet& internet,
    std::span<const int> isp_indices, const DiscoveryOptions& options);

// ---------------------------------------------------------------------------
// IID analysis (addr6 semantics over discovered last hops)
// ---------------------------------------------------------------------------

struct IidHistogram {
  std::uint64_t counts[net::kIidStyleCount] = {};
  std::uint64_t total = 0;

  void add(const net::Ipv6Address& addr) {
    ++counts[static_cast<int>(net::classify_iid(addr.iid()))];
    ++total;
  }
  [[nodiscard]] std::uint64_t of(net::IidStyle style) const {
    return counts[static_cast<int>(style)];
  }
};

[[nodiscard]] IidHistogram iid_histogram(std::span<const scan::LastHop> hops);

// ---------------------------------------------------------------------------
// Vendor identification
// ---------------------------------------------------------------------------

// Hardware path: EUI-64 IID -> MAC -> OUI registry. nullopt for addresses
// without an embedded MAC or with an unknown OUI.
[[nodiscard]] std::optional<std::string> vendor_from_address(
    const net::Ipv6Address& addr, const topo::OuiDb& oui);

// ---------------------------------------------------------------------------
// Service grabbing over discovered peripheries
// ---------------------------------------------------------------------------

struct GrabOptions {
  net::Ipv6Address source = *net::Ipv6Address::parse("2001:500::2");
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");
  std::uint64_t seed = 9;
  double grabs_per_sec = 1e5;  // simulated pacing
};

// Probes all eight services on every address; returns one GrabResult per
// (address, service).
[[nodiscard]] std::vector<GrabResult> grab_services(
    sim::Network& net, topo::BuiltInternet& internet,
    std::span<const net::Ipv6Address> targets, const GrabOptions& options);

// ---------------------------------------------------------------------------
// Subnet-boundary inference (Section IV-A)
// ---------------------------------------------------------------------------

struct SubnetInferenceOptions {
  net::Ipv6Address source = *net::Ipv6Address::parse("2001:500::3");
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");
  std::uint64_t seed = 11;
  int repeats = 5;             // distinct witnesses majority-voted
  std::uint64_t max_preliminary_probes = 512;
};

struct SubnetInferenceResult {
  bool ok = false;
  int inferred_len = 0;
  int witnesses = 0;     // how many witness devices voted
  std::uint64_t probes = 0;  // total probes spent
};

// Infers the delegated sub-prefix length of one ISP block by the paper's
// bit-walk: find a periphery, then flip address bits from 64 towards the
// block boundary until the responder changes.
[[nodiscard]] SubnetInferenceResult infer_subnet_length(
    sim::Network& net, topo::BuiltInternet& internet, int isp_index,
    const SubnetInferenceOptions& options);

// ---------------------------------------------------------------------------
// Routing-loop scan (Section VI-B)
// ---------------------------------------------------------------------------

struct LoopScanOptions {
  net::Ipv6Address source = *net::Ipv6Address::parse("2001:500::4");
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");
  std::uint64_t seed = 13;
  double probes_per_sec = 1e6;
  std::uint8_t hop_limit = 32;  // the paper's h; both parities are probed
};

struct LoopDevice {
  net::Ipv6Address address;    // the looping device (last hop of the TE)
  net::Ipv6Address probe_dst;  // the address that triggered the loop
};

struct LoopScanResult {
  std::uint64_t probes_sent = 0;
  std::uint64_t candidates = 0;  // distinct TE responders at stage 1
  std::vector<LoopDevice> confirmed;
};

// Two-stage scan: sweep the windows with Hop Limit h and h+1 (both
// parities), then re-probe each candidate's triggering address with the
// hop limit raised by 2 and keep responders that answer Time Exceeded
// again — the paper's confirmation rule.
[[nodiscard]] LoopScanResult run_loop_scan(sim::Network& net,
                                           topo::BuiltInternet& internet,
                                           std::span<const int> isp_indices,
                                           const LoopScanOptions& options);

}  // namespace xmap::ana
