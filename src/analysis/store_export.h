// Bridges scan output into the results store (src/store).
//
// Two producers feed store files:
//  * xmap_sim --store-file: the raw merged record stream (one ProbeResponse
//    per response) plus the world's geo/vendor attribution — add_response()
//    per record, geo via fill_geo(). StoreBuilder's order-independent merge
//    makes the file byte-identical across --threads values.
//  * analysis pipelines: export_store() folds a DiscoveryResult (and
//    optionally the loop scan and service grabs) into one snapshot, so the
//    paper's tables can be computed as store queries (store::aggregate)
//    instead of bespoke passes over flat records.
#pragma once

#include <span>

#include "analysis/pipeline.h"
#include "recover/state.h"
#include "store/writer.h"

namespace xmap::ana {

// Copies the world's GeoDb into the builder's attribution section.
void fill_geo(store::StoreBuilder& builder, const topo::GeoDb& geo);

// Adds one response-stream record: responses = 1 (duplicates merge), loop
// candidacy from a Time Exceeded kind, vendor from the EUI-64 OUI.
void add_response(store::StoreBuilder& builder, const scan::ProbeResponse& r,
                  std::uint64_t when_us, const topo::OuiDb& oui);

// The identity stamped into FileHeader::config_fingerprint: a content hash
// of every Fingerprint field that changes which packets go on the wire.
// Thread count and output format are deliberately excluded — the same scan
// at --threads 1 and 8 is the same scan (and must produce identical
// bytes).
[[nodiscard]] std::uint64_t scan_config_fingerprint(
    const recover::Fingerprint& fp);

// Folds analysis results into a ready-to-serialize builder: discovery last
// hops (aliased responders flagged), loop-scan candidates/confirmations,
// alive services from the grab pass, geo + vendor attribution from the
// world.
[[nodiscard]] store::StoreBuilder export_store(
    const DiscoveryResult& discovery, const LoopScanResult* loops,
    std::span<const GrabResult> grabs, const topo::BuiltInternet& internet);

}  // namespace xmap::ana
