// Aliased-prefix detection (the Gasser et al. IMC'18 technique the paper's
// "unique, non-aliased last hops" relies on).
//
// A prefix is aliased when *every* address in it answers — hosting space,
// CDNs, middleboxes. The detector probes k pseudorandom addresses per
// candidate /64 with ICMPv6 echo; if all k come back as echo replies from
// the probed addresses themselves, the prefix is flagged and its apparent
// "devices" are dropped from periphery statistics.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "topology/builder.h"
#include "xmap/results.h"

namespace xmap::ana {

struct AliasDetectionOptions {
  net::Ipv6Address source = *net::Ipv6Address::parse("2001:500::5");
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");
  std::uint64_t seed = 17;
  int probes_per_prefix = 8;
  // All k probes must be answered by echo replies to flag the prefix.
  // (Unreachables don't count: a periphery answering for its delegation is
  // not aliased space.)
};

struct AliasDetectionResult {
  std::unordered_set<std::uint64_t> aliased_prefix64;  // /64 routing prefixes
  std::uint64_t probes_sent = 0;
  std::uint64_t candidates = 0;
};

// Tests each candidate /64 (deduped); `candidates` are addresses whose
// enclosing /64 should be examined — typically discovery-scan responders.
[[nodiscard]] AliasDetectionResult detect_aliased_prefixes(
    sim::Network& net, topo::BuiltInternet& internet,
    std::span<const net::Ipv6Address> candidates,
    const AliasDetectionOptions& options = {});

// Convenience: drops last hops whose /64 was flagged as aliased.
[[nodiscard]] std::vector<scan::LastHop> strip_aliased(
    std::span<const scan::LastHop> hops, const AliasDetectionResult& aliased);

}  // namespace xmap::ana
