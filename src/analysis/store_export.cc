#include "analysis/store_export.h"

#include <string>

#include "store/format.h"

namespace xmap::ana {

namespace {

// Augmentation records (loop confirmations, alive services) carry the
// maximal first_us so that, when merged with the real discovery record for
// the same key, the real record's first-response fields always win the
// rank-minimum and the augmentation contributes only flags/service bits.
constexpr std::uint64_t kAugmentUs = ~std::uint64_t{0};

[[nodiscard]] std::uint16_t vendor_of(store::StoreBuilder& builder,
                                      const net::Ipv6Address& addr,
                                      const topo::OuiDb& oui) {
  const auto vendor = vendor_from_address(addr, oui);
  return vendor ? builder.vendor_id(*vendor) : 0;
}

}  // namespace

void fill_geo(store::StoreBuilder& builder, const topo::GeoDb& geo) {
  geo.for_each([&](const net::Ipv6Prefix& prefix, const topo::GeoInfo& info) {
    store::GeoEntry entry;
    entry.prefix = prefix;
    entry.asn = info.asn;
    if (info.country.size() >= 2) {
      entry.country = {info.country[0], info.country[1]};
    }
    entry.as_name = info.as_name;
    builder.add_geo(entry);
  });
}

void add_response(store::StoreBuilder& builder, const scan::ProbeResponse& r,
                  std::uint64_t when_us, const topo::OuiDb& oui) {
  store::Record rec;
  rec.key = r.responder;
  rec.probe_dst = r.probe_dst;
  rec.kind = static_cast<std::uint8_t>(r.kind);
  rec.icmp_code = r.icmp_code;
  rec.hop_limit = r.hop_limit;
  if (r.kind == scan::ResponseKind::kTimeExceeded) {
    rec.flags |= store::kFlagLoopCandidate;
  }
  rec.vendor = vendor_of(builder, r.responder, oui);
  rec.responses = 1;
  rec.first_us = when_us;
  builder.add(rec);
}

std::uint64_t scan_config_fingerprint(const recover::Fingerprint& fp) {
  std::string blob;
  auto field = [&blob](const std::string& s) {
    blob += s;
    blob += '\x1f';
  };
  field(std::to_string(fp.seed));
  field(fp.world);
  field(std::to_string(fp.window_bits));
  field(fp.probe_module);
  field(std::to_string(fp.rate_pps));
  field(std::to_string(fp.shard));
  field(std::to_string(fp.shards));
  field(std::to_string(fp.retries));
  field(std::to_string(fp.retry_spacing_ms));
  field(std::to_string(fp.cooldown_secs));
  field(std::to_string(fp.max_probes));
  field(fp.adaptive_rate ? "1" : "0");
  field(std::to_string(fp.blocklist_hash));
  field(std::to_string(fp.fault_plan_hash));
  for (const auto& target : fp.targets) field(target);
  return store::fnv1a(blob.data(), blob.size());
}

store::StoreBuilder export_store(const DiscoveryResult& discovery,
                                 const LoopScanResult* loops,
                                 std::span<const GrabResult> grabs,
                                 const topo::BuiltInternet& internet) {
  store::StoreBuilder builder;
  fill_geo(builder, internet.geo);

  auto add_hop = [&](const scan::LastHop& hop, std::uint8_t extra_flags) {
    store::Record rec;
    rec.key = hop.address;
    rec.probe_dst = hop.first_probe_dst;
    rec.kind = static_cast<std::uint8_t>(hop.first_kind);
    rec.icmp_code = hop.first_icmp_code;
    rec.flags = extra_flags;
    if (hop.first_kind == scan::ResponseKind::kTimeExceeded) {
      rec.flags |= store::kFlagLoopCandidate;
    }
    rec.vendor = vendor_of(builder, hop.address, internet.oui);
    rec.responses = hop.responses;
    builder.add(rec);
  };
  for (const auto& hop : discovery.last_hops) add_hop(hop, 0);
  for (const auto& hop : discovery.aliased) {
    add_hop(hop, store::kFlagAliased);
  }

  if (loops != nullptr) {
    for (const auto& device : loops->confirmed) {
      store::Record rec;
      rec.key = device.address;
      rec.probe_dst = device.probe_dst;
      rec.kind = static_cast<std::uint8_t>(scan::ResponseKind::kTimeExceeded);
      rec.flags = store::kFlagLoopCandidate | store::kFlagLoopConfirmed;
      rec.vendor = vendor_of(builder, device.address, internet.oui);
      rec.first_us = kAugmentUs;
      builder.add(rec);
    }
  }

  for (const GrabResult& grab : grabs) {
    if (!grab.alive) continue;
    store::Record rec;
    rec.key = grab.target;
    rec.probe_dst = grab.target;
    rec.services = static_cast<std::uint16_t>(
        1u << static_cast<int>(grab.kind));
    rec.vendor = vendor_of(builder, grab.target, internet.oui);
    rec.first_us = kAugmentUs;
    builder.add(rec);
  }
  return builder;
}

}  // namespace xmap::ana
