#include "analysis/software_db.h"

namespace xmap::ana {
namespace {

struct Entry {
  const char* software;
  const char* version_prefix;  // longest-prefix match on the version string
  const char* family;
  int cves;
  int year;
};

// Data from the paper's Table VIII (CVE counts as reported) plus release
// years used for the "released ~8 years ago" observations.
constexpr Entry kEntries[] = {
    {"dnsmasq", "2.4", "dnsmasq-2.4x", 16, 2012},
    {"dnsmasq", "2.5", "dnsmasq-2.5x", 12, 2010},
    {"dnsmasq", "2.6", "dnsmasq-2.6x", 10, 2012},
    {"dnsmasq", "2.7", "dnsmasq-2.7x", 8, 2014},
    {"dropbear", "0.4", "dropbear-0.4x", 10, 2005},
    {"dropbear", "0.5", "dropbear-0.5x", 8, 2008},
    {"dropbear", "2012", "dropbear-2012.x", 6, 2012},
    {"dropbear", "2017", "dropbear-2017.x", 2, 2017},
    {"openssh", "3.5", "openssh-3.5", 74, 2002},
    {"openssh", "5.", "openssh-5.x", 40, 2009},
    {"openssh", "6.", "openssh-6.x", 24, 2013},
    {"openssh", "7.", "openssh-7.x", 12, 2016},
    {"openssh", "8.", "openssh-8.x", 4, 2019},
    {"Jetty", "6.", "Jetty-6.x", 24, 2007},
    {"Jetty", "9.", "Jetty-9.x", 10, 2013},
    {"MiniWeb HTTP Server", "", "MiniWeb", 3, 2009},
    {"micro_httpd", "", "micro_httpd", 2, 2005},
    {"GoAhead Embedded", "", "GoAhead", 8, 2003},
    {"uhttpd", "", "uhttpd", 1, 2010},
    {"GNU Inetutils", "1.4", "GNU-Inetutils-1.4.1", 0, 2002},
    {"FreeBSD", "6.00", "FreeBSD-6.00ls", 1, 2005},
    {"vsftpd", "2.2", "vsftpd-2.2.2", 1, 2009},
    {"vsftpd", "2.3", "vsftpd-2.3.4", 1, 2011},
    {"vsftpd", "3.0", "vsftpd-3.0.3", 0, 2015},
    {"Fritz!Box", "", "Fritz!Box-FTP", 0, 2015},
    {"ntpd", "4.", "ntpd-4.x", 0, 2010},
};

}  // namespace

SoftwareFamily classify_software(const svc::SoftwareInfo& info) {
  for (const Entry& e : kEntries) {
    if (info.software != e.software) continue;
    const std::string prefix = e.version_prefix;
    if (prefix.empty() || info.version.rfind(prefix, 0) == 0) {
      return SoftwareFamily{e.family, e.cves, e.year};
    }
  }
  // Unknown: synthesize "<software>-<major>.x".
  std::string major = info.version;
  const std::size_t dot = major.find('.');
  if (dot != std::string::npos) major = major.substr(0, dot);
  SoftwareFamily out;
  out.family = info.software + (major.empty() ? "" : "-" + major + ".x");
  return out;
}

int known_cves_for_service(svc::ServiceKind kind) {
  switch (kind) {
    case svc::ServiceKind::kDns:
      return 16;  // the paper: 16 CVEs impact the exposed dnsmasq fleet
    case svc::ServiceKind::kSsh:
      return 84;  // 74 (openssh) + 10 (dropbear 0.4x)
    case svc::ServiceKind::kHttp:
    case svc::ServiceKind::kHttp8080:
      return 24;
    case svc::ServiceKind::kFtp:
      return 3;  // FreeBSD 6.00ls (1) + vsftpd (2)
    default:
      return 0;
  }
}

}  // namespace xmap::ana
