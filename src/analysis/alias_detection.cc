#include "analysis/alias_detection.h"

#include <unordered_map>

#include "analysis/probe_batch.h"

namespace xmap::ana {

AliasDetectionResult detect_aliased_prefixes(
    sim::Network& net, topo::BuiltInternet& internet,
    std::span<const net::Ipv6Address> candidates,
    const AliasDetectionOptions& options) {
  AliasDetectionResult result;

  // Dedup candidate /64s.
  std::unordered_set<std::uint64_t> prefixes;
  for (const auto& addr : candidates) prefixes.insert(addr.prefix64());
  result.candidates = prefixes.size();

  auto* batch = net.make_node<ProbeBatch>(
      ProbeBatch::Config{options.source, options.seed, 1e6});
  const int iface =
      topo::attach_vantage(net, internet, batch, options.vantage);
  batch->set_iface(iface);

  // Probe k pseudorandom addresses inside each candidate /64.
  std::vector<net::Ipv6Address> targets;
  for (std::uint64_t prefix : prefixes) {
    const net::Ipv6Prefix p64{
        net::Ipv6Address::from_value(net::Uint128{prefix, 0}), 64};
    for (int k = 0; k < options.probes_per_prefix; ++k) {
      const std::uint64_t iid = net::hash_combine64(
          net::hash_combine64(options.seed, prefix),
          static_cast<std::uint64_t>(k) | 0x8000000000000000ULL);
      const auto target = p64.address_with_suffix(net::Uint128{iid});
      targets.push_back(target);
      batch->enqueue(target, 64);
    }
  }
  batch->start();
  net.run();
  result.probes_sent = targets.size();

  // Count echo replies per /64 where the responder IS the probed address.
  std::unordered_map<std::uint64_t, int> replies;
  for (const auto& response : batch->responses()) {
    if (response.kind != scan::ResponseKind::kEchoReply) continue;
    if (response.responder != response.probe_dst) continue;
    ++replies[response.responder.prefix64()];
  }
  for (const auto& [prefix, count] : replies) {
    if (count >= options.probes_per_prefix) {
      result.aliased_prefix64.insert(prefix);
    }
  }
  return result;
}

std::vector<scan::LastHop> strip_aliased(std::span<const scan::LastHop> hops,
                                         const AliasDetectionResult& aliased) {
  std::vector<scan::LastHop> out;
  out.reserve(hops.size());
  for (const auto& hop : hops) {
    if (aliased.aliased_prefix64.count(hop.address.prefix64()) == 0) {
      out.push_back(hop);
    }
  }
  return out;
}

}  // namespace xmap::ana
