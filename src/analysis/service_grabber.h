// Application-layer banner grabber (the ZGrab2 stage of the pipeline).
//
// For every (periphery address, service) pair the grabber performs the
// paper's Table VI exchange: a UDP request (DNS version query, NTP client
// packet) or a minimal TCP session (SYN -> SYN/ACK -> ACK [greeting] ->
// request -> response), then parses the collected bytes into the software
// identity and vendor hints used by Tables VII/VIII and Figures 2/3.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "services/service.h"
#include "sim/network.h"

namespace xmap::ana {

struct GrabResult {
  net::Ipv6Address target;
  svc::ServiceKind kind = svc::ServiceKind::kDns;
  bool port_open = false;  // transport-level liveness (SYN/ACK or datagram)
  bool alive = false;      // valid application-level response
  std::string banner;      // raw text collected from the wire
  std::optional<svc::SoftwareInfo> software;
  std::string vendor_hint;       // device vendor recovered from banners
  bool management_page = false;  // HTTP login page detected
};

// Parses collected application bytes for one service into software/vendor.
// Exposed separately so it is unit-testable without the network.
void parse_banner(GrabResult& result);

class ServiceGrabber : public sim::Node {
 public:
  struct Config {
    net::Ipv6Address source;
    std::uint64_t seed = 1;
    double grabs_per_sec = 1000;  // the paper probes at 1000 pps
    sim::SimTime job_timeout = 300 * sim::kMillisecond;
  };

  explicit ServiceGrabber(Config config) : config_(std::move(config)) {}

  void set_iface(int iface) { iface_ = iface; }
  void enqueue(const net::Ipv6Address& target, svc::ServiceKind kind) {
    Job job;
    job.target = target;
    job.kind = kind;
    queue_.push_back(std::move(job));
  }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  // Schedules all queued grabs; results are final after Network::run().
  void start();

  [[nodiscard]] const std::vector<GrabResult>& results() const {
    return results_;
  }

  void receive(pkt::Bytes packet, int iface) override;

 private:
  struct Job {
    net::Ipv6Address target;
    svc::ServiceKind kind;
    GrabResult result;
    bool launched = false;
    bool finished = false;
    bool handshake_done = false;
    std::uint32_t client_seq = 0;   // our next sequence number
    std::uint32_t server_next = 0;  // next expected server byte
  };

  void launch(std::size_t index);
  void finish(std::size_t index);
  [[nodiscard]] std::uint16_t job_sport(const Job& job) const;
  void send_request_data(Job& job);

  Config config_;
  int iface_ = 0;
  std::vector<Job> queue_;
  // (target addr hash ^ port) -> job index for response dispatch.
  std::unordered_map<std::uint64_t, std::size_t> dispatch_;
  std::vector<GrabResult> results_;
};

}  // namespace xmap::ana
