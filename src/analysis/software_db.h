// Software version-family knowledge base.
//
// Reproduces the paper's Table VIII analysis: grabbed software versions are
// collapsed into the families the paper reports ("dnsmasq-2.4x", "dropbear
// 0.4x", ...), each with its public CVE exposure count and release-age note.
// CVE counts are the ones the paper cites; they are analysis inputs, not
// live CVE-database queries.
#pragma once

#include <optional>
#include <string>

#include "services/service.h"

namespace xmap::ana {

struct SoftwareFamily {
  std::string family;    // e.g. "dnsmasq-2.4x"
  int cve_count = 0;     // CVEs the paper attributes to the family
  int release_year = 0;  // approximate first-release year (age analysis)
};

// Collapses a concrete software+version into its reporting family;
// unknown software maps to "<software>-<major.x>" with zero CVEs.
[[nodiscard]] SoftwareFamily classify_software(const svc::SoftwareInfo& info);

// Total CVE count for a service column of Table VIII (sum over families of
// that service's software set; informational helper for the bench).
[[nodiscard]] int known_cves_for_service(svc::ServiceKind kind);

}  // namespace xmap::ana
