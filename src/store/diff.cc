#include "store/diff.h"

namespace xmap::store {

DiffStats diff(const Snapshot& before, const Snapshot& after,
               const std::function<void(const DiffEntry&)>& sink) {
  DiffStats stats;
  Snapshot::Cursor ca{before};
  Snapshot::Cursor cb{after};
  Record a, b;
  bool have_a = ca.next(&a);
  bool have_b = cb.next(&b);
  auto emit = [&](DiffKind kind, const Record& bef, const Record& aft) {
    if (sink) {
      DiffEntry e;
      e.kind = kind;
      e.before = bef;
      e.after = aft;
      sink(e);
    }
  };
  while (have_a || have_b) {
    if (!have_b || (have_a && a.key < b.key)) {
      ++stats.removed;
      emit(DiffKind::kRemoved, a, Record{});
      have_a = ca.next(&a);
    } else if (!have_a || b.key < a.key) {
      ++stats.added;
      emit(DiffKind::kAdded, Record{}, b);
      have_b = cb.next(&b);
    } else {
      // Same key: compare payloads. Vendor ids index per-file tables, so
      // equality must go through the names, not the raw ids.
      Record an = a, bn = b;
      an.vendor = 0;
      bn.vendor = 0;
      const bool same =
          an == bn &&
          before.vendor_name(a.vendor) == after.vendor_name(b.vendor);
      if (same) {
        ++stats.unchanged;
      } else {
        ++stats.changed;
        emit(DiffKind::kChanged, a, b);
      }
      have_a = ca.next(&a);
      have_b = cb.next(&b);
    }
  }
  return stats;
}

}  // namespace xmap::store
