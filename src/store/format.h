// On-disk format of the periphery results store (see docs/results_store.md
// for the full specification).
//
// A store file is a versioned, immutable snapshot of one scan's results:
// discovered peripheries, their service/vendor attribution and routing-loop
// verdicts, keyed and sorted by responder address. The layout is built for
// read-mostly, many-reader serving:
//
//   [FileHeader]       fixed 128 bytes: magic, version, section offsets,
//                      record count, config fingerprint, git sha
//   [data blocks]      block_count fixed-size blocks of delta-encoded,
//                      key-sorted records (LEB128 varints; first key per
//                      block is verbatim, later keys store the delta)
//   [block index]      one fixed 32-byte entry per block: first key,
//                      record count, used bytes, FNV-1a checksum
//   [geo section]      sorted (prefix -> ASN/country/AS-name) entries; the
//                      loader compiles them into the netbase LC-trie once
//                      and shares it read-only across query threads
//   [vendor table]     sorted unique vendor names; records refer by index
//   [trailer]          whole-file checksum + payload length + end magic,
//                      so truncation and bit flips are always detected
//
// Every multi-byte scalar is little-endian and accessed through memcpy
// (the file may be mmap'd at arbitrary alignment). Writers produce the
// sections deterministically: the same record set yields byte-identical
// files regardless of producer thread count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "netbase/ipv6.h"

namespace xmap::store {

inline constexpr char kMagic[8] = {'X', 'M', 'P', '6', 'S', 'T', 'O', 'R'};
inline constexpr char kEndMagic[8] = {'X', 'M', 'P', '6', 'E', 'N', 'D',
                                      '\n'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 128;
inline constexpr std::size_t kIndexEntryBytes = 32;
inline constexpr std::size_t kTrailerBytes = 24;
inline constexpr std::uint32_t kDefaultBlockBytes = 4096;

// Record flag bits.
inline constexpr std::uint8_t kFlagLoopCandidate = 0x01;  // Time Exceeded seen
inline constexpr std::uint8_t kFlagLoopConfirmed = 0x02;  // h/h+2 confirmed
inline constexpr std::uint8_t kFlagAliased = 0x04;        // aliased responder

// One periphery entry. `key` (the responder address) is unique within a
// store and is the sort order of the file. ASN/country attribution is not
// baked into records — queries resolve it through the snapshot's compiled
// LC-trie over the geo section, so one attribution table serves every
// record in its covering prefix.
struct Record {
  net::Ipv6Address key;        // responder address (sort key, unique)
  net::Ipv6Address probe_dst;  // probe that elicited the first response
  std::uint8_t kind = 0;       // scan::ResponseKind of the first response
  std::uint8_t icmp_code = 0;
  std::uint8_t hop_limit = 0;  // received hop limit (distance signal)
  std::uint8_t flags = 0;      // kFlag* bits
  std::uint16_t vendor = 0;    // vendor-table index; 0 = unidentified
  std::uint16_t services = 0;  // bit i set = svc::ServiceKind(i) alive
  std::uint64_t responses = 0; // responses seen from this address
  std::uint64_t first_us = 0;  // sim-clock arrival of the first response

  friend bool operator==(const Record&, const Record&) = default;
};

// One geo-section entry (mirrors topo::GeoInfo plus its prefix).
struct GeoEntry {
  net::Ipv6Prefix prefix;
  std::uint32_t asn = 0;
  std::array<char, 2> country = {'-', '-'};
  std::string as_name;

  friend bool operator==(const GeoEntry&, const GeoEntry&) = default;
};

// Header fields as parsed/serialized (not the raw byte layout).
struct FileHeader {
  std::uint32_t version = kFormatVersion;
  std::uint32_t block_bytes = kDefaultBlockBytes;
  std::uint64_t block_count = 0;
  std::uint64_t record_count = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t geo_offset = 0;
  std::uint64_t vendor_offset = 0;
  std::uint64_t trailer_offset = 0;
  // Identity of the producing scan (recover-style config fingerprint) and
  // the source revision, for longitudinal bookkeeping / diff sanity.
  std::uint64_t config_fingerprint = 0;
  std::array<char, 40> git_sha = {};  // hex, NUL-padded
};

// Per-block index entry.
struct BlockInfo {
  net::Ipv6Address first_key;
  std::uint32_t record_count = 0;
  std::uint32_t used_bytes = 0;
  std::uint64_t checksum = 0;  // FNV-1a over the full block_bytes
};

// --- primitives shared by writer, loader and tests ------------------------

// FNV-1a 64-bit over a byte range (the per-block and whole-file checksum).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t len,
                                  std::uint64_t seed = 0xcbf29ce484222325ULL);

// Little-endian scalar put/get through memcpy (alignment-agnostic).
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
[[nodiscard]] std::uint16_t get_u16(const char* p);
[[nodiscard]] std::uint32_t get_u32(const char* p);
[[nodiscard]] std::uint64_t get_u64(const char* p);

// LEB128 varints (unsigned little-endian base-128).
void put_varint64(std::string& out, std::uint64_t v);
void put_varint128(std::string& out, net::Uint128 v);

// Bounds-checked varint readers: advance *pos, return false on overrun or
// over-long encodings.
[[nodiscard]] bool get_varint64(const char* data, std::size_t len,
                                std::size_t* pos, std::uint64_t* out);
[[nodiscard]] bool get_varint128(const char* data, std::size_t len,
                                 std::size_t* pos, net::Uint128* out);

// Serializes `header` into its fixed 128-byte form (and back). parse
// validates magic and structural invariants only — version and offset
// checks against the actual file are the loader's job.
[[nodiscard]] std::string serialize_header(const FileHeader& header);
[[nodiscard]] bool parse_header(const char* data, std::size_t len,
                                FileHeader* out, std::string* error);

[[nodiscard]] std::string serialize_index_entry(const BlockInfo& info);
[[nodiscard]] BlockInfo parse_index_entry(const char* p);

// Appends one record to a block body. `prev_key` is the previous record's
// key (the delta base); pass nullptr for the first record of a block.
void encode_record(std::string& out, const Record& record,
                   const net::Ipv6Address* prev_key);

// Decodes one record from block bytes at *pos. `first` selects the
// verbatim-key form; otherwise *prev_key is the delta base. On success
// *prev_key is updated to the decoded key. Returns false on
// malformed/overrunning input.
[[nodiscard]] bool decode_record(const char* data, std::size_t len,
                                 std::size_t* pos, bool first,
                                 net::Ipv6Address* prev_key, Record* out);

// Key-only fast path for the point-lookup hot loop: most records in a
// block are scanned past, so decoding their field bodies (two 16-byte
// address conversions plus six varints each) is wasted work. A lookup
// instead walks decode_key/skip_fields pairs over numeric keys and calls
// decode_fields only for the one matching record.

// Decodes just the key of the record at *pos, leaving *pos at the first
// non-key field. *prev_key is the running delta base as a numeric value
// and is updated to the decoded key.
[[nodiscard]] bool decode_key(const char* data, std::size_t len,
                              std::size_t* pos, bool first,
                              net::Uint128* prev_key);

// Skips the non-key fields of one record (a varint continuation-bit scan;
// nothing is materialized).
[[nodiscard]] bool skip_fields(const char* data, std::size_t len,
                               std::size_t* pos);

// Decodes the non-key fields at *pos into *out. out->key must already
// hold the record's key (probe_dst is stored XORed against it).
[[nodiscard]] bool decode_fields(const char* data, std::size_t len,
                                 std::size_t* pos, Record* out);

}  // namespace xmap::store
