#include "store/writer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "recover/checkpoint.h"

namespace xmap::store {

namespace {

// Total order used to pick the canonical "first response" fields when
// duplicate keys merge — insertion-order independent by construction.
[[nodiscard]] auto first_fields_rank(const Record& r) {
  return std::tuple(r.first_us, r.probe_dst, static_cast<int>(r.kind),
                    static_cast<int>(r.icmp_code),
                    static_cast<int>(r.hop_limit));
}

[[nodiscard]] auto geo_rank(const GeoEntry& g) {
  return std::tuple(g.prefix, g.asn, g.country[0], g.country[1], g.as_name);
}

}  // namespace

StoreBuilder::StoreBuilder(std::uint32_t block_bytes)
    : block_bytes_(block_bytes < 256 ? 256 : block_bytes) {
  vendor_names_.emplace_back();
  vendor_ids_[""] = 0;
}

std::uint16_t StoreBuilder::vendor_id(const std::string& name) {
  auto [it, inserted] =
      vendor_ids_.try_emplace(name, static_cast<std::uint16_t>(
                                        vendor_names_.size()));
  if (inserted) vendor_names_.push_back(name);
  return it->second;
}

void StoreBuilder::add(const Record& record) { records_.push_back(record); }

void StoreBuilder::add_geo(const GeoEntry& entry) { geo_.push_back(entry); }

std::string StoreBuilder::serialize() {
  // --- canonicalise vendors: sorted unique names, "" stays id 0 ----------
  std::vector<std::string> sorted_names(vendor_names_.begin() + 1,
                                        vendor_names_.end());
  std::sort(sorted_names.begin(), sorted_names.end());
  sorted_names.erase(
      std::unique(sorted_names.begin(), sorted_names.end()),
      sorted_names.end());
  std::vector<std::uint16_t> remap(vendor_names_.size(), 0);
  for (std::size_t old = 1; old < vendor_names_.size(); ++old) {
    const auto it = std::lower_bound(sorted_names.begin(),
                                     sorted_names.end(), vendor_names_[old]);
    remap[old] = static_cast<std::uint16_t>(
        1 + (it - sorted_names.begin()));
  }
  for (Record& r : records_) {
    r.vendor = r.vendor < remap.size() ? remap[r.vendor] : 0;
  }

  // --- sort and merge duplicate keys (order-independent) -----------------
  std::sort(records_.begin(), records_.end(),
            [](const Record& a, const Record& b) {
              if (a.key != b.key) return a.key < b.key;
              return first_fields_rank(a) < first_fields_rank(b);
            });
  std::vector<Record> merged;
  merged.reserve(records_.size());
  for (const Record& r : records_) {
    if (!merged.empty() && merged.back().key == r.key) {
      Record& m = merged.back();
      // The sort already put the rank-minimal entry first, so its
      // first-response fields stand; later duplicates only accumulate.
      m.responses += r.responses;
      m.services |= r.services;
      m.flags |= r.flags;
      if (m.vendor == 0) m.vendor = r.vendor;
      continue;
    }
    merged.push_back(r);
  }

  std::sort(geo_.begin(), geo_.end(), [](const GeoEntry& a,
                                         const GeoEntry& b) {
    return geo_rank(a) < geo_rank(b);
  });
  geo_.erase(std::unique(geo_.begin(), geo_.end(),
                         [](const GeoEntry& a, const GeoEntry& b) {
                           return a.prefix == b.prefix;
                         }),
             geo_.end());

  // --- data blocks -------------------------------------------------------
  std::string blocks;
  std::vector<BlockInfo> index;
  std::string cur;
  cur.reserve(block_bytes_);
  std::uint32_t cur_count = 0;
  net::Ipv6Address first_key;
  auto flush = [&] {
    if (cur_count == 0) return;
    BlockInfo info;
    info.first_key = first_key;
    info.record_count = cur_count;
    info.used_bytes = static_cast<std::uint32_t>(cur.size());
    cur.resize(block_bytes_, '\0');
    info.checksum = fnv1a(cur.data(), cur.size());
    index.push_back(info);
    blocks += cur;
    cur.clear();
    cur_count = 0;
  };
  std::string one;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const Record& r = merged[i];
    one.clear();
    const net::Ipv6Address prev =
        cur_count > 0 ? merged[i - 1].key : net::Ipv6Address{};
    encode_record(one, r, cur_count > 0 ? &prev : nullptr);
    if (!cur.empty() && cur.size() + one.size() > block_bytes_) {
      flush();
      one.clear();
      encode_record(one, r, nullptr);
    }
    if (cur_count == 0) first_key = r.key;
    cur += one;
    ++cur_count;
  }
  flush();

  // --- assemble file -----------------------------------------------------
  FileHeader header;
  header.block_bytes = block_bytes_;
  header.block_count = index.size();
  header.record_count = merged.size();
  header.config_fingerprint = config_fingerprint_;
  const std::string sha = git_sha_.empty() ? current_git_sha() : git_sha_;
  for (std::size_t i = 0; i < header.git_sha.size() && i < sha.size(); ++i) {
    header.git_sha[i] = sha[i];
  }
  header.index_offset = kHeaderBytes + blocks.size();
  header.geo_offset = header.index_offset + index.size() * kIndexEntryBytes;

  std::string geo_bytes;
  put_u64(geo_bytes, geo_.size());
  for (const GeoEntry& g : geo_) {
    geo_bytes.append(
        reinterpret_cast<const char*>(g.prefix.address().bytes().data()), 16);
    geo_bytes.push_back(static_cast<char>(g.prefix.length()));
    put_varint64(geo_bytes, g.asn);
    geo_bytes.push_back(g.country[0]);
    geo_bytes.push_back(g.country[1]);
    put_varint64(geo_bytes, g.as_name.size());
    geo_bytes += g.as_name;
  }
  header.vendor_offset = header.geo_offset + geo_bytes.size();

  std::string vendor_bytes;
  put_u32(vendor_bytes, static_cast<std::uint32_t>(sorted_names.size()));
  for (const std::string& name : sorted_names) {
    put_varint64(vendor_bytes, name.size());
    vendor_bytes += name;
  }
  header.trailer_offset = header.vendor_offset + vendor_bytes.size();

  std::string out = serialize_header(header);
  out += blocks;
  for (const BlockInfo& info : index) out += serialize_index_entry(info);
  out += geo_bytes;
  out += vendor_bytes;
  const std::uint64_t file_hash = fnv1a(out.data(), out.size());
  put_u64(out, file_hash);
  put_u64(out, header.trailer_offset);
  out.append(kEndMagic, sizeof kEndMagic);
  return out;
}

bool StoreBuilder::write(const std::string& path, std::string* error) {
  return recover::write_file_atomic(path, serialize(), error);
}

std::string current_git_sha() {
  if (const char* env = std::getenv("GITHUB_SHA")) return env;
  std::string sha = "unknown";
  if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      std::string s{buf};
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
        s.pop_back();
      }
      if (!s.empty()) sha = s;
    }
    ::pclose(p);
  }
  return sha;
}

}  // namespace xmap::store
