// Aggregation queries over a loaded snapshot.
//
// These are the store-backed forms of the paper's periphery breakdowns:
// group the record set by ASN, country, vendor or alive service and count
// peripheries / loop candidates / confirmed loops per group (Tables IX-XII
// become one aggregate() call each). ASN and country come from the
// snapshot's compiled LC-trie (one longest-prefix match per record);
// vendor and service come from the record itself. Row order is
// deterministic: descending record count, then key — independent of how
// the store was produced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/snapshot.h"

namespace xmap::store {

enum class GroupBy : std::uint8_t { kAsn, kCountry, kVendor, kService };

[[nodiscard]] constexpr const char* to_string(GroupBy g) {
  switch (g) {
    case GroupBy::kAsn: return "asn";
    case GroupBy::kCountry: return "country";
    case GroupBy::kVendor: return "vendor";
    case GroupBy::kService: return "service";
  }
  return "?";
}

// One output row. `key` is the group label: "AS<n>"/AS name for kAsn, the
// two-letter code for kCountry, the vendor-table name for kVendor (""
// renders as "unknown"), the svc::service_name for kService.
struct AggRow {
  std::string key;
  std::uint64_t records = 0;          // peripheries in the group
  std::uint64_t loop_candidates = 0;  // kFlagLoopCandidate set
  std::uint64_t loop_confirmed = 0;   // kFlagLoopConfirmed set
  std::uint64_t responses = 0;        // summed response counts

  friend bool operator==(const AggRow&, const AggRow&) = default;
};

// Full-store aggregation. Under kService a record with k service bits set
// contributes to k rows; under the other groupings each record lands in
// exactly one row ("unattributed"/"unknown" when the trie or vendor table
// has nothing for it).
[[nodiscard]] std::vector<AggRow> aggregate(const Snapshot& snap, GroupBy by);

// Same aggregation restricted to keys inside `prefix`.
[[nodiscard]] std::vector<AggRow> aggregate_prefix(
    const Snapshot& snap, const net::Ipv6Prefix& prefix, GroupBy by);

// The headline numbers of the paper's periphery table: totals and the
// distinct-ASN / distinct-country footprint, overall and loop-only.
struct PeripherySummary {
  std::uint64_t records = 0;
  std::uint64_t loop_candidates = 0;
  std::uint64_t loop_confirmed = 0;
  std::uint64_t asns = 0;
  std::uint64_t countries = 0;
  std::uint64_t loop_asns = 0;       // ASNs with >= 1 loop candidate
  std::uint64_t loop_countries = 0;  // countries with >= 1 loop candidate

  friend bool operator==(const PeripherySummary&,
                         const PeripherySummary&) = default;
};

[[nodiscard]] PeripherySummary summarize(const Snapshot& snap);

}  // namespace xmap::store
