// Snapshot diff: what changed between two scans of the same space.
//
// A single merge walk over both stores' sorted record streams (Cursors, no
// materialisation) classifies every key as added (only in B), removed
// (only in A), changed (both, unequal payload) or unchanged. This is the
// longitudinal primitive the paper's periphery study implies — churn
// between scan rounds — exposed as `xmap_store diff A B`.
#pragma once

#include <cstdint>
#include <functional>

#include "store/snapshot.h"

namespace xmap::store {

enum class DiffKind : std::uint8_t { kAdded, kRemoved, kChanged };

[[nodiscard]] constexpr const char* to_string(DiffKind k) {
  switch (k) {
    case DiffKind::kAdded: return "added";
    case DiffKind::kRemoved: return "removed";
    case DiffKind::kChanged: return "changed";
  }
  return "?";
}

struct DiffEntry {
  DiffKind kind = DiffKind::kAdded;
  Record before;  // valid for kRemoved / kChanged
  Record after;   // valid for kAdded / kChanged
};

struct DiffStats {
  std::uint64_t added = 0;
  std::uint64_t removed = 0;
  std::uint64_t changed = 0;
  std::uint64_t unchanged = 0;

  friend bool operator==(const DiffStats&, const DiffStats&) = default;
};

// Walks A (before) and B (after) in key order; calls `sink` for every
// non-identical key when non-null. Entries arrive in ascending key order.
[[nodiscard]] DiffStats diff(
    const Snapshot& before, const Snapshot& after,
    const std::function<void(const DiffEntry&)>& sink = nullptr);

}  // namespace xmap::store
