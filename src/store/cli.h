// Command surface of the xmap_store tool, exposed as a function so tests
// can drive it in-process (tools/xmap_store.cc is a two-line wrapper).
//
// Commands:
//   info FILE                      header / section summary
//   verify FILE                    full validation (load already validates;
//                                  this just reports the verdict)
//   query FILE ADDR|PREFIX         point lookup or in-order prefix listing
//   agg FILE asn|country|vendor|service [PREFIX]   grouped counts
//   summary FILE                   paper-style periphery summary
//   diff BEFORE AFTER              added/removed/changed between snapshots
//   bench FILE [--threads N] [--lookups M] [--seed S]   query-load run
//
// Exit codes follow the repo convention: 0 ok, 2 config/IO error (bad
// usage, unloadable store).
#pragma once

#include <ostream>

namespace xmap::store {

[[nodiscard]] int store_cli_main(int argc, const char* const* argv,
                                 std::ostream& out, std::ostream& err);

}  // namespace xmap::store
