// Concurrent query service harness: N reader threads hammering one shared
// Snapshot.
//
// This is the serving half of the store's design claim — one immutable,
// checksummed snapshot, LC-trie compiled once at load, then any number of
// lock-free readers. The harness pre-samples a deterministic key stream
// per thread (seeded splitmix64 over a pool of present keys plus synthetic
// misses) outside the measured window, releases all threads on one
// barrier, and runs point lookups until each thread's quota is done. Each
// worker owns a thread-confined obs::MetricsShard (counters
// store_queries_total / store_query_hits_total, a per-batch latency
// histogram); shards merge deterministically after the join. The
// steady-state loop performs zero global-heap allocations — proven by
// tests/store/alloc_free_query_test.cc with a counting operator new.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "store/snapshot.h"

namespace xmap::store {

struct QueryLoadOptions {
  int threads = 8;
  std::uint64_t lookups_per_thread = 1'000'000;
  std::uint64_t seed = 1;
  // Out of 256: how often a sampled key is drawn from the store (hit) vs
  // synthesized from raw PRNG bits (a near-certain miss).
  int hit_mix = 192;
};

struct QueryLoadResult {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  double seconds = 0.0;           // wall time of the measured window
  double lookups_per_sec = 0.0;   // aggregate across threads
  obs::MetricsSnapshot metrics;   // merged worker shards
};

[[nodiscard]] QueryLoadResult run_query_load(const Snapshot& snap,
                                             const QueryLoadOptions& options);

}  // namespace xmap::store
