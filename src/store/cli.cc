#include "store/cli.h"

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "netbase/exit_codes.h"
#include "store/diff.h"
#include "store/query.h"
#include "store/service.h"
#include "store/snapshot.h"
#include "xmap/probe_module.h"

namespace xmap::store {

namespace {

constexpr const char* kUsage =
    "usage: xmap_store <command> ...\n"
    "  info FILE                                  header and section summary\n"
    "  verify FILE                                validate checksums/structure\n"
    "  query FILE ADDR|PREFIX [--limit N]         point lookup / range listing\n"
    "  agg FILE asn|country|vendor|service [PREFIX]\n"
    "  summary FILE                               periphery summary\n"
    "  diff BEFORE AFTER [--limit N]              snapshot churn\n"
    "  bench FILE [--threads N] [--lookups M] [--seed S]\n";

[[nodiscard]] std::unique_ptr<Snapshot> open_or_report(
    const std::string& path, std::ostream& err) {
  auto result = Snapshot::load(path);
  if (!result.snapshot) err << "xmap_store: " << result.error << "\n";
  return std::move(result.snapshot);
}

void print_record(std::ostream& out, const Snapshot& snap, const Record& r) {
  out << r.key.to_string() << " kind="
      << scan::response_kind_name(static_cast<scan::ResponseKind>(r.kind))
      << " code=" << static_cast<int>(r.icmp_code)
      << " hlim=" << static_cast<int>(r.hop_limit)
      << " responses=" << r.responses << " probe=" << r.probe_dst.to_string();
  if ((r.flags & kFlagLoopCandidate) != 0) out << " loop-candidate";
  if ((r.flags & kFlagLoopConfirmed) != 0) out << " loop-confirmed";
  if ((r.flags & kFlagAliased) != 0) out << " aliased";
  if (const std::string_view vendor = snap.vendor_name(r.vendor);
      !vendor.empty()) {
    out << " vendor=" << vendor;
  }
  if (r.services != 0) out << " services=0x" << std::hex << r.services
                           << std::dec;
  if (const GeoEntry* geo = snap.attribute(r.key)) {
    out << " AS" << geo->asn << " " << geo->country[0] << geo->country[1];
  }
  out << "\n";
}

[[nodiscard]] int cmd_info(const Snapshot& snap, std::ostream& out) {
  const FileHeader& h = snap.header();
  out << "format version: " << h.version << "\n"
      << "records: " << h.record_count << "\n"
      << "blocks: " << h.block_count << " x " << h.block_bytes << " bytes\n"
      << "geo entries: " << snap.geo_entries().size() << "\n"
      << "vendors: " << snap.vendor_count() << "\n"
      << "config fingerprint: " << h.config_fingerprint << "\n"
      << "git sha: " << snap.git_sha() << "\n"
      << "file bytes: " << snap.file_bytes() << "\n";
  return kExitOk;
}

[[nodiscard]] int cmd_query(const Snapshot& snap, const std::string& target,
                            std::uint64_t limit, std::ostream& out,
                            std::ostream& err) {
  if (target.find('/') != std::string::npos) {
    const auto prefix = net::Ipv6Prefix::parse(target);
    if (!prefix) {
      err << "xmap_store: bad prefix: " << target << "\n";
      return kExitConfig;
    }
    std::uint64_t printed = 0;
    const std::uint64_t total = snap.scan_prefix(*prefix, [&](const Record& r) {
      if (printed++ < limit) print_record(out, snap, r);
    });
    if (total > printed && printed >= limit) {
      out << "... " << (total - limit) << " more (raise --limit)\n";
    }
    out << total << " records in " << prefix->to_string() << "\n";
    return kExitOk;
  }
  const auto addr = net::Ipv6Address::parse(target);
  if (!addr) {
    err << "xmap_store: bad address: " << target << "\n";
    return kExitConfig;
  }
  Record r;
  if (!snap.lookup(*addr, &r)) {
    out << target << ": not found\n";
    return kExitOk;
  }
  print_record(out, snap, r);
  return kExitOk;
}

[[nodiscard]] int cmd_agg(const Snapshot& snap, const std::string& group,
                          const std::string& prefix_text, std::ostream& out,
                          std::ostream& err) {
  GroupBy by;
  if (group == "asn") {
    by = GroupBy::kAsn;
  } else if (group == "country") {
    by = GroupBy::kCountry;
  } else if (group == "vendor") {
    by = GroupBy::kVendor;
  } else if (group == "service") {
    by = GroupBy::kService;
  } else {
    err << "xmap_store: unknown grouping: " << group
        << " (want asn|country|vendor|service)\n";
    return kExitConfig;
  }
  std::vector<AggRow> rows;
  if (prefix_text.empty()) {
    rows = aggregate(snap, by);
  } else {
    const auto prefix = net::Ipv6Prefix::parse(prefix_text);
    if (!prefix) {
      err << "xmap_store: bad prefix: " << prefix_text << "\n";
      return kExitConfig;
    }
    rows = aggregate_prefix(snap, *prefix, by);
  }
  out << group << "  records  loop-cand  loop-conf  responses\n";
  for (const AggRow& row : rows) {
    out << row.key << "  " << row.records << "  " << row.loop_candidates
        << "  " << row.loop_confirmed << "  " << row.responses << "\n";
  }
  return kExitOk;
}

[[nodiscard]] int cmd_summary(const Snapshot& snap, std::ostream& out) {
  const PeripherySummary s = summarize(snap);
  out << "peripheries: " << s.records << "\n"
      << "loop candidates: " << s.loop_candidates << "\n"
      << "loop confirmed: " << s.loop_confirmed << "\n"
      << "ASNs: " << s.asns << " (" << s.loop_asns << " with loops)\n"
      << "countries: " << s.countries << " (" << s.loop_countries
      << " with loops)\n";
  return kExitOk;
}

}  // namespace

int store_cli_main(int argc, const char* const* argv, std::ostream& out,
                   std::ostream& err) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  if (args.empty()) {
    err << kUsage;
    return kExitConfig;
  }
  const std::string& cmd = args[0];

  // Shared flag scan (positional args keep their relative order).
  std::uint64_t limit = 20;
  int threads = 8;
  std::uint64_t lookups = 1'000'000;
  std::uint64_t seed = 1;
  std::vector<std::string> pos;
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto flag_value = [&](const char* name, std::uint64_t* out_value) {
      if (args[i] != name) return false;
      *out_value = ~std::uint64_t{0};
      if (i + 1 >= args.size()) {
        err << "xmap_store: " << name << " needs a value\n";
        return true;
      }
      const std::string& text = args[++i];
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        err << "xmap_store: " << name << " wants a number, got '" << text
            << "'\n";
        return true;
      }
      *out_value = v;
      return true;
    };
    std::uint64_t threads_u64 = 0;
    if (flag_value("--limit", &limit)) {
      if (limit == ~std::uint64_t{0}) return kExitConfig;
    } else if (flag_value("--threads", &threads_u64)) {
      if (threads_u64 == ~std::uint64_t{0}) return kExitConfig;
      threads = static_cast<int>(threads_u64);
    } else if (flag_value("--lookups", &lookups)) {
      if (lookups == ~std::uint64_t{0}) return kExitConfig;
    } else if (flag_value("--seed", &seed)) {
      if (seed == ~std::uint64_t{0}) return kExitConfig;
    } else if (args[i].rfind("--", 0) == 0) {
      err << "xmap_store: unknown flag: " << args[i] << "\n";
      return kExitConfig;
    } else {
      pos.push_back(args[i]);
    }
  }

  if (cmd == "diff") {
    if (pos.size() != 2) {
      err << kUsage;
      return kExitConfig;
    }
    auto before = open_or_report(pos[0], err);
    auto after = open_or_report(pos[1], err);
    if (!before || !after) return kExitConfig;
    std::uint64_t printed = 0;
    const DiffStats stats =
        diff(*before, *after, [&](const DiffEntry& e) {
          if (printed++ >= limit) return;
          const Record& r =
              e.kind == DiffKind::kRemoved ? e.before : e.after;
          out << to_string(e.kind) << " " << r.key.to_string() << "\n";
        });
    if (printed > limit) {
      out << "... " << (printed - limit) << " more (raise --limit)\n";
    }
    out << "added " << stats.added << ", removed " << stats.removed
        << ", changed " << stats.changed << ", unchanged " << stats.unchanged
        << "\n";
    return kExitOk;
  }

  if (pos.empty()) {
    err << kUsage;
    return kExitConfig;
  }
  if (cmd == "verify") {
    auto result = Snapshot::load(pos[0]);
    if (!result.snapshot) {
      err << "xmap_store: " << result.error << "\n";
      return kExitConfig;
    }
    out << pos[0] << ": ok (" << result.snapshot->record_count()
        << " records, " << result.snapshot->block_count() << " blocks)\n";
    return kExitOk;
  }
  auto snap = open_or_report(pos[0], err);
  if (!snap) return kExitConfig;

  if (cmd == "info") return cmd_info(*snap, out);
  if (cmd == "summary") return cmd_summary(*snap, out);
  if (cmd == "query") {
    if (pos.size() != 2) {
      err << kUsage;
      return kExitConfig;
    }
    return cmd_query(*snap, pos[1], limit, out, err);
  }
  if (cmd == "agg") {
    if (pos.size() != 2 && pos.size() != 3) {
      err << kUsage;
      return kExitConfig;
    }
    return cmd_agg(*snap, pos[1], pos.size() == 3 ? pos[2] : "", out, err);
  }
  if (cmd == "bench") {
    QueryLoadOptions options;
    options.threads = threads;
    options.lookups_per_thread = lookups;
    options.seed = seed;
    const QueryLoadResult r = run_query_load(*snap, options);
    out << r.lookups << " lookups, " << r.hits << " hits, "
        << r.seconds << " s, "
        << static_cast<std::uint64_t>(r.lookups_per_sec) << " lookups/s\n";
    return kExitOk;
  }
  err << kUsage;
  return kExitConfig;
}

}  // namespace xmap::store
