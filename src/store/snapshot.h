// Read side of the results store: load (mmap), validate, query.
//
// A Snapshot validates the entire file once at load — header, version,
// trailer (truncation), whole-file and per-block checksums, index
// monotonicity and a full structural decode of every record — and refuses
// to open anything inconsistent with a precise diagnostic (the
// recover-style "stored X, computed Y" form). After load the query path is
// infallible and allocation-free: point lookups binary-search the block
// index and delta-decode one block on the stack; prefix attribution goes
// through the netbase LC-trie compiled once at load (its arrays ride the
// thread-local BytePool) and shared read-only across any number of query
// threads. Snapshots are immutable; concurrent readers need no locks
// (asserted TSan-clean by tests/store/concurrent_test.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/compiler.h"
#include "netbase/prefix_map.h"
#include "store/format.h"

namespace xmap::store {

class Snapshot {
 public:
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot();

  struct LoadResult {
    std::unique_ptr<Snapshot> snapshot;  // null on error
    std::string error;                   // "path: diagnostic" on error
  };

  // Opens and validates a store file. The file is mmap'd read-only when
  // possible (falling back to a heap read); either way the bytes are
  // immutable for the snapshot's lifetime.
  [[nodiscard]] static LoadResult load(const std::string& path);

  // Validates an in-memory image (tests, benches, in-process pipelines).
  [[nodiscard]] static LoadResult from_buffer(std::string bytes);

  [[nodiscard]] const FileHeader& header() const { return header_; }
  [[nodiscard]] std::uint64_t record_count() const {
    return header_.record_count;
  }
  [[nodiscard]] std::uint64_t block_count() const {
    return header_.block_count;
  }
  [[nodiscard]] std::string git_sha() const;
  [[nodiscard]] std::size_t file_bytes() const { return size_; }

  // Point lookup by responder address. Fills *out and returns true when
  // present. Allocation-free.
  [[nodiscard]] bool lookup(const net::Ipv6Address& key, Record* out) const;

  // Visits every record whose key lies inside `prefix`, in key order.
  // Returns the number visited. Allocation-free apart from the callback.
  template <typename Fn>
  std::uint64_t scan_prefix(const net::Ipv6Prefix& prefix, Fn&& fn) const {
    if (index_.empty()) return 0;
    const net::Uint128 lo = prefix.address().value();
    const net::Uint128 hi =
        prefix.length() == 0
            ? net::Uint128::max()
            : lo | ~(net::Uint128::max() << (128 - prefix.length()));
    std::uint64_t visited = 0;
    for (std::size_t b = block_floor(net::Ipv6Address::from_value(lo));
         b < index_.size() && index_[b].first_key.value() <= hi; ++b) {
      decode_block(b, [&](const Record& r) {
        const net::Uint128 k = r.key.value();
        if (k >= lo && k <= hi) {
          ++visited;
          fn(r);
        }
        return k <= hi;  // stop once past the range
      });
    }
    return visited;
  }

  // Visits every record in key order; returns the count.
  template <typename Fn>
  std::uint64_t for_each(Fn&& fn) const {
    std::uint64_t visited = 0;
    for (std::size_t b = 0; b < index_.size(); ++b) {
      decode_block(b, [&](const Record& r) {
        ++visited;
        fn(r);
        return true;
      });
    }
    return visited;
  }

  // Longest-prefix attribution of an address against the geo section
  // (LC-trie lookup; nullptr for unmapped space). Allocation-free.
  [[nodiscard]] const GeoEntry* attribute(const net::Ipv6Address& addr) const {
    const std::uint32_t* idx = geo_trie_.lookup(addr);
    return idx == nullptr ? nullptr : &geo_[*idx];
  }

  [[nodiscard]] const std::vector<GeoEntry>& geo_entries() const {
    return geo_;
  }

  // Vendor-table name for a record's vendor id ("" = unidentified).
  [[nodiscard]] std::string_view vendor_name(std::uint16_t id) const {
    return id == 0 || id > vendors_.size() ? std::string_view{}
                                           : vendors_[id - 1];
  }
  [[nodiscard]] std::size_t vendor_count() const { return vendors_.size(); }

  // Pull-style sequential reader over all records in key order (diff's
  // merge walk needs two streams side by side, which the push-style
  // for_each cannot give it). Allocation-free.
  class Cursor {
   public:
    explicit Cursor(const Snapshot& snap) : snap_(&snap) {}

    // Fills *out with the next record; false at end of store.
    [[nodiscard]] bool next(Record* out) {
      while (block_ < snap_->index_.size()) {
        const BlockInfo& info = snap_->index_[block_];
        if (i_ < info.record_count) {
          const bool ok =
              decode_record(snap_->block_data(block_), info.used_bytes, &pos_,
                            i_ == 0, &prev_, out);
          ++i_;
          if (XMAP_LIKELY(ok)) return true;
          return false;  // unreachable on a validated store
        }
        ++block_;
        pos_ = 0;
        i_ = 0;
      }
      return false;
    }

   private:
    const Snapshot* snap_;
    std::size_t block_ = 0;
    std::size_t pos_ = 0;
    std::uint32_t i_ = 0;
    net::Ipv6Address prev_;
  };

 private:
  Snapshot() = default;

  // Validates the mapped bytes; fills all members. Returns "" or an error.
  [[nodiscard]] std::string validate_and_index();

  // Index of the last block whose first_key is <= addr (0 when addr
  // precedes everything — the caller's decode loop rejects by key).
  [[nodiscard]] std::size_t block_floor(const net::Ipv6Address& addr) const;

  [[nodiscard]] const char* block_data(std::size_t b) const {
    return data_ + kHeaderBytes +
           b * static_cast<std::size_t>(header_.block_bytes);
  }

  // Decodes block `b` in order, calling fn(record); fn returns false to
  // stop early. Load-time validation proved the block well-formed, so
  // decode failures cannot occur here; the loop still bounds-checks and
  // stops defensively.
  template <typename Fn>
  void decode_block(std::size_t b, Fn&& fn) const {
    const BlockInfo& info = index_[b];
    const char* data = block_data(b);
    std::size_t pos = 0;
    net::Ipv6Address prev;
    Record r;
    for (std::uint32_t i = 0; i < info.record_count; ++i) {
      if (XMAP_UNLIKELY(
              !decode_record(data, info.used_bytes, &pos, i == 0, &prev,
                             &r))) {
        return;
      }
      if (!fn(static_cast<const Record&>(r))) return;
    }
  }

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  // Exactly one of these owns data_: mmap (fd >= 0) or the heap buffer.
  int fd_ = -1;
  void* map_ = nullptr;
  std::string owned_;

  FileHeader header_;
  net::Uint128 max_key_{};  // last key in the file (O(1) miss reject)
  std::vector<BlockInfo> index_;
  std::vector<GeoEntry> geo_;
  net::PrefixMap<std::uint32_t> geo_trie_;
  std::vector<std::string> vendors_;
};

}  // namespace xmap::store
