#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace xmap::store {

namespace {

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Snapshot::~Snapshot() {
  if (map_ != nullptr) ::munmap(map_, size_);
  if (fd_ >= 0) ::close(fd_);
}

Snapshot::LoadResult Snapshot::load(const std::string& path) {
  std::unique_ptr<Snapshot> snap{new Snapshot};
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return {nullptr, path + ": " + std::strerror(errno)};
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return {nullptr, path + ": fstat: " + std::strerror(err)};
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* map = size == 0
                  ? MAP_FAILED
                  : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    snap->fd_ = fd;
    snap->map_ = map;
    snap->data_ = static_cast<const char*>(map);
    snap->size_ = size;
  } else {
    // mmap unavailable (exotic filesystem, zero-length file): plain read.
    std::string bytes(size, '\0');
    std::size_t off = 0;
    while (off < size) {
      const ssize_t n = ::read(fd, bytes.data() + off, size - off);
      if (n <= 0) {
        ::close(fd);
        return {nullptr, path + ": short read at byte " + std::to_string(off)};
      }
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    snap->owned_ = std::move(bytes);
    snap->data_ = snap->owned_.data();
    snap->size_ = snap->owned_.size();
  }
  if (std::string err = snap->validate_and_index(); !err.empty()) {
    return {nullptr, path + ": " + err};
  }
  return {std::move(snap), {}};
}

Snapshot::LoadResult Snapshot::from_buffer(std::string bytes) {
  std::unique_ptr<Snapshot> snap{new Snapshot};
  snap->owned_ = std::move(bytes);
  snap->data_ = snap->owned_.data();
  snap->size_ = snap->owned_.size();
  if (std::string err = snap->validate_and_index(); !err.empty()) {
    return {nullptr, "store buffer: " + err};
  }
  return {std::move(snap), {}};
}

std::string Snapshot::validate_and_index() {
  // Header + version.
  std::string err;
  if (!parse_header(data_, size_, &header_, &err)) return err;
  if (header_.version != kFormatVersion) {
    return "store format version: file " + std::to_string(header_.version) +
           ", reader supports " + std::to_string(kFormatVersion) +
           " (rebuild the store or upgrade the reader)";
  }
  if (header_.block_bytes < 256) {
    return "header block_bytes " + std::to_string(header_.block_bytes) +
           " below the 256-byte minimum";
  }

  // Trailer first: it is the truncation sentinel, so every later check can
  // assume the byte range [0, trailer_offset) is fully present.
  if (size_ < kHeaderBytes + kTrailerBytes) {
    return "truncated: file is " + std::to_string(size_) +
           " bytes, smaller than an empty store (" +
           std::to_string(kHeaderBytes + kTrailerBytes) + ")";
  }
  const char* trailer = data_ + size_ - kTrailerBytes;
  if (std::memcmp(trailer + 16, kEndMagic, sizeof kEndMagic) != 0) {
    return "truncated: end marker missing (file cut short or still being "
           "written)";
  }
  const std::uint64_t stored_hash = get_u64(trailer);
  const std::uint64_t stored_len = get_u64(trailer + 8);
  if (stored_len != size_ - kTrailerBytes) {
    return "truncated: trailer says the payload is " +
           std::to_string(stored_len) + " bytes but the file holds " +
           std::to_string(size_ - kTrailerBytes);
  }
  if (header_.trailer_offset != stored_len) {
    return "header/trailer disagree on payload length: header " +
           std::to_string(header_.trailer_offset) + ", trailer " +
           std::to_string(stored_len);
  }
  const std::uint64_t computed_hash = fnv1a(data_, size_ - kTrailerBytes);
  if (computed_hash != stored_hash) {
    return "whole-file checksum mismatch: stored " + hex64(stored_hash) +
           ", computed " + hex64(computed_hash) + " (corrupted store)";
  }

  // Section offsets must tile [header, trailer) in order.
  const std::uint64_t want_index =
      kHeaderBytes +
      header_.block_count * static_cast<std::uint64_t>(header_.block_bytes);
  if (header_.index_offset != want_index ||
      header_.geo_offset !=
          header_.index_offset + header_.block_count * kIndexEntryBytes ||
      header_.geo_offset > header_.vendor_offset ||
      header_.vendor_offset > header_.trailer_offset) {
    return "header section offsets are inconsistent (corrupted header)";
  }

  // Block index: per-block checksums, monotone keys, count agreement.
  index_.clear();
  index_.reserve(header_.block_count);
  std::uint64_t records_seen = 0;
  for (std::uint64_t b = 0; b < header_.block_count; ++b) {
    const BlockInfo info =
        parse_index_entry(data_ + header_.index_offset + b * kIndexEntryBytes);
    if (info.used_bytes > header_.block_bytes || info.record_count == 0) {
      return "block " + std::to_string(b) + " index entry is malformed (" +
             std::to_string(info.used_bytes) + " used bytes, " +
             std::to_string(info.record_count) + " records)";
    }
    const char* block =
        data_ + kHeaderBytes + b * static_cast<std::size_t>(header_.block_bytes);
    const std::uint64_t sum = fnv1a(block, header_.block_bytes);
    if (sum != info.checksum) {
      return "block " + std::to_string(b) + " checksum mismatch: stored " +
             hex64(info.checksum) + ", computed " + hex64(sum) +
             " (corrupted store)";
    }
    if (!index_.empty() && !(index_.back().first_key < info.first_key)) {
      return "block " + std::to_string(b) +
             " first key is not greater than its predecessor's (store is "
             "not sorted)";
    }
    records_seen += info.record_count;
    index_.push_back(info);
  }
  if (records_seen != header_.record_count) {
    return "record count mismatch: header says " +
           std::to_string(header_.record_count) + ", block index sums to " +
           std::to_string(records_seen);
  }

  // Full structural decode: proves every record parses and keys are strictly
  // increasing across the whole file, so the query path never sees a decode
  // failure. Blocks already passed their checksums, so any failure here is a
  // writer bug rather than bit rot — still refuse to load.
  net::Ipv6Address last_key;
  bool have_last = false;
  for (std::size_t b = 0; b < index_.size(); ++b) {
    const BlockInfo& info = index_[b];
    const char* block = block_data(b);
    std::size_t pos = 0;
    net::Ipv6Address prev;
    Record r;
    for (std::uint32_t i = 0; i < info.record_count; ++i) {
      if (!decode_record(block, info.used_bytes, &pos, i == 0, &prev, &r)) {
        return "block " + std::to_string(b) + " record " + std::to_string(i) +
               " does not decode (inconsistent store)";
      }
      if (i == 0 && r.key != info.first_key) {
        return "block " + std::to_string(b) +
               " first record disagrees with the index entry";
      }
      if (have_last && !(last_key < r.key)) {
        return "block " + std::to_string(b) + " record " + std::to_string(i) +
               " is out of order (store keys must be strictly increasing)";
      }
      last_key = r.key;
      have_last = true;
      max_key_ = r.key.value();
    }
    if (pos != info.used_bytes) {
      return "block " + std::to_string(b) + " has " +
             std::to_string(info.used_bytes - pos) +
             " trailing bytes after the last record";
    }
  }

  // Geo section -> entries + compiled LC-trie.
  {
    const char* geo = data_ + header_.geo_offset;
    const std::size_t geo_len = header_.vendor_offset - header_.geo_offset;
    if (geo_len < 8) return "geo section is too small for its entry count";
    const std::uint64_t count = get_u64(geo);
    std::size_t pos = 8;
    geo_.clear();
    geo_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      if (pos + 17 > geo_len) {
        return "geo entry " + std::to_string(i) + " overruns its section";
      }
      GeoEntry g;
      std::array<std::uint8_t, 16> addr{};
      std::memcpy(addr.data(), geo + pos, 16);
      pos += 16;
      const int len = static_cast<unsigned char>(geo[pos++]);
      if (len > 128) {
        return "geo entry " + std::to_string(i) + " has prefix length " +
               std::to_string(len);
      }
      g.prefix = net::Ipv6Prefix{net::Ipv6Address{addr}, len};
      std::uint64_t asn = 0;
      if (!get_varint64(geo, geo_len, &pos, &asn) || asn > 0xffffffffULL) {
        return "geo entry " + std::to_string(i) + " has a malformed ASN";
      }
      g.asn = static_cast<std::uint32_t>(asn);
      if (pos + 2 > geo_len) {
        return "geo entry " + std::to_string(i) + " overruns its section";
      }
      g.country = {geo[pos], geo[pos + 1]};
      pos += 2;
      std::uint64_t name_len = 0;
      if (!get_varint64(geo, geo_len, &pos, &name_len) ||
          pos + name_len > geo_len) {
        return "geo entry " + std::to_string(i) + " has a malformed AS name";
      }
      g.as_name.assign(geo + pos, name_len);
      pos += name_len;
      geo_.push_back(std::move(g));
    }
    if (pos != geo_len) {
      return "geo section has " + std::to_string(geo_len - pos) +
             " trailing bytes";
    }
    for (std::size_t i = 0; i < geo_.size(); ++i) {
      geo_trie_.insert(geo_[i].prefix, static_cast<std::uint32_t>(i));
    }
    // Compile now: the lazy path mutates shared state on first lookup, and
    // snapshots are handed to concurrent readers.
    geo_trie_.compile();
  }

  // Vendor table.
  {
    const char* ven = data_ + header_.vendor_offset;
    const std::size_t ven_len = header_.trailer_offset - header_.vendor_offset;
    if (ven_len < 4) return "vendor table is too small for its entry count";
    const std::uint32_t count = get_u32(ven);
    if (count > 0xffff) {
      return "vendor table declares " + std::to_string(count) +
             " names (limit 65535)";
    }
    std::size_t pos = 4;
    vendors_.clear();
    vendors_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint64_t len = 0;
      if (!get_varint64(ven, ven_len, &pos, &len) || pos + len > ven_len) {
        return "vendor name " + std::to_string(i) + " overruns its table";
      }
      vendors_.emplace_back(ven + pos, len);
      pos += len;
    }
    if (pos != ven_len) {
      return "vendor table has " + std::to_string(ven_len - pos) +
             " trailing bytes";
    }
  }
  return {};
}

std::string Snapshot::git_sha() const {
  const auto& sha = header_.git_sha;
  std::size_t n = 0;
  while (n < sha.size() && sha[n] != '\0') ++n;
  return std::string{sha.data(), n};
}

std::size_t Snapshot::block_floor(const net::Ipv6Address& addr) const {
  // First block whose first_key > addr, minus one.
  const auto it = std::upper_bound(
      index_.begin(), index_.end(), addr,
      [](const net::Ipv6Address& a, const BlockInfo& b) {
        return a < b.first_key;
      });
  if (it == index_.begin()) return 0;
  return static_cast<std::size_t>(it - index_.begin()) - 1;
}

bool Snapshot::lookup(const net::Ipv6Address& key, Record* out) const {
  if (index_.empty()) return false;
  const net::Uint128 target = key.value();
  if (target > max_key_ || key < index_.front().first_key) return false;
  const std::size_t b = block_floor(key);
  const BlockInfo& info = index_[b];
  const char* data = block_data(b);
  // Key-only scan: decode each key, skip field bodies, and materialize the
  // full record only on a match (load-time validation proved the block
  // decodes, so failures here are unreachable but still bail out).
  std::size_t pos = 0;
  net::Uint128 k{};
  for (std::uint32_t i = 0; i < info.record_count; ++i) {
    if (XMAP_UNLIKELY(!decode_key(data, info.used_bytes, &pos, i == 0, &k))) {
      return false;
    }
    if (k == target) {
      out->key = key;
      return decode_fields(data, info.used_bytes, &pos, out);
    }
    if (k > target) return false;  // keys are sorted: past the target
    if (XMAP_UNLIKELY(!skip_fields(data, info.used_bytes, &pos))) {
      return false;
    }
  }
  return false;
}

}  // namespace xmap::store
