#include "store/query.h"

#include <algorithm>
#include <map>
#include <set>

#include "services/service.h"

namespace xmap::store {

namespace {

[[nodiscard]] std::string asn_key(const GeoEntry* geo) {
  if (geo == nullptr) return "unattributed";
  std::string key = "AS" + std::to_string(geo->asn);
  if (!geo->as_name.empty()) key += " " + geo->as_name;
  return key;
}

[[nodiscard]] std::string country_key(const GeoEntry* geo) {
  if (geo == nullptr) return "--";
  return std::string{geo->country[0]} + geo->country[1];
}

void accumulate(AggRow& row, const Record& r) {
  ++row.records;
  row.responses += r.responses;
  if ((r.flags & kFlagLoopCandidate) != 0) ++row.loop_candidates;
  if ((r.flags & kFlagLoopConfirmed) != 0) ++row.loop_confirmed;
}

template <typename Visit>
[[nodiscard]] std::vector<AggRow> aggregate_impl(const Snapshot& snap,
                                                 GroupBy by, Visit&& visit) {
  std::map<std::string, AggRow> groups;
  auto bump = [&](std::string key, const Record& r) {
    AggRow& row = groups[key];
    if (row.key.empty()) row.key = std::move(key);
    accumulate(row, r);
  };
  visit([&](const Record& r) {
    switch (by) {
      case GroupBy::kAsn:
        bump(asn_key(snap.attribute(r.key)), r);
        break;
      case GroupBy::kCountry:
        bump(country_key(snap.attribute(r.key)), r);
        break;
      case GroupBy::kVendor: {
        const std::string_view name = snap.vendor_name(r.vendor);
        bump(name.empty() ? std::string{"unknown"} : std::string{name}, r);
        break;
      }
      case GroupBy::kService:
        for (int bit = 0; bit < svc::kServiceCount; ++bit) {
          if ((r.services >> bit) & 1) {
            bump(svc::service_name(static_cast<svc::ServiceKind>(bit)), r);
          }
        }
        break;
    }
  });
  std::vector<AggRow> rows;
  rows.reserve(groups.size());
  for (auto& [key, row] : groups) rows.push_back(std::move(row));
  std::stable_sort(rows.begin(), rows.end(),
                   [](const AggRow& a, const AggRow& b) {
                     if (a.records != b.records) return a.records > b.records;
                     return a.key < b.key;
                   });
  return rows;
}

}  // namespace

std::vector<AggRow> aggregate(const Snapshot& snap, GroupBy by) {
  return aggregate_impl(snap, by,
                        [&](auto&& fn) { snap.for_each(fn); });
}

std::vector<AggRow> aggregate_prefix(const Snapshot& snap,
                                     const net::Ipv6Prefix& prefix,
                                     GroupBy by) {
  return aggregate_impl(snap, by,
                        [&](auto&& fn) { snap.scan_prefix(prefix, fn); });
}

PeripherySummary summarize(const Snapshot& snap) {
  PeripherySummary s;
  std::set<std::uint32_t> asns, loop_asns;
  std::set<std::string> countries, loop_countries;
  snap.for_each([&](const Record& r) {
    ++s.records;
    const bool loop = (r.flags & kFlagLoopCandidate) != 0;
    if (loop) ++s.loop_candidates;
    if ((r.flags & kFlagLoopConfirmed) != 0) ++s.loop_confirmed;
    if (const GeoEntry* geo = snap.attribute(r.key)) {
      asns.insert(geo->asn);
      countries.insert(country_key(geo));
      if (loop) {
        loop_asns.insert(geo->asn);
        loop_countries.insert(country_key(geo));
      }
    }
  });
  s.asns = asns.size();
  s.countries = countries.size();
  s.loop_asns = loop_asns.size();
  s.loop_countries = loop_countries.size();
  return s;
}

}  // namespace xmap::store
