#include "store/service.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace xmap::store {

namespace {

// splitmix64: deterministic, seedable, no <random> machinery.
[[nodiscard]] std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Latency buckets for one 256-lookup batch, in nanoseconds.
[[nodiscard]] std::vector<std::uint64_t> latency_bounds() {
  return {1'000,     4'000,      16'000,     64'000,
          256'000,   1'000'000,  4'000'000,  16'000'000};
}

}  // namespace

QueryLoadResult run_query_load(const Snapshot& snap,
                               const QueryLoadOptions& options) {
  const int threads = options.threads < 1 ? 1 : options.threads;
  const std::uint64_t per_thread =
      options.lookups_per_thread < 1 ? 1 : options.lookups_per_thread;

  // Pool of present keys, sampled by stride so it spans the whole file.
  std::vector<net::Ipv6Address> present;
  {
    const std::uint64_t want = 65'536;
    const std::uint64_t stride =
        snap.record_count() > want ? snap.record_count() / want : 1;
    std::uint64_t i = 0;
    snap.for_each([&](const Record& r) {
      if (i++ % stride == 0) present.push_back(r.key);
    });
  }

  // Per-thread key streams, fully materialised before the clock starts so
  // the measured loop touches nothing but the snapshot and the stream.
  std::vector<std::vector<net::Ipv6Address>> streams(
      static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    std::uint64_t rng = options.seed * 0x9e3779b97f4a7c15ULL +
                        static_cast<std::uint64_t>(t) + 1;
    auto& stream = streams[static_cast<std::size_t>(t)];
    stream.reserve(per_thread);
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      const std::uint64_t r = mix64(rng);
      if (!present.empty() &&
          static_cast<int>(r & 0xff) < options.hit_mix) {
        stream.push_back(present[(r >> 8) % present.size()]);
      } else {
        stream.push_back(net::Ipv6Address::from_value(
            net::Uint128{mix64(rng), mix64(rng)}));
      }
    }
  }

  std::vector<obs::MetricsShard> shards(static_cast<std::size_t>(threads));
  std::vector<std::uint64_t> hit_counts(static_cast<std::size_t>(threads), 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const auto ti = static_cast<std::size_t>(t);
      obs::MetricsShard& shard = shards[ti];
      // Resolve metric cells before the barrier: the measured loop is a
      // plain pointer increment, no map lookups, no allocation. Series are
      // unlabeled so the merged snapshot is the same no matter how many
      // worker shards produced it (the obs sharding convention).
      std::uint64_t* queries = shard.counter(
          "store_queries_total", {},
          "point lookups issued by the query-load harness");
      std::uint64_t* hits = shard.counter(
          "store_query_hits_total", {},
          "point lookups that found a record");
      obs::Histogram* batch_ns = shard.histogram(
          "store_query_batch_ns", latency_bounds(), {},
          "wall latency of each 256-lookup batch");
      const std::vector<net::Ipv6Address>& stream = streams[ti];
      while (!go.load(std::memory_order_acquire)) {
      }
      Record rec;
      std::size_t i = 0;
      const std::size_t n = stream.size();
      while (i < n) {
        const std::size_t batch_end = i + 256 < n ? i + 256 : n;
        const auto t0 = std::chrono::steady_clock::now();
        for (; i < batch_end; ++i) {
          ++*queries;
          if (snap.lookup(stream[i], &rec)) ++*hits;
        }
        const auto t1 = std::chrono::steady_clock::now();
        batch_ns->observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
      hit_counts[ti] = *hits;
    });
  }

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  const auto stop = std::chrono::steady_clock::now();

  QueryLoadResult result;
  result.lookups = per_thread * static_cast<std::uint64_t>(threads);
  for (std::uint64_t h : hit_counts) result.hits += h;
  result.seconds =
      std::chrono::duration<double>(stop - start).count();
  result.lookups_per_sec =
      result.seconds > 0 ? static_cast<double>(result.lookups) / result.seconds
                         : 0.0;
  std::vector<const obs::MetricsShard*> shard_ptrs;
  shard_ptrs.reserve(shards.size());
  for (const obs::MetricsShard& s : shards) shard_ptrs.push_back(&s);
  result.metrics = obs::merge_shards(shard_ptrs);
  return result;
}

}  // namespace xmap::store
