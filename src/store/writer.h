// StoreBuilder: accumulates scan results and serializes them into the
// immutable store format (format.h).
//
// Determinism contract: serialize() output is a pure function of the
// *set* of records, geo entries and vendor names added — insertion order
// (including nondeterministic unordered_map walks upstream) never leaks
// into the bytes. Records are sorted by key; duplicate keys merge
// order-independently (response counts sum, service/flag bits OR, the
// "first response" fields come from the entry that is minimal under a
// total order). This is what makes `xmap_sim --store-file` byte-identical
// across --threads values.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/format.h"

namespace xmap::store {

class StoreBuilder {
 public:
  explicit StoreBuilder(std::uint32_t block_bytes = kDefaultBlockBytes);

  // Interns a vendor name; returns the provisional id to put in
  // Record::vendor (0 for the empty string = unidentified). Final file ids
  // are assigned in sorted-name order at serialize time.
  std::uint16_t vendor_id(const std::string& name);

  // Adds one record (any order; duplicate keys merge at serialize time).
  void add(const Record& record);

  // Adds one attribution entry (the producing scan's GeoDb content).
  void add_geo(const GeoEntry& entry);

  // Scan-identity metadata stamped into the header.
  void set_config_fingerprint(std::uint64_t fp) { config_fingerprint_ = fp; }
  void set_git_sha(const std::string& sha) { git_sha_ = sha; }

  [[nodiscard]] std::size_t pending_records() const {
    return records_.size();
  }

  // Builds the complete file image. Idempotent w.r.t. the added content;
  // callable once (it consumes and re-sorts internal state).
  [[nodiscard]] std::string serialize();

  // serialize() + atomic temp+rename write (recover::write_file_atomic).
  bool write(const std::string& path, std::string* error = nullptr);

 private:
  std::uint32_t block_bytes_;
  std::vector<Record> records_;
  std::vector<GeoEntry> geo_;
  std::vector<std::string> vendor_names_;  // [0] = "" (unidentified)
  std::unordered_map<std::string, std::uint16_t> vendor_ids_;
  std::uint64_t config_fingerprint_ = 0;
  std::string git_sha_;
};

// The source revision to stamp into headers: $GITHUB_SHA, else
// `git rev-parse HEAD`, else "unknown". Stable across invocations on one
// checkout, so it never breaks producer byte-identity.
[[nodiscard]] std::string current_git_sha();

}  // namespace xmap::store
