#include "store/format.h"

#include <cstring>

namespace xmap::store {

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u16(std::string& out, std::uint16_t v) {
  char b[2];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>(v >> 8);
  out.append(b, 2);
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t get_u16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(u[0] | (u[1] << 8));
}

std::uint32_t get_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

std::uint64_t get_u64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

void put_varint64(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_varint128(std::string& out, net::Uint128 v) {
  while (v >= net::Uint128{0x80}) {
    out.push_back(static_cast<char>((v.to_u64() & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v.to_u64()));
}

bool get_varint64(const char* data, std::size_t len, std::size_t* pos,
                  std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= len) return false;
    const auto byte =
        static_cast<unsigned char>(data[(*pos)++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;  // over-long encoding (> 10 groups)
}

bool get_varint128(const char* data, std::size_t len, std::size_t* pos,
                   net::Uint128* out) {
  net::Uint128 v{};
  for (int shift = 0; shift < 128; shift += 7) {
    if (*pos >= len) return false;
    const auto byte =
        static_cast<unsigned char>(data[(*pos)++]);
    v = v | (net::Uint128{static_cast<std::uint64_t>(byte & 0x7f)} << shift);
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

std::string serialize_header(const FileHeader& header) {
  std::string out;
  out.reserve(kHeaderBytes);
  out.append(kMagic, sizeof kMagic);
  put_u32(out, header.version);
  put_u32(out, header.block_bytes);
  put_u64(out, header.block_count);
  put_u64(out, header.record_count);
  put_u64(out, header.index_offset);
  put_u64(out, header.geo_offset);
  put_u64(out, header.vendor_offset);
  put_u64(out, header.trailer_offset);
  put_u64(out, header.config_fingerprint);
  out.append(header.git_sha.data(), header.git_sha.size());
  out.resize(kHeaderBytes, '\0');
  return out;
}

bool parse_header(const char* data, std::size_t len, FileHeader* out,
                  std::string* error) {
  if (len < kHeaderBytes) {
    *error = "file too small for a store header";
    return false;
  }
  if (std::memcmp(data, kMagic, sizeof kMagic) != 0) {
    *error = "bad magic (not an xmap results store)";
    return false;
  }
  std::size_t p = sizeof kMagic;
  out->version = get_u32(data + p);
  p += 4;
  out->block_bytes = get_u32(data + p);
  p += 4;
  out->block_count = get_u64(data + p);
  p += 8;
  out->record_count = get_u64(data + p);
  p += 8;
  out->index_offset = get_u64(data + p);
  p += 8;
  out->geo_offset = get_u64(data + p);
  p += 8;
  out->vendor_offset = get_u64(data + p);
  p += 8;
  out->trailer_offset = get_u64(data + p);
  p += 8;
  out->config_fingerprint = get_u64(data + p);
  p += 8;
  std::memcpy(out->git_sha.data(), data + p, out->git_sha.size());
  return true;
}

std::string serialize_index_entry(const BlockInfo& info) {
  std::string out;
  out.reserve(kIndexEntryBytes);
  out.append(reinterpret_cast<const char*>(info.first_key.bytes().data()),
             16);
  put_u32(out, info.record_count);
  put_u32(out, info.used_bytes);
  put_u64(out, info.checksum);
  return out;
}

BlockInfo parse_index_entry(const char* p) {
  BlockInfo info;
  std::array<std::uint8_t, 16> key{};
  std::memcpy(key.data(), p, 16);
  info.first_key = net::Ipv6Address{key};
  info.record_count = get_u32(p + 16);
  info.used_bytes = get_u32(p + 20);
  info.checksum = get_u64(p + 24);
  return info;
}

void encode_record(std::string& out, const Record& record,
                   const net::Ipv6Address* prev_key) {
  if (prev_key == nullptr) {
    out.append(reinterpret_cast<const char*>(record.key.bytes().data()), 16);
  } else {
    put_varint128(out, record.key.value() - prev_key->value());
  }
  // probe_dst usually shares the key's routing prefix, so the XOR against
  // the key is a short varint.
  put_varint128(out, record.probe_dst.value() ^ record.key.value());
  out.push_back(static_cast<char>(record.kind));
  out.push_back(static_cast<char>(record.icmp_code));
  out.push_back(static_cast<char>(record.hop_limit));
  out.push_back(static_cast<char>(record.flags));
  put_varint64(out, record.vendor);
  put_varint64(out, record.services);
  put_varint64(out, record.responses);
  put_varint64(out, record.first_us);
}

bool decode_record(const char* data, std::size_t len, std::size_t* pos,
                   bool first, net::Ipv6Address* prev_key, Record* out) {
  net::Uint128 key = prev_key->value();
  if (!decode_key(data, len, pos, first, &key)) return false;
  out->key = net::Ipv6Address::from_value(key);
  if (!decode_fields(data, len, pos, out)) return false;
  *prev_key = out->key;
  return true;
}

bool decode_key(const char* data, std::size_t len, std::size_t* pos,
                bool first, net::Uint128* prev_key) {
  if (first) {
    if (*pos + 16 > len) return false;
    std::array<std::uint8_t, 16> key{};
    std::memcpy(key.data(), data + *pos, 16);
    *pos += 16;
    *prev_key = net::Ipv6Address{key}.value();
    return true;
  }
  net::Uint128 delta{};
  if (!get_varint128(data, len, pos, &delta)) return false;
  *prev_key = *prev_key + delta;
  return true;
}

namespace {

// Advances past one varint of at most `max_groups` bytes without decoding.
bool skip_varint(const char* data, std::size_t len, std::size_t* pos,
                 int max_groups) {
  for (int i = 0; i < max_groups; ++i) {
    if (*pos >= len) return false;
    if ((static_cast<unsigned char>(data[(*pos)++]) & 0x80) == 0) return true;
  }
  return false;  // over-long encoding
}

}  // namespace

bool skip_fields(const char* data, std::size_t len, std::size_t* pos) {
  if (!skip_varint(data, len, pos, 19)) return false;  // probe_dst XOR
  if (*pos + 4 > len) return false;                    // kind..flags
  *pos += 4;
  for (int i = 0; i < 4; ++i) {  // vendor, services, responses, first_us
    if (!skip_varint(data, len, pos, 10)) return false;
  }
  return true;
}

bool decode_fields(const char* data, std::size_t len, std::size_t* pos,
                   Record* out) {
  net::Uint128 dst_xor{};
  if (!get_varint128(data, len, pos, &dst_xor)) return false;
  out->probe_dst = net::Ipv6Address::from_value(out->key.value() ^ dst_xor);
  if (*pos + 4 > len) return false;
  out->kind = static_cast<std::uint8_t>(data[(*pos)++]);
  out->icmp_code = static_cast<std::uint8_t>(data[(*pos)++]);
  out->hop_limit = static_cast<std::uint8_t>(data[(*pos)++]);
  out->flags = static_cast<std::uint8_t>(data[(*pos)++]);
  std::uint64_t vendor = 0, services = 0;
  if (!get_varint64(data, len, pos, &vendor)) return false;
  if (!get_varint64(data, len, pos, &services)) return false;
  if (vendor > 0xffff || services > 0xffff) return false;
  out->vendor = static_cast<std::uint16_t>(vendor);
  out->services = static_cast<std::uint16_t>(services);
  if (!get_varint64(data, len, pos, &out->responses)) return false;
  if (!get_varint64(data, len, pos, &out->first_us)) return false;
  return true;
}

}  // namespace xmap::store
