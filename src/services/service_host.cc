#include "services/service_host.h"

#include "netbase/random.h"

namespace xmap::svc {
namespace {

// Deterministic server initial sequence number for a 4-tuple.
std::uint32_t server_isn(const net::Ipv6Address& peer, std::uint16_t peer_port,
                         std::uint16_t local_port) {
  const std::uint64_t h = net::hash_combine64(
      peer.value().lo() ^ peer.value().hi(),
      (static_cast<std::uint64_t>(peer_port) << 16) | local_port);
  return static_cast<std::uint32_t>(h);
}

}  // namespace

void ServiceHost::bind(std::unique_ptr<ServiceEndpoint> service) {
  const std::uint16_t port = port_of(service->kind());
  services_[port] = std::move(service);
}

std::vector<pkt::Bytes> ServiceHost::handle(const pkt::Bytes& packet,
                                            const net::Ipv6Address& self) {
  std::vector<pkt::Bytes> out;
  pkt::Ipv6View ip{packet};
  if (!ip.valid()) return out;

  if (ip.next_header() == pkt::kProtoUdp) {
    pkt::UdpView udp{ip.payload()};
    if (!udp.valid() || !udp.checksum_ok(ip.src(), ip.dst())) return out;
    auto it = services_.find(udp.dst_port());
    if (it == services_.end()) {
      out.push_back(pkt::build_icmpv6_error(
          self, pkt::Icmpv6Type::kDestUnreachable,
          static_cast<std::uint8_t>(pkt::UnreachCode::kPortUnreachable),
          packet));
      return out;
    }
    if (auto resp = it->second->handle_datagram(udp.payload())) {
      out.push_back(pkt::build_udp(self, ip.src(), udp.dst_port(),
                                   udp.src_port(), *resp));
    }
    return out;
  }

  if (ip.next_header() == pkt::kProtoTcp) {
    pkt::TcpView tcp{ip.payload()};
    if (!tcp.valid() || !tcp.checksum_ok(ip.src(), ip.dst())) return out;
    const std::uint16_t lport = tcp.dst_port();
    const std::uint16_t rport = tcp.src_port();
    auto it = services_.find(lport);
    const std::uint32_t isn = server_isn(ip.src(), rport, lport);

    if (tcp.flags() & pkt::kTcpRst) return out;  // never answer RSTs

    if (it == services_.end()) {
      // Closed port: RST/ACK per RFC 9293 §3.10.7.1.
      out.push_back(pkt::build_tcp(self, ip.src(), lport, rport, 0,
                                   tcp.seq() + 1, pkt::kTcpRst | pkt::kTcpAck,
                                   0));
      return out;
    }

    ServiceEndpoint& service = *it->second;
    if (tcp.flags() & pkt::kTcpSyn) {
      out.push_back(pkt::build_tcp(self, ip.src(), lport, rport, isn,
                                   tcp.seq() + 1, pkt::kTcpSyn | pkt::kTcpAck,
                                   65535));
      return out;
    }

    if (tcp.flags() & pkt::kTcpFin) {
      out.push_back(pkt::build_tcp(self, ip.src(), lport, rport, tcp.ack(),
                                   tcp.seq() + 1, pkt::kTcpFin | pkt::kTcpAck,
                                   65535));
      return out;
    }

    if (tcp.flags() & pkt::kTcpAck) {
      const auto data = tcp.payload();
      if (data.empty()) {
        // Handshake-completing ACK: push the greeting, if any.
        Bytes greeting = service.greeting();
        if (!greeting.empty()) {
          out.push_back(pkt::build_tcp(self, ip.src(), lport, rport, isn + 1,
                                       tcp.seq(), pkt::kTcpPsh | pkt::kTcpAck,
                                       65535, greeting));
        }
        return out;
      }
      if (auto resp = service.handle_stream(data)) {
        // Ack the client's data; continue our stream after any greeting.
        const std::uint32_t server_seq =
            isn + 1 + static_cast<std::uint32_t>(service.greeting().size());
        out.push_back(pkt::build_tcp(
            self, ip.src(), lport, rport, server_seq,
            tcp.seq() + static_cast<std::uint32_t>(data.size()),
            pkt::kTcpPsh | pkt::kTcpAck, 65535, *resp));
      }
      return out;
    }
  }

  return out;
}

}  // namespace xmap::svc
