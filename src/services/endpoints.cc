// Concrete service endpoint implementations.
//
// Substitution note (see DESIGN.md): these speak genuine wire formats where
// the experiment depends on it (DNS, NTP datagram layout, HTTP) and
// authentic-looking text banners elsewhere (FTP/SSH/TELNET). TLS is modelled
// as a handshake-shaped exchange carrying the certificate subject in clear —
// the paper's grabber only extracts the certificate identity, so a full TLS
// stack would add nothing to the measured behaviour.
#include <algorithm>
#include <cstring>

#include "services/dns_codec.h"
#include "services/service.h"

namespace xmap::svc {
namespace {

Bytes to_bytes(const std::string& s) {
  return Bytes{s.begin(), s.end()};
}

std::string to_string_view_copy(std::span<const std::uint8_t> data) {
  return std::string{reinterpret_cast<const char*>(data.data()), data.size()};
}

class EndpointBase : public ServiceEndpoint {
 public:
  EndpointBase(ServiceKind kind, SoftwareInfo software, std::string banner)
      : kind_(kind), software_(std::move(software)),
        device_banner_(std::move(banner)) {}

  [[nodiscard]] ServiceKind kind() const override { return kind_; }
  [[nodiscard]] const SoftwareInfo& software() const override {
    return software_;
  }

 protected:
  [[nodiscard]] const std::string& device_banner() const {
    return device_banner_;
  }

 private:
  ServiceKind kind_;
  SoftwareInfo software_;
  std::string device_banner_;
};

// ---------------------------------------------------------------------------
// DNS forwarder (dnsmasq-style): answers A/AAAA from a tiny synthetic cache
// and "version.bind TXT CH" with the software version.
// ---------------------------------------------------------------------------
class DnsService final : public EndpointBase {
 public:
  using EndpointBase::EndpointBase;

  std::optional<Bytes> handle_datagram(
      std::span<const std::uint8_t> request) override {
    auto query = DnsMessage::decode(request);
    if (!query || query->is_response || query->questions.empty()) {
      return std::nullopt;
    }
    const DnsQuestion& q = query->questions.front();

    DnsMessage resp;
    resp.id = query->id;
    resp.is_response = true;
    resp.recursion_desired = query->recursion_desired;
    resp.recursion_available = true;  // it is an (open) forwarder
    resp.questions.push_back(q);

    if (q.klass == DnsClass::kChaos && q.type == DnsType::kTxt &&
        (q.name == "version.bind" || q.name == "version.server")) {
      resp.answers.push_back(DnsRecord::txt(q.name, DnsClass::kChaos,
                                            software().full(), 0));
    } else if (q.klass == DnsClass::kIn && q.type == DnsType::kA) {
      // Synthetic forwarded answer: a stable fake derived from the name.
      std::uint32_t h = 0x811c9dc5;
      for (char c : q.name) h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
      const std::uint32_t addr = 0x05000000u | (h & 0x00ffffffu);  // 5.x.x.x
      resp.answers.push_back(DnsRecord::a(q.name, addr, 300));
    } else if (q.klass == DnsClass::kIn && q.type == DnsType::kAaaa) {
      std::uint8_t addr[16] = {0x20, 0x01, 0x0d, 0xb8, 0xee, 0xee};
      std::uint32_t h = 0x811c9dc5;
      for (char c : q.name) h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
      std::memcpy(addr + 12, &h, 4);
      resp.answers.push_back(DnsRecord::aaaa(q.name, addr, 300));
    } else {
      resp.rcode = DnsRcode::kNotImp;
    }
    const auto wire = resp.encode();
    return Bytes(wire.begin(), wire.end());
  }
};

// ---------------------------------------------------------------------------
// NTP v4 server: answers a 48-byte mode-3 (client) packet with a mode-4
// (server) packet; version bits echo the server version (Table VII: all
// exposed NTP servers ran version 4).
// ---------------------------------------------------------------------------
class NtpService final : public EndpointBase {
 public:
  using EndpointBase::EndpointBase;

  std::optional<Bytes> handle_datagram(
      std::span<const std::uint8_t> request) override {
    if (request.size() >= 12 && (request[0] & 0x07) == 6) {
      // NTP control message (mode 6), opcode READVAR: answer with the
      // ASCII variable list carrying the daemon version — the query
      // ntpq/ZGrab actually send for fingerprinting.
      if ((request[1] & 0x1f) != 2) return std::nullopt;
      const std::string vars = "version=\"" + software().full() +
                               "\", processor=\"mips\", system=\"Linux\"";
      Bytes resp(12, 0);
      resp[0] = (request[0] & 0x38) | 6;   // same version, mode 6
      resp[1] = 0x80 | 2;                  // response bit + READVAR opcode
      resp[2] = request[2];                // sequence echoed
      resp[3] = request[3];
      resp[10] = static_cast<std::uint8_t>(vars.size() >> 8);
      resp[11] = static_cast<std::uint8_t>(vars.size() & 0xff);
      resp.insert(resp.end(), vars.begin(), vars.end());
      return resp;
    }
    if (request.size() < 48) return std::nullopt;
    const std::uint8_t li_vn_mode = request[0];
    const std::uint8_t mode = li_vn_mode & 0x07;
    if (mode != 3) return std::nullopt;  // only answer client requests
    Bytes resp(48, 0);
    resp[0] = static_cast<std::uint8_t>((4u << 3) | 4u);  // version 4, server
    resp[1] = 2;                                          // stratum 2
    resp[2] = request[2];                                 // poll echoed
    // Reference id: "LOCL".
    resp[12] = 'L';
    resp[13] = 'O';
    resp[14] = 'C';
    resp[15] = 'L';
    // Originate timestamp := client transmit timestamp (bytes 40..47).
    std::copy(request.begin() + 40, request.begin() + 48, resp.begin() + 24);
    // Receive/transmit timestamps: fixed synthetic epoch.
    resp[32] = resp[40] = 0xe3;
    resp[33] = resp[41] = 0x5b;
    return resp;
  }
};

// ---------------------------------------------------------------------------
// FTP: RFC 959 greeting carrying the software identity.
// ---------------------------------------------------------------------------
class FtpService final : public EndpointBase {
 public:
  using EndpointBase::EndpointBase;

  Bytes greeting() override {
    return to_bytes("220 " + device_banner() + " FTP server (" +
                    software().full() + ") ready.\r\n");
  }

  std::optional<Bytes> handle_stream(
      std::span<const std::uint8_t> request) override {
    const std::string line = to_string_view_copy(request);
    if (line.rfind("USER", 0) == 0)
      return to_bytes("331 Password required.\r\n");
    if (line.rfind("QUIT", 0) == 0) return to_bytes("221 Goodbye.\r\n");
    if (line.rfind("SYST", 0) == 0) return to_bytes("215 UNIX Type: L8\r\n");
    return to_bytes("500 Unknown command.\r\n");
  }
};

// ---------------------------------------------------------------------------
// SSH: version exchange string (RFC 4253 §4.2).
// ---------------------------------------------------------------------------
class SshService final : public EndpointBase {
 public:
  using EndpointBase::EndpointBase;

  Bytes greeting() override {
    // dropbear formats as "SSH-2.0-dropbear_0.46"; openssh as
    // "SSH-2.0-OpenSSH_3.5". Reproduce the underscore convention.
    return to_bytes("SSH-2.0-" + software().software + "_" +
                    software().version + "\r\n");
  }

  std::optional<Bytes> handle_stream(
      std::span<const std::uint8_t>) override {
    // A real server would start key exchange; the grabber only needs the
    // version string, so just keep the connection silent.
    return std::nullopt;
  }
};

// ---------------------------------------------------------------------------
// TELNET: login prompt with the vendor banner (how the paper identified 37k
// devices with "forthright vendor banners").
// ---------------------------------------------------------------------------
class TelnetService final : public EndpointBase {
 public:
  using EndpointBase::EndpointBase;

  Bytes greeting() override {
    // IAC DO/WILL negotiation preamble followed by the banner.
    Bytes out{0xff, 0xfd, 0x18, 0xff, 0xfd, 0x20};
    const std::string text = device_banner() + " login: ";
    out.insert(out.end(), text.begin(), text.end());
    return out;
  }

  std::optional<Bytes> handle_stream(
      std::span<const std::uint8_t>) override {
    return to_bytes(std::string{"Password: "});
  }
};

// ---------------------------------------------------------------------------
// HTTP management page: Server header carries the embedded web server
// identity; the body is the router login page keyed on in the paper
// ("identified by the login keywords").
// ---------------------------------------------------------------------------
class HttpService final : public EndpointBase {
 public:
  using EndpointBase::EndpointBase;

  std::optional<Bytes> handle_stream(
      std::span<const std::uint8_t> request) override {
    const std::string req = to_string_view_copy(request);
    if (req.rfind("GET", 0) != 0 && req.rfind("HEAD", 0) != 0 &&
        req.rfind("POST", 0) != 0) {
      return std::nullopt;
    }
    const std::string body =
        "<html><head><title>" + device_banner() +
        " Router Login</title></head><body><form action=\"/login.cgi\" "
        "method=\"post\"><input name=\"username\"/><input name=\"password\" "
        "type=\"password\"/></form></body></html>";
    std::string resp = "HTTP/1.1 200 OK\r\n";
    resp += "Server: " + software().full() + "\r\n";
    resp += "Content-Type: text/html\r\n";
    resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    resp += "Connection: close\r\n\r\n";
    resp += body;
    return to_bytes(resp);
  }
};

// ---------------------------------------------------------------------------
// TLS: handshake-shaped exchange. Recognises a ClientHello (content type
// 0x16) and replies with a record whose payload carries the certificate
// subject and cipher in clear; see the substitution note at the top.
// ---------------------------------------------------------------------------
class TlsService final : public EndpointBase {
 public:
  using EndpointBase::EndpointBase;

  std::optional<Bytes> handle_stream(
      std::span<const std::uint8_t> request) override {
    if (request.size() < 5 || request[0] != 0x16) return std::nullopt;
    const std::string summary = "CERT CN=" + device_banner() +
                                " ISSUER=" + software().full() +
                                " CIPHER=TLS_RSA_WITH_AES_128_CBC_SHA";
    Bytes out{0x16, 0x03, 0x03};  // handshake, TLS 1.2 record version
    out.push_back(static_cast<std::uint8_t>(summary.size() >> 8));
    out.push_back(static_cast<std::uint8_t>(summary.size() & 0xff));
    out.insert(out.end(), summary.begin(), summary.end());
    return out;
  }
};

}  // namespace

std::unique_ptr<ServiceEndpoint> make_service(ServiceKind kind,
                                              SoftwareInfo software,
                                              std::string device_banner) {
  switch (kind) {
    case ServiceKind::kDns:
      return std::make_unique<DnsService>(kind, std::move(software),
                                          std::move(device_banner));
    case ServiceKind::kNtp:
      return std::make_unique<NtpService>(kind, std::move(software),
                                          std::move(device_banner));
    case ServiceKind::kFtp:
      return std::make_unique<FtpService>(kind, std::move(software),
                                          std::move(device_banner));
    case ServiceKind::kSsh:
      return std::make_unique<SshService>(kind, std::move(software),
                                          std::move(device_banner));
    case ServiceKind::kTelnet:
      return std::make_unique<TelnetService>(kind, std::move(software),
                                             std::move(device_banner));
    case ServiceKind::kHttp:
    case ServiceKind::kHttp8080:
      return std::make_unique<HttpService>(kind, std::move(software),
                                           std::move(device_banner));
    case ServiceKind::kTls:
      return std::make_unique<TlsService>(kind, std::move(software),
                                          std::move(device_banner));
  }
  return nullptr;
}

}  // namespace xmap::svc
