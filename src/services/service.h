// Application-layer service endpoints hosted on periphery devices.
//
// These are the seven security-relevant services the paper probes (Table VI):
// DNS/53, NTP/123, FTP/21, SSH/22, TELNET/23, HTTP/80, TLS/443 and HTTP/8080.
// Each endpoint consumes raw application bytes and produces raw response
// bytes, exactly what a ZGrab-style banner grabber sees. Software name and
// version strings are carried verbatim in the banners so the analysis layer
// can reproduce the paper's version/CVE exposure study (Table VIII).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netbase/pool.h"

namespace xmap::svc {

// Order matters: this is the column order of Tables VI and VII.
enum class ServiceKind : std::uint8_t {
  kDns = 0,      // UDP/53
  kNtp = 1,      // UDP/123
  kFtp = 2,      // TCP/21
  kSsh = 3,      // TCP/22
  kTelnet = 4,   // TCP/23
  kHttp = 5,     // TCP/80
  kTls = 6,      // TCP/443
  kHttp8080 = 7  // TCP/8080
};

inline constexpr int kServiceCount = 8;
inline constexpr ServiceKind kAllServices[kServiceCount] = {
    ServiceKind::kDns,    ServiceKind::kNtp,  ServiceKind::kFtp,
    ServiceKind::kSsh,    ServiceKind::kTelnet, ServiceKind::kHttp,
    ServiceKind::kTls,    ServiceKind::kHttp8080};

[[nodiscard]] constexpr std::uint16_t port_of(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::kDns: return 53;
    case ServiceKind::kNtp: return 123;
    case ServiceKind::kFtp: return 21;
    case ServiceKind::kSsh: return 22;
    case ServiceKind::kTelnet: return 23;
    case ServiceKind::kHttp: return 80;
    case ServiceKind::kTls: return 443;
    case ServiceKind::kHttp8080: return 8080;
  }
  return 0;
}

[[nodiscard]] constexpr bool is_tcp(ServiceKind kind) {
  return kind != ServiceKind::kDns && kind != ServiceKind::kNtp;
}

[[nodiscard]] constexpr const char* service_name(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::kDns: return "DNS-53";
    case ServiceKind::kNtp: return "NTP-123";
    case ServiceKind::kFtp: return "FTP-21";
    case ServiceKind::kSsh: return "SSH-22";
    case ServiceKind::kTelnet: return "TELNET-23";
    case ServiceKind::kHttp: return "HTTP-80";
    case ServiceKind::kTls: return "TLS-443";
    case ServiceKind::kHttp8080: return "HTTP-8080";
  }
  return "?";
}

// Software identity baked into a service's banners.
struct SoftwareInfo {
  std::string software;  // e.g. "dnsmasq", "dropbear", "Jetty"
  std::string version;   // e.g. "2.45", "0.46"

  [[nodiscard]] std::string full() const {
    return version.empty() ? software : software + "-" + version;
  }
  friend bool operator==(const SoftwareInfo&, const SoftwareInfo&) = default;
};

// Shares the packet layer's pool-backed buffer type: service responses are
// handed straight to pkt builders / Node::send on the scan hot path.
using Bytes = net::PoolVector<std::uint8_t>;

// One application-layer responder bound to a port on a device.
//
// The interface is transport-shaped rather than protocol-shaped:
//  * UDP services answer one datagram with at most one datagram.
//  * TCP services may greet with a banner as soon as the handshake
//    completes, and answer request data with response data.
class ServiceEndpoint {
 public:
  virtual ~ServiceEndpoint() = default;

  [[nodiscard]] virtual ServiceKind kind() const = 0;
  [[nodiscard]] virtual const SoftwareInfo& software() const = 0;

  // UDP request/response. Default: not a UDP service.
  [[nodiscard]] virtual std::optional<Bytes> handle_datagram(
      std::span<const std::uint8_t> /*request*/) {
    return std::nullopt;
  }

  // Bytes pushed by the server right after the TCP handshake (FTP/SSH/TELNET
  // greeting). Empty for services that wait for the client.
  [[nodiscard]] virtual Bytes greeting() { return {}; }

  // TCP request/response (single exchange, enough for banner grabbing).
  [[nodiscard]] virtual std::optional<Bytes> handle_stream(
      std::span<const std::uint8_t> /*request*/) {
    return std::nullopt;
  }
};

// Factory covering all eight services. `device_banner` is vendor/device text
// woven into banners where real devices expose it (HTTP server header, FTP
// greeting, TELNET prompt), which is how app-level vendor identification
// works in the paper.
[[nodiscard]] std::unique_ptr<ServiceEndpoint> make_service(
    ServiceKind kind, SoftwareInfo software, std::string device_banner);

}  // namespace xmap::svc
