#include "services/dns_codec.h"

#include <algorithm>

namespace xmap::svc {
namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
}

// Encodes a dotted name as length-prefixed labels. Returns false when a
// label exceeds 63 bytes or the name exceeds 255.
bool put_name(std::vector<std::uint8_t>& out, const std::string& name) {
  if (name.size() > 253) return false;
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string::npos) dot = name.size();
    const std::size_t len = dot - start;
    if (len > 63) return false;
    if (len == 0 && dot != name.size()) return false;  // empty inner label
    if (len > 0) {
      out.push_back(static_cast<std::uint8_t>(len));
      out.insert(out.end(), name.begin() + static_cast<std::ptrdiff_t>(start),
                 name.begin() + static_cast<std::ptrdiff_t>(dot));
    }
    if (dot == name.size()) break;
    start = dot + 1;
  }
  out.push_back(0);
  return true;
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  std::uint8_t read8() {
    if (pos_ + 1 > wire_.size()) {
      ok_ = false;
      return 0;
    }
    return wire_[pos_++];
  }
  std::uint16_t read16() {
    const std::uint16_t hi = read8();
    return static_cast<std::uint16_t>((hi << 8) | read8());
  }
  std::uint32_t read32() {
    const std::uint32_t hi = read16();
    return (hi << 16) | read16();
  }
  std::vector<std::uint8_t> read_bytes(std::size_t n) {
    if (pos_ + n > wire_.size()) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> out(wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  // Reads a possibly-compressed name; follows at most 32 pointers.
  std::string read_name() {
    std::string name;
    std::size_t p = pos_;
    bool jumped = false;
    int hops = 0;
    while (true) {
      if (p >= wire_.size() || ++hops > 128) {
        ok_ = false;
        return {};
      }
      const std::uint8_t len = wire_[p];
      if (len == 0) {
        if (!jumped) pos_ = p + 1;
        return name;
      }
      if ((len & 0xc0) == 0xc0) {
        if (p + 1 >= wire_.size()) {
          ok_ = false;
          return {};
        }
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3f) << 8) | wire_[p + 1];
        if (!jumped) pos_ = p + 2;
        jumped = true;
        if (target >= p) {  // forward pointers would allow loops
          ok_ = false;
          return {};
        }
        p = target;
        continue;
      }
      if ((len & 0xc0) != 0) {  // reserved label types
        ok_ = false;
        return {};
      }
      if (p + 1 + len > wire_.size()) {
        ok_ = false;
        return {};
      }
      if (!name.empty()) name += '.';
      name.append(reinterpret_cast<const char*>(&wire_[p + 1]), len);
      p += 1 + static_cast<std::size_t>(len);
    }
  }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

DnsRecord DnsRecord::a(std::string name, std::uint32_t ipv4,
                       std::uint32_t ttl) {
  DnsRecord r;
  r.name = std::move(name);
  r.type = DnsType::kA;
  r.ttl = ttl;
  r.rdata = {static_cast<std::uint8_t>(ipv4 >> 24),
             static_cast<std::uint8_t>(ipv4 >> 16),
             static_cast<std::uint8_t>(ipv4 >> 8),
             static_cast<std::uint8_t>(ipv4)};
  return r;
}

DnsRecord DnsRecord::aaaa(std::string name,
                          std::span<const std::uint8_t> addr16,
                          std::uint32_t ttl) {
  DnsRecord r;
  r.name = std::move(name);
  r.type = DnsType::kAaaa;
  r.ttl = ttl;
  r.rdata.assign(addr16.begin(), addr16.end());
  return r;
}

DnsRecord DnsRecord::txt(std::string name, DnsClass klass, std::string text,
                         std::uint32_t ttl) {
  DnsRecord r;
  r.name = std::move(name);
  r.type = DnsType::kTxt;
  r.klass = klass;
  r.ttl = ttl;
  const std::size_t len = std::min<std::size_t>(text.size(), 255);
  r.rdata.push_back(static_cast<std::uint8_t>(len));
  r.rdata.insert(r.rdata.end(), text.begin(),
                 text.begin() + static_cast<std::ptrdiff_t>(len));
  return r;
}

std::vector<std::uint8_t> DnsMessage::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  put16(out, id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  if (recursion_desired) flags |= 0x0100;
  if (recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(rcode);
  put16(out, flags);
  put16(out, static_cast<std::uint16_t>(questions.size()));
  put16(out, static_cast<std::uint16_t>(answers.size()));
  put16(out, 0);  // authority
  put16(out, 0);  // additional
  for (const auto& q : questions) {
    if (!put_name(out, q.name)) return {};
    put16(out, static_cast<std::uint16_t>(q.type));
    put16(out, static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rec : answers) {
    if (!put_name(out, rec.name)) return {};
    put16(out, static_cast<std::uint16_t>(rec.type));
    put16(out, static_cast<std::uint16_t>(rec.klass));
    put32(out, rec.ttl);
    put16(out, static_cast<std::uint16_t>(rec.rdata.size()));
    out.insert(out.end(), rec.rdata.begin(), rec.rdata.end());
  }
  return out;
}

std::optional<DnsMessage> DnsMessage::decode(
    std::span<const std::uint8_t> wire) {
  if (wire.size() < 12) return std::nullopt;
  Reader r{wire};
  DnsMessage msg;
  msg.id = r.read16();
  const std::uint16_t flags = r.read16();
  msg.is_response = (flags & 0x8000) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  msg.recursion_available = (flags & 0x0080) != 0;
  msg.rcode = static_cast<DnsRcode>(flags & 0x0f);
  const std::uint16_t qd = r.read16();
  const std::uint16_t an = r.read16();
  r.read16();  // authority count (ignored)
  r.read16();  // additional count (ignored)
  if (qd > 32 || an > 64) return std::nullopt;  // hostile counts
  for (int i = 0; i < qd; ++i) {
    DnsQuestion q;
    q.name = r.read_name();
    q.type = static_cast<DnsType>(r.read16());
    q.klass = static_cast<DnsClass>(r.read16());
    if (!r.ok()) return std::nullopt;
    msg.questions.push_back(std::move(q));
  }
  for (int i = 0; i < an; ++i) {
    DnsRecord rec;
    rec.name = r.read_name();
    rec.type = static_cast<DnsType>(r.read16());
    rec.klass = static_cast<DnsClass>(r.read16());
    rec.ttl = r.read32();
    const std::uint16_t rdlen = r.read16();
    rec.rdata = r.read_bytes(rdlen);
    if (!r.ok()) return std::nullopt;
    msg.answers.push_back(std::move(rec));
  }
  if (!r.ok()) return std::nullopt;
  return msg;
}

DnsMessage make_version_query(std::uint16_t id) {
  DnsMessage msg;
  msg.id = id;
  msg.questions.push_back(
      DnsQuestion{"version.bind", DnsType::kTxt, DnsClass::kChaos});
  return msg;
}

DnsMessage make_query(std::uint16_t id, std::string name, DnsType type) {
  DnsMessage msg;
  msg.id = id;
  msg.recursion_desired = true;
  msg.questions.push_back(DnsQuestion{std::move(name), type, DnsClass::kIn});
  return msg;
}

}  // namespace xmap::svc
