// Minimal DNS wire-format codec (RFC 1035), enough for the periphery
// service experiments: encode/decode queries and responses for A/AAAA/TXT,
// including the CHAOS-class "version.bind" query that ZGrab-style scanners
// use to fingerprint resolver software (Table VIII).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace xmap::svc {

enum class DnsType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
  kAny = 255,
};

enum class DnsClass : std::uint16_t {
  kIn = 1,
  kChaos = 3,
};

enum class DnsRcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

struct DnsQuestion {
  std::string name;  // dotted form, no trailing dot
  DnsType type = DnsType::kA;
  DnsClass klass = DnsClass::kIn;
};

struct DnsRecord {
  std::string name;
  DnsType type = DnsType::kA;
  DnsClass klass = DnsClass::kIn;
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;

  // Convenience constructors for the record types we emit.
  static DnsRecord a(std::string name, std::uint32_t ipv4, std::uint32_t ttl);
  static DnsRecord aaaa(std::string name, std::span<const std::uint8_t> addr16,
                        std::uint32_t ttl);
  static DnsRecord txt(std::string name, DnsClass klass, std::string text,
                       std::uint32_t ttl);
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = false;
  bool recursion_available = false;
  DnsRcode rcode = DnsRcode::kNoError;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  // nullopt on malformed input. Name decompression is supported with a
  // pointer-loop guard.
  [[nodiscard]] static std::optional<DnsMessage> decode(
      std::span<const std::uint8_t> wire);
};

// Builds the conventional "version.bind TXT CH" software query.
[[nodiscard]] DnsMessage make_version_query(std::uint16_t id);
// Builds a standard recursive query.
[[nodiscard]] DnsMessage make_query(std::uint16_t id, std::string name,
                                    DnsType type);

}  // namespace xmap::svc
