// Packet-level service hosting for a simulated device.
//
// A ServiceHost owns the service endpoints bound on a device and converts
// between wire packets and application bytes. TCP is handled with a
// stateless responder (SYN -> SYN/ACK, bare ACK -> greeting, data ->
// response), which is exactly the amount of TCP a single-exchange banner
// grab requires; the server's sequence numbers are a keyed hash of the
// 4-tuple so behaviour is deterministic without per-connection state.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "packet/packet.h"
#include "services/service.h"

namespace xmap::svc {

class ServiceHost {
 public:
  ServiceHost() = default;

  // Binds a service on its well-known port; replaces any previous binding.
  void bind(std::unique_ptr<ServiceEndpoint> service);

  [[nodiscard]] bool has(ServiceKind kind) const {
    return services_.count(port_of(kind)) != 0;
  }
  [[nodiscard]] const ServiceEndpoint* endpoint(std::uint16_t port) const {
    auto it = services_.find(port);
    return it == services_.end() ? nullptr : it->second.get();
  }
  [[nodiscard]] std::size_t service_count() const { return services_.size(); }

  // Handles a UDP or TCP packet addressed to this device (dst == self).
  // Returns zero or more fully-formed response packets, including TCP RSTs
  // for closed ports and ICMPv6 Port Unreachable for closed UDP ports.
  [[nodiscard]] std::vector<pkt::Bytes> handle(const pkt::Bytes& packet,
                                               const net::Ipv6Address& self);

 private:
  std::map<std::uint16_t, std::unique_ptr<ServiceEndpoint>> services_;
};

}  // namespace xmap::svc
