// Routing-loop attack laboratory.
//
// Reproduces Section VI's attack mechanics in isolation: a single
// attacker -> (n transit hops) -> ISP router -> CPE router chain where the
// CPE carries the routing flaw. The lab measures what the paper's Figure 4
// illustrates — each crafted packet ping-pongs on the ISP<->CPE link until
// its hop limit dies, amplifying the attacker's traffic by ~(255 - n), and
// a spoofed source inside another not-used prefix makes the final Time
// Exceeded loop as well, roughly doubling the damage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "topology/devices.h"

namespace xmap::atk {

struct AttackLabConfig {
  int transit_hops = 1;  // routers between attacker and the ISP router
  bool cpe_loop_wan = true;
  bool cpe_loop_lan = true;
  int cpe_loop_cap = -1;
  // Optional link shaping on the ISP<->CPE access link.
  sim::LinkParams access_link{};
  // Optional observability sinks (caller-owned, may be null). The lab's
  // substrate emits packet-level trace events through them, and every
  // attack() records a "loop_attack" amplification summary event plus
  // loop_attack_* counters.
  obs::TraceBuffer* trace = nullptr;
  obs::MetricsShard* metrics = nullptr;
};

struct AttackResult {
  std::uint64_t attacker_packets = 0;
  std::uint64_t access_link_packets = 0;  // both directions, ISP<->CPE
  std::uint64_t access_link_bytes = 0;
  std::uint64_t time_exceeded_received = 0;
  std::uint64_t unreachable_received = 0;

  [[nodiscard]] double amplification() const {
    return attacker_packets == 0
               ? 0.0
               : static_cast<double>(access_link_packets) /
                     static_cast<double>(attacker_packets);
  }
};

class AttackLab {
 public:
  explicit AttackLab(const AttackLabConfig& config);

  // Sends `packets` crafted packets with the given hop limit to an address
  // inside the CPE's not-used delegated space (or its NX WAN space when
  // `target_wan`). `spoof_inside_lan` forges the source into another
  // not-used /64 so responses re-enter the loop.
  [[nodiscard]] AttackResult attack(std::uint8_t hop_limit, int packets = 1,
                                    bool target_wan = false,
                                    bool spoof_inside_lan = false);

  // Applies the RFC 7084 mitigation to the CPE and re-arms the lab.
  void patch_cpe();

  [[nodiscard]] topo::CpeRouter& cpe() { return *cpe_; }
  [[nodiscard]] topo::Router& isp() { return *isp_; }

 private:
  class AttackerNode;

  sim::Network net_{97};
  obs::TraceBuffer* trace_ = nullptr;
  obs::MetricsShard* metrics_ = nullptr;
  AttackerNode* attacker_ = nullptr;
  topo::Router* isp_ = nullptr;
  topo::CpeRouter* cpe_ = nullptr;
  sim::LinkId access_link_ = 0;
  int attacker_iface_ = 0;
};

// ---------------------------------------------------------------------------
// Case study (Table XII): the 99-router / firmware matrix.
// ---------------------------------------------------------------------------

struct RouterModel {
  std::string brand;
  std::string model;     // model + firmware as the paper prints it
  bool wan_vulnerable = true;
  bool lan_vulnerable = false;
  int loop_cap = -1;  // >=0: firmware stops forwarding the flow early
};

// The 95 sample home routers + 4 open-source router OSes of Table XII.
[[nodiscard]] const std::vector<RouterModel>& case_study_models();

struct CaseStudyRow {
  const RouterModel* model = nullptr;
  bool wan_loop_observed = false;
  bool lan_loop_observed = false;
  std::uint64_t wan_link_packets = 0;  // loop traffic for one HL-255 packet
  std::uint64_t lan_link_packets = 0;
  bool fixed_after_patch = false;  // mitigation verified
};

// Runs the WAN-prefix and LAN-prefix loop tests (hop limit 255) against one
// modelled router, including the mitigation re-test.
[[nodiscard]] CaseStudyRow test_router_model(const RouterModel& model);

}  // namespace xmap::atk
