#include "loopattack/attack_lab.h"

namespace xmap::atk {
namespace {

using net::Ipv6Address;
using net::Ipv6Prefix;

const Ipv6Address kAttacker = *Ipv6Address::parse("2001:666::1");
const Ipv6Prefix kWanPrefix = *Ipv6Prefix::parse("2001:db9:1234:5678::/64");
const Ipv6Address kWanAddress =
    *Ipv6Address::parse("2001:db9:1234:5678::ab");
const Ipv6Prefix kLanPrefix = *Ipv6Prefix::parse("2001:db9:4321:8760::/60");
const Ipv6Prefix kSubnetPrefix =
    *Ipv6Prefix::parse("2001:db9:4321:8765::/64");
// Targets inside the "Not-used Prefix" and the NX WAN space.
const Ipv6Address kNotUsedTarget =
    *Ipv6Address::parse("2001:db9:4321:8769::1");
const Ipv6Address kNxWanTarget =
    *Ipv6Address::parse("2001:db9:1234:5678::dead");
// A spoofed source inside another not-used /64 of the same delegation.
const Ipv6Address kSpoofedSource =
    *Ipv6Address::parse("2001:db9:4321:876a::66");

}  // namespace

class AttackLab::AttackerNode : public sim::Node {
 public:
  void receive(pkt::Bytes packet, int) override {
    pkt::Ipv6View ip{packet};
    if (!ip.valid() || ip.next_header() != pkt::kProtoIcmpv6) return;
    pkt::Icmpv6View icmp{ip.payload()};
    if (!icmp.valid()) return;
    if (icmp.type() == pkt::Icmpv6Type::kTimeExceeded) ++time_exceeded;
    if (icmp.type() == pkt::Icmpv6Type::kDestUnreachable) ++unreachable;
  }
  void emit(int iface, pkt::Bytes p) { send(iface, std::move(p)); }

  std::uint64_t time_exceeded = 0;
  std::uint64_t unreachable = 0;
};

AttackLab::AttackLab(const AttackLabConfig& config)
    : trace_(config.trace), metrics_(config.metrics) {
  net_.set_obs(trace_, metrics_);
  attacker_ = net_.make_node<AttackerNode>();

  // Transit chain: attacker -> t1 -> ... -> tn -> ISP.
  sim::Node* upstream = attacker_;
  int upstream_iface = 0;
  std::vector<topo::Router*> transits;
  for (int i = 0; i < config.transit_hops; ++i) {
    topo::Router::Config tcfg;
    tcfg.address = Ipv6Address::from_value(
        net::Uint128{0x2001066600000000ULL + static_cast<std::uint64_t>(i + 1),
                     1});
    auto* transit = net_.make_node<topo::Router>(tcfg);
    const auto att = net_.connect(upstream->id(), transit->id());
    if (i == 0) attacker_iface_ = att.iface_a;
    // Downstream routing is installed below once the ISP exists; upstream
    // (towards the attacker) is each router's default route... actually the
    // attack only needs downstream forwarding plus a return default.
    transit->table().add_default(att.iface_b);  // back towards the attacker
    transits.push_back(transit);
    upstream = transit;
    upstream_iface = att.iface_b;
    (void)upstream_iface;
  }

  topo::Router::Config isp_cfg;
  isp_cfg.address = *Ipv6Address::parse("2001:db9::1");
  isp_ = net_.make_node<topo::Router>(isp_cfg);
  const auto isp_att = net_.connect(upstream->id(), isp_->id());
  if (config.transit_hops == 0) attacker_iface_ = isp_att.iface_a;
  isp_->table().add_default(isp_att.iface_b);

  // Forward routes towards the CPE space through the chain.
  for (std::size_t i = 0; i < transits.size(); ++i) {
    // Each transit router's interface 1 faces the next hop (interface 0
    // faces upstream, interfaces were allocated in connect order).
    transits[i]->table().add_forward(*Ipv6Prefix::parse("2001:db9::/32"), 1);
  }

  topo::CpeRouter::Config cpe_cfg;
  cpe_cfg.wan_prefix = kWanPrefix;
  cpe_cfg.wan_address = kWanAddress;
  cpe_cfg.lan_prefix = kLanPrefix;
  cpe_cfg.subnet_prefix = kSubnetPrefix;
  cpe_cfg.loop_wan = config.cpe_loop_wan;
  cpe_cfg.loop_lan = config.cpe_loop_lan;
  cpe_cfg.loop_cap = config.cpe_loop_cap;
  cpe_ = net_.make_node<topo::CpeRouter>(cpe_cfg);

  const auto access =
      net_.connect(isp_->id(), cpe_->id(), config.access_link);
  access_link_ = access.link;
  isp_->table().add_forward(kWanPrefix, access.iface_a);
  isp_->table().add_forward(kLanPrefix, access.iface_a);
}

AttackResult AttackLab::attack(std::uint8_t hop_limit, int packets,
                               bool target_wan, bool spoof_inside_lan) {
  net_.reset_link_stats(access_link_);
  const sim::SimTime start_time = net_.now();
  const std::uint64_t te_before = attacker_->time_exceeded;
  const std::uint64_t un_before = attacker_->unreachable;

  const Ipv6Address target = target_wan ? kNxWanTarget : kNotUsedTarget;
  const Ipv6Address source = spoof_inside_lan ? kSpoofedSource : kAttacker;

  for (int i = 0; i < packets; ++i) {
    attacker_->emit(attacker_iface_,
                    pkt::build_echo_request(source, target, hop_limit,
                                            static_cast<std::uint16_t>(i), 1));
  }
  net_.run();

  AttackResult out;
  out.attacker_packets = static_cast<std::uint64_t>(packets);
  const auto& stats = net_.link_stats(access_link_);
  out.access_link_packets = stats.packets_total();
  out.access_link_bytes = stats.bytes_ab + stats.bytes_ba;
  out.time_exceeded_received = attacker_->time_exceeded - te_before;
  out.unreachable_received = attacker_->unreachable - un_before;

  if (metrics_ != nullptr) {
    *metrics_->counter("loop_attack_packets", {},
                       "Crafted packets injected by the loop attacker") +=
        out.attacker_packets;
    *metrics_->counter(
        "loop_attack_link_packets", {},
        "Access-link packets generated by loop amplification") +=
        out.access_link_packets;
  }
  if (trace_ != nullptr && trace_->at(obs::TraceLevel::kScan)) {
    // Amplification summary: one event per attack() burst, spanning the
    // sim-time window the loop traffic occupied.
    obs::TraceEvent e;
    e.ts = start_time;
    e.dur = net_.now() - start_time;
    e.name = "loop_attack";
    e.cat = "loop";
    e.str_key = "space";
    e.str_val = target_wan ? "wan" : "lan";
    e.i0 = {"packets", out.attacker_packets};
    e.i1 = {"link_packets", out.access_link_packets};
    e.i2 = {"time_exceeded", out.time_exceeded_received};
    trace_->add(e);
  }
  return out;
}

void AttackLab::patch_cpe() { cpe_->install_unreachable_routes(); }

// ---------------------------------------------------------------------------
// Case study
// ---------------------------------------------------------------------------

const std::vector<RouterModel>& case_study_models() {
  static const std::vector<RouterModel> models = [] {
    std::vector<RouterModel> v;
    // The nine configurations the paper prints explicitly in Table XII.
    v.push_back({"ASUS", "GT-AC5300 3.0.0.4.384_82037", true, false, -1});
    v.push_back({"D-Link", "COVR-3902 1.01", true, false, -1});
    v.push_back({"Huawei", "WS5100 10.0.2.8", true, true, -1});
    v.push_back({"Linksys", "EA8100 2.0.1.200539", true, true, -1});
    v.push_back({"Netgear", "R6400v2 1.0.4.102_10.0.75", true, true, -1});
    v.push_back({"Tenda", "AC23 16.03.07.35", true, false, -1});
    v.push_back({"TP-Link", "TL-XDR3230 1.0.8", true, true, -1});
    v.push_back({"Xiaomi", "AX5 1.0.33", true, false, 20});
    v.push_back({"OpenWRT", "19.07.4 r11208-ce6496d796", true, false, 20});
    // The remaining population, matching the per-brand counts in the
    // table's footer (95 routers + 4 OSes in total).
    struct Fleet {
      const char* brand;
      int extra;            // beyond any explicit entry above
      bool lan_vulnerable;  // brand-typical behaviour
      int loop_cap;
    };
    static constexpr Fleet kFleet[] = {
        {"China Mobile", 4, true, -1},  {"D-Link", 1, false, -1},
        {"FAST", 1, false, -1},         {"Fiberhome", 2, true, -1},
        {"H3C", 1, true, -1},           {"Hisense", 1, false, -1},
        {"Huawei", 3, true, -1},        {"iKuai", 3, true, -1},
        {"Mercury", 8, false, -1},      {"Mikrotik", 1, true, -1},
        {"Netgear", 1, true, -1},       {"Skyworthdigital", 9, true, -1},
        {"Totolink", 1, false, -1},     {"TP-Link", 41, true, -1},
        {"Youhua", 1, true, -1},        {"ZTE", 9, true, -1},
        {"DD-Wrt", 1, false, -1},       {"Gargoyle", 1, false, 20},
        {"librecmc", 1, false, 20},
    };
    for (const Fleet& f : kFleet) {
      for (int i = 0; i < f.extra; ++i) {
        RouterModel m;
        m.brand = f.brand;
        m.model = std::string{"unit-"} + std::to_string(i + 1);
        m.wan_vulnerable = true;  // every tested router looped (the paper)
        m.lan_vulnerable = f.lan_vulnerable;
        m.loop_cap = f.loop_cap;
        v.push_back(std::move(m));
      }
    }
    return v;
  }();
  return models;
}

CaseStudyRow test_router_model(const RouterModel& model) {
  CaseStudyRow row;
  row.model = &model;

  AttackLabConfig cfg;
  cfg.cpe_loop_wan = model.wan_vulnerable;
  cfg.cpe_loop_lan = model.lan_vulnerable;
  cfg.cpe_loop_cap = model.loop_cap;

  {
    AttackLab lab{cfg};
    const auto wan = lab.attack(255, 1, /*target_wan=*/true);
    row.wan_link_packets = wan.access_link_packets;
    row.wan_loop_observed = wan.access_link_packets > 4;
    const auto lan = lab.attack(255, 1, /*target_wan=*/false);
    row.lan_link_packets = lan.access_link_packets;
    row.lan_loop_observed = lan.access_link_packets > 4;
  }
  {
    AttackLab lab{cfg};
    lab.patch_cpe();
    const auto wan = lab.attack(255, 1, /*target_wan=*/true);
    const auto lan = lab.attack(255, 1, /*target_wan=*/false);
    row.fixed_after_patch =
        wan.access_link_packets <= 2 && lan.access_link_packets <= 2;
  }
  return row;
}

}  // namespace xmap::atk
