// Wire protocol for the distributed scan fabric.
//
// Every byte that moves between the coordinator and a worker crosses this
// protocol: length-prefixed, checksummed frames carrying one message each.
// A frame is
//
//   u32 magic 'XFB1' | u32 payload_len | payload | u64 FNV-1a(payload)
//
// and a payload is `u8 type | u64 seq | u8 ctx_ver [| u64 trace_id |
// u64 parent_span] | type-specific body`, all integers little-endian.
// `ctx_ver` is the versioned trace context: 0 means no context follows,
// 1 means an 8-byte trace id and an 8-byte parent span id follow — the
// causal link that lets a receiver parent its handling span under the
// sender's span (docs/observability.md). Unknown versions are rejected.
// The decoder trusts nothing: magic, length bound, exact
// frame size, checksum, message type, and per-field bounds are all checked,
// and every rejection carries a diagnostic naming what was wrong — the fuzz
// harness (tests/fuzz/fabric_frames_test.cc) drives every truncation and
// every bit flip of valid frames through decode_frame and asserts rejection
// without a crash or a mis-parse.
//
// `seq` belongs to the reliable channel (channel.h): data-bearing messages
// carry the sender's stop-and-wait sequence number; unreliable frames
// (heartbeats, acks, bye) carry 0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "xmap/probe_module.h"
#include "xmap/scanner.h"
#include "xmap/stats.h"

namespace xmap::fabric {

inline constexpr std::uint32_t kFrameMagic = 0x31424658;  // "XFB1" LE
// Frames larger than this are rejected before any allocation — a corrupted
// or hostile length prefix must not drive a giant reserve.
inline constexpr std::size_t kMaxPayload = 1u << 20;
inline constexpr std::size_t kFrameOverhead = 4 + 4 + 8;  // magic+len+cksum

enum class MsgType : std::uint8_t {
  kHello = 1,      // worker -> coordinator: join, carries worker id
  kAssign = 2,     // coordinator -> worker: shard lease (+resume cursor)
  kRefuse = 3,     // worker -> coordinator: assignment rejected, diagnostic
  kHeartbeat = 4,  // worker -> coordinator: liveness (unreliable)
  kAck = 5,        // either direction: reliable-channel acknowledgement
  kRecords = 6,    // worker -> coordinator: batch of validated responses
  kCheckpoint = 7, // worker -> coordinator: stable cursor + live stats
  kShardDone = 8,  // worker -> coordinator: shard complete, final stats
  kBye = 9,        // coordinator -> worker: fabric is done, exit
  kObsTrace = 10,  // worker -> coordinator: chunk of scan-content trace events
  kObsMetrics = 11,// worker -> coordinator: chunk of the scan metrics snapshot
  kRejoin = 12,    // worker -> coordinator: stream-transport (re)connect
                   // handshake: identity + fingerprint + held lease, if any
  kRejoinOk = 13,  // coordinator -> worker: rejoin accepted, lease stands
  kRejoinRefused = 14,  // coordinator -> worker: rejoin fenced, diagnostic
};

[[nodiscard]] constexpr const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kAssign: return "assign";
    case MsgType::kRefuse: return "refuse";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kAck: return "ack";
    case MsgType::kRecords: return "records";
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kShardDone: return "shard-done";
    case MsgType::kBye: return "bye";
    case MsgType::kObsTrace: return "obs-trace";
    case MsgType::kObsMetrics: return "obs-metrics";
    case MsgType::kRejoin: return "rejoin";
    case MsgType::kRejoinOk: return "rejoin-ok";
    case MsgType::kRejoinRefused: return "rejoin-refused";
  }
  return "?";
}

// Trace-context versions the decoder understands. Version 0 carries no
// context bytes; version 1 carries `u64 trace_id | u64 parent_span`.
inline constexpr std::uint8_t kTraceCtxNone = 0;
inline constexpr std::uint8_t kTraceCtxV1 = 1;

// One validated response in flight from a worker. `when` is the worker's
// sim-clock arrival (deterministic), `raw_slot` the global permutation slot
// of the probe that elicited it — the coordinator filters failover records
// by slot against the dead worker's last streamed cursor.
struct WireRecord {
  scan::ProbeResponse response;
  std::uint64_t when = 0;
  std::uint64_t raw_slot = 0;
};

// Serialized WireRecord size: kind + icmp_code + hop_limit + two addresses
// + when + raw_slot. The decoder validates Records count prefixes against
// this before any allocation.
inline constexpr std::size_t kWireRecordBytes = 1 + 1 + 1 + 16 + 16 + 8 + 8;

// The one message struct for all types; which fields are meaningful (and
// serialized) depends on `type`. Keeping a single struct keeps the
// encode/decode pair and the state machines on both ends simple.
struct Message {
  MsgType type = MsgType::kHeartbeat;
  std::uint64_t seq = 0;  // reliable-channel sequence; 0 on unreliable frames

  // Versioned trace context (see file comment). ctx_ver kTraceCtxNone means
  // trace_id/parent_span are absent from the wire and meaningless here.
  std::uint8_t ctx_ver = kTraceCtxNone;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  std::uint32_t worker = 0;  // Hello, Heartbeat: sender's worker index
  std::uint64_t ack_seq = 0;  // Ack: sequence being acknowledged

  // Shard addressing (Assign, Refuse, Records, Checkpoint, ShardDone).
  // `epoch` is the assignment generation: it increments every time the
  // shard is re-assigned, and the coordinator ignores frames from stale
  // epochs (a worker wrongly declared dead cannot corrupt its successor).
  std::uint32_t shard = 0;
  std::uint32_t epoch = 0;

  // Assign body: the lease terms.
  std::uint32_t shards_total = 0;  // fabric shard count S
  std::uint64_t budget_cut = scan::kNoBudgetCut;  // precomputed, shared
  std::uint64_t fingerprint = 0;  // recover::fingerprint_hash of the scan
  bool has_resume = false;        // cursor below is a failover handoff
  bool has_lease = false;         // Rejoin: shard/epoch below name a held lease
  scan::ScanCursor cursor;        // Assign (resume) / Checkpoint (progress)

  scan::ScanStats stats;           // Checkpoint (live) / ShardDone (final)
  std::vector<WireRecord> records; // Records
  std::string diagnostic;          // Refuse: why the lease was rejected

  // ObsTrace: a chunk of the shard's deterministic scan-content trace.
  // Decoded string pointers come from a process-lifetime intern pool, so
  // they satisfy TraceEvent's static-storage contract; null-vs-empty is
  // preserved on the wire (a presence flag precedes each string).
  std::vector<obs::TraceEvent> trace_events;
  // ObsMetrics: a chunk of the shard's deterministic metrics snapshot.
  obs::MetricsSnapshot metrics;
};

// Minimum serialized TraceEvent size (every string null): the decoder
// validates ObsTrace count prefixes against this before any allocation.
inline constexpr std::size_t kWireTraceEventMinBytes =
    8 + 8 + 2 * 1 + 2 * (1 + 16) + 2 * 1 + 3 * (1 + 8);
// Minimum serialized MetricsSnapshot entry (empty name/labels/help, no
// histogram): same pre-allocation guard for ObsMetrics count prefixes.
inline constexpr std::size_t kWireMetricsEntryMinBytes = 4 + 4 + 1 + 1 + 8 + 1 + 4;

// Serializes `msg` into one complete frame.
[[nodiscard]] std::string encode_frame(const Message& msg);

struct DecodeResult {
  std::optional<Message> message;  // nullopt = rejected
  std::string error;               // precise diagnostic when rejected
};

// Decodes exactly one frame; any deviation — short buffer, bad magic,
// oversized or lying length, checksum mismatch, unknown type, truncated or
// trailing body bytes — is rejected with a diagnostic, never a crash.
[[nodiscard]] DecodeResult decode_frame(std::string_view frame);

// FNV-1a 64 over the payload (exposed for the fuzz harness, which must
// construct frames whose only defect is the bit under test).
[[nodiscard]] std::uint64_t frame_checksum(std::string_view payload);

// Interns `s` in a process-lifetime pool and returns a stable pointer —
// decoded TraceEvent strings must satisfy the static-storage contract of
// obs::TraceEvent. Identical contents intern to the same pointer.
[[nodiscard]] const char* intern_trace_string(std::string_view s);

}  // namespace xmap::fabric
