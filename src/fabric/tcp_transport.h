// Socket transport for the scan fabric: real TCP behind the same
// Transport / FabricPlane interfaces the loopback implements.
//
// Framing over a stream: the wire carries length-prefixed XFB1 frames
// (protocol.h) mapped 1:1 onto the byte stream — no extra envelope. The
// receiver cannot trust the kernel to hand frames back whole, so every
// connection owns a FrameReassembler: an incremental parser that validates
// the magic and the length bound *before* buffering a frame's body, and
// latches poisoned on the first hostile header — a stream whose length
// prefix lies cannot be resynchronized, so the only safe move is to drop
// the connection and let the reconnect handshake start a fresh stream.
//
// Reconnect-with-epoch handshake: every connection (initial join and every
// reconnect) opens with an unreliable kRejoin frame carrying the worker's
// id, its config fingerprint, and the lease it believes it holds
// (shard, epoch). The coordinator binds the anonymous connection to the
// worker id, then either answers kRejoinOk (identity and fingerprint check
// out, the lease — if claimed — is still that worker's current epoch) or
// kRejoinRefused with a diagnostic (zombie after a heartbeat timeout,
// fingerprint mismatch, stale epoch) and fences the worker at the
// transport layer. The handshake is asynchronous by design: workers are
// constructed before the coordinator loop runs, so blocking on kRejoinOk
// at connect time would deadlock. Link state needs no explicit replay —
// the stop-and-wait channel retransmits the one unacked frame onto the new
// stream and the receiver's expected-seq check dedups.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fabric/transport.h"

namespace xmap::fabric {

// Parses "a.b.c.d:port" or "[v6]:port" into a socket address. False (with
// a diagnostic naming the address) on anything else — the fabric does not
// resolve names; deployment addresses are numeric.
[[nodiscard]] bool parse_socket_address(const std::string& address,
                                        sockaddr_storage& out,
                                        socklen_t& out_len,
                                        std::string& error);

// "a.b.c.d:port" / "[v6]:port" for a bound or peer address.
[[nodiscard]] std::string format_socket_address(const sockaddr_storage& ss);

// Incremental stream -> frame parser. feed() appends raw received bytes;
// next() pops complete frames (verbatim, ready for decode_frame). The
// header of the frame at the front of the buffer is validated as soon as
// its bytes exist: bad magic or a length above kMaxPayload poisons the
// stream permanently — by construction the buffer never holds more than
// one maximum frame plus one read chunk, so a hostile length prefix can
// never drive allocation. Checksum/type/body validation stays with
// decode_frame; this class only finds the frame boundaries.
class FrameReassembler {
 public:
  // False once the stream is poisoned (the bytes are discarded).
  bool feed(std::string_view bytes);

  // The next complete frame, or nullopt (need more bytes, or poisoned).
  [[nodiscard]] std::optional<std::string> next();

  [[nodiscard]] bool poisoned() const { return poisoned_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  // Forgets everything, including a poisoned verdict — for reuse on a
  // fresh connection.
  void reset();

 private:
  void validate_front();

  std::string buffer_;
  std::string error_;
  bool poisoned_ = false;
};

// The coordinator's side of a TCP fabric: one listening socket, worker
// connections bound to ids by their opening kRejoin frame. Single-threaded
// by contract — recv_any / send_to / drop_worker / close_all are all
// called from the coordinator loop; the only concurrency is the kernel's.
// All sockets are non-blocking, close-on-exec, and SO_REUSEADDR; I/O runs
// inside recv_any via poll(2), handling partial reads, short writes,
// EAGAIN, EINTR, and ECONNRESET. Peers that vanish surface as kClosed;
// death stays the heartbeat timeout's call (reconnectable() is true).
class TcpFabric final : public FabricPlane {
 public:
  // Binds and listens on `listen_address` (port 0 picks an ephemeral port;
  // bound_address()/port() report the choice). Null on failure, with a
  // diagnostic naming the address and errno.
  static std::unique_ptr<TcpFabric> create(int workers,
                                           const std::string& listen_address,
                                           std::string& error);
  ~TcpFabric() override;

  TcpFabric(const TcpFabric&) = delete;
  TcpFabric& operator=(const TcpFabric&) = delete;

  [[nodiscard]] std::string bound_address() const;
  [[nodiscard]] std::uint16_t port() const;

  [[nodiscard]] int workers() const override;
  [[nodiscard]] CoordRecv recv_any(int timeout_ms) override;
  // True while the worker is merely disconnected (the frame is dropped;
  // the reliable channel's retransmission schedule covers the gap); false
  // only once the worker is fenced or the fabric is shut down.
  bool send_to(int worker, std::string frame) override;
  void close_all() override;
  [[nodiscard]] bool reconnectable() const override { return true; }
  void drop_worker(int worker) override;
  [[nodiscard]] LinkCounters link_counters(int worker) const override;

 private:
  TcpFabric() = default;
  struct Conn;
  void service_io(int poll_timeout_ms);
  void flush_conn(Conn& conn);
  void read_conn(Conn& conn);
  void bind_conn(Conn& conn, const std::string& frame);
  void kill_conn(Conn& conn, bool notify);

  int workers_ = 0;
  int listen_fd_ = -1;
  sockaddr_storage bound_{};
  bool closed_all_ = false;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<Conn*> by_worker_;       // live bound connection or null
  std::vector<bool> banned_;           // drop_worker fences
  std::vector<bool> seen_;             // first kRejoin consumed (join)
  std::vector<LinkCounters> counters_;
  std::deque<CoordRecv> ready_;
};

struct TcpWorkerOptions {
  std::string connect_address;  // numeric "host:port" of the coordinator
  int worker = 0;
  std::uint64_t fingerprint = 0;  // stamped into every kRejoin
  int connect_timeout_ms = 2000;
  // After a socket death the transport reconnects transparently: attempts
  // every reconnect_delay_ms until reconnect_window_ms has passed since
  // the disconnect, then latches closed. 0 window = no reconnects.
  int reconnect_window_ms = 1500;
  int reconnect_delay_ms = 10;
};

// The worker's side: one connection to the coordinator, reconnected
// transparently inside send()/recv() when the socket dies. Every
// connection opens with a kRejoin frame (see file comment); inbound
// kRejoinOk is swallowed, kRejoinRefused latches a permanent failure whose
// diagnostic refusal() reports — recv then returns kClosed. Thread-safe
// per the Transport contract: send()/close() from any thread concurrently
// with one recv()er; all socket state sits under one mutex, and recv polls
// in short unlocked slices on an fd snapshot so a reconnecting or sending
// peer thread is never starved.
class TcpWorkerTransport final : public Transport {
 public:
  // Connects (bounded by connect_timeout_ms) and sends the opening
  // kRejoin. Null on failure, with a diagnostic naming address and errno.
  static std::unique_ptr<TcpWorkerTransport> create(TcpWorkerOptions options,
                                                    std::string& error);
  ~TcpWorkerTransport() override;

  bool send(std::string frame) override;
  RecvResult recv(int timeout_ms) override;
  void close() override;
  void note_lease(std::uint32_t shard, std::uint32_t epoch,
                  bool held) override;

  // Reconnections that reached the coordinator (successful handshakes
  // after the initial join).
  [[nodiscard]] std::uint64_t reconnects() const;
  // Non-empty once the coordinator refused a rejoin; the permanent-failure
  // diagnostic.
  [[nodiscard]] std::string refusal() const;

 private:
  explicit TcpWorkerTransport(TcpWorkerOptions options);
  using Clock = std::chrono::steady_clock;
  bool connect_locked(std::string& error);
  void disconnect_locked();
  void ensure_connected_locked();
  void pump_in_locked();
  void flush_locked();
  void queue_rejoin_locked();

  mutable std::mutex mu_;
  TcpWorkerOptions opt_;
  sockaddr_storage addr_{};
  socklen_t addr_len_ = 0;
  int fd_ = -1;
  bool closed_ = false;
  bool refused_ = false;
  std::string refusal_;
  FrameReassembler in_;
  std::string out_;
  std::deque<std::string> pending_;
  std::uint32_t lease_shard_ = 0;
  std::uint32_t lease_epoch_ = 0;
  bool lease_held_ = false;
  bool ever_connected_ = false;
  Clock::time_point down_since_{};
  Clock::time_point next_attempt_{};
  std::uint64_t reconnects_ = 0;
};

}  // namespace xmap::fabric
