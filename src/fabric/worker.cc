#include "fabric/worker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "netbase/random.h"

namespace xmap::fabric {
namespace {

using Clock = ReliableLink::Clock;

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

BackoffPolicy worker_policy(const WorkerConfig& config) {
  // Decorrelate this worker's retransmission jitter from every other
  // link's without giving up determinism: the seed is still a pure
  // function of (fabric seed, worker id).
  BackoffPolicy policy = config.backoff;
  policy.seed = net::hash_combine64(policy.seed,
                                    static_cast<std::uint64_t>(config.id));
  return policy;
}

}  // namespace

FabricWorker::FabricWorker(WorkerConfig config, Transport* transport)
    : config_(std::move(config)),
      transport_(transport),
      link_(worker_policy(config_)),
      tap_(config_.id, config_.tracer, config_.recorder),
      span_parent_(config_.trace_root) {
  if (config_.tracer != nullptr || config_.recorder != nullptr) {
    link_.set_observer(&tap_);
  }
}

bool FabricWorker::pump(bool until_idle) {
  do {
    auto wire = link_.poll(Clock::now());
    for (auto& frame : wire.frames) {
      if (!transport_->send(std::move(frame))) {
        peer_gone_ = true;
        return false;
      }
    }
    if (link_.dead()) {
      peer_gone_ = true;
      error_ = "reliable link: retransmission budget exhausted";
      return false;
    }
    if (!link_.busy()) return true;
    int timeout_ms = 20;
    if (wire.next_deadline) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                             *wire.next_deadline - Clock::now())
                             .count();
      timeout_ms = static_cast<int>(std::min<long long>(
          std::max<long long>(until, 1), 50));
    }
    const auto received = transport_->recv(timeout_ms);
    if (received.status == RecvStatus::kClosed) {
      peer_gone_ = true;
      return false;
    }
    if (received.status != RecvStatus::kFrame) continue;
    auto decoded = decode_frame(received.frame);
    // A corrupt (truncated) frame vanishes here; the sender's
    // retransmission schedule recovers it.
    if (!decoded.message) continue;
    Message& msg = *decoded.message;
    if (config_.recorder != nullptr) {
      config_.recorder->record("rx", msg_type_name(msg.type), msg.seq);
    }
    if (msg.type == MsgType::kAck) {
      link_.on_ack(msg.ack_seq);
    } else if (msg.type == MsgType::kAssign) {
      auto inbound = link_.on_reliable(msg);
      if (!inbound.ack.empty()) transport_->send(std::move(inbound.ack));
      if (inbound.deliver) deferred_.push_back(std::move(msg));
    } else if (msg.type == MsgType::kBye) {
      // Bye is unreliable and terminal: no ack, no ordering to protect.
      deferred_.push_back(std::move(msg));
    }
  } while (until_idle && link_.busy());
  return true;
}

bool FabricWorker::send_reliable(Message msg) {
  if (config_.tracer != nullptr) {
    // Open a span for the frame itself and ship its id as the context's
    // parent: the coordinator's handling (and every retransmission) parents
    // under it, which is what stitches the cross-node tree together.
    msg.ctx_ver = kTraceCtxV1;
    msg.trace_id = config_.tracer->trace_id();
    msg.parent_span = config_.tracer->begin(
        config_.id, std::string("frame:") + msg_type_name(msg.type),
        span_parent_);
  }
  link_.enqueue(std::move(msg));
  return pump(/*until_idle=*/true);
}

void FabricWorker::start_heartbeats() {
  heartbeat_stop_ = false;
  heartbeat_ = std::thread([this] {
    Message beat;
    beat.type = MsgType::kHeartbeat;
    beat.worker = static_cast<std::uint32_t>(config_.id);
    const std::string frame = encode_frame(beat);
    std::unique_lock lock{heartbeat_mu_};
    while (!heartbeat_stop_) {
      lock.unlock();
      if (config_.recorder != nullptr) {
        config_.recorder->record("heartbeat", "beat");
      }
      transport_->send(frame);
      lock.lock();
      heartbeat_cv_.wait_for(
          lock, std::chrono::milliseconds(config_.heartbeat_interval_ms),
          [this] { return heartbeat_stop_; });
    }
  });
}

void FabricWorker::stop_heartbeats() {
  if (!heartbeat_.joinable()) return;
  {
    std::lock_guard lock{heartbeat_mu_};
    heartbeat_stop_ = true;
  }
  heartbeat_cv_.notify_all();
  heartbeat_.join();
}

void FabricWorker::run() {
  try {
    Message hello;
    hello.type = MsgType::kHello;
    hello.worker = static_cast<std::uint32_t>(config_.id);
    if (!send_reliable(std::move(hello))) return;
    start_heartbeats();
    while (!done_ && !peer_gone_ && !crashed_) {
      if (!deferred_.empty()) {
        Message msg = std::move(deferred_.front());
        deferred_.erase(deferred_.begin());
        if (msg.type == MsgType::kBye) {
          done_ = true;
        } else if (msg.type == MsgType::kAssign) {
          handle_assign(msg);
        }
        continue;
      }
      const auto received = transport_->recv(20);
      if (received.status == RecvStatus::kClosed) break;
      if (received.status != RecvStatus::kFrame) continue;
      auto decoded = decode_frame(received.frame);
      if (!decoded.message) continue;
      Message& msg = *decoded.message;
      if (config_.recorder != nullptr) {
        config_.recorder->record("rx", msg_type_name(msg.type), msg.seq);
      }
      if (msg.type == MsgType::kAck) {
        link_.on_ack(msg.ack_seq);
      } else if (msg.type == MsgType::kAssign) {
        auto inbound = link_.on_reliable(msg);
        if (!inbound.ack.empty()) transport_->send(std::move(inbound.ack));
        if (inbound.deliver) deferred_.push_back(std::move(msg));
      } else if (msg.type == MsgType::kBye) {
        done_ = true;
      }
    }
  } catch (const std::exception& e) {
    // Failure containment mirrors the engine's: a throwing worker reports
    // and hangs up; the coordinator's failover path treats it like any
    // other dead node.
    error_ = e.what();
  } catch (...) {
    error_ = "unknown exception";
  }
  stop_heartbeats();
  // A silent crash (kill without close_transport) must leave the
  // connection dangling so the coordinator's only death signal is the
  // heartbeat timeout; every other exit hangs up explicitly.
  if (crashed_) {
    if (config_.kill && config_.kill->close_transport) transport_->close();
  } else {
    transport_->close();
  }
}

void FabricWorker::handle_assign(const Message& assign) {
  const auto refuse_with = [&](std::string diagnostic) {
    if (config_.recorder != nullptr) {
      config_.recorder->record("refusal", diagnostic);
    }
    if (config_.tracer != nullptr) {
      config_.tracer->instant(config_.id, "refuse", assign.parent_span,
                              {{"shard", std::to_string(assign.shard)},
                               {"diagnostic", diagnostic}});
    }
    Message refuse;
    refuse.type = MsgType::kRefuse;
    refuse.shard = assign.shard;
    refuse.epoch = assign.epoch;
    refuse.diagnostic = std::move(diagnostic);
    send_reliable(std::move(refuse));
  };
  if (assign.fingerprint != config_.fingerprint) {
    refuse_with(
        "shard " + std::to_string(assign.shard) +
        ": scan fingerprint mismatch (stored " + hex_u64(assign.fingerprint) +
        ", computed " + hex_u64(config_.fingerprint) +
        ") — refusing a checkpoint handoff from a different scan");
    return;
  }
  if (assign.has_resume &&
      assign.cursor.spec_steps.size() != config_.base.targets.size()) {
    refuse_with("shard " + std::to_string(assign.shard) +
                ": torn checkpoint cursor (stored " +
                std::to_string(assign.cursor.spec_steps.size()) +
                " spec steps, computed " +
                std::to_string(config_.base.targets.size()) +
                " target specs) — refusing to resume");
    return;
  }
  run_shard(assign);
}

void FabricWorker::run_shard(const Message& assign) {
  // The lease composes under the machine shard exactly like the engine's
  // thread sub-sharding: fabric shard s of S on machine shard m of M walks
  // shard m*S+s of M*S. The shard's record stream is therefore a pure
  // function of (scan config, shard index) — whichever worker runs it, at
  // whatever node count, produces identical bytes.
  // The transport's rejoin handshake proves this lease after a socket
  // death; held until the shard completes, so a crash leaves the stale
  // lease in place for the coordinator to fence.
  transport_->note_lease(assign.shard, assign.epoch, true);
  scan::ScanConfig wcfg = config_.base;
  wcfg.shard = config_.base.shard * static_cast<int>(assign.shards_total) +
               static_cast<int>(assign.shard);
  wcfg.shards =
      config_.base.shards * static_cast<int>(assign.shards_total);
  wcfg.budget_cut_raw_slot = assign.budget_cut;
  wcfg.max_probes = 0;  // fully encoded in the cut by the coordinator
  // With observability on, a resume replays the whole shard in the local
  // replica instead of fast-forwarding: the record filter below keeps the
  // wire bytes identical (only slots >= the handoff cursor go out), while
  // the regenerated trace/metrics/stats cover the full shard — exactly the
  // engine's per-shard values, which is what makes the fabric's obs
  // outputs byte-identical to the engine's. Obs off keeps the O(log n)
  // fast-forward.
  const bool full_replay = assign.has_resume && config_.obs.any();
  const std::uint64_t resume_floor =
      full_replay ? assign.cursor.frontier_slot : 0;
  if (assign.has_resume && !full_replay) {
    wcfg.resume_spec_steps = assign.cursor.spec_steps;
  }
  if (config_.kill) wcfg.shutdown_at_raw_slot = config_.kill->at_slot;

  std::uint64_t shard_span = 0;
  if (config_.tracer != nullptr) {
    shard_span = config_.tracer->begin(
        config_.id, "shard_run", assign.parent_span,
        {{"shard", std::to_string(assign.shard)},
         {"epoch", std::to_string(assign.epoch)}});
    span_parent_ = shard_span;
    if (assign.has_resume) {
      config_.tracer->instant(
          config_.id, "cursor_resume", shard_span,
          {{"from_slot", std::to_string(assign.cursor.frontier_slot)},
           {"mode", full_replay ? "full_replay" : "fast_forward"}});
    }
  }
  // Thread-confined scan-content sinks, the engine's per-worker recipe.
  obs::TraceBuffer trace_buffer{config_.obs.trace_level};
  obs::MetricsShard metrics_shard;
  obs::StageProfile shard_profile;

  const auto finish_span = [&](const char* note) {
    if (config_.obs.profile) profile_.merge(shard_profile);
    if (config_.tracer != nullptr) {
      if (note != nullptr) {
        config_.tracer->add_args(shard_span, {{"outcome", note}});
      }
      config_.tracer->end(shard_span);
      span_parent_ = config_.trace_root;
    }
  };
  obs::TraceBuffer* trace =
      config_.obs.trace_level != obs::TraceLevel::kOff ? &trace_buffer
                                                       : nullptr;
  obs::MetricsShard* metrics =
      config_.obs.metrics ? &metrics_shard : nullptr;
  obs::StageProfile* profile =
      config_.obs.profile ? &shard_profile : nullptr;

  // Thread-confined deterministic replica, the parallel engine's recipe.
  sim::Network net{config_.build.seed};
  net.set_obs(trace, metrics);
  auto internet = [&] {
    obs::ScopedStageTimer build_timer{profile, obs::Stage::kBuild};
    return topo::build_internet(net, *config_.world_specs, *config_.vendors,
                                config_.build);
  }();
  if (config_.faults.any()) {
    sim::FaultInjector* injector = net.install_faults(config_.faults);
    std::vector<sim::NodeId> candidates;
    for (const auto& isp : internet.isps) {
      for (const auto& device : isp.devices) {
        candidates.push_back(device.node);
      }
    }
    injector->choose_silent(candidates);
  }
  auto* scanner =
      net.make_node<scan::SimChannelScanner>(wcfg, *config_.module);
  const int iface =
      topo::attach_vantage(net, internet, scanner, config_.vantage);
  scanner->set_iface(iface);
  scanner->set_obs(config_.obs, trace, metrics, profile);

  std::vector<WireRecord> buffer;
  // Set when the coordinator is unreachable mid-scan: the replica runs to
  // completion (cheap, deterministic) but nothing more goes on the wire.
  bool abandoned = false;
  const auto crash_armed = [&] {
    return config_.kill.has_value() && scanner->interrupted();
  };
  const auto flush = [&]() -> bool {
    if (buffer.empty()) return true;
    Message batch;
    batch.type = MsgType::kRecords;
    batch.shard = assign.shard;
    batch.epoch = assign.epoch;
    batch.records = std::move(buffer);
    buffer.clear();
    return send_reliable(std::move(batch));
  };
  scanner->on_response_slotted([&](const scan::ProbeResponse& response,
                                   sim::SimTime when,
                                   std::uint64_t raw_slot) {
    // Full-replay resume: slots below the handoff cursor were committed by
    // the coordinator from the dead epoch — regenerate them locally (they
    // feed the shard's trace/metrics/stats) but keep them off the wire.
    if (raw_slot < resume_floor) return;
    buffer.push_back(WireRecord{response, when, raw_slot});
    if (abandoned || crash_armed()) return;
    if (buffer.size() >= config_.record_batch && !flush()) abandoned = true;
  });
  scanner->set_checkpoint_hook(
      config_.checkpoint_interval_targets,
      [&](const scan::ScanCursor& cursor) {
        // A replayed prefix must not regress the shard's streamed cursor:
        // a checkpoint below the handoff would let a second failover
        // re-transmit slots the coordinator already committed.
        if (cursor.frontier_slot < resume_floor) return;
        if (abandoned || crash_armed()) return;
        // Flush first: the FIFO channel then guarantees every record below
        // the cursor reaches the coordinator before the checkpoint does —
        // the invariant the failover filter stands on.
        if (!flush()) {
          abandoned = true;
          return;
        }
        if (config_.tracer != nullptr) {
          config_.tracer->instant(
              config_.id, "checkpoint", shard_span,
              {{"slot", std::to_string(cursor.frontier_slot)}});
        }
        Message ckpt;
        ckpt.type = MsgType::kCheckpoint;
        ckpt.shard = assign.shard;
        ckpt.epoch = assign.epoch;
        ckpt.cursor = cursor;
        ckpt.stats = scanner->stats();
        if (!send_reliable(std::move(ckpt))) abandoned = true;
      });

  scanner->start();
  net.run();

  if (crash_armed()) {
    // The seeded kill point: everything unflushed dies with the worker.
    crashed_ = true;
    finish_span("crashed");
    return;
  }
  if (abandoned || peer_gone_) {
    finish_span("abandoned");
    return;
  }
  if (!flush()) {
    finish_span("abandoned");
    return;
  }
  // Ship the shard's deterministic observability ahead of ShardDone on the
  // same FIFO channel: a ShardDone in hand implies every obs chunk of its
  // epoch is in hand, so the coordinator commits them together.
  if (trace != nullptr) {
    auto events = trace_buffer.take();
    // Bounded chunks: the frame cap is 1 MiB and trace events are ~100
    // bytes serialized, so 2000 events sit comfortably under it.
    constexpr std::size_t kChunk = 2000;
    for (std::size_t i = 0; i < events.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, events.size() - i);
      Message chunk;
      chunk.type = MsgType::kObsTrace;
      chunk.shard = assign.shard;
      chunk.epoch = assign.epoch;
      chunk.trace_events.assign(
          events.begin() + static_cast<std::ptrdiff_t>(i),
          events.begin() + static_cast<std::ptrdiff_t>(i + n));
      if (!send_reliable(std::move(chunk))) {
        finish_span("abandoned");
        return;
      }
    }
  }
  if (metrics != nullptr) {
    auto snapshot = obs::merge_shards({&metrics_shard});
    constexpr std::size_t kChunk = 500;
    for (std::size_t i = 0; i < snapshot.entries.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, snapshot.entries.size() - i);
      Message chunk;
      chunk.type = MsgType::kObsMetrics;
      chunk.shard = assign.shard;
      chunk.epoch = assign.epoch;
      chunk.metrics.entries.assign(
          snapshot.entries.begin() + static_cast<std::ptrdiff_t>(i),
          snapshot.entries.begin() + static_cast<std::ptrdiff_t>(i + n));
      if (!send_reliable(std::move(chunk))) {
        finish_span("abandoned");
        return;
      }
    }
  }
  Message done;
  done.type = MsgType::kShardDone;
  done.shard = assign.shard;
  done.epoch = assign.epoch;
  done.stats = scanner->stats();
  if (send_reliable(std::move(done))) {
    transport_->note_lease(0, 0, false);
    finish_span("completed");
  } else {
    finish_span("abandoned");
  }
}

}  // namespace xmap::fabric
