// The fabric coordinator: fault-tolerant distributed scan orchestration.
//
// run_fabric_scan splits the machine's permutation shard into
// `shards` fabric shards and leases them to `nodes` worker engines over the
// frame protocol (protocol.h) on an in-process loopback transport
// (transport.h) — the same state machines would drive a socket transport.
// Each shard is one lease: Assign carries the shard index, the shared
// budget cut, the scan's fingerprint hash, and (after a failover) the dead
// worker's last streamed checkpoint cursor.
//
// Fail-over, and why the merged output is byte-identical to a run with no
// failures at any node count:
//
//   * A shard's record stream is a pure function of (scan config, shard
//     index) — workers scan deterministic world replicas, so which node
//     runs a shard, and when, is invisible in the bytes.
//   * Workers stream reliable, FIFO Records batches and periodically a
//     Checkpoint carrying a *stable* cursor C: every record below C has a
//     completed lifecycle and was flushed before the Checkpoint frame.
//   * When a worker dies (connection drop, heartbeat timeout, or reliable
//     retransmission budget exhausted), the coordinator keeps exactly the
//     dead epoch's records with raw_slot < C, discards the rest, bumps the
//     shard's assignment epoch, and re-leases the shard with resume
//     cursor C. The survivor fast-forwards its permutation iterator to C
//     (CyclicGroup::Iterator::fast_forward under the hood) and probes only
//     slots >= C — no permutation slot below the cursor is ever re-probed,
//     and the regenerated records >= C are exactly the discarded ones.
//   * Frames from a stale epoch (a worker wrongly declared dead keeps
//     streaming) are fenced by the epoch check and ignored.
//
// Shard-count note: `shards` (S), not the node count, is the unit of
// determinism. Fabric shard s of S on machine shard m of M scans
// permutation shard m*S+s of M*S — the same composition as the engine's
// thread sub-sharding, so a fabric run at S shards produces record content
// identical to `run_parallel_scan` at S threads, for any node count.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "fabric/channel.h"
#include "obs/config.h"
#include "obs/fabric_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "recover/state.h"
#include "sim/faults.h"
#include "topology/builder.h"
#include "xmap/results.h"
#include "xmap/scanner.h"

namespace xmap::fabric {

inline constexpr int kMaxNodes = 32;

struct TcpWorkerOptions;  // tcp_transport.h

// Which transport carries the fabric's frames. Loopback is the in-process
// reproduction substrate; TCP puts every frame on a real socket (one
// coordinator acceptor, one connection per worker, reconnect-with-epoch
// handshake on socket death — tcp_transport.h).
enum class TransportKind : std::uint8_t { kLoopback, kTcp };

struct FabricConfig {
  // The world every worker replicates.
  std::vector<topo::IspSpec> world_specs;
  std::vector<topo::VendorProfile> vendors;
  topo::BuildConfig build;
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");
  const scan::ProbeModule* module = nullptr;

  // Base scan parameters; scan.shard/scan.shards is the machine-level
  // partition, fabric shards compose underneath. adaptive_rate is refused:
  // without an analytic send schedule there is no stable cursor to hand
  // over, and determinism is the whole point of the fabric.
  scan::ScanConfig scan;
  sim::FaultPlan faults;
  sim::FabricFaultPlan fabric_faults;

  int nodes = 1;    // worker engines (1..kMaxNodes)
  int shards = 8;   // fabric shard count S — the determinism unit

  // Transport selection. With kTcp the coordinator binds listen_address
  // (port 0 picks an ephemeral port) and workers connect to
  // connect_address — empty means the coordinator's actual bound address,
  // which is how tests route workers through a chaos proxy instead.
  // Loopback message faults (fabric_faults.messages) are refused with kTcp:
  // the chaos proxy is the socket-level fault substrate.
  TransportKind transport = TransportKind::kLoopback;
  std::string listen_address = "127.0.0.1:0";
  std::string connect_address;
  int connect_timeout_ms = 2000;
  // Socket-death recovery: a disconnected worker retries every
  // reconnect_delay_ms until reconnect_window_ms has elapsed, then gives
  // up; the heartbeat timeout stays the sole death arbiter meanwhile.
  int reconnect_window_ms = 1500;
  int reconnect_delay_ms = 10;
  // Test hook: adjust one worker's transport options (fingerprint
  // override, per-node proxy routing, reconnect pacing) before connect.
  std::function<void(int node, TcpWorkerOptions& options)> tcp_worker_tweak;

  // Worker checkpoint cadence (targets between streamed cursors). The only
  // failover granularity: a dead shard resumes from its last checkpoint.
  std::uint64_t checkpoint_interval_targets = 256;
  int heartbeat_interval_ms = 25;
  int heartbeat_timeout_ms = 250;
  BackoffPolicy backoff;        // reliable-channel retransmission schedule
  std::size_t record_batch = 128;
  std::uint64_t alias_threshold = 16;

  // The scan identity; its hash is stamped into every lease and workers
  // refuse mismatches (see recover::fingerprint_hash).
  recover::Fingerprint fingerprint;

  // Coordinator event log (assignment/failover lines); null = silent.
  std::ostream* log = nullptr;

  // Scan-content observability. Workers attach the engine's per-worker
  // sinks to their replicas and ship each shard's trace/metrics back over
  // ObsTrace/ObsMetrics frames; the merged FabricResult::trace /
  // scan_metrics are byte-identical to run_parallel_scan at `shards`
  // threads — including across failovers (a resumed lease replays its
  // shard locally and re-ships the full-shard observability).
  obs::ObsConfig obs;

  // Deployment tracing (wall clock, quarantined from the deterministic
  // outputs): record causal spans across the coordinator and every worker
  // into FabricResult::fabric_spans.
  bool fabric_trace = false;

  // Per-node flight recorders: > 0 sets the ring capacity (protocol events
  // kept per node). On worker death, lease refusal, or a failed fabric the
  // rings are dumped to "<flight_recorder_prefix>.<node>.jsonl" (paths in
  // FabricResult::recorder_dumps); an empty prefix keeps them in memory.
  std::size_t flight_recorder_events = 0;
  std::string flight_recorder_prefix;

  // Health timeline: interval JSONL snapshots of fabric state streamed to
  // this sink while the run is live (null = off).
  std::ostream* timeline = nullptr;
  int timeline_interval_ms = 50;
};

// One merged record. `shard` is the fabric shard that produced it — the
// sort tiebreak, equal for any node count by construction.
struct FabricRecord {
  scan::ProbeResponse response;
  sim::SimTime when = 0;
  int shard = 0;
  std::uint64_t raw_slot = 0;
};

struct ShardOutcome {
  int shard = 0;
  bool completed = false;
  int epochs = 1;            // assignment generations (1 = no failover)
  std::vector<int> workers;  // every node that held the lease, in order
  std::uint64_t resumed_from_slot = 0;  // last failover handoff cursor
};

struct FabricResult {
  bool ok = false;     // false = invalid config (error says why)
  std::string error;
  // Some shard could never be completed (lease refused, or every node
  // died); records/stats are the partial union.
  bool failed = false;

  // All validated responses in the deterministic content order
  // (when, responder, probe_dst, kind, shard) — byte-stable across runs,
  // node counts, and failovers.
  std::vector<FabricRecord> records;
  scan::ResultCollector collector;
  // Summed per-shard stats. Exact for failover-free runs; after a failover
  // the dead epoch contributes its last checkpoint's live stats, which
  // overlap the resumed tail by up to one response horizon — the footer is
  // approximate, records and store artifacts stay exact (the same caveat
  // mid-flight checkpoint resume already carries).
  scan::ScanStats stats;

  std::vector<ShardOutcome> shards;
  std::vector<std::string> worker_errors;  // refusals, link failures
  int dead_workers = 0;

  // Fabric counters (also exported as fabric_* metrics series — all
  // registered wall_clock: they describe the deployment, not the scan, so
  // the deterministic Prometheus export omits them).
  std::uint64_t reassignments = 0;      // failover re-leases
  std::uint64_t missed_heartbeats = 0;  // intervals a live worker was silent
  std::uint64_t resumed_slots = 0;      // sum of failover handoff frontiers
  std::uint64_t frames_rejected = 0;    // undecodable frames dropped
  std::uint64_t retransmits = 0;        // reliable re-sends, both directions
  // Socket-transport link accounting (zero on loopback): accepted rejoin
  // handshakes after each worker's initial join, and raw stream bytes.
  std::uint64_t reconnects = 0;
  std::uint64_t bytes_sent = 0;      // coordinator -> workers
  std::uint64_t bytes_received = 0;  // workers -> coordinator
  obs::MetricsSnapshot metrics;

  // Scan-content observability (when FabricConfig::obs asks for it):
  // byte-identical to the engine at `shards` threads.
  std::vector<obs::TraceEvent> trace;
  obs::MetricsSnapshot scan_metrics;
  obs::StageProfile stage_profile;  // wall clock: workers + coordinator

  // Deployment spans (when fabric_trace): the causal cross-node tree.
  std::vector<obs::FabricSpan> fabric_spans;
  std::uint64_t fabric_trace_id = 0;

  // Flight-recorder dumps written on this run's failure paths.
  std::vector<std::string> recorder_dumps;

  double wall_seconds = 0;
};

[[nodiscard]] FabricResult run_fabric_scan(const FabricConfig& config);

}  // namespace xmap::fabric
