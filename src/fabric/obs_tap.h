// The LinkObserver implementation both fabric ends share: it tees reliable
// channel events into the fabric tracer (retransmits become child spans of
// the frame they retry, acks close the frame span) and the node's flight
// recorder. Either sink may be null; a fully-null tap is never installed.
#pragma once

#include <cstdio>
#include <string>

#include "fabric/channel.h"
#include "fabric/protocol.h"
#include "obs/fabric_trace.h"
#include "obs/flight_recorder.h"

namespace xmap::fabric {

class LinkTap : public LinkObserver {
 public:
  LinkTap(int node, obs::FabricTracer* tracer, obs::FlightRecorder* recorder)
      : node_(node), tracer_(tracer), recorder_(recorder) {}

  void on_frame_send(const Message& msg, int attempt,
                     double backoff_ms) override {
    if (recorder_ != nullptr) {
      recorder_->record(attempt == 0 ? "tx" : "retx",
                        frame_detail(msg, backoff_ms), msg.seq,
                        static_cast<std::uint64_t>(attempt));
    }
    // A retransmission is causally a child of the frame it retries; the
    // frame's span id travels in the message's own trace context.
    if (tracer_ != nullptr && attempt > 0 &&
        msg.ctx_ver == kTraceCtxV1) {
      char ms[32];
      std::snprintf(ms, sizeof ms, "%.3f", backoff_ms);
      tracer_->instant(node_, "retransmit", msg.parent_span,
                       {{"attempt", std::to_string(attempt)},
                        {"next_backoff_ms", ms}});
    }
  }

  void on_frame_acked(const Message& msg, int attempts) override {
    if (recorder_ != nullptr) {
      recorder_->record("ack", msg_type_name(msg.type), msg.seq,
                        static_cast<std::uint64_t>(attempts));
    }
    if (tracer_ != nullptr && msg.ctx_ver == kTraceCtxV1) {
      tracer_->end(msg.parent_span);
    }
  }

  void on_link_dead(const Message& msg, int attempts) override {
    if (recorder_ != nullptr) {
      recorder_->record("link_dead", msg_type_name(msg.type), msg.seq,
                        static_cast<std::uint64_t>(attempts));
    }
    if (tracer_ != nullptr && msg.ctx_ver == kTraceCtxV1) {
      tracer_->add_args(msg.parent_span, {{"link_dead", "true"}});
      tracer_->end(msg.parent_span);
    }
  }

 private:
  static std::string frame_detail(const Message& msg, double backoff_ms) {
    std::string detail = msg_type_name(msg.type);
    switch (msg.type) {
      case MsgType::kAssign:
      case MsgType::kRefuse:
      case MsgType::kRecords:
      case MsgType::kCheckpoint:
      case MsgType::kShardDone:
      case MsgType::kObsTrace:
      case MsgType::kObsMetrics:
        detail += " shard=" + std::to_string(msg.shard) + " epoch=" +
                  std::to_string(msg.epoch);
        break;
      default:
        break;
    }
    char ms[40];
    std::snprintf(ms, sizeof ms, " backoff_ms=%.3f", backoff_ms);
    detail += ms;
    return detail;
  }

  const int node_;
  obs::FabricTracer* const tracer_;
  obs::FlightRecorder* const recorder_;
};

}  // namespace xmap::fabric
