// Deterministic chaos socket proxy: a real TCP relay with seeded fault
// injection, the kernel-level counterpart of the loopback's message-fault
// plan. Tests point a worker's connect address at the proxy and the proxy
// at the coordinator; every byte then crosses two real sockets, and the
// proxy perturbs the stream in ways only a socket transport can observe:
//
//   * mid-frame connection cuts — the proxy parses XFB1 frame boundaries
//     on the worker->coordinator stream and severs both legs a configured
//     number of bytes *into* a frame, so the receiver holds a torn frame
//     when the connection dies;
//   * byte-level stalls — seeded per-chunk delivery delays;
//   * split / coalesced segments — forwarding in tiny segments, or holding
//     bytes until a minimum batch, so receivers see partial reads and
//     multi-frame reads;
//   * one-direction blackholes — after a byte threshold one direction
//     silently discards forever, the half-open peer the heartbeat timeout
//     exists to catch.
//
// Every fault decision is a pure function of (seed, connection index,
// direction, chunk index) — reruns see the same chaos. The proxy runs one
// background thread; stop() (or the destructor) joins it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace xmap::fabric {

struct ChaosProxyOptions {
  std::string upstream;     // coordinator address, numeric "host:port"
  std::uint64_t seed = 1;

  // Cut: sever proxied connection `cut_connection` (0-based accept order)
  // once `cut_after_frames` complete worker->coordinator frames plus
  // `cut_frame_bytes` bytes of the next frame have been relayed upstream
  // (cut_frame_bytes >= 1 keeps the cut strictly mid-frame). -1 = never.
  int cut_connection = -1;
  std::uint64_t cut_after_frames = 0;
  std::uint64_t cut_frame_bytes = 3;

  // Split: forward in segments of at most this many bytes (0 = off).
  std::size_t split_max_bytes = 0;

  // Coalesce: hold a direction's bytes until at least this many are
  // buffered or coalesce_hold_ms has passed (0 = off) — receivers then see
  // several frames per read instead of one.
  std::size_t coalesce_min_bytes = 0;
  int coalesce_hold_ms = 5;

  // Stall: with this per-chunk probability (seeded), delay the chunk's
  // delivery by stall_ms.
  double stall_probability = 0;
  int stall_ms = 0;

  // Blackhole: on connection `blackhole_connection`, after
  // `blackhole_after_bytes` relayed in the chosen direction, silently
  // discard that direction forever. -1 = never.
  int blackhole_connection = -1;
  bool blackhole_up = true;  // worker->coordinator; false = coordinator->worker
  std::uint64_t blackhole_after_bytes = 0;
};

class ChaosProxy {
 public:
  // Listens on 127.0.0.1 port 0 (address() reports the choice) and starts
  // the relay thread. Null on failure with a diagnostic naming address and
  // errno.
  static std::unique_ptr<ChaosProxy> create(ChaosProxyOptions options,
                                            std::string& error);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  [[nodiscard]] std::string address() const;
  [[nodiscard]] std::uint16_t port() const;

  // Stops relaying and joins the thread; idempotent.
  void stop();

  // Fault/traffic accounting (safe after stop(), approximate while live).
  [[nodiscard]] std::uint64_t connections() const;
  [[nodiscard]] std::uint64_t cuts() const;
  [[nodiscard]] std::uint64_t stalls() const;
  [[nodiscard]] std::uint64_t blackholed_bytes() const;
  [[nodiscard]] std::uint64_t relayed_bytes() const;

 private:
  ChaosProxy() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xmap::fabric
