#include "fabric/channel.h"

#include <algorithm>

#include "netbase/random.h"

namespace xmap::fabric {

double BackoffPolicy::delay_ms(std::uint64_t seq, int attempt) const {
  double backoff = base_ms;
  for (int i = 0; i < attempt && backoff < max_ms; ++i) backoff *= 2.0;
  backoff = std::min(backoff, max_ms);
  // Keyed jitter, not an RNG stream: the draw depends only on (seed, seq,
  // attempt), so a replayed scenario retransmits on an identical schedule.
  const std::uint64_t key = net::hash_combine64(
      net::hash_combine64(seed, seq),
      static_cast<std::uint64_t>(attempt) + 0x6a69747465726afbULL);
  const double unit =
      static_cast<double>(net::mix64(key) >> 11) * 0x1.0p-53;
  return backoff + unit * jitter_ms;
}

void ReliableLink::enqueue(Message msg) {
  Pending p;
  msg.seq = next_seq_++;
  p.frame = encode_frame(msg);
  p.msg = std::move(msg);
  pending_.push_back(std::move(p));
}

ReliableLink::Wire ReliableLink::poll(Clock::time_point now) {
  Wire wire;
  if (dead_ || pending_.empty()) return wire;
  Pending& head = pending_.front();
  if (head.attempts == 0 || now >= head.next_at) {
    if (head.attempts >= policy_.max_attempts) {
      dead_ = true;
      if (observer_ != nullptr) {
        observer_->on_link_dead(head.msg, head.attempts);
      }
      return wire;
    }
    if (head.attempts > 0) ++retransmits_;
    const double delay = policy_.delay_ms(head.msg.seq, head.attempts);
    if (observer_ != nullptr) {
      observer_->on_frame_send(head.msg, head.attempts, delay);
    }
    ++head.attempts;
    head.next_at = now + std::chrono::microseconds(
                             static_cast<std::int64_t>(delay * 1000.0));
    wire.frames.push_back(head.frame);
  }
  wire.next_deadline = head.next_at;
  return wire;
}

void ReliableLink::on_ack(std::uint64_t seq) {
  // Stop-and-wait: only the in-flight frame can be acknowledged. Stale
  // acks (duplicated frames, re-acks of already-completed sequences) fall
  // through harmlessly.
  if (!pending_.empty() && pending_.front().msg.seq == seq) {
    if (observer_ != nullptr) {
      observer_->on_frame_acked(pending_.front().msg,
                                pending_.front().attempts);
    }
    pending_.pop_front();
  }
}

ReliableLink::Inbound ReliableLink::on_reliable(const Message& msg) {
  Inbound in;
  if (msg.seq > expected_) return in;  // ahead: peer bug, drop un-acked
  Message ack;
  ack.type = MsgType::kAck;
  ack.ack_seq = msg.seq;
  in.ack = encode_frame(ack);
  if (msg.seq == expected_) {
    ++expected_;
    in.deliver = true;
  }
  // Below expected_: a duplicate whose ack was lost — re-ack, don't
  // re-deliver.
  return in;
}

}  // namespace xmap::fabric
