#include "fabric/transport.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "fabric/protocol.h"
#include "netbase/random.h"

namespace xmap::fabric {
namespace {

using Clock = std::chrono::steady_clock;

struct Entry {
  int worker = -1;
  std::string frame;
  bool closed = false;  // close sentinel, delivered after pending frames
  Clock::time_point deliver_at;
};

// An unbounded delay-aware FIFO: entries become visible at their
// deliver_at, so a delayed frame lets later frames overtake it — exactly
// the reordering the fault plan's delay dial is meant to produce.
class Mailbox {
 public:
  void push(Entry entry) {
    {
      std::lock_guard lock{mu_};
      queue_.push_back(std::move(entry));
    }
    cv_.notify_all();
  }

  void close() {
    {
      std::lock_guard lock{mu_};
      closed_ = true;
    }
    cv_.notify_all();
  }

  struct PopResult {
    RecvStatus status = RecvStatus::kTimeout;
    Entry entry;
  };

  PopResult pop(int timeout_ms) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    std::unique_lock lock{mu_};
    for (;;) {
      const auto now = Clock::now();
      const auto ready =
          std::find_if(queue_.begin(), queue_.end(), [&](const Entry& e) {
            return e.deliver_at <= now;
          });
      if (ready != queue_.end()) {
        PopResult out;
        out.status = ready->closed ? RecvStatus::kClosed : RecvStatus::kFrame;
        out.entry = std::move(*ready);
        queue_.erase(ready);
        return out;
      }
      if (queue_.empty() && closed_) return {RecvStatus::kClosed, {}};
      auto wait_until = deadline;
      for (const Entry& e : queue_) {
        wait_until = std::min(wait_until, e.deliver_at);
      }
      if (now >= wait_until && now >= deadline) return {};
      cv_.wait_until(lock, wait_until);
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool closed_ = false;
};

bool is_heartbeat(const std::string& frame) {
  return frame.size() > 8 &&
         static_cast<std::uint8_t>(frame[8]) ==
             static_cast<std::uint8_t>(MsgType::kHeartbeat);
}

}  // namespace

struct LoopbackFabric::Impl {
  struct Channel;

  // Applies the fault plan to one transmission and pushes the surviving
  // deliveries. `endpoint` is the channel's worker index in both
  // directions; `to_coordinator` disambiguates. Returns nothing — a drop
  // is a successful send from the sender's point of view.
  void deliver(Mailbox& box, Channel& channel, int worker, std::string frame,
               bool to_coordinator);

  struct Channel {
    Mailbox to_worker;
    std::atomic<bool> worker_closed{false};
    std::atomic<bool> coord_closed{false};
    // Per-direction retransmission counters: the fault verdict is keyed by
    // (frame bytes, attempt), so the Nth retransmission of an identical
    // frame gets a fresh draw. Guarded — the worker's heartbeat thread
    // sends concurrently with its main thread.
    std::mutex attempts_mu;
    std::unordered_map<std::uint64_t, std::uint32_t> attempts_up;
    std::unordered_map<std::uint64_t, std::uint32_t> attempts_down;
    std::unique_ptr<Transport> endpoint;
  };

  const sim::FabricFaultPlan* faults = nullptr;
  int workers = 0;
  Mailbox coord_inbox;
  std::vector<std::unique_ptr<Channel>> channels;
};

namespace {

// The worker-thread side of one channel.
class WorkerEndpoint final : public Transport {
 public:
  WorkerEndpoint(LoopbackFabric::Impl* fabric, int worker)
      : fabric_(fabric), worker_(worker) {}

  bool send(std::string frame) override {
    auto& channel = *fabric_->channels[static_cast<std::size_t>(worker_)];
    if (channel.worker_closed.load(std::memory_order_acquire) ||
        channel.coord_closed.load(std::memory_order_acquire)) {
      return false;
    }
    fabric_->deliver(fabric_->coord_inbox, channel, worker_,
                     std::move(frame), /*to_coordinator=*/true);
    return true;
  }

  RecvResult recv(int timeout_ms) override {
    auto& channel = *fabric_->channels[static_cast<std::size_t>(worker_)];
    auto popped = channel.to_worker.pop(timeout_ms);
    RecvResult out;
    out.status = popped.status;
    out.frame = std::move(popped.entry.frame);
    return out;
  }

  void close() override {
    auto& channel = *fabric_->channels[static_cast<std::size_t>(worker_)];
    if (channel.worker_closed.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    // The coordinator sees the hangup after this worker's already-queued
    // frames (a TCP FIN behind buffered data); the worker's own inbox
    // unblocks immediately.
    Entry sentinel;
    sentinel.worker = worker_;
    sentinel.closed = true;
    sentinel.deliver_at = Clock::now();
    fabric_->coord_inbox.push(std::move(sentinel));
    channel.to_worker.close();
  }

 private:
  LoopbackFabric::Impl* fabric_;
  int worker_;
};

}  // namespace

void LoopbackFabric::Impl::deliver(Mailbox& box, Channel& channel,
                                   int worker, std::string frame,
                                   bool to_coordinator) {
  auto now = Clock::now();
  if (faults == nullptr || !faults->messages.any()) {
    Entry entry;
    entry.worker = worker;
    entry.frame = std::move(frame);
    entry.deliver_at = now;
    box.push(std::move(entry));
    return;
  }
  std::uint32_t attempt = 0;
  {
    const std::uint64_t key = frame_checksum(frame);
    std::lock_guard lock{channel.attempts_mu};
    auto& attempts =
        to_coordinator ? channel.attempts_up : channel.attempts_down;
    attempt = attempts[key]++;
  }
  const sim::FabricMessageVerdict verdict = sim::fabric_message_verdict(
      *faults, static_cast<std::uint32_t>(worker), to_coordinator,
      is_heartbeat(frame), frame.data(), frame.size(), attempt);
  if (verdict.drop) return;
  if (verdict.truncate_to != 0 && verdict.truncate_to < frame.size()) {
    frame.resize(verdict.truncate_to);
  }
  Entry entry;
  entry.worker = worker;
  entry.frame = frame;
  entry.deliver_at =
      now + std::chrono::microseconds(
                static_cast<std::int64_t>(verdict.extra_delay_ms * 1000.0));
  if (verdict.duplicate) {
    Entry copy;
    copy.worker = worker;
    copy.frame = std::move(frame);
    copy.deliver_at = now;  // the duplicate races ahead of the original
    box.push(std::move(copy));
  }
  box.push(std::move(entry));
}

LoopbackFabric::LoopbackFabric(int workers,
                               const sim::FabricFaultPlan* faults)
    : impl_(std::make_unique<Impl>()) {
  impl_->faults = faults;
  impl_->workers = workers;
  impl_->channels.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto channel = std::make_unique<Impl::Channel>();
    channel->endpoint = std::make_unique<WorkerEndpoint>(impl_.get(), w);
    impl_->channels.push_back(std::move(channel));
  }
}

LoopbackFabric::~LoopbackFabric() = default;

int LoopbackFabric::workers() const { return impl_->workers; }

Transport* LoopbackFabric::worker_endpoint(int worker) {
  return impl_->channels[static_cast<std::size_t>(worker)]->endpoint.get();
}

LoopbackFabric::CoordRecv LoopbackFabric::recv_any(int timeout_ms) {
  auto popped = impl_->coord_inbox.pop(timeout_ms);
  CoordRecv out;
  out.status = popped.status;
  out.worker = popped.entry.worker;
  out.frame = std::move(popped.entry.frame);
  return out;
}

bool LoopbackFabric::send_to(int worker, std::string frame) {
  auto& channel = *impl_->channels[static_cast<std::size_t>(worker)];
  if (channel.worker_closed.load(std::memory_order_acquire) ||
      channel.coord_closed.load(std::memory_order_acquire)) {
    return false;
  }
  impl_->deliver(channel.to_worker, channel, worker, std::move(frame),
                 /*to_coordinator=*/false);
  return true;
}

void LoopbackFabric::close_all() {
  for (auto& channel : impl_->channels) {
    if (!channel->coord_closed.exchange(true, std::memory_order_acq_rel)) {
      channel->to_worker.close();
    }
  }
}

}  // namespace xmap::fabric
