#include "fabric/coordinator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <tuple>

#include "fabric/transport.h"
#include "fabric/worker.h"
#include "netbase/random.h"

namespace xmap::fabric {
namespace {

using Clock = ReliableLink::Clock;

FabricResult fail(std::string message) {
  FabricResult result;
  result.ok = false;
  result.error = std::move(message);
  return result;
}

// Default targets (every block of the world) — the engine's recipe: window
// placement is a pure function of the spec, no throwaway world build.
std::vector<scan::TargetSpec> default_targets(const FabricConfig& config) {
  std::vector<scan::TargetSpec> targets;
  targets.reserve(config.world_specs.size());
  for (const auto& spec : config.world_specs) {
    const topo::ScanWindow window =
        topo::scan_window(spec, config.build.window_bits);
    targets.push_back(scan::TargetSpec{window.scan_base, window.window_lo,
                                       window.window_hi});
  }
  return targets;
}

enum class WorkerPhase { kJoining, kIdle, kBusy, kDead };
enum class ShardPhase { kPending, kAssigned, kDone, kFailed };

struct WorkerState {
  WorkerPhase phase = WorkerPhase::kJoining;
  std::unique_ptr<ReliableLink> link;
  int shard = -1;  // the lease this worker holds (kBusy only)
  Clock::time_point last_seen;
  std::uint64_t misses_counted = 0;
};

struct ShardState {
  ShardPhase phase = ShardPhase::kPending;
  std::uint32_t epoch = 0;  // assignment generation, fences stale frames
  int worker = -1;
  // The last streamed checkpoint: the failover handoff point. cursor_stats
  // is the live stats at that checkpoint, zeroed once committed so a
  // double failover cannot double-count.
  bool has_cursor = false;
  scan::ScanCursor cursor;
  scan::ScanStats cursor_stats;
  scan::ScanStats stats;               // committed contributions
  std::vector<FabricRecord> buffer;    // current epoch, uncommitted
  std::vector<FabricRecord> accepted;  // committed (survives failover)
  ShardOutcome outcome;
};

}  // namespace

FabricResult run_fabric_scan(const FabricConfig& config) {
  if (config.module == nullptr) return fail("fabric: no probe module");
  if (config.nodes < 1 || config.nodes > kMaxNodes) {
    return fail("fabric: nodes must be in 1.." + std::to_string(kMaxNodes));
  }
  if (config.shards < 1 || config.shards > 1024) {
    return fail("fabric: shards must be in 1..1024");
  }
  if (config.scan.shards < 1 || config.scan.shard < 0 ||
      config.scan.shard >= config.scan.shards) {
    return fail("fabric: invalid machine shard configuration");
  }
  if (config.world_specs.empty()) return fail("fabric: empty world spec");
  if (config.scan.adaptive_rate) {
    return fail(
        "fabric: adaptive rate is not supported — without an analytic send "
        "schedule there is no stable cursor to hand over on failover");
  }
  if (config.heartbeat_interval_ms < 1 ||
      config.heartbeat_timeout_ms <= config.heartbeat_interval_ms) {
    return fail("fabric: heartbeat timeout must exceed the interval");
  }
  for (const auto& kill : config.fabric_faults.kills) {
    if (kill.node < 0 || kill.node >= config.nodes) {
      return fail("fabric: kill plan names node " +
                  std::to_string(kill.node) + " of " +
                  std::to_string(config.nodes));
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();

  scan::ScanConfig base = config.scan;
  if (base.targets.empty()) base.targets = default_targets(config);
  // The fabric owns interruption semantics (kills, failover); engine-style
  // shutdown plumbing does not cross the wire.
  base.shutdown_flag = nullptr;
  base.shutdown_at_raw_slot = scan::kNoBudgetCut;
  if (base.max_probes != 0) {
    // One budget cut, computed here and shipped in every lease: all
    // workers truncate at the same permutation slot regardless of node
    // count (the engine's --threads argument, distributed).
    base.budget_cut_raw_slot =
        scan::compute_budget_cut(base.targets, base.seed, base.blocklist,
                                 base.max_probes, base.shard, base.shards);
    base.max_probes = 0;
  }
  const std::uint64_t fp_hash = recover::fingerprint_hash(config.fingerprint);

  LoopbackFabric fabric{config.nodes, &config.fabric_faults};

  std::vector<std::unique_ptr<FabricWorker>> workers;
  workers.reserve(static_cast<std::size_t>(config.nodes));
  for (int w = 0; w < config.nodes; ++w) {
    WorkerConfig wcfg;
    wcfg.id = w;
    wcfg.world_specs = &config.world_specs;
    wcfg.vendors = &config.vendors;
    wcfg.build = config.build;
    wcfg.vantage = config.vantage;
    wcfg.module = config.module;
    wcfg.base = base;
    wcfg.faults = config.faults;
    wcfg.fingerprint = fp_hash;
    wcfg.checkpoint_interval_targets = config.checkpoint_interval_targets;
    wcfg.heartbeat_interval_ms = config.heartbeat_interval_ms;
    wcfg.record_batch = config.record_batch;
    wcfg.backoff = config.backoff;
    for (const auto& kill : config.fabric_faults.kills) {
      if (kill.node == w) wcfg.kill = kill;
    }
    workers.push_back(std::make_unique<FabricWorker>(
        std::move(wcfg), fabric.worker_endpoint(w)));
  }
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([w = worker.get()] { w->run(); });
  }

  FabricResult result;
  const auto start_seen = Clock::now();
  std::vector<WorkerState> wstate(static_cast<std::size_t>(config.nodes));
  for (int w = 0; w < config.nodes; ++w) {
    // The coordinator's half of each link jitters independently of the
    // worker's half, still purely seed-derived.
    BackoffPolicy policy = config.backoff;
    policy.seed = net::hash_combine64(
        net::hash_combine64(policy.seed, 0x636f6f7264ULL),  // "coord"
        static_cast<std::uint64_t>(w));
    wstate[static_cast<std::size_t>(w)].link =
        std::make_unique<ReliableLink>(policy);
    wstate[static_cast<std::size_t>(w)].last_seen = start_seen;
  }
  std::vector<ShardState> sstate(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    sstate[static_cast<std::size_t>(s)].outcome.shard = s;
  }
  int shards_done = 0;
  int shards_failed = 0;

  const auto log_line = [&](const std::string& line) {
    if (config.log != nullptr) *config.log << "fabric: " << line << '\n';
  };

  const auto send_assign = [&](int w, int s) {
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    ShardState& ss = sstate[static_cast<std::size_t>(s)];
    Message assign;
    assign.type = MsgType::kAssign;
    assign.shard = static_cast<std::uint32_t>(s);
    assign.epoch = ss.epoch;
    assign.shards_total = static_cast<std::uint32_t>(config.shards);
    assign.budget_cut = base.budget_cut_raw_slot;
    assign.fingerprint = fp_hash;
    if (ss.has_cursor) {
      assign.has_resume = true;
      assign.cursor = ss.cursor;
    }
    ws.link->enqueue(std::move(assign));
    ws.phase = WorkerPhase::kBusy;
    ws.shard = s;
    ss.phase = ShardPhase::kAssigned;
    ss.worker = w;
    ss.outcome.workers.push_back(w);
    log_line("assign shard " + std::to_string(s) + " epoch " +
             std::to_string(ss.epoch) + " -> node " + std::to_string(w) +
             (ss.has_cursor
                  ? " (resume from slot " +
                        std::to_string(ss.cursor.frontier_slot) + ")"
                  : ""));
  };

  const auto try_assign = [&] {
    for (int s = 0; s < config.shards; ++s) {
      if (sstate[static_cast<std::size_t>(s)].phase != ShardPhase::kPending) {
        continue;
      }
      int idle = -1;
      for (int w = 0; w < config.nodes; ++w) {
        if (wstate[static_cast<std::size_t>(w)].phase == WorkerPhase::kIdle) {
          idle = w;
          break;
        }
      }
      if (idle < 0) return;
      send_assign(idle, s);
    }
  };

  // Re-queues an assigned shard after its worker died: commit exactly the
  // records below the last streamed checkpoint cursor (the FIFO channel
  // guarantees they are all in hand), discard the rest — the resumed epoch
  // regenerates them from the cursor onward and never re-probes below it.
  const auto failover = [&](int s) {
    ShardState& ss = sstate[static_cast<std::size_t>(s)];
    if (ss.phase != ShardPhase::kAssigned) return;
    ++result.reassignments;
    std::size_t kept = 0;
    if (ss.has_cursor) {
      for (auto& rec : ss.buffer) {
        if (rec.raw_slot < ss.cursor.frontier_slot) {
          ss.accepted.push_back(std::move(rec));
          ++kept;
        }
      }
      ss.stats += ss.cursor_stats;
      ss.cursor_stats = scan::ScanStats{};
      result.resumed_slots += ss.cursor.frontier_slot;
      ss.outcome.resumed_from_slot = ss.cursor.frontier_slot;
    }
    const std::size_t dropped = ss.buffer.size() - kept;
    ss.buffer.clear();
    ++ss.epoch;
    ss.phase = ShardPhase::kPending;
    ss.worker = -1;
    ++ss.outcome.epochs;
    log_line("failover shard " + std::to_string(s) + ": kept " +
             std::to_string(kept) + " records below " +
             (ss.has_cursor
                  ? "cursor slot " + std::to_string(ss.cursor.frontier_slot)
                  : std::string("no checkpoint (full rescan)")) +
             ", dropped " + std::to_string(dropped));
  };

  const auto fail_worker = [&](int w, const std::string& reason) {
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    if (ws.phase == WorkerPhase::kDead) return;
    ws.phase = WorkerPhase::kDead;
    ++result.dead_workers;
    if (!reason.empty()) {
      result.worker_errors.push_back("node " + std::to_string(w) + ": " +
                                     reason);
    }
    log_line("node " + std::to_string(w) + " dead (" +
             (reason.empty() ? "released" : reason) + ")");
    const int s = ws.shard;
    ws.shard = -1;
    if (s >= 0) failover(s);
  };

  // True when `msg` addresses the current assignment of (shard, worker):
  // the epoch fence that makes zombie workers harmless.
  const auto fenced = [&](int w, const Message& msg) -> ShardState* {
    if (msg.shard >= static_cast<std::uint32_t>(config.shards)) {
      return nullptr;
    }
    ShardState& ss = sstate[msg.shard];
    if (ss.phase != ShardPhase::kAssigned || ss.worker != w ||
        ss.epoch != msg.epoch) {
      return nullptr;
    }
    return &ss;
  };

  const auto handle_delivery = [&](int w, Message&& msg) {
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    switch (msg.type) {
      case MsgType::kHello:
        if (ws.phase == WorkerPhase::kJoining) ws.phase = WorkerPhase::kIdle;
        break;
      case MsgType::kRefuse:
        if (ShardState* ss = fenced(w, msg)) {
          // A refusal is deterministic — this worker would refuse the
          // lease again. Quarantine the worker; the shard goes back in the
          // queue for a survivor (possibly to fail the whole fabric if
          // every node refuses).
          (void)ss;
          fail_worker(w, "refused shard " + std::to_string(msg.shard) +
                             ": " + msg.diagnostic);
        }
        break;
      case MsgType::kRecords:
        if (ShardState* ss = fenced(w, msg)) {
          ss->buffer.reserve(ss->buffer.size() + msg.records.size());
          for (const auto& rec : msg.records) {
            ss->buffer.push_back(FabricRecord{
                rec.response, rec.when, static_cast<int>(msg.shard),
                rec.raw_slot});
          }
        }
        break;
      case MsgType::kCheckpoint:
        if (ShardState* ss = fenced(w, msg)) {
          ss->cursor = std::move(msg.cursor);
          ss->has_cursor = true;
          ss->cursor_stats = msg.stats;
        }
        break;
      case MsgType::kShardDone:
        if (ShardState* ss = fenced(w, msg)) {
          for (auto& rec : ss->buffer) ss->accepted.push_back(std::move(rec));
          ss->buffer.clear();
          ss->stats += msg.stats;
          ss->cursor_stats = scan::ScanStats{};
          ss->phase = ShardPhase::kDone;
          ss->outcome.completed = true;
          ++shards_done;
          ws.phase = WorkerPhase::kIdle;
          ws.shard = -1;
          log_line("shard " + std::to_string(msg.shard) + " done by node " +
                   std::to_string(w) + " (epoch " +
                   std::to_string(msg.epoch) + ")");
        }
        break;
      default:
        break;
    }
  };

  while (shards_done + shards_failed < config.shards) {
    bool any_live = false;
    for (const auto& ws : wstate) {
      if (ws.phase != WorkerPhase::kDead) {
        any_live = true;
        break;
      }
    }
    if (!any_live) break;

    const auto now = Clock::now();
    for (int w = 0; w < config.nodes; ++w) {
      WorkerState& ws = wstate[static_cast<std::size_t>(w)];
      if (ws.phase == WorkerPhase::kDead) continue;
      auto wire = ws.link->poll(now);
      for (auto& frame : wire.frames) fabric.send_to(w, std::move(frame));
      if (ws.link->dead()) {
        fail_worker(w, "unreachable (retransmission budget exhausted)");
        try_assign();
        continue;
      }
      const auto silence_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - ws.last_seen)
              .count();
      const auto interval =
          static_cast<long long>(config.heartbeat_interval_ms);
      const std::uint64_t missed =
          silence_ms > interval
              ? static_cast<std::uint64_t>(silence_ms / interval - 1)
              : 0;
      if (missed > ws.misses_counted) {
        result.missed_heartbeats += missed - ws.misses_counted;
        ws.misses_counted = missed;
      }
      if (silence_ms > config.heartbeat_timeout_ms) {
        fail_worker(w, "heartbeat timeout (" + std::to_string(silence_ms) +
                           "ms silent)");
        try_assign();
      }
    }

    auto rx = fabric.recv_any(5);
    if (rx.status == RecvStatus::kTimeout) continue;
    if (rx.worker < 0 || rx.worker >= config.nodes) continue;
    WorkerState& ws = wstate[static_cast<std::size_t>(rx.worker)];
    if (rx.status == RecvStatus::kClosed) {
      fail_worker(rx.worker, "connection closed");
      try_assign();
      continue;
    }
    // Frames from dead workers are ignored wholesale — no acks, so a
    // zombie's reliable sends starve and it shuts itself down.
    if (ws.phase == WorkerPhase::kDead) continue;
    ws.last_seen = Clock::now();
    ws.misses_counted = 0;
    auto decoded = decode_frame(rx.frame);
    if (!decoded.message) {
      ++result.frames_rejected;
      continue;
    }
    Message& msg = *decoded.message;
    if (msg.type == MsgType::kAck) {
      ws.link->on_ack(msg.ack_seq);
    } else if (msg.type == MsgType::kHeartbeat) {
      // last_seen already refreshed — that is the heartbeat's whole job.
    } else {
      auto inbound = ws.link->on_reliable(msg);
      if (!inbound.ack.empty()) {
        fabric.send_to(rx.worker, std::move(inbound.ack));
      }
      if (inbound.deliver) {
        handle_delivery(rx.worker, std::move(msg));
        try_assign();
      }
    }
  }

  // Release the survivors: best-effort Bye, then hang up. Workers exit on
  // whichever arrives first.
  Message bye;
  bye.type = MsgType::kBye;
  const std::string bye_frame = encode_frame(bye);
  for (int w = 0; w < config.nodes; ++w) {
    if (wstate[static_cast<std::size_t>(w)].phase != WorkerPhase::kDead) {
      fabric.send_to(w, bye_frame);
    }
  }
  fabric.close_all();
  for (auto& thread : threads) thread.join();

  for (int w = 0; w < config.nodes; ++w) {
    const FabricWorker& worker = *workers[static_cast<std::size_t>(w)];
    if (!worker.error().empty()) {
      result.worker_errors.push_back("node " + std::to_string(w) + ": " +
                                     worker.error());
    }
    result.retransmits += worker.retransmits();
    result.retransmits += wstate[static_cast<std::size_t>(w)].link
                              ->retransmits();
  }

  // Deterministic merge: shard record streams are partition-invariant, and
  // the content sort puts them in one byte-stable order. The shard index
  // tiebreaks exactly like the engine's worker index (they coincide for a
  // fabric of S shards vs an engine of S threads).
  result.collector = scan::ResultCollector{config.alias_threshold};
  for (auto& ss : sstate) {
    if (ss.phase != ShardPhase::kDone) result.failed = true;
    for (auto& rec : ss.accepted) result.records.push_back(std::move(rec));
    result.stats += ss.stats;
    result.shards.push_back(ss.outcome);
  }
  std::sort(result.records.begin(), result.records.end(),
            [](const FabricRecord& a, const FabricRecord& b) {
              return std::tuple(a.when, a.response.responder,
                                a.response.probe_dst,
                                static_cast<int>(a.response.kind), a.shard) <
                     std::tuple(b.when, b.response.responder,
                                b.response.probe_dst,
                                static_cast<int>(b.response.kind), b.shard);
            });
  for (const auto& rec : result.records) {
    result.collector.add(rec.response);
  }

  obs::MetricsShard metrics;
  *metrics.counter("fabric_reassignments_total", {},
                   "Shard leases re-assigned after a worker death") =
      result.reassignments;
  *metrics.counter("fabric_missed_heartbeats_total", {},
                   "Heartbeat intervals a live worker went silent") =
      result.missed_heartbeats;
  *metrics.counter("fabric_resumed_slots_total", {},
                   "Sum of failover handoff cursor frontiers") =
      result.resumed_slots;
  *metrics.counter("fabric_frames_rejected_total", {},
                   "Undecodable protocol frames dropped") =
      result.frames_rejected;
  *metrics.counter("fabric_retransmits_total", {},
                   "Reliable-channel retransmissions, both directions") =
      result.retransmits;
  *metrics.counter("fabric_workers_dead_total", {},
                   "Worker nodes declared dead") =
      static_cast<std::uint64_t>(result.dead_workers);
  *metrics.counter("fabric_shards_completed_total", {},
                   "Fabric shards scanned to completion") =
      static_cast<std::uint64_t>(shards_done);
  result.metrics = obs::merge_shards({&metrics});

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.ok = true;
  return result;
}

}  // namespace xmap::fabric
