#include "fabric/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <tuple>

#include "fabric/obs_tap.h"
#include "fabric/tcp_transport.h"
#include "fabric/transport.h"
#include "fabric/worker.h"
#include "netbase/random.h"

namespace xmap::fabric {
namespace {

using Clock = ReliableLink::Clock;

FabricResult fail(std::string message) {
  FabricResult result;
  result.ok = false;
  result.error = std::move(message);
  return result;
}

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Default targets (every block of the world) — the engine's recipe: window
// placement is a pure function of the spec, no throwaway world build.
std::vector<scan::TargetSpec> default_targets(const FabricConfig& config) {
  std::vector<scan::TargetSpec> targets;
  targets.reserve(config.world_specs.size());
  for (const auto& spec : config.world_specs) {
    const topo::ScanWindow window =
        topo::scan_window(spec, config.build.window_bits);
    targets.push_back(scan::TargetSpec{window.scan_base, window.window_lo,
                                       window.window_hi});
  }
  return targets;
}

enum class WorkerPhase { kJoining, kIdle, kBusy, kDead };
enum class ShardPhase { kPending, kAssigned, kDone, kFailed };

struct WorkerState {
  WorkerPhase phase = WorkerPhase::kJoining;
  std::unique_ptr<ReliableLink> link;
  int shard = -1;  // the lease this worker holds (kBusy only)
  Clock::time_point last_seen;
  std::uint64_t misses_counted = 0;
  bool saw_join = false;  // first kRejoin consumed; later ones reconnect
};

struct ShardState {
  ShardPhase phase = ShardPhase::kPending;
  std::uint32_t epoch = 0;  // assignment generation, fences stale frames
  int worker = -1;
  // The last streamed checkpoint: the failover handoff point. cursor_stats
  // is the live stats at that checkpoint, zeroed once committed so a
  // double failover cannot double-count.
  bool has_cursor = false;
  scan::ScanCursor cursor;
  scan::ScanStats cursor_stats;
  scan::ScanStats stats;               // committed contributions
  std::vector<FabricRecord> buffer;    // current epoch, uncommitted
  std::vector<FabricRecord> accepted;  // committed (survives failover)
  ShardOutcome outcome;

  // Deployment spans: the whole-shard span and the current epoch's lease.
  std::uint64_t span = 0;
  std::uint64_t lease_span = 0;

  // Scan-content observability shipped by the current epoch (buffered
  // until its ShardDone commits it; a failover discards it — the resumed
  // lease replays the shard and re-ships the full-shard trace/metrics).
  std::vector<obs::TraceEvent> pending_trace;
  obs::MetricsSnapshot pending_metrics;
  std::vector<obs::TraceEvent> trace;        // committed
  obs::MetricsSnapshot scan_metrics;         // committed
};

}  // namespace

FabricResult run_fabric_scan(const FabricConfig& config) {
  if (config.module == nullptr) return fail("fabric: no probe module");
  if (config.nodes < 1 || config.nodes > kMaxNodes) {
    return fail("fabric: nodes must be in 1.." + std::to_string(kMaxNodes));
  }
  if (config.shards < 1 || config.shards > 1024) {
    return fail("fabric: shards must be in 1..1024");
  }
  if (config.scan.shards < 1 || config.scan.shard < 0 ||
      config.scan.shard >= config.scan.shards) {
    return fail("fabric: invalid machine shard configuration");
  }
  if (config.world_specs.empty()) return fail("fabric: empty world spec");
  if (config.scan.adaptive_rate) {
    return fail(
        "fabric: adaptive rate is not supported — without an analytic send "
        "schedule there is no stable cursor to hand over on failover");
  }
  if (config.heartbeat_interval_ms < 1 ||
      config.heartbeat_timeout_ms <= config.heartbeat_interval_ms) {
    return fail("fabric: heartbeat timeout must exceed the interval");
  }
  for (const auto& kill : config.fabric_faults.kills) {
    if (kill.node < 0 || kill.node >= config.nodes) {
      return fail("fabric: kill plan names node " +
                  std::to_string(kill.node) + " of " +
                  std::to_string(config.nodes));
    }
  }
  if (config.transport == TransportKind::kTcp &&
      config.fabric_faults.messages.any()) {
    return fail(
        "fabric: loopback message faults do not compose with the tcp "
        "transport — inject socket-level chaos through the chaos proxy "
        "instead");
  }

  const auto wall_start = std::chrono::steady_clock::now();

  scan::ScanConfig base = config.scan;
  if (base.targets.empty()) base.targets = default_targets(config);
  // The fabric owns interruption semantics (kills, failover); engine-style
  // shutdown plumbing does not cross the wire.
  base.shutdown_flag = nullptr;
  base.shutdown_at_raw_slot = scan::kNoBudgetCut;
  if (base.max_probes != 0) {
    // One budget cut, computed here and shipped in every lease: all
    // workers truncate at the same permutation slot regardless of node
    // count (the engine's --threads argument, distributed).
    base.budget_cut_raw_slot =
        scan::compute_budget_cut(base.targets, base.seed, base.blocklist,
                                 base.max_probes, base.shard, base.shards);
    base.max_probes = 0;
  }
  const std::uint64_t fp_hash = recover::fingerprint_hash(config.fingerprint);

  // Deployment tracing: one tracer shared by the coordinator and every
  // worker thread (FabricTracer is thread-safe). The trace id is derived
  // from the scan identity so correlated artifacts carry the same id.
  const std::uint64_t trace_id = net::hash_combine64(fp_hash, base.seed);
  std::unique_ptr<obs::FabricTracer> tracer_owned;
  obs::FabricTracer* tracer = nullptr;
  std::uint64_t root_span = 0;
  if (config.fabric_trace) {
    tracer_owned = std::make_unique<obs::FabricTracer>(trace_id);
    tracer = tracer_owned.get();
    root_span = tracer->begin(obs::kCoordinatorNode, "fabric_run", 0,
                              {{"shards", std::to_string(config.shards)},
                               {"nodes", std::to_string(config.nodes)}});
  }

  // Flight recorders: one ring per worker plus the coordinator's own.
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders;
  obs::FlightRecorder* coord_recorder = nullptr;
  if (config.flight_recorder_events > 0) {
    recorders.reserve(static_cast<std::size_t>(config.nodes) + 1);
    for (int w = 0; w <= config.nodes; ++w) {
      recorders.push_back(
          std::make_unique<obs::FlightRecorder>(config.flight_recorder_events));
    }
    coord_recorder = recorders.back().get();
  }

  // Coordinator-side stage profile (lease / decode / merge); null unless
  // --profile so the timers cost a pointer test each.
  obs::StageProfile coord_profile;
  obs::StageProfile* const profile =
      config.obs.profile ? &coord_profile : nullptr;

  // The transport plane. The loop below depends only on FabricPlane; the
  // loopback pointer stays around for worker_endpoint(), the tcp pointer
  // for bound_address().
  std::unique_ptr<FabricPlane> plane_owned;
  LoopbackFabric* loopback = nullptr;
  TcpFabric* tcp = nullptr;
  if (config.transport == TransportKind::kTcp) {
    std::string transport_error;
    auto tcp_plane =
        TcpFabric::create(config.nodes, config.listen_address,
                          transport_error);
    if (tcp_plane == nullptr) return fail(std::move(transport_error));
    tcp = tcp_plane.get();
    plane_owned = std::move(tcp_plane);
  } else {
    auto lb =
        std::make_unique<LoopbackFabric>(config.nodes, &config.fabric_faults);
    loopback = lb.get();
    plane_owned = std::move(lb);
  }
  FabricPlane& fabric = *plane_owned;

  // TCP worker endpoints, owned here (the loopback owns its own).
  std::vector<std::unique_ptr<Transport>> tcp_endpoints(
      static_cast<std::size_t>(config.nodes));

  std::vector<std::unique_ptr<FabricWorker>> workers;
  workers.reserve(static_cast<std::size_t>(config.nodes));
  for (int w = 0; w < config.nodes; ++w) {
    WorkerConfig wcfg;
    wcfg.id = w;
    wcfg.world_specs = &config.world_specs;
    wcfg.vendors = &config.vendors;
    wcfg.build = config.build;
    wcfg.vantage = config.vantage;
    wcfg.module = config.module;
    wcfg.base = base;
    wcfg.faults = config.faults;
    wcfg.fingerprint = fp_hash;
    wcfg.checkpoint_interval_targets = config.checkpoint_interval_targets;
    wcfg.heartbeat_interval_ms = config.heartbeat_interval_ms;
    wcfg.record_batch = config.record_batch;
    wcfg.backoff = config.backoff;
    wcfg.obs = config.obs;
    wcfg.tracer = tracer;
    wcfg.trace_root = root_span;
    wcfg.recorder =
        recorders.empty() ? nullptr : recorders[static_cast<std::size_t>(w)]
                                          .get();
    for (const auto& kill : config.fabric_faults.kills) {
      if (kill.node == w) wcfg.kill = kill;
    }
    Transport* endpoint = nullptr;
    if (tcp != nullptr) {
      TcpWorkerOptions topt;
      topt.connect_address = config.connect_address.empty()
                                 ? tcp->bound_address()
                                 : config.connect_address;
      topt.worker = w;
      topt.fingerprint = fp_hash;
      topt.connect_timeout_ms = config.connect_timeout_ms;
      topt.reconnect_window_ms = config.reconnect_window_ms;
      topt.reconnect_delay_ms = config.reconnect_delay_ms;
      if (config.tcp_worker_tweak) config.tcp_worker_tweak(w, topt);
      std::string connect_error;
      tcp_endpoints[static_cast<std::size_t>(w)] =
          TcpWorkerTransport::create(std::move(topt), connect_error);
      if (tcp_endpoints[static_cast<std::size_t>(w)] == nullptr) {
        return fail(std::move(connect_error));
      }
      endpoint = tcp_endpoints[static_cast<std::size_t>(w)].get();
    } else {
      endpoint = loopback->worker_endpoint(w);
    }
    workers.push_back(
        std::make_unique<FabricWorker>(std::move(wcfg), endpoint));
  }
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([w = worker.get()] { w->run(); });
  }

  FabricResult result;
  const auto start_seen = Clock::now();
  std::vector<WorkerState> wstate(static_cast<std::size_t>(config.nodes));
  for (int w = 0; w < config.nodes; ++w) {
    // The coordinator's half of each link jitters independently of the
    // worker's half, still purely seed-derived.
    BackoffPolicy policy = config.backoff;
    policy.seed = net::hash_combine64(
        net::hash_combine64(policy.seed, 0x636f6f7264ULL),  // "coord"
        static_cast<std::uint64_t>(w));
    wstate[static_cast<std::size_t>(w)].link =
        std::make_unique<ReliableLink>(policy);
    wstate[static_cast<std::size_t>(w)].last_seen = start_seen;
  }
  // Tee the coordinator's halves of every link into the tracer and the
  // coordinator's flight recorder.
  std::vector<std::unique_ptr<LinkTap>> taps;
  if (tracer != nullptr || coord_recorder != nullptr) {
    taps.reserve(static_cast<std::size_t>(config.nodes));
    for (int w = 0; w < config.nodes; ++w) {
      taps.push_back(std::make_unique<LinkTap>(obs::kCoordinatorNode, tracer,
                                               coord_recorder));
      wstate[static_cast<std::size_t>(w)].link->set_observer(taps.back().get());
    }
  }
  std::vector<std::uint64_t> missed_per_node(
      static_cast<std::size_t>(config.nodes), 0);
  std::vector<std::uint64_t> completed_per_node(
      static_cast<std::size_t>(config.nodes), 0);
  std::vector<ShardState> sstate(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    sstate[static_cast<std::size_t>(s)].outcome.shard = s;
  }
  int shards_done = 0;
  int shards_failed = 0;

  const auto log_line = [&](const std::string& line) {
    if (config.log != nullptr) *config.log << "fabric: " << line << '\n';
  };

  const auto send_assign = [&](int w, int s) {
    obs::ScopedStageTimer lease_timer{profile, obs::Stage::kLease};
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    ShardState& ss = sstate[static_cast<std::size_t>(s)];
    Message assign;
    assign.type = MsgType::kAssign;
    assign.shard = static_cast<std::uint32_t>(s);
    assign.epoch = ss.epoch;
    assign.shards_total = static_cast<std::uint32_t>(config.shards);
    assign.budget_cut = base.budget_cut_raw_slot;
    assign.fingerprint = fp_hash;
    if (ss.has_cursor) {
      assign.has_resume = true;
      assign.cursor = ss.cursor;
    }
    if (tracer != nullptr) {
      if (ss.span == 0) {
        ss.span = tracer->begin(obs::kCoordinatorNode,
                                "shard:" + std::to_string(s), root_span,
                                {{"shard", std::to_string(s)}});
      }
      ss.lease_span = tracer->begin(
          obs::kCoordinatorNode, "lease", ss.span,
          {{"epoch", std::to_string(ss.epoch)},
           {"node", std::to_string(w)},
           {"resume",
            ss.has_cursor ? std::to_string(ss.cursor.frontier_slot)
                          : std::string("none")}});
      // The Assign frame gets its own span under the lease; its id travels
      // in the frame's trace context so the worker parents shard_run (and
      // retransmits / the ack) to this exact send.
      assign.ctx_ver = kTraceCtxV1;
      assign.trace_id = tracer->trace_id();
      assign.parent_span = tracer->begin(
          obs::kCoordinatorNode,
          std::string("frame:") + msg_type_name(MsgType::kAssign),
          ss.lease_span);
    }
    ws.link->enqueue(std::move(assign));
    ws.phase = WorkerPhase::kBusy;
    ws.shard = s;
    ss.phase = ShardPhase::kAssigned;
    ss.worker = w;
    ss.outcome.workers.push_back(w);
    log_line("assign shard " + std::to_string(s) + " epoch " +
             std::to_string(ss.epoch) + " -> node " + std::to_string(w) +
             (ss.has_cursor
                  ? " (resume from slot " +
                        std::to_string(ss.cursor.frontier_slot) + ")"
                  : ""));
  };

  const auto try_assign = [&] {
    for (int s = 0; s < config.shards; ++s) {
      if (sstate[static_cast<std::size_t>(s)].phase != ShardPhase::kPending) {
        continue;
      }
      int idle = -1;
      for (int w = 0; w < config.nodes; ++w) {
        if (wstate[static_cast<std::size_t>(w)].phase == WorkerPhase::kIdle) {
          idle = w;
          break;
        }
      }
      if (idle < 0) return;
      send_assign(idle, s);
    }
  };

  // Re-queues an assigned shard after its worker died: commit exactly the
  // records below the last streamed checkpoint cursor (the FIFO channel
  // guarantees they are all in hand), discard the rest — the resumed epoch
  // regenerates them from the cursor onward and never re-probes below it.
  const auto failover = [&](int s) {
    ShardState& ss = sstate[static_cast<std::size_t>(s)];
    if (ss.phase != ShardPhase::kAssigned) return;
    ++result.reassignments;
    std::size_t kept = 0;
    if (ss.has_cursor) {
      for (auto& rec : ss.buffer) {
        if (rec.raw_slot < ss.cursor.frontier_slot) {
          ss.accepted.push_back(std::move(rec));
          ++kept;
        }
      }
      if (!config.obs.any()) {
        // The resumed epoch fast-forwards and reports only its own tail,
        // so the dead epoch's checkpointed stats are the committed head.
        // With observability on the resumed lease replays the whole shard
        // and its ShardDone stats cover the full shard — adding the
        // checkpoint's here would double-count the head.
        ss.stats += ss.cursor_stats;
      }
      ss.cursor_stats = scan::ScanStats{};
      result.resumed_slots += ss.cursor.frontier_slot;
      ss.outcome.resumed_from_slot = ss.cursor.frontier_slot;
    }
    // The dead epoch's shipped observability dies with it: the resumed
    // lease re-ships the full shard, committed atomically at ShardDone.
    ss.pending_trace.clear();
    ss.pending_metrics = obs::MetricsSnapshot{};
    if (tracer != nullptr) {
      tracer->instant(
          obs::kCoordinatorNode, "lease_migration",
          ss.span != 0 ? ss.span : root_span,
          {{"shard", std::to_string(s)},
           {"from_epoch", std::to_string(ss.epoch)},
           {"resume_slot",
            ss.has_cursor ? std::to_string(ss.cursor.frontier_slot)
                          : std::string("none")}});
      if (ss.lease_span != 0) {
        tracer->end(ss.lease_span);
        ss.lease_span = 0;
      }
    }
    const std::size_t dropped = ss.buffer.size() - kept;
    ss.buffer.clear();
    ++ss.epoch;
    ss.phase = ShardPhase::kPending;
    ss.worker = -1;
    ++ss.outcome.epochs;
    log_line("failover shard " + std::to_string(s) + ": kept " +
             std::to_string(kept) + " records below " +
             (ss.has_cursor
                  ? "cursor slot " + std::to_string(ss.cursor.frontier_slot)
                  : std::string("no checkpoint (full rescan)")) +
             ", dropped " + std::to_string(dropped));
  };

  const auto fail_worker = [&](int w, const std::string& reason) {
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    if (ws.phase == WorkerPhase::kDead) return;
    ws.phase = WorkerPhase::kDead;
    ++result.dead_workers;
    if (!reason.empty()) {
      result.worker_errors.push_back("node " + std::to_string(w) + ": " +
                                     reason);
    }
    log_line("node " + std::to_string(w) + " dead (" +
             (reason.empty() ? "released" : reason) + ")");
    if (tracer != nullptr) {
      std::uint64_t parent = root_span;
      if (ws.shard >= 0) {
        const ShardState& hs = sstate[static_cast<std::size_t>(ws.shard)];
        parent = hs.lease_span != 0 ? hs.lease_span
                                    : (hs.span != 0 ? hs.span : root_span);
      }
      tracer->instant(obs::kCoordinatorNode, "death_verdict", parent,
                      {{"node", std::to_string(w)},
                       {"reason", reason.empty() ? std::string("released")
                                                 : reason}});
    }
    if (coord_recorder != nullptr) {
      coord_recorder->record("link_dead",
                             "node " + std::to_string(w) + ": " +
                                 (reason.empty() ? "released" : reason));
    }
    const int s = ws.shard;
    ws.shard = -1;
    if (s >= 0) failover(s);
  };

  // True when `msg` addresses the current assignment of (shard, worker):
  // the epoch fence that makes zombie workers harmless.
  const auto fenced = [&](int w, const Message& msg) -> ShardState* {
    if (msg.shard >= static_cast<std::uint32_t>(config.shards)) {
      return nullptr;
    }
    ShardState& ss = sstate[msg.shard];
    if (ss.phase != ShardPhase::kAssigned || ss.worker != w ||
        ss.epoch != msg.epoch) {
      return nullptr;
    }
    return &ss;
  };

  std::vector<std::uint64_t> reconnects_per_node(
      static_cast<std::size_t>(config.nodes), 0);

  // Refuses a rejoin handshake: the worker gets the diagnostic (its only
  // explanation), then the transport fences it — the connection drops and
  // every future rejoin is refused at the socket layer.
  const auto refuse_rejoin = [&](int w, const std::string& diagnostic) {
    log_line("node " + std::to_string(w) + " rejoin refused: " + diagnostic);
    result.worker_errors.push_back("node " + std::to_string(w) +
                                   ": rejoin refused: " + diagnostic);
    Message refused;
    refused.type = MsgType::kRejoinRefused;
    refused.worker = static_cast<std::uint32_t>(w);
    refused.diagnostic = diagnostic;
    fabric.send_to(w, encode_frame(refused));
    fabric.drop_worker(w);
    if (tracer != nullptr) {
      tracer->instant(obs::kCoordinatorNode, "rejoin_refused", root_span,
                      {{"node", std::to_string(w)},
                       {"diagnostic", diagnostic}});
    }
    if (coord_recorder != nullptr) {
      coord_recorder->record("rejoin_refused",
                             "node " + std::to_string(w) + ": " + diagnostic);
    }
  };

  // The reconnect-with-epoch handshake, coordinator side. Every socket
  // connection (initial join and reconnect) opens with a kRejoin carrying
  // identity + fingerprint + the lease the worker believes it holds; the
  // worker must prove all three before the link resumes.
  const auto handle_rejoin = [&](int w, const Message& msg) {
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    if (ws.phase == WorkerPhase::kDead) {
      // A zombie: declared dead by the heartbeat timeout, its lease (if
      // any) already migrated under a bumped epoch. Refuse and quarantine.
      std::string diagnostic = "zombie: worker was declared dead";
      if (msg.has_lease &&
          msg.shard < static_cast<std::uint32_t>(config.shards)) {
        diagnostic += "; stale lease on shard " + std::to_string(msg.shard) +
                      " (held epoch " + std::to_string(msg.epoch) +
                      ", current epoch " +
                      std::to_string(sstate[msg.shard].epoch) + ")";
      }
      refuse_rejoin(w, diagnostic);
      return;
    }
    if (msg.fingerprint != fp_hash) {
      const std::string diagnostic =
          "scan fingerprint mismatch (stored " + hex_u64(msg.fingerprint) +
          ", computed " + hex_u64(fp_hash) +
          ") — refusing a link from a different scan";
      refuse_rejoin(w, diagnostic);
      fail_worker(w, "rejoin refused: " + diagnostic);
      try_assign();
      return;
    }
    if (msg.has_lease) {
      const bool lease_current =
          msg.shard < static_cast<std::uint32_t>(config.shards) &&
          sstate[msg.shard].phase == ShardPhase::kAssigned &&
          sstate[msg.shard].worker == w &&
          sstate[msg.shard].epoch == msg.epoch;
      if (!lease_current) {
        const std::string current =
            msg.shard < static_cast<std::uint32_t>(config.shards)
                ? std::to_string(sstate[msg.shard].epoch)
                : std::string("?");
        refuse_rejoin(w, "stale lease on shard " + std::to_string(msg.shard) +
                             " (held epoch " + std::to_string(msg.epoch) +
                             ", current epoch " + current + ")");
        fail_worker(w, "rejoined with a stale lease");
        try_assign();
        return;
      }
    }
    Message accept;
    accept.type = MsgType::kRejoinOk;
    accept.worker = static_cast<std::uint32_t>(w);
    fabric.send_to(w, encode_frame(accept));
    if (ws.saw_join) {
      ++result.reconnects;
      ++reconnects_per_node[static_cast<std::size_t>(w)];
      log_line("node " + std::to_string(w) + " rejoined" +
               (msg.has_lease
                    ? " holding shard " + std::to_string(msg.shard) +
                          " epoch " + std::to_string(msg.epoch)
                    : ""));
      if (tracer != nullptr) {
        std::uint64_t parent = root_span;
        if (ws.shard >= 0) {
          const ShardState& hs = sstate[static_cast<std::size_t>(ws.shard)];
          parent = hs.lease_span != 0 ? hs.lease_span
                                      : (hs.span != 0 ? hs.span : root_span);
        }
        tracer->instant(obs::kCoordinatorNode, "rejoin", parent,
                        {{"node", std::to_string(w)}});
      }
      if (coord_recorder != nullptr) {
        coord_recorder->record("rejoin", "node " + std::to_string(w));
      }
    }
    ws.saw_join = true;
  };

  const auto handle_delivery = [&](int w, Message&& msg) {
    WorkerState& ws = wstate[static_cast<std::size_t>(w)];
    switch (msg.type) {
      case MsgType::kHello:
        if (ws.phase == WorkerPhase::kJoining) ws.phase = WorkerPhase::kIdle;
        break;
      case MsgType::kRefuse:
        if (ShardState* ss = fenced(w, msg)) {
          // A refusal is deterministic — this worker would refuse the
          // lease again. Quarantine the worker; the shard goes back in the
          // queue for a survivor (possibly to fail the whole fabric if
          // every node refuses).
          (void)ss;
          fail_worker(w, "refused shard " + std::to_string(msg.shard) +
                             ": " + msg.diagnostic);
        }
        break;
      case MsgType::kRecords:
        if (ShardState* ss = fenced(w, msg)) {
          ss->buffer.reserve(ss->buffer.size() + msg.records.size());
          for (const auto& rec : msg.records) {
            ss->buffer.push_back(FabricRecord{
                rec.response, rec.when, static_cast<int>(msg.shard),
                rec.raw_slot});
          }
        }
        break;
      case MsgType::kCheckpoint:
        if (ShardState* ss = fenced(w, msg)) {
          // Never let the committed frontier regress. A replayed lease
          // (obs-on resume) already suppresses checkpoints below its
          // handoff cursor worker-side; this guard keeps the invariant
          // even against a buggy or hostile peer — a regressed cursor
          // would re-commit already-committed slots on the next failover.
          if (ss->has_cursor &&
              msg.cursor.frontier_slot < ss->cursor.frontier_slot) {
            break;
          }
          if (tracer != nullptr && msg.ctx_ver == kTraceCtxV1) {
            tracer->instant(
                obs::kCoordinatorNode, "checkpoint_commit", msg.parent_span,
                {{"slot", std::to_string(msg.cursor.frontier_slot)}});
          }
          ss->cursor = std::move(msg.cursor);
          ss->has_cursor = true;
          ss->cursor_stats = msg.stats;
        }
        break;
      case MsgType::kObsTrace:
        if (ShardState* ss = fenced(w, msg)) {
          ss->pending_trace.reserve(ss->pending_trace.size() +
                                    msg.trace_events.size());
          for (auto& ev : msg.trace_events) {
            ss->pending_trace.push_back(std::move(ev));
          }
        }
        break;
      case MsgType::kObsMetrics:
        if (ShardState* ss = fenced(w, msg)) {
          // Chunks arrive in snapshot order over the FIFO channel, so
          // concatenation reassembles the worker's sorted snapshot.
          ss->pending_metrics.entries.reserve(
              ss->pending_metrics.entries.size() + msg.metrics.entries.size());
          for (auto& entry : msg.metrics.entries) {
            ss->pending_metrics.entries.push_back(std::move(entry));
          }
        }
        break;
      case MsgType::kShardDone:
        if (ShardState* ss = fenced(w, msg)) {
          for (auto& rec : ss->buffer) ss->accepted.push_back(std::move(rec));
          ss->buffer.clear();
          ss->stats += msg.stats;
          ss->cursor_stats = scan::ScanStats{};
          // FIFO: ShardDone in hand implies every ObsTrace/ObsMetrics
          // chunk this epoch shipped is in hand — commit atomically.
          ss->trace = std::move(ss->pending_trace);
          ss->scan_metrics = std::move(ss->pending_metrics);
          ss->pending_trace = std::vector<obs::TraceEvent>{};
          ss->pending_metrics = obs::MetricsSnapshot{};
          if (tracer != nullptr) {
            if (ss->lease_span != 0) {
              tracer->end(ss->lease_span);
              ss->lease_span = 0;
            }
            if (ss->span != 0) {
              tracer->end(ss->span);
              ss->span = 0;
            }
          }
          ss->phase = ShardPhase::kDone;
          ss->outcome.completed = true;
          ++shards_done;
          ++completed_per_node[static_cast<std::size_t>(w)];
          ws.phase = WorkerPhase::kIdle;
          ws.shard = -1;
          log_line("shard " + std::to_string(msg.shard) + " done by node " +
                   std::to_string(w) + " (epoch " +
                   std::to_string(msg.epoch) + ")");
        }
        break;
      default:
        break;
    }
  };

  // Health timeline: one JSONL snapshot of fabric state per interval while
  // the run is live (wall clock — quarantined from deterministic outputs).
  auto next_timeline = std::chrono::steady_clock::now();
  const auto emit_timeline = [&](bool force) {
    if (config.timeline == nullptr) return;
    const auto tnow = std::chrono::steady_clock::now();
    if (!force && tnow < next_timeline) return;
    next_timeline =
        tnow + std::chrono::milliseconds(
                   config.timeline_interval_ms > 1 ? config.timeline_interval_ms
                                                   : 1);
    int live = 0;
    int busy = 0;
    for (const auto& ws : wstate) {
      if (ws.phase != WorkerPhase::kDead) ++live;
      if (ws.phase == WorkerPhase::kBusy) ++busy;
    }
    int pending = 0;
    int assigned = 0;
    for (const auto& ss : sstate) {
      if (ss.phase == ShardPhase::kPending) ++pending;
      if (ss.phase == ShardPhase::kAssigned) ++assigned;
    }
    std::uint64_t downlink_retx = 0;
    for (const auto& ws : wstate) downlink_retx += ws.link->retransmits();
    char line[512];
    std::snprintf(
        line, sizeof line,
        "{\"t_ms\":%.3f,\"workers_live\":%d,\"workers_busy\":%d,"
        "\"workers_dead\":%d,\"shards_pending\":%d,\"shards_assigned\":%d,"
        "\"shards_done\":%d,\"shards_failed\":%d,\"reassignments\":%llu,"
        "\"missed_heartbeats\":%llu,\"frames_rejected\":%llu,"
        "\"downlink_retransmits\":%llu}",
        std::chrono::duration<double, std::milli>(tnow - wall_start).count(),
        live, busy, result.dead_workers, pending, assigned, shards_done,
        shards_failed,
        static_cast<unsigned long long>(result.reassignments),
        static_cast<unsigned long long>(result.missed_heartbeats),
        static_cast<unsigned long long>(result.frames_rejected),
        static_cast<unsigned long long>(downlink_retx));
    *config.timeline << line << '\n';
  };

  while (shards_done + shards_failed < config.shards) {
    emit_timeline(false);
    bool any_live = false;
    for (const auto& ws : wstate) {
      if (ws.phase != WorkerPhase::kDead) {
        any_live = true;
        break;
      }
    }
    if (!any_live) break;

    const auto now = Clock::now();
    for (int w = 0; w < config.nodes; ++w) {
      WorkerState& ws = wstate[static_cast<std::size_t>(w)];
      if (ws.phase == WorkerPhase::kDead) continue;
      auto wire = ws.link->poll(now);
      for (auto& frame : wire.frames) fabric.send_to(w, std::move(frame));
      if (ws.link->dead()) {
        fail_worker(w, "unreachable (retransmission budget exhausted)");
        try_assign();
        continue;
      }
      const auto silence_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - ws.last_seen)
              .count();
      const auto interval =
          static_cast<long long>(config.heartbeat_interval_ms);
      const std::uint64_t missed =
          silence_ms > interval
              ? static_cast<std::uint64_t>(silence_ms / interval - 1)
              : 0;
      if (missed > ws.misses_counted) {
        result.missed_heartbeats += missed - ws.misses_counted;
        missed_per_node[static_cast<std::size_t>(w)] +=
            missed - ws.misses_counted;
        ws.misses_counted = missed;
      }
      if (silence_ms > config.heartbeat_timeout_ms) {
        fail_worker(w, "heartbeat timeout (" + std::to_string(silence_ms) +
                           "ms silent)");
        try_assign();
      }
    }

    auto rx = fabric.recv_any(5);
    if (rx.status == RecvStatus::kTimeout) continue;
    if (rx.worker < 0 || rx.worker >= config.nodes) continue;
    WorkerState& ws = wstate[static_cast<std::size_t>(rx.worker)];
    if (rx.status == RecvStatus::kClosed) {
      if (fabric.reconnectable() && ws.phase != WorkerPhase::kDead) {
        // On a socket transport a dead connection is not a dead worker:
        // the reconnect handshake may resurrect the link, so the heartbeat
        // timeout stays the sole death arbiter.
        log_line("node " + std::to_string(rx.worker) +
                 " link down, awaiting rejoin");
        if (tracer != nullptr) {
          tracer->instant(obs::kCoordinatorNode, "link_down", root_span,
                          {{"node", std::to_string(rx.worker)}});
        }
        if (coord_recorder != nullptr) {
          coord_recorder->record("link_down",
                                 "node " + std::to_string(rx.worker));
        }
        continue;
      }
      fail_worker(rx.worker, "connection closed");
      try_assign();
      continue;
    }
    // Frames from dead workers are ignored wholesale — no acks, so a
    // zombie's reliable sends starve and it shuts itself down. The one
    // exception on a socket transport is the rejoin handshake: a zombie's
    // reconnect gets an explicit refusal plus a transport-level fence.
    if (ws.phase == WorkerPhase::kDead) {
      if (fabric.reconnectable()) {
        auto zombie = decode_frame(rx.frame);
        if (zombie.message && zombie.message->type == MsgType::kRejoin) {
          handle_rejoin(rx.worker, *zombie.message);
        }
      }
      continue;
    }
    ws.last_seen = Clock::now();
    ws.misses_counted = 0;
    obs::ScopedStageTimer decode_timer{profile, obs::Stage::kDecode};
    auto decoded = decode_frame(rx.frame);
    if (!decoded.message) {
      ++result.frames_rejected;
      if (coord_recorder != nullptr) {
        coord_recorder->record("rx", "undecodable frame from node " +
                                         std::to_string(rx.worker) + ": " +
                                         decoded.error);
      }
      continue;
    }
    Message& msg = *decoded.message;
    if (coord_recorder != nullptr && msg.type != MsgType::kAck) {
      coord_recorder->record(
          msg.type == MsgType::kHeartbeat ? "heartbeat" : "rx",
          std::string(msg_type_name(msg.type)) + " node=" +
              std::to_string(rx.worker),
          msg.seq);
    }
    if (msg.type == MsgType::kAck) {
      ws.link->on_ack(msg.ack_seq);
    } else if (msg.type == MsgType::kHeartbeat) {
      // last_seen already refreshed — that is the heartbeat's whole job.
    } else if (msg.type == MsgType::kRejoin) {
      // Unreliable (seq 0) by design: it opens every stream, before the
      // reliable channel state is trustworthy.
      handle_rejoin(rx.worker, msg);
    } else if (msg.type == MsgType::kRejoinOk ||
               msg.type == MsgType::kRejoinRefused) {
      // Coordinator-to-worker frames; ignore an echo.
    } else {
      auto inbound = ws.link->on_reliable(msg);
      if (!inbound.ack.empty()) {
        fabric.send_to(rx.worker, std::move(inbound.ack));
      }
      if (inbound.deliver) {
        handle_delivery(rx.worker, std::move(msg));
        try_assign();
      }
    }
  }

  // Release the survivors: best-effort Bye, then hang up. Workers exit on
  // whichever arrives first.
  Message bye;
  bye.type = MsgType::kBye;
  const std::string bye_frame = encode_frame(bye);
  for (int w = 0; w < config.nodes; ++w) {
    if (wstate[static_cast<std::size_t>(w)].phase != WorkerPhase::kDead) {
      fabric.send_to(w, bye_frame);
    }
  }
  fabric.close_all();
  for (auto& thread : threads) thread.join();
  emit_timeline(true);  // final snapshot: terminal state of the run

  if (fabric.reconnectable()) {
    for (int w = 0; w < config.nodes; ++w) {
      const LinkCounters lc = fabric.link_counters(w);
      result.bytes_sent += lc.bytes_sent;
      result.bytes_received += lc.bytes_received;
    }
  }

  for (int w = 0; w < config.nodes; ++w) {
    const FabricWorker& worker = *workers[static_cast<std::size_t>(w)];
    if (!worker.error().empty()) {
      result.worker_errors.push_back("node " + std::to_string(w) + ": " +
                                     worker.error());
    }
    result.retransmits += worker.retransmits();
    result.retransmits += wstate[static_cast<std::size_t>(w)].link
                              ->retransmits();
  }

  // Deterministic merge: shard record streams are partition-invariant, and
  // the content sort puts them in one byte-stable order. The shard index
  // tiebreaks exactly like the engine's worker index (they coincide for a
  // fabric of S shards vs an engine of S threads).
  {
    obs::ScopedStageTimer merge_timer{profile, obs::Stage::kMerge};
    result.collector = scan::ResultCollector{config.alias_threshold};
    for (auto& ss : sstate) {
      if (ss.phase != ShardPhase::kDone) result.failed = true;
      for (auto& rec : ss.accepted) result.records.push_back(std::move(rec));
      result.stats += ss.stats;
      result.shards.push_back(ss.outcome);
    }
    std::sort(result.records.begin(), result.records.end(),
              [](const FabricRecord& a, const FabricRecord& b) {
                return std::tuple(a.when, a.response.responder,
                                  a.response.probe_dst,
                                  static_cast<int>(a.response.kind), a.shard) <
                       std::tuple(b.when, b.response.responder,
                                  b.response.probe_dst,
                                  static_cast<int>(b.response.kind), b.shard);
              });
    for (const auto& rec : result.records) {
      result.collector.add(rec.response);
    }

    // Scan-content observability: exactly the engine's merge over the same
    // per-shard values, in the same shard order — byte-identical output.
    if (config.obs.trace_level != obs::TraceLevel::kOff) {
      std::vector<std::vector<obs::TraceEvent>> buffers;
      buffers.reserve(sstate.size());
      for (auto& ss : sstate) buffers.push_back(std::move(ss.trace));
      result.trace = obs::merge_traces(std::move(buffers));
    }
    if (config.obs.metrics) {
      std::vector<const obs::MetricsSnapshot*> snaps;
      snaps.reserve(sstate.size());
      for (const auto& ss : sstate) snaps.push_back(&ss.scan_metrics);
      result.scan_metrics = obs::merge_snapshots(snaps);
    }
  }

  // Stage profile: every worker's lease stages plus the coordinator's own
  // (lease / decode / merge) — wall clock, reported but never exported
  // into the deterministic artifacts.
  result.stage_profile = coord_profile;
  for (const auto& worker : workers) {
    result.stage_profile.merge(worker->profile());
  }

  // Every fabric_* series is wall_clock: they describe the deployment, not
  // the scan, so the deterministic Prometheus export (the one compared
  // byte-for-byte against the engine's) omits them. Unlabeled totals keep
  // their original names; per-node breakdowns add node="worker-N" (and
  // link_class for retransmits) so dashboards can attribute without
  // breaking existing queries.
  obs::MetricsShard metrics;
  *metrics.counter("fabric_reassignments_total", {},
                   "Shard leases re-assigned after a worker death", true) =
      result.reassignments;
  *metrics.counter("fabric_missed_heartbeats_total", {},
                   "Heartbeat intervals a live worker went silent", true) =
      result.missed_heartbeats;
  *metrics.counter("fabric_resumed_slots_total", {},
                   "Sum of failover handoff cursor frontiers", true) =
      result.resumed_slots;
  *metrics.counter("fabric_frames_rejected_total", {},
                   "Undecodable protocol frames dropped", true) =
      result.frames_rejected;
  *metrics.counter("fabric_retransmits_total", {},
                   "Reliable-channel retransmissions, both directions", true) =
      result.retransmits;
  *metrics.counter("fabric_workers_dead_total", {},
                   "Worker nodes declared dead", true) =
      static_cast<std::uint64_t>(result.dead_workers);
  *metrics.counter("fabric_shards_completed_total", {},
                   "Fabric shards scanned to completion", true) =
      static_cast<std::uint64_t>(shards_done);
  for (int w = 0; w < config.nodes; ++w) {
    const std::string node = "worker-" + std::to_string(w);
    const FabricWorker& worker = *workers[static_cast<std::size_t>(w)];
    if (wstate[static_cast<std::size_t>(w)].phase == WorkerPhase::kDead) {
      *metrics.counter("fabric_workers_dead_total", {{"node", node}},
                       "Worker nodes declared dead", true) = 1;
    }
    if (missed_per_node[static_cast<std::size_t>(w)] > 0) {
      *metrics.counter("fabric_missed_heartbeats_total", {{"node", node}},
                       "Heartbeat intervals a live worker went silent",
                       true) = missed_per_node[static_cast<std::size_t>(w)];
    }
    if (worker.retransmits() > 0) {
      *metrics.counter("fabric_retransmits_total",
                       {{"link_class", "uplink"}, {"node", node}},
                       "Reliable-channel retransmissions, both directions",
                       true) = worker.retransmits();
    }
    const std::uint64_t down =
        wstate[static_cast<std::size_t>(w)].link->retransmits();
    if (down > 0) {
      *metrics.counter("fabric_retransmits_total",
                       {{"link_class", "downlink"}, {"node", node}},
                       "Reliable-channel retransmissions, both directions",
                       true) = down;
    }
    if (completed_per_node[static_cast<std::size_t>(w)] > 0) {
      *metrics.counter("fabric_shards_completed_total", {{"node", node}},
                       "Fabric shards scanned to completion", true) =
          completed_per_node[static_cast<std::size_t>(w)];
    }
  }
  // Socket-transport link series: emitted only when the plane can actually
  // reconnect, so loopback runs keep their exact metric set.
  if (fabric.reconnectable()) {
    *metrics.counter("fabric_reconnects_total", {},
                     "Rejoin handshakes accepted after the initial join",
                     true) = result.reconnects;
    *metrics.counter("fabric_bytes_sent_total", {},
                     "Raw stream bytes, coordinator to workers", true) =
        result.bytes_sent;
    *metrics.counter("fabric_bytes_received_total", {},
                     "Raw stream bytes, workers to coordinator", true) =
        result.bytes_received;
    for (int w = 0; w < config.nodes; ++w) {
      const std::string node = "worker-" + std::to_string(w);
      const LinkCounters lc = fabric.link_counters(w);
      if (reconnects_per_node[static_cast<std::size_t>(w)] > 0) {
        *metrics.counter("fabric_reconnects_total", {{"node", node}},
                         "Rejoin handshakes accepted after the initial join",
                         true) = reconnects_per_node[static_cast<std::size_t>(w)];
      }
      if (lc.bytes_sent > 0) {
        *metrics.counter("fabric_bytes_sent_total", {{"node", node}},
                         "Raw stream bytes, coordinator to workers", true) =
            lc.bytes_sent;
      }
      if (lc.bytes_received > 0) {
        *metrics.counter("fabric_bytes_received_total", {{"node", node}},
                         "Raw stream bytes, workers to coordinator", true) =
            lc.bytes_received;
      }
    }
  }
  result.metrics = obs::merge_shards({&metrics});

  // Deployment trace: close the root (finish() closes anything a failed
  // run left open) and hand the span tree over.
  if (tracer != nullptr) {
    tracer->end(root_span);
    result.fabric_spans = tracer->finish();
    result.fabric_trace_id = trace_id;
  }

  // Flight recorders: dump every node's ring on the failure paths — a
  // worker death (covers refusals, which quarantine the refusing node) or
  // an incomplete fabric.
  if (!recorders.empty() && !config.flight_recorder_prefix.empty() &&
      (result.dead_workers > 0 || result.failed)) {
    for (int w = 0; w < config.nodes; ++w) {
      const std::string path = config.flight_recorder_prefix + ".node" +
                               std::to_string(w) + ".jsonl";
      if (recorders[static_cast<std::size_t>(w)]->dump_to_file(
              path, "worker-" + std::to_string(w))) {
        result.recorder_dumps.push_back(path);
      }
    }
    const std::string path =
        config.flight_recorder_prefix + ".coordinator.jsonl";
    if (coord_recorder->dump_to_file(path, "coordinator")) {
      result.recorder_dumps.push_back(path);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  result.ok = true;
  return result;
}

}  // namespace xmap::fabric
