// One fabric worker node.
//
// A worker joins the coordinator over its Transport, heartbeats from a
// dedicated thread, and executes shard leases: for each Assign it builds
// its own deterministic world replica (exactly the parallel engine's
// per-thread recipe — the world is a pure function of the specs and seed),
// runs a SimChannelScanner over the leased sub-shard of the permutation,
// and streams validated responses back in reliable Records batches with a
// reliable Checkpoint (stable cursor + live stats) every
// checkpoint_interval_targets. The FIFO reliable channel makes the
// coordinator's failover filter sound: a Checkpoint in hand implies every
// record below its cursor is in hand.
//
// A lease is refused — never silently mangled — when its terms don't match
// this worker's scan: a fingerprint-hash mismatch (the handoff belongs to a
// different scan configuration) or a torn resume cursor (wrong spec-step
// arity) comes back as a Refuse frame with a "stored …, computed …" style
// diagnostic, mirroring src/recover's checkpoint validation.
//
// Fault-plan kills are honoured here: a worker with a Kill entry arms
// ScanConfig::shutdown_at_raw_slot and, once the scanner stops at the kill
// slot, simply goes silent — no flush, no ShardDone, no heartbeats, and
// (when close_transport) a dropped connection — which is exactly what the
// coordinator's failover path must cope with.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fabric/channel.h"
#include "fabric/obs_tap.h"
#include "fabric/transport.h"
#include "obs/config.h"
#include "obs/fabric_trace.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "sim/faults.h"
#include "topology/builder.h"
#include "xmap/scanner.h"

namespace xmap::fabric {

struct WorkerConfig {
  int id = 0;

  // The world this worker replicates (not owned; shared read-only).
  const std::vector<topo::IspSpec>* world_specs = nullptr;
  const std::vector<topo::VendorProfile>* vendors = nullptr;
  topo::BuildConfig build;
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");
  const scan::ProbeModule* module = nullptr;

  // Base scan parameters: machine shard in shard/shards, targets resolved.
  // Fabric sub-sharding composes underneath per Assign.
  scan::ScanConfig base;
  sim::FaultPlan faults;

  // This worker's locally computed scan identity
  // (recover::fingerprint_hash); leases stamped with a different hash are
  // refused.
  std::uint64_t fingerprint = 0;

  std::uint64_t checkpoint_interval_targets = 256;
  int heartbeat_interval_ms = 25;
  std::size_t record_batch = 128;
  BackoffPolicy backoff;

  // Seeded crash, resolved from the fabric fault plan for this worker.
  std::optional<sim::FabricFaultPlan::Kill> kill;

  // Scan-content observability (deterministic: trace buffers and metrics
  // shards are shipped back per shard over ObsTrace/ObsMetrics frames).
  // When any() and a lease resumes from a cursor, the worker replays the
  // whole shard locally and filters transmitted records to slots >= the
  // cursor — record bytes stay identical and the shipped trace/metrics
  // cover the full shard, exactly the engine's per-shard values.
  obs::ObsConfig obs;

  // Deployment observability (wall clock, not owned, may be null): the
  // shared fabric tracer, the span to parent pre-lease frames under, and
  // this node's flight recorder.
  obs::FabricTracer* tracer = nullptr;
  std::uint64_t trace_root = 0;
  obs::FlightRecorder* recorder = nullptr;
};

class FabricWorker {
 public:
  FabricWorker(WorkerConfig config, Transport* transport);

  // Thread body: joins, serves leases until Bye/close/crash. Never throws
  // (failures close the connection and are reported via error()).
  void run();

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  // Reliable re-sends on this worker's uplink (read after run() returns).
  [[nodiscard]] std::uint64_t retransmits() const {
    return link_.retransmits();
  }
  // Wall-clock stage profile summed over every lease this worker ran
  // (read after run() returns; empty unless obs.profile).
  [[nodiscard]] const obs::StageProfile& profile() const { return profile_; }

 private:
  void handle_assign(const Message& assign);
  void run_shard(const Message& assign);
  // Blocks until the reliable queue drains (pumping acks and deferring
  // other inbound messages); false when the link died or the peer closed.
  bool send_reliable(Message msg);
  bool pump(bool until_idle);
  void start_heartbeats();
  void stop_heartbeats();

  WorkerConfig config_;
  Transport* transport_;
  ReliableLink link_;
  LinkTap tap_;
  obs::StageProfile profile_;
  std::uint64_t span_parent_ = 0;  // current parent for outbound frame spans
  std::vector<Message> deferred_;  // delivered while pumping a send
  bool peer_gone_ = false;
  bool done_ = false;
  bool crashed_ = false;
  std::string error_;

  std::thread heartbeat_;
  std::mutex heartbeat_mu_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;
};

}  // namespace xmap::fabric
