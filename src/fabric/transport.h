// Message transports for the scan fabric.
//
// The coordinator and its workers exchange whole frames over a Transport —
// an abstract, bidirectional, FIFO-per-direction byte-message channel with
// TCP-like close semantics (pending frames drain, then the peer observes
// the close). The fabric's state machines depend only on this interface, so
// a socket transport slots in behind the same API; the in-process
// LoopbackFabric below is the reproduction substrate.
//
// The loopback applies sim::fabric_message_verdict to every send: seeded,
// keyed per-frame faults (heartbeat drops, duplication, truncation,
// delivery delay that reorders) — the transport is where the hostile
// network lives, and the protocol/channel layers above must survive it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/faults.h"

namespace xmap::fabric {

enum class RecvStatus : std::uint8_t {
  kFrame,    // a frame was delivered
  kTimeout,  // nothing arrived within the deadline
  kClosed,   // peer closed; all pending frames already drained
};

// One endpoint of a bidirectional frame channel. send() never blocks on the
// peer (the loopback queues are unbounded; a socket transport would write
// to a kernel buffer); recv() blocks up to `timeout_ms`. Thread-safety:
// send() and close() may be called from any thread concurrently with one
// recv()er — the worker's heartbeat thread sends while its main thread
// receives.
class Transport {
 public:
  struct RecvResult {
    RecvStatus status = RecvStatus::kTimeout;
    std::string frame;
  };

  virtual ~Transport() = default;
  // False when the channel is already closed (frame dropped).
  virtual bool send(std::string frame) = 0;
  virtual RecvResult recv(int timeout_ms) = 0;
  // Closes both directions; the peer drains pending frames, then sees
  // kClosed. Idempotent.
  virtual void close() = 0;
};

// The coordinator's side of an N-worker loopback fabric: one shared inbox
// fed by every worker (frames tagged with the sender), plus per-worker
// outboxes. Worker threads obtain their Transport via worker_endpoint().
class LoopbackFabric {
 public:
  struct CoordRecv {
    RecvStatus status = RecvStatus::kTimeout;
    int worker = -1;       // sender (kFrame) or closer (kClosed)
    std::string frame;
  };

  // `faults` may be null (pristine transport); not owned, must outlive the
  // fabric. Faults are applied on send, in both directions.
  LoopbackFabric(int workers, const sim::FabricFaultPlan* faults);
  ~LoopbackFabric();

  LoopbackFabric(const LoopbackFabric&) = delete;
  LoopbackFabric& operator=(const LoopbackFabric&) = delete;

  [[nodiscard]] int workers() const;

  // The worker-side endpoint (valid for the fabric's lifetime).
  [[nodiscard]] Transport* worker_endpoint(int worker);

  // Receives the next frame from any worker; kClosed results identify
  // which worker hung up (each delivered exactly once, after its pending
  // frames).
  [[nodiscard]] CoordRecv recv_any(int timeout_ms);

  // Sends to one worker; false when that worker's channel is closed.
  bool send_to(int worker, std::string frame);

  // Closes the coordinator->worker direction of every channel (workers
  // drain and then see kClosed).
  void close_all();

  struct Impl;  // opaque; public so the .cc's endpoint class can name it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace xmap::fabric
