// Message transports for the scan fabric.
//
// The coordinator and its workers exchange whole frames over a Transport —
// an abstract, bidirectional, FIFO-per-direction byte-message channel with
// TCP-like close semantics (pending frames drain, then the peer observes
// the close). The fabric's state machines depend only on this interface, so
// a socket transport slots in behind the same API; the in-process
// LoopbackFabric below is the reproduction substrate.
//
// The loopback applies sim::fabric_message_verdict to every send: seeded,
// keyed per-frame faults (heartbeat drops, duplication, truncation,
// delivery delay that reorders) — the transport is where the hostile
// network lives, and the protocol/channel layers above must survive it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/faults.h"

namespace xmap::fabric {

enum class RecvStatus : std::uint8_t {
  kFrame,    // a frame was delivered
  kTimeout,  // nothing arrived within the deadline
  kClosed,   // peer closed; all pending frames already drained
};

// One endpoint of a bidirectional frame channel. send() never blocks on the
// peer (the loopback queues are unbounded; a socket transport would write
// to a kernel buffer); recv() blocks up to `timeout_ms`. Thread-safety:
// send() and close() may be called from any thread concurrently with one
// recv()er — the worker's heartbeat thread sends while its main thread
// receives.
class Transport {
 public:
  struct RecvResult {
    RecvStatus status = RecvStatus::kTimeout;
    std::string frame;
  };

  virtual ~Transport() = default;
  // False when the channel is already closed (frame dropped).
  virtual bool send(std::string frame) = 0;
  virtual RecvResult recv(int timeout_ms) = 0;
  // Closes both directions; the peer drains pending frames, then sees
  // kClosed. Idempotent.
  virtual void close() = 0;
  // The worker informs its transport of the lease it currently holds so a
  // reconnect handshake can claim it (has_lease in the Rejoin frame). The
  // loopback has no reconnects, so the default does nothing.
  virtual void note_lease(std::uint32_t shard, std::uint32_t epoch,
                          bool held) {
    (void)shard;
    (void)epoch;
    (void)held;
  }
};

// Per-link traffic counters a plane may expose (zeros for transports that
// do not track them). Reconnects are handshakes accepted after the initial
// join.
struct LinkCounters {
  std::uint64_t bytes_sent = 0;      // coordinator -> worker
  std::uint64_t bytes_received = 0;  // worker -> coordinator
  std::uint64_t reconnects = 0;
};

// The coordinator's side of an N-worker fabric: one shared inbox fed by
// every worker (frames tagged with the sender), plus per-worker outboxes.
// The coordinator loop depends only on this interface; LoopbackFabric and
// TcpFabric (tcp_transport.h) implement it.
class FabricPlane {
 public:
  struct CoordRecv {
    RecvStatus status = RecvStatus::kTimeout;
    int worker = -1;       // sender (kFrame) or closer (kClosed)
    std::string frame;
  };

  virtual ~FabricPlane() = default;

  [[nodiscard]] virtual int workers() const = 0;

  // Receives the next frame from any worker; kClosed results identify
  // which worker hung up (each delivered exactly once, after its pending
  // frames).
  [[nodiscard]] virtual CoordRecv recv_any(int timeout_ms) = 0;

  // Sends to one worker; false when that worker's channel is closed.
  virtual bool send_to(int worker, std::string frame) = 0;

  // Closes the coordinator->worker direction of every channel (workers
  // drain and then see kClosed).
  virtual void close_all() = 0;

  // True when a kClosed from a worker may be followed by a rejoin (socket
  // transports). The coordinator then leaves death detection to the
  // heartbeat timeout instead of failing the worker on hangup.
  [[nodiscard]] virtual bool reconnectable() const { return false; }

  // Permanently fences a worker at the transport layer: its connection (if
  // any) is dropped and future rejoin attempts are refused. No-op on
  // transports without reconnects.
  virtual void drop_worker(int worker) { (void)worker; }

  [[nodiscard]] virtual LinkCounters link_counters(int worker) const {
    (void)worker;
    return {};
  }
};

// The in-process reproduction substrate: frames move through delay-aware
// FIFO mailboxes, faults are applied on send. Worker threads obtain their
// Transport via worker_endpoint().
class LoopbackFabric final : public FabricPlane {
 public:
  // `faults` may be null (pristine transport); not owned, must outlive the
  // fabric. Faults are applied on send, in both directions.
  LoopbackFabric(int workers, const sim::FabricFaultPlan* faults);
  ~LoopbackFabric() override;

  LoopbackFabric(const LoopbackFabric&) = delete;
  LoopbackFabric& operator=(const LoopbackFabric&) = delete;

  [[nodiscard]] int workers() const override;

  // The worker-side endpoint (valid for the fabric's lifetime).
  [[nodiscard]] Transport* worker_endpoint(int worker);

  [[nodiscard]] CoordRecv recv_any(int timeout_ms) override;

  bool send_to(int worker, std::string frame) override;

  void close_all() override;

  struct Impl;  // opaque; public so the .cc's endpoint class can name it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace xmap::fabric
