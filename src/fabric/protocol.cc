#include "fabric/protocol.h"

#include <mutex>
#include <unordered_set>

namespace xmap::fabric {
namespace {

// ---- little-endian writers -------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_addr(std::string& out, const net::Ipv6Address& addr) {
  for (std::uint8_t b : addr.bytes()) out.push_back(static_cast<char>(b));
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_cursor(std::string& out, const scan::ScanCursor& cursor) {
  put_u32(out, static_cast<std::uint32_t>(cursor.spec_steps.size()));
  for (std::uint64_t steps : cursor.spec_steps) put_u64(out, steps);
  put_u64(out, cursor.frontier_slot);
}

void put_stats(std::string& out, const scan::ScanStats& s) {
  put_u64(out, s.targets_generated);
  put_u64(out, s.blocked);
  put_u64(out, s.sent);
  put_u64(out, s.received);
  put_u64(out, s.validated);
  put_u64(out, s.discarded);
  put_u64(out, s.retransmits);
  put_u64(out, s.duplicates);
  put_u64(out, s.corrupted);
  put_u64(out, s.late);
  put_u64(out, s.rate_adjustments);
  put_u64(out, s.first_send);
  put_u64(out, s.last_send);
}

// A TraceEvent string: presence flag, then length-prefixed bytes. The flag
// preserves null-vs-empty across the wire — a null key means "argument
// unused" and must decode back to null, not to "".
void put_trace_string(std::string& out, const char* s) {
  if (s == nullptr) {
    put_u8(out, 0);
    return;
  }
  put_u8(out, 1);
  put_string(out, std::string(s));
}

void put_trace_event(std::string& out, const obs::TraceEvent& e) {
  put_u64(out, e.ts);
  put_u64(out, e.dur);
  put_trace_string(out, e.name);
  put_trace_string(out, e.cat);
  put_trace_string(out, e.addr1_key);
  put_addr(out, e.addr1);
  put_trace_string(out, e.addr2_key);
  put_addr(out, e.addr2);
  put_trace_string(out, e.str_key);
  put_trace_string(out, e.str_val);
  for (const auto* arg : {&e.i0, &e.i1, &e.i2}) {
    put_trace_string(out, arg->key);
    put_u64(out, arg->value);
  }
}

void put_metrics_entry(std::string& out,
                       const obs::MetricsSnapshot::Entry& e) {
  put_string(out, e.name);
  put_u32(out, static_cast<std::uint32_t>(e.labels.size()));
  for (const auto& [k, v] : e.labels) {
    put_string(out, k);
    put_string(out, v);
  }
  put_u8(out, static_cast<std::uint8_t>(e.kind));
  put_u8(out, e.wall_clock ? 1 : 0);
  put_u64(out, e.value);
  put_u8(out, e.histogram.has_value() ? 1 : 0);
  if (e.histogram.has_value()) {
    const auto& h = *e.histogram;
    put_u32(out, static_cast<std::uint32_t>(h.bounds().size()));
    for (std::uint64_t b : h.bounds()) put_u64(out, b);
    put_u32(out, static_cast<std::uint32_t>(h.counts().size()));
    for (std::uint64_t c : h.counts()) put_u64(out, c);
    put_u64(out, h.sum());
    put_u64(out, h.count());
  }
  put_string(out, e.help);
}

void put_record(std::string& out, const WireRecord& r) {
  put_u8(out, static_cast<std::uint8_t>(r.response.kind));
  put_u8(out, r.response.icmp_code);
  put_u8(out, r.response.hop_limit);
  put_addr(out, r.response.responder);
  put_addr(out, r.response.probe_dst);
  put_u64(out, r.when);
  put_u64(out, r.raw_slot);
}

// ---- bounds-checked reader -------------------------------------------------

// A cursor over the payload: every read checks the remaining length and, on
// failure, records which field ran short. One error string per decode —
// the first failure wins.
class Reader {
 public:
  Reader(std::string_view data, std::string& error)
      : data_(data), error_(error) {}

  [[nodiscard]] bool read_u8(std::uint8_t& out, const char* field) {
    if (!need(1, field)) return false;
    out = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  [[nodiscard]] bool read_u32(std::uint32_t& out, const char* field) {
    if (!need(4, field)) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_++]))
             << (8 * i);
    }
    return true;
  }

  [[nodiscard]] bool read_u64(std::uint64_t& out, const char* field) {
    if (!need(8, field)) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_++]))
             << (8 * i);
    }
    return true;
  }

  [[nodiscard]] bool read_addr(net::Ipv6Address& out, const char* field) {
    if (!need(16, field)) return false;
    std::array<std::uint8_t, 16> bytes{};
    for (auto& b : bytes) b = static_cast<std::uint8_t>(data_[pos_++]);
    out = net::Ipv6Address{bytes};
    return true;
  }

  [[nodiscard]] bool read_string(std::string& out, const char* field) {
    std::uint32_t len = 0;
    if (!read_u32(len, field)) return false;
    if (!need(len, field)) return false;
    out.assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  // A count prefix for fixed-size elements: rejected up front when the
  // remaining bytes cannot possibly hold `count` elements, so a corrupt
  // count can never drive allocation.
  [[nodiscard]] bool read_count(std::uint32_t& out, std::size_t elem_size,
                                const char* field) {
    if (!read_u32(out, field)) return false;
    if (remaining() / elem_size < out) {
      error_ = std::string("fabric frame: ") + field + " count " +
               std::to_string(out) + " exceeds remaining " +
               std::to_string(remaining()) + " bytes";
      return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] bool need(std::size_t n, const char* field) {
    if (remaining() >= n) return true;
    error_ = std::string("fabric frame: truncated ") + field + " (need " +
             std::to_string(n) + " bytes, have " +
             std::to_string(remaining()) + ")";
    return false;
  }

  std::string_view data_;
  std::string& error_;
  std::size_t pos_ = 0;
};

bool read_cursor(Reader& in, scan::ScanCursor& out, const char* field) {
  std::uint32_t specs = 0;
  if (!in.read_count(specs, 8, field)) return false;
  out.spec_steps.resize(specs);
  for (auto& steps : out.spec_steps) {
    if (!in.read_u64(steps, field)) return false;
  }
  return in.read_u64(out.frontier_slot, field);
}

bool read_stats(Reader& in, scan::ScanStats& s) {
  return in.read_u64(s.targets_generated, "stats") &&
         in.read_u64(s.blocked, "stats") && in.read_u64(s.sent, "stats") &&
         in.read_u64(s.received, "stats") &&
         in.read_u64(s.validated, "stats") &&
         in.read_u64(s.discarded, "stats") &&
         in.read_u64(s.retransmits, "stats") &&
         in.read_u64(s.duplicates, "stats") &&
         in.read_u64(s.corrupted, "stats") && in.read_u64(s.late, "stats") &&
         in.read_u64(s.rate_adjustments, "stats") &&
         in.read_u64(s.first_send, "stats") &&
         in.read_u64(s.last_send, "stats");
}

bool read_record(Reader& in, WireRecord& r, std::string& error) {
  std::uint8_t kind = 0;
  if (!in.read_u8(kind, "record kind")) return false;
  if (kind > static_cast<std::uint8_t>(scan::ResponseKind::kOther)) {
    error = "fabric frame: record kind " + std::to_string(kind) +
            " out of range";
    return false;
  }
  r.response.kind = static_cast<scan::ResponseKind>(kind);
  return in.read_u8(r.response.icmp_code, "record icmp_code") &&
         in.read_u8(r.response.hop_limit, "record hop_limit") &&
         in.read_addr(r.response.responder, "record responder") &&
         in.read_addr(r.response.probe_dst, "record probe_dst") &&
         in.read_u64(r.when, "record when") &&
         in.read_u64(r.raw_slot, "record raw_slot");
}

bool read_trace_string(Reader& in, const char*& out, const char* field,
                       std::string& error) {
  std::uint8_t flag = 0;
  if (!in.read_u8(flag, field)) return false;
  if (flag > 1) {
    error = std::string("fabric frame: ") + field + " presence flag " +
            std::to_string(flag) + " is not boolean";
    return false;
  }
  if (flag == 0) {
    out = nullptr;
    return true;
  }
  std::string s;
  if (!in.read_string(s, field)) return false;
  out = intern_trace_string(s);
  return true;
}

bool read_trace_event(Reader& in, obs::TraceEvent& e, std::string& error) {
  if (!(in.read_u64(e.ts, "trace ts") && in.read_u64(e.dur, "trace dur") &&
        read_trace_string(in, e.name, "trace name", error) &&
        read_trace_string(in, e.cat, "trace cat", error) &&
        read_trace_string(in, e.addr1_key, "trace addr1_key", error) &&
        in.read_addr(e.addr1, "trace addr1") &&
        read_trace_string(in, e.addr2_key, "trace addr2_key", error) &&
        in.read_addr(e.addr2, "trace addr2") &&
        read_trace_string(in, e.str_key, "trace str_key", error) &&
        read_trace_string(in, e.str_val, "trace str_val", error))) {
    return false;
  }
  // Serialized name/cat may legitimately be null-flagged only if the
  // emitter stored null; TraceEvent's defaults are "" — keep whatever came.
  if (e.name == nullptr) e.name = "";
  if (e.cat == nullptr) e.cat = "";
  for (auto* arg : {&e.i0, &e.i1, &e.i2}) {
    if (!read_trace_string(in, arg->key, "trace int key", error) ||
        !in.read_u64(arg->value, "trace int value")) {
      return false;
    }
  }
  return true;
}

bool read_metrics_entry(Reader& in, obs::MetricsSnapshot::Entry& e,
                        std::string& error) {
  if (!in.read_string(e.name, "metrics name")) return false;
  std::uint32_t labels = 0;
  if (!in.read_count(labels, 8, "metrics labels")) return false;
  e.labels.resize(labels);
  for (auto& [k, v] : e.labels) {
    if (!in.read_string(k, "metrics label key") ||
        !in.read_string(v, "metrics label value")) {
      return false;
    }
  }
  std::uint8_t kind = 0;
  if (!in.read_u8(kind, "metrics kind")) return false;
  if (kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram)) {
    error =
        "fabric frame: metrics kind " + std::to_string(kind) + " out of range";
    return false;
  }
  e.kind = static_cast<obs::MetricKind>(kind);
  std::uint8_t wall_clock = 0;
  if (!in.read_u8(wall_clock, "metrics wall_clock")) return false;
  if (wall_clock > 1) {
    error = "fabric frame: metrics wall_clock flag " +
            std::to_string(wall_clock) + " is not boolean";
    return false;
  }
  e.wall_clock = wall_clock == 1;
  if (!in.read_u64(e.value, "metrics value")) return false;
  std::uint8_t has_hist = 0;
  if (!in.read_u8(has_hist, "metrics histogram flag")) return false;
  if (has_hist > 1) {
    error = "fabric frame: metrics histogram flag " +
            std::to_string(has_hist) + " is not boolean";
    return false;
  }
  if (has_hist == 1) {
    std::uint32_t nbounds = 0;
    if (!in.read_count(nbounds, 8, "metrics histogram bounds")) return false;
    std::vector<std::uint64_t> bounds(nbounds);
    for (auto& b : bounds) {
      if (!in.read_u64(b, "metrics histogram bound")) return false;
    }
    std::uint32_t ncounts = 0;
    if (!in.read_count(ncounts, 8, "metrics histogram counts")) return false;
    if (ncounts != nbounds + 1) {
      error = "fabric frame: metrics histogram has " +
              std::to_string(ncounts) + " counts for " +
              std::to_string(nbounds) + " bounds";
      return false;
    }
    std::vector<std::uint64_t> counts(ncounts);
    for (auto& c : counts) {
      if (!in.read_u64(c, "metrics histogram count")) return false;
    }
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
    if (!in.read_u64(sum, "metrics histogram sum") ||
        !in.read_u64(count, "metrics histogram total")) {
      return false;
    }
    e.histogram = obs::Histogram::from_parts(std::move(bounds),
                                             std::move(counts), sum, count);
  }
  return in.read_string(e.help, "metrics help");
}

}  // namespace

const char* intern_trace_string(std::string_view s) {
  static std::mutex mu;
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>;  // leaked: process lifetime
  std::lock_guard<std::mutex> lock(mu);
  return pool->emplace(s).first->c_str();
}

std::uint64_t frame_checksum(std::string_view payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : payload) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string encode_frame(const Message& msg) {
  std::string payload;
  put_u8(payload, static_cast<std::uint8_t>(msg.type));
  put_u64(payload, msg.seq);
  put_u8(payload, msg.ctx_ver);
  if (msg.ctx_ver == kTraceCtxV1) {
    put_u64(payload, msg.trace_id);
    put_u64(payload, msg.parent_span);
  }
  switch (msg.type) {
    case MsgType::kHello:
    case MsgType::kHeartbeat:
      put_u32(payload, msg.worker);
      break;
    case MsgType::kAck:
      put_u64(payload, msg.ack_seq);
      break;
    case MsgType::kAssign:
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      put_u32(payload, msg.shards_total);
      put_u64(payload, msg.budget_cut);
      put_u64(payload, msg.fingerprint);
      put_u8(payload, msg.has_resume ? 1 : 0);
      put_cursor(payload, msg.cursor);
      break;
    case MsgType::kRefuse:
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      put_string(payload, msg.diagnostic);
      break;
    case MsgType::kRecords:
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      put_u32(payload, static_cast<std::uint32_t>(msg.records.size()));
      for (const auto& r : msg.records) put_record(payload, r);
      break;
    case MsgType::kCheckpoint:
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      put_cursor(payload, msg.cursor);
      put_stats(payload, msg.stats);
      break;
    case MsgType::kShardDone:
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      put_stats(payload, msg.stats);
      break;
    case MsgType::kBye:
      break;
    case MsgType::kObsTrace:
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      put_u32(payload, static_cast<std::uint32_t>(msg.trace_events.size()));
      for (const auto& e : msg.trace_events) put_trace_event(payload, e);
      break;
    case MsgType::kObsMetrics:
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      put_u32(payload, static_cast<std::uint32_t>(msg.metrics.entries.size()));
      for (const auto& e : msg.metrics.entries) put_metrics_entry(payload, e);
      break;
    case MsgType::kRejoin:
      put_u32(payload, msg.worker);
      put_u64(payload, msg.fingerprint);
      put_u8(payload, msg.has_lease ? 1 : 0);
      put_u32(payload, msg.shard);
      put_u32(payload, msg.epoch);
      break;
    case MsgType::kRejoinOk:
      put_u32(payload, msg.worker);
      break;
    case MsgType::kRejoinRefused:
      put_u32(payload, msg.worker);
      put_string(payload, msg.diagnostic);
      break;
  }

  std::string frame;
  frame.reserve(payload.size() + kFrameOverhead);
  put_u32(frame, kFrameMagic);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  put_u64(frame, frame_checksum(payload));
  return frame;
}

DecodeResult decode_frame(std::string_view frame) {
  DecodeResult out;
  if (frame.size() < kFrameOverhead + 1) {
    out.error = "fabric frame: " + std::to_string(frame.size()) +
                " bytes is shorter than the minimum frame";
    return out;
  }
  std::string header_error;
  Reader header{frame, header_error};
  std::uint32_t magic = 0;
  std::uint32_t payload_len = 0;
  (void)header.read_u32(magic, "magic");
  (void)header.read_u32(payload_len, "length");
  if (magic != kFrameMagic) {
    out.error = "fabric frame: bad magic";
    return out;
  }
  if (payload_len > kMaxPayload) {
    out.error = "fabric frame: payload length " + std::to_string(payload_len) +
                " exceeds the " + std::to_string(kMaxPayload) + "-byte cap";
    return out;
  }
  if (frame.size() != kFrameOverhead + payload_len) {
    out.error = "fabric frame: length prefix says " +
                std::to_string(kFrameOverhead + payload_len) +
                " bytes, frame is " + std::to_string(frame.size());
    return out;
  }
  const std::string_view payload = frame.substr(8, payload_len);
  std::string cksum_error;
  Reader tail{frame.substr(8 + payload_len), cksum_error};
  std::uint64_t stored = 0;
  (void)tail.read_u64(stored, "checksum");
  const std::uint64_t computed = frame_checksum(payload);
  if (stored != computed) {
    out.error = "fabric frame: checksum mismatch (stored " +
                std::to_string(stored) + ", computed " +
                std::to_string(computed) + ")";
    return out;
  }

  std::string error;
  Reader in{payload, error};
  Message msg;
  std::uint8_t type = 0;
  if (!in.read_u8(type, "type") || !in.read_u64(msg.seq, "seq") ||
      !in.read_u8(msg.ctx_ver, "trace-context version")) {
    out.error = std::move(error);
    return out;
  }
  if (msg.ctx_ver > kTraceCtxV1) {
    out.error = "fabric frame: unsupported trace-context version " +
                std::to_string(msg.ctx_ver);
    return out;
  }
  if (msg.ctx_ver == kTraceCtxV1 &&
      (!in.read_u64(msg.trace_id, "trace_id") ||
       !in.read_u64(msg.parent_span, "parent_span"))) {
    out.error = std::move(error);
    return out;
  }
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kRejoinRefused)) {
    out.error = "fabric frame: unknown message type " + std::to_string(type);
    return out;
  }
  msg.type = static_cast<MsgType>(type);

  bool ok = true;
  switch (msg.type) {
    case MsgType::kHello:
    case MsgType::kHeartbeat:
      ok = in.read_u32(msg.worker, "worker");
      break;
    case MsgType::kAck:
      ok = in.read_u64(msg.ack_seq, "ack_seq");
      break;
    case MsgType::kAssign: {
      std::uint8_t has_resume = 0;
      ok = in.read_u32(msg.shard, "shard") &&
           in.read_u32(msg.epoch, "epoch") &&
           in.read_u32(msg.shards_total, "shards_total") &&
           in.read_u64(msg.budget_cut, "budget_cut") &&
           in.read_u64(msg.fingerprint, "fingerprint") &&
           in.read_u8(has_resume, "has_resume") &&
           read_cursor(in, msg.cursor, "resume cursor");
      if (ok && has_resume > 1) {
        error = "fabric frame: has_resume flag " + std::to_string(has_resume) +
                " is not boolean";
        ok = false;
      }
      msg.has_resume = has_resume == 1;
      break;
    }
    case MsgType::kRefuse:
      ok = in.read_u32(msg.shard, "shard") &&
           in.read_u32(msg.epoch, "epoch") &&
           in.read_string(msg.diagnostic, "diagnostic");
      break;
    case MsgType::kRecords: {
      std::uint32_t count = 0;
      ok = in.read_u32(msg.shard, "shard") &&
           in.read_u32(msg.epoch, "epoch") &&
           in.read_count(count, kWireRecordBytes, "records");
      if (ok) {
        msg.records.resize(count);
        for (auto& r : msg.records) {
          if (!read_record(in, r, error)) {
            ok = false;
            break;
          }
        }
      }
      break;
    }
    case MsgType::kCheckpoint:
      ok = in.read_u32(msg.shard, "shard") &&
           in.read_u32(msg.epoch, "epoch") &&
           read_cursor(in, msg.cursor, "checkpoint cursor") &&
           read_stats(in, msg.stats);
      break;
    case MsgType::kShardDone:
      ok = in.read_u32(msg.shard, "shard") &&
           in.read_u32(msg.epoch, "epoch") && read_stats(in, msg.stats);
      break;
    case MsgType::kBye:
      break;
    case MsgType::kObsTrace: {
      std::uint32_t count = 0;
      ok = in.read_u32(msg.shard, "shard") &&
           in.read_u32(msg.epoch, "epoch") &&
           in.read_count(count, kWireTraceEventMinBytes, "trace events");
      if (ok) {
        msg.trace_events.resize(count);
        for (auto& e : msg.trace_events) {
          if (!read_trace_event(in, e, error)) {
            ok = false;
            break;
          }
        }
      }
      break;
    }
    case MsgType::kObsMetrics: {
      std::uint32_t count = 0;
      ok = in.read_u32(msg.shard, "shard") &&
           in.read_u32(msg.epoch, "epoch") &&
           in.read_count(count, kWireMetricsEntryMinBytes, "metrics entries");
      if (ok) {
        msg.metrics.entries.resize(count);
        for (auto& e : msg.metrics.entries) {
          if (!read_metrics_entry(in, e, error)) {
            ok = false;
            break;
          }
        }
      }
      break;
    }
    case MsgType::kRejoin: {
      std::uint8_t has_lease = 0;
      ok = in.read_u32(msg.worker, "worker") &&
           in.read_u64(msg.fingerprint, "fingerprint") &&
           in.read_u8(has_lease, "has_lease") &&
           in.read_u32(msg.shard, "shard") && in.read_u32(msg.epoch, "epoch");
      if (ok && has_lease > 1) {
        error = "fabric frame: has_lease flag " + std::to_string(has_lease) +
                " is not boolean";
        ok = false;
      }
      msg.has_lease = has_lease == 1;
      break;
    }
    case MsgType::kRejoinOk:
      ok = in.read_u32(msg.worker, "worker");
      break;
    case MsgType::kRejoinRefused:
      ok = in.read_u32(msg.worker, "worker") &&
           in.read_string(msg.diagnostic, "diagnostic");
      break;
  }
  if (!ok) {
    out.error = error.empty() ? "fabric frame: truncated body"
                              : std::move(error);
    return out;
  }
  if (in.remaining() != 0) {
    out.error = "fabric frame: " + std::to_string(in.remaining()) +
                " trailing bytes after " +
                std::string(msg_type_name(msg.type)) + " body";
    return out;
  }
  out.message = std::move(msg);
  return out;
}

}  // namespace xmap::fabric
