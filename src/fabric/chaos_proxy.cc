#include "fabric/chaos_proxy.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "fabric/protocol.h"
#include "fabric/tcp_transport.h"
#include "netbase/random.h"

namespace xmap::fabric {
namespace {

using Clock = std::chrono::steady_clock;

bool make_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fdflags = fcntl(fd, F_GETFD, 0);
  return fdflags >= 0 && fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) >= 0;
}

// The seeded fault draw: a pure function of (seed, connection, direction,
// chunk), uniform in [0, 1).
double fault_draw(std::uint64_t seed, int connection, bool up,
                  std::uint64_t chunk) {
  std::uint64_t h = net::hash_combine64(
      seed, (static_cast<std::uint64_t>(connection) << 1) | (up ? 1 : 0));
  h = net::hash_combine64(h, chunk);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Tracks XFB1 frame boundaries on a pass-through stream — enough to place
// a cut a fixed number of bytes into a frame.
struct FrameCursor {
  std::uint64_t frames_done = 0;
  std::size_t have = 0;       // bytes of the current frame consumed
  std::size_t frame_len = 0;  // known once 8 header bytes are in
  char header[8] = {0};

  void consume_byte(char c) {
    if (have < 8) {
      header[have] = c;
      ++have;
      if (have == 8) {
        std::uint32_t len = 0;
        for (int i = 0; i < 4; ++i) {
          len |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(header[4 + i]))
                 << (8 * i);
        }
        frame_len = kFrameOverhead + len;
      }
      if (have == frame_len && frame_len != 0) finish();
      return;
    }
    ++have;
    if (have == frame_len) finish();
  }

  void finish() {
    ++frames_done;
    have = 0;
    frame_len = 0;
  }
};

struct Chunk {
  std::string bytes;
  Clock::time_point ready_at;
};

struct Dir {
  std::deque<Chunk> pending;
  std::string staging;  // coalesce buffer
  Clock::time_point staged_at{};
  std::uint64_t seen = 0;  // bytes read from the source, incl. blackholed
  std::uint64_t chunk_index = 0;
  bool blackholed = false;
  bool eof = false;          // source closed; drain pending, then half-close
  bool dest_shut = false;
};

struct Pair {
  int client = -1;  // worker side
  int up = -1;      // coordinator side
  int index = 0;
  Dir a2b;  // client -> upstream
  Dir b2a;  // upstream -> client
  FrameCursor frames;
  bool cut_pending = false;  // flush a2b, then sever both legs
  bool dead = false;
};

}  // namespace

struct ChaosProxy::Impl {
  ChaosProxyOptions opt;
  sockaddr_storage upstream_addr{};
  socklen_t upstream_len = 0;
  int listen_fd = -1;
  sockaddr_storage bound{};
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> cuts{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> blackholed{0};
  std::atomic<std::uint64_t> relayed{0};

  std::vector<std::unique_ptr<Pair>> pairs;

  void run();
  void accept_new();
  void read_side(Pair& pair, bool up);
  void write_side(Pair& pair, bool up);
  void emit(Pair& pair, bool up, std::string bytes);
  void flush_staging(Dir& dir, Pair& pair, bool up);
  void close_pair(Pair& pair);
};

void ChaosProxy::Impl::close_pair(Pair& pair) {
  if (pair.client >= 0) ::close(pair.client);
  if (pair.up >= 0) ::close(pair.up);
  pair.client = -1;
  pair.up = -1;
  pair.dead = true;
}

// Queues `bytes` for delivery, applying split segmentation and seeded
// stalls. Order is preserved: a stalled chunk delays everything behind it,
// exactly like bytes queued behind a congested TCP link.
void ChaosProxy::Impl::emit(Pair& pair, bool up, std::string bytes) {
  Dir& dir = up ? pair.a2b : pair.b2a;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t seg =
        opt.split_max_bytes > 0
            ? std::min(opt.split_max_bytes, bytes.size() - pos)
            : bytes.size() - pos;
    Chunk chunk;
    chunk.bytes = bytes.substr(pos, seg);
    chunk.ready_at = Clock::now();
    ++dir.chunk_index;
    if (opt.stall_probability > 0 &&
        fault_draw(opt.seed, pair.index, up, dir.chunk_index) <
            opt.stall_probability) {
      chunk.ready_at += std::chrono::milliseconds(opt.stall_ms);
      stalls.fetch_add(1, std::memory_order_relaxed);
    }
    dir.pending.push_back(std::move(chunk));
    pos += seg;
  }
}

void ChaosProxy::Impl::flush_staging(Dir& dir, Pair& pair, bool up) {
  if (dir.staging.empty()) return;
  std::string bytes = std::move(dir.staging);
  dir.staging.clear();
  emit(pair, up, std::move(bytes));
}

void ChaosProxy::Impl::read_side(Pair& pair, bool up) {
  Dir& dir = up ? pair.a2b : pair.b2a;
  const int src = up ? pair.client : pair.up;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(src, buf, sizeof buf);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      dir.eof = true;
      flush_staging(dir, pair, up);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN
    }
    std::size_t len = static_cast<std::size_t>(n);
    std::size_t offset = 0;

    // Blackhole: beyond the byte threshold this direction is a silent pit.
    if (pair.index == opt.blackhole_connection &&
        up == opt.blackhole_up) {
      if (dir.blackholed) {
        blackholed.fetch_add(len, std::memory_order_relaxed);
        dir.seen += len;
        continue;
      }
      if (dir.seen + len >= opt.blackhole_after_bytes) {
        const std::size_t allowed =
            opt.blackhole_after_bytes > dir.seen
                ? static_cast<std::size_t>(opt.blackhole_after_bytes -
                                           dir.seen)
                : 0;
        blackholed.fetch_add(len - allowed, std::memory_order_relaxed);
        dir.blackholed = true;
        dir.seen += len;
        len = allowed;
        if (len == 0) continue;
      } else {
        dir.seen += len;
      }
    } else {
      dir.seen += len;
    }

    // Cut: walk the frame cursor to find the severance point and truncate
    // the span so the receiver is left holding a torn frame.
    if (up && pair.index == opt.cut_connection && !pair.cut_pending &&
        cuts.load(std::memory_order_relaxed) == 0) {
      for (std::size_t i = 0; i < len; ++i) {
        pair.frames.consume_byte(buf[offset + i]);
        if (pair.frames.frames_done == opt.cut_after_frames &&
            pair.frames.have >= opt.cut_frame_bytes &&
            pair.frames.have > 0) {
          // Deliver exactly through this byte, then sever.
          flush_staging(dir, pair, up);
          emit(pair, up, std::string(buf + offset, i + 1));
          pair.cut_pending = true;
          pair.b2a.pending.clear();  // a cut kills both legs at once
          pair.b2a.staging.clear();
          cuts.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }

    if (opt.coalesce_min_bytes > 0) {
      if (dir.staging.empty()) dir.staged_at = Clock::now();
      dir.staging.append(buf + offset, len);
      if (dir.staging.size() >= opt.coalesce_min_bytes) {
        flush_staging(dir, pair, up);
      }
    } else {
      emit(pair, up, std::string(buf + offset, len));
    }
  }
}

void ChaosProxy::Impl::write_side(Pair& pair, bool up) {
  Dir& dir = up ? pair.a2b : pair.b2a;
  const int dst = up ? pair.up : pair.client;
  const auto now = Clock::now();
  while (!dir.pending.empty() && dir.pending.front().ready_at <= now) {
    Chunk& chunk = dir.pending.front();
    const ssize_t n =
        ::send(dst, chunk.bytes.data(), chunk.bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_pair(pair);
      return;
    }
    relayed.fetch_add(static_cast<std::uint64_t>(n),
                      std::memory_order_relaxed);
    if (static_cast<std::size_t>(n) == chunk.bytes.size()) {
      dir.pending.pop_front();
    } else {
      chunk.bytes.erase(0, static_cast<std::size_t>(n));
      return;
    }
  }
  if (pair.cut_pending && pair.a2b.pending.empty()) {
    close_pair(pair);
    return;
  }
  if (dir.eof && dir.pending.empty() && dir.staging.empty() &&
      !dir.dest_shut) {
    // Propagate the half-close after the buffered bytes — a FIN behind
    // data, exactly what the kernel would do.
    ::shutdown(dst, SHUT_WR);
    dir.dest_shut = true;
  }
}

void ChaosProxy::Impl::accept_new() {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) return;
    if (!make_nonblocking(client)) {
      ::close(client);
      continue;
    }
    int one = 1;
    (void)setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    // Upstream leg: bounded blocking connect (the relay thread owns it).
    const int upfd = socket(upstream_addr.ss_family, SOCK_STREAM, 0);
    if (upfd < 0 || !make_nonblocking(upfd)) {
      if (upfd >= 0) ::close(upfd);
      ::close(client);
      continue;
    }
    int rc = ::connect(upfd, reinterpret_cast<sockaddr*>(&upstream_addr),
                       upstream_len);
    if (rc < 0 && errno == EINPROGRESS) {
      pollfd pfd{upfd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, 1000);
      int soerr = 0;
      socklen_t slen = sizeof soerr;
      if (rc <= 0 ||
          getsockopt(upfd, SOL_SOCKET, SO_ERROR, &soerr, &slen) < 0 ||
          soerr != 0) {
        rc = -1;
      } else {
        rc = 0;
      }
    }
    if (rc < 0) {
      ::close(upfd);
      ::close(client);
      continue;
    }
    (void)setsockopt(upfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto pair = std::make_unique<Pair>();
    pair->client = client;
    pair->up = upfd;
    pair->index = static_cast<int>(
        connections.fetch_add(1, std::memory_order_relaxed));
    pairs.push_back(std::move(pair));
  }
}

void ChaosProxy::Impl::run() {
  while (!stop.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    std::vector<std::pair<Pair*, bool>> sides;  // (pair, is_client_fd)
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    const auto now = Clock::now();
    int timeout = 20;
    const auto want = [&](Dir& dir) {
      if (!dir.pending.empty()) {
        const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                               dir.pending.front().ready_at - now)
                               .count();
        if (until > 0) timeout = std::min<int>(timeout, static_cast<int>(until));
        return dir.pending.front().ready_at <= now;
      }
      return false;
    };
    for (auto& pair : pairs) {
      if (pair->dead) continue;
      // Coalesce hold deadline: staged bytes flush after the hold window
      // even when the batch minimum was never reached.
      for (Dir* dir : {&pair->a2b, &pair->b2a}) {
        if (!dir->staging.empty()) {
          const auto age =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - dir->staged_at)
                  .count();
          if (age >= opt.coalesce_hold_ms) {
            flush_staging(*dir, *pair,
                          dir == &pair->a2b);
          } else {
            timeout = std::min<int>(
                timeout, static_cast<int>(opt.coalesce_hold_ms - age) + 1);
          }
        }
      }
      short client_ev = 0;
      short up_ev = 0;
      if (!pair->a2b.eof && !pair->cut_pending) client_ev |= POLLIN;
      if (!pair->b2a.eof && !pair->cut_pending) up_ev |= POLLIN;
      if (want(pair->b2a)) client_ev |= POLLOUT;
      if (want(pair->a2b) || pair->cut_pending) up_ev |= POLLOUT;
      // Drain/shutdown bookkeeping runs through write_side even without
      // POLLOUT interest; poll wakes us via timeout.
      if (client_ev != 0 && pair->client >= 0) {
        fds.push_back(pollfd{pair->client, client_ev, 0});
        sides.emplace_back(pair.get(), true);
      }
      if (up_ev != 0 && pair->up >= 0) {
        fds.push_back(pollfd{pair->up, up_ev, 0});
        sides.emplace_back(pair.get(), false);
      }
    }
    int rc;
    do {
      rc = ::poll(fds.data(), fds.size(), timeout);
    } while (rc < 0 && errno == EINTR);
    if ((fds[0].revents & POLLIN) != 0) accept_new();
    for (std::size_t i = 1; i < fds.size(); ++i) {
      Pair* pair = sides[i - 1].first;
      const bool is_client = sides[i - 1].second;
      if (pair->dead) continue;
      const short re = fds[i].revents;
      if ((re & POLLOUT) != 0) {
        // client POLLOUT writes the down direction; up POLLOUT the up one.
        write_side(*pair, /*up=*/!is_client);
      }
      if (pair->dead) continue;
      if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_side(*pair, /*up=*/is_client);
      }
    }
    // Timer-driven drains: stalled chunks whose ready_at passed, EOF
    // propagation, cut completion.
    for (auto& pair : pairs) {
      if (pair->dead) continue;
      write_side(*pair, true);
      if (!pair->dead) write_side(*pair, false);
      if (!pair->dead && pair->a2b.eof && pair->b2a.eof &&
          pair->a2b.pending.empty() && pair->b2a.pending.empty()) {
        close_pair(*pair);
      }
    }
    pairs.erase(std::remove_if(pairs.begin(), pairs.end(),
                               [](const std::unique_ptr<Pair>& p) {
                                 return p->dead;
                               }),
                pairs.end());
  }
  for (auto& pair : pairs) close_pair(*pair);
  pairs.clear();
}

std::unique_ptr<ChaosProxy> ChaosProxy::create(ChaosProxyOptions options,
                                               std::string& error) {
  auto impl = std::make_unique<Impl>();
  impl->opt = std::move(options);
  if (!parse_socket_address(impl->opt.upstream, impl->upstream_addr,
                            impl->upstream_len, error)) {
    return nullptr;
  }
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  std::string parse_error;
  (void)parse_socket_address("127.0.0.1:0", addr, addr_len, parse_error);
  const int fd = socket(addr.ss_family, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "chaos proxy: socket() failed: " + std::string(strerror(errno)) +
            " (errno " + std::to_string(errno) + ")";
    return nullptr;
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (!make_nonblocking(fd) ||
      bind(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) < 0 ||
      listen(fd, 64) < 0) {
    error = "chaos proxy: bind/listen on 127.0.0.1:0 failed: " +
            std::string(strerror(errno)) + " (errno " +
            std::to_string(errno) + ")";
    ::close(fd);
    return nullptr;
  }
  impl->listen_fd = fd;
  socklen_t blen = sizeof impl->bound;
  (void)getsockname(fd, reinterpret_cast<sockaddr*>(&impl->bound), &blen);
  auto proxy = std::unique_ptr<ChaosProxy>(new ChaosProxy());
  proxy->impl_ = std::move(impl);
  proxy->impl_->thread = std::thread([impl = proxy->impl_.get()] {
    impl->run();
  });
  return proxy;
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::stop() {
  if (impl_ == nullptr) return;
  if (impl_->thread.joinable()) {
    impl_->stop.store(true, std::memory_order_relaxed);
    impl_->thread.join();
  }
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
}

std::string ChaosProxy::address() const {
  return format_socket_address(impl_->bound);
}

std::uint16_t ChaosProxy::port() const {
  return ntohs(reinterpret_cast<const sockaddr_in*>(&impl_->bound)->sin_port);
}

std::uint64_t ChaosProxy::connections() const {
  return impl_->connections.load(std::memory_order_relaxed);
}
std::uint64_t ChaosProxy::cuts() const {
  return impl_->cuts.load(std::memory_order_relaxed);
}
std::uint64_t ChaosProxy::stalls() const {
  return impl_->stalls.load(std::memory_order_relaxed);
}
std::uint64_t ChaosProxy::blackholed_bytes() const {
  return impl_->blackholed.load(std::memory_order_relaxed);
}
std::uint64_t ChaosProxy::relayed_bytes() const {
  return impl_->relayed.load(std::memory_order_relaxed);
}

}  // namespace xmap::fabric
