// The fabric's reliable delivery layer.
//
// The transport may duplicate, truncate and delay frames (and a truncated
// frame fails the protocol checksum, so it simply vanishes). On top of
// that, ReliableLink provides exactly-once, in-order delivery of
// data-bearing messages with a stop-and-wait protocol: one frame in flight,
// retransmitted on an ack timeout with bounded exponential backoff and
// deterministic seeded jitter, acknowledged by seq. The receiver half is
// deliberately trivial — deliver-and-ack on the expected sequence, re-ack
// and discard below it — which is what makes the whole fabric's ordering
// argument short: within one direction of one channel, message N+1 is never
// delivered before message N, so a checkpoint frame in hand implies every
// record frame streamed before it is in hand too.
//
// ReliableLink is a pure state machine: it never blocks and never touches a
// transport — callers pump poll()/on_ack()/on_reliable() from their own
// event loops (the coordinator multiplexes many links over one inbox; a
// worker drives one link between scan callbacks). Each side of a channel
// owns one link; sender and receiver halves are independent.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "fabric/protocol.h"

namespace xmap::fabric {

// Retransmission schedule: attempt k (0-based) waits
// min(base_ms * 2^k, max_ms) plus a seeded jitter drawn uniformly from
// [0, jitter_ms) and keyed by (seed, seq, attempt) — deterministic for a
// given seed, decorrelated across frames and across links (give each link
// a distinct seed). A frame unacknowledged after max_attempts
// transmissions kills the link: the peer is unreachable.
struct BackoffPolicy {
  double base_ms = 10.0;
  double max_ms = 500.0;
  double jitter_ms = 5.0;
  int max_attempts = 12;
  std::uint64_t seed = 1;

  [[nodiscard]] double delay_ms(std::uint64_t seq, int attempt) const;
};

// Optional protocol-event observer, the tap that feeds the fabric tracer
// and the flight recorder. Callbacks run synchronously on the thread that
// pumps the link; a null observer costs one pointer test per event. The
// `attempt` argument is 0-based (0 = first transmission).
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  // A frame is going on the wire now; `backoff_ms` is the delay before the
  // *next* retransmission would fire.
  virtual void on_frame_send(const Message& msg, int attempt,
                             double backoff_ms) {
    (void)msg; (void)attempt; (void)backoff_ms;
  }
  // The in-flight frame was acknowledged after `attempts` transmissions.
  virtual void on_frame_acked(const Message& msg, int attempts) {
    (void)msg; (void)attempts;
  }
  // The link exhausted max_attempts on `msg` and latched dead.
  virtual void on_link_dead(const Message& msg, int attempts) {
    (void)msg; (void)attempts;
  }
};

class ReliableLink {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ReliableLink(BackoffPolicy policy) : policy_(policy) {}

  // Observer outlives the link; null disables the tap.
  void set_observer(LinkObserver* observer) { observer_ = observer; }

  // ---- sender half ---------------------------------------------------------

  // Queues `msg` for reliable delivery; the link stamps the sequence
  // number. FIFO: frames go out (and are delivered) in enqueue order.
  void enqueue(Message msg);

  // Drives the sender: returns the frames to put on the wire now (a first
  // transmission or a retransmission) and when to call poll() again.
  struct Wire {
    std::vector<std::string> frames;
    std::optional<Clock::time_point> next_deadline;
  };
  [[nodiscard]] Wire poll(Clock::time_point now);

  void on_ack(std::uint64_t seq);

  // True while a frame is in flight or queued behind one.
  [[nodiscard]] bool busy() const { return !pending_.empty(); }
  // The link exhausted max_attempts on a frame: the peer is gone. Latched.
  [[nodiscard]] bool dead() const { return dead_; }
  // Total retransmissions (attempts beyond each frame's first).
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }

  // ---- receiver half -------------------------------------------------------

  // Processes an inbound reliable frame: `ack` is the acknowledgement to
  // send back (always set — duplicates are re-acked, the ack may have been
  // lost), `deliver` is true exactly once per sequence number, in order.
  // Out-of-order-ahead frames (impossible under stop-and-wait unless the
  // peer misbehaves) are dropped un-acked.
  struct Inbound {
    bool deliver = false;
    std::string ack;
  };
  [[nodiscard]] Inbound on_reliable(const Message& msg);

 private:
  struct Pending {
    Message msg;
    std::string frame;  // encoded once, retransmitted verbatim
    int attempts = 0;   // transmissions so far
    Clock::time_point next_at{};  // next (re)transmission time
  };

  BackoffPolicy policy_;
  LinkObserver* observer_ = nullptr;
  std::deque<Pending> pending_;  // front is the in-flight frame
  std::uint64_t next_seq_ = 1;
  std::uint64_t expected_ = 1;  // receiver: next sequence to deliver
  std::uint64_t retransmits_ = 0;
  bool dead_ = false;
};

}  // namespace xmap::fabric
