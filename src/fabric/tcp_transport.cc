#include "fabric/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "fabric/protocol.h"

namespace xmap::fabric {
namespace {

using Clock = std::chrono::steady_clock;

std::string errno_text(int err) {
  return std::string(strerror(err)) + " (errno " + std::to_string(err) + ")";
}

// Every fabric socket: non-blocking (the I/O loops must never park in the
// kernel), close-on-exec (a forked tool must not inherit fabric fds).
bool prepare_socket(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fdflags = fcntl(fd, F_GETFD, 0);
  if (fdflags < 0 || fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) < 0) {
    return false;
  }
  return true;
}

void enable_nodelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::uint32_t read_le32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

// The frame's message-type byte (payload offset 0 = frame offset 8), for
// cheap filtering without a full decode.
std::uint8_t frame_type(const std::string& frame) {
  return frame.size() > 8 ? static_cast<std::uint8_t>(frame[8]) : 0;
}

}  // namespace

// ---- address parsing -------------------------------------------------------

bool parse_socket_address(const std::string& address, sockaddr_storage& out,
                          socklen_t& out_len, std::string& error) {
  out = sockaddr_storage{};
  std::string host;
  std::string port_text;
  if (!address.empty() && address[0] == '[') {
    const std::size_t close = address.find(']');
    if (close == std::string::npos || close + 1 >= address.size() ||
        address[close + 1] != ':') {
      error = "fabric: bad address \"" + address + "\" (want [v6]:port)";
      return false;
    }
    host = address.substr(1, close - 1);
    port_text = address.substr(close + 2);
  } else {
    const std::size_t colon = address.rfind(':');
    if (colon == std::string::npos) {
      error = "fabric: bad address \"" + address + "\" (want host:port)";
      return false;
    }
    host = address.substr(0, colon);
    port_text = address.substr(colon + 1);
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos ||
      port_text.size() > 5) {
    error = "fabric: bad port in \"" + address + "\"";
    return false;
  }
  const unsigned long port = std::stoul(port_text);
  if (port > 65535) {
    error = "fabric: bad port in \"" + address + "\"";
    return false;
  }
  auto* v4 = reinterpret_cast<sockaddr_in*>(&out);
  auto* v6 = reinterpret_cast<sockaddr_in6*>(&out);
  if (inet_pton(AF_INET, host.c_str(), &v4->sin_addr) == 1) {
    v4->sin_family = AF_INET;
    v4->sin_port = htons(static_cast<std::uint16_t>(port));
    out_len = sizeof(sockaddr_in);
    return true;
  }
  if (inet_pton(AF_INET6, host.c_str(), &v6->sin6_addr) == 1) {
    v6->sin6_family = AF_INET6;
    v6->sin6_port = htons(static_cast<std::uint16_t>(port));
    out_len = sizeof(sockaddr_in6);
    return true;
  }
  error = "fabric: bad address \"" + address +
          "\" (numeric IPv4/IPv6 host required)";
  return false;
}

std::string format_socket_address(const sockaddr_storage& ss) {
  char host[INET6_ADDRSTRLEN] = {0};
  if (ss.ss_family == AF_INET) {
    const auto* v4 = reinterpret_cast<const sockaddr_in*>(&ss);
    inet_ntop(AF_INET, &v4->sin_addr, host, sizeof host);
    return std::string(host) + ":" + std::to_string(ntohs(v4->sin_port));
  }
  if (ss.ss_family == AF_INET6) {
    const auto* v6 = reinterpret_cast<const sockaddr_in6*>(&ss);
    inet_ntop(AF_INET6, &v6->sin6_addr, host, sizeof host);
    return "[" + std::string(host) + "]:" +
           std::to_string(ntohs(v6->sin6_port));
  }
  return "?";
}

// ---- FrameReassembler ------------------------------------------------------

bool FrameReassembler::feed(std::string_view bytes) {
  if (poisoned_) return false;
  buffer_.append(bytes);
  validate_front();
  return !poisoned_;
}

void FrameReassembler::validate_front() {
  if (poisoned_) return;
  if (buffer_.size() >= 4) {
    const std::uint32_t magic = read_le32(buffer_.data());
    if (magic != kFrameMagic) {
      poisoned_ = true;
      error_ = "fabric stream: bad magic at frame boundary — stream "
               "desynchronized, dropping connection";
      buffer_.clear();
      return;
    }
  }
  if (buffer_.size() >= 8) {
    const std::uint32_t len = read_le32(buffer_.data() + 4);
    if (len > kMaxPayload) {
      poisoned_ = true;
      error_ = "fabric stream: length prefix " + std::to_string(len) +
               " exceeds the " + std::to_string(kMaxPayload) +
               "-byte cap — dropping connection";
      buffer_.clear();
    }
  }
}

std::optional<std::string> FrameReassembler::next() {
  if (poisoned_ || buffer_.size() < 8) return std::nullopt;
  const std::size_t total = kFrameOverhead + read_le32(buffer_.data() + 4);
  if (buffer_.size() < total) return std::nullopt;
  std::string frame = buffer_.substr(0, total);
  buffer_.erase(0, total);
  validate_front();
  return frame;
}

void FrameReassembler::reset() {
  buffer_.clear();
  error_.clear();
  poisoned_ = false;
}

// ---- TcpFabric -------------------------------------------------------------

struct TcpFabric::Conn {
  int fd = -1;
  int worker = -1;  // -1 until the opening kRejoin binds it
  FrameReassembler in;
  std::string out;
  std::uint64_t rx_bytes = 0;  // accumulated while unbound
};

std::unique_ptr<TcpFabric> TcpFabric::create(int workers,
                                             const std::string& listen_address,
                                             std::string& error) {
  sockaddr_storage addr{};
  socklen_t addr_len = 0;
  if (!parse_socket_address(listen_address, addr, addr_len, error)) {
    return nullptr;
  }
  const int fd = socket(addr.ss_family, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "fabric: socket() for " + listen_address + " failed: " +
            errno_text(errno);
    return nullptr;
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (!prepare_socket(fd)) {
    error = "fabric: fcntl on listener for " + listen_address + " failed: " +
            errno_text(errno);
    ::close(fd);
    return nullptr;
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), addr_len) < 0) {
    error = "fabric: bind to " + listen_address + " failed: " +
            errno_text(errno);
    ::close(fd);
    return nullptr;
  }
  if (listen(fd, 128) < 0) {
    error = "fabric: listen on " + listen_address + " failed: " +
            errno_text(errno);
    ::close(fd);
    return nullptr;
  }
  auto fabric = std::unique_ptr<TcpFabric>(new TcpFabric());
  fabric->workers_ = workers;
  fabric->listen_fd_ = fd;
  socklen_t bound_len = sizeof fabric->bound_;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&fabric->bound_),
                  &bound_len) < 0) {
    error = "fabric: getsockname on " + listen_address + " failed: " +
            errno_text(errno);
    return nullptr;
  }
  fabric->by_worker_.assign(static_cast<std::size_t>(workers), nullptr);
  fabric->banned_.assign(static_cast<std::size_t>(workers), false);
  fabric->seen_.assign(static_cast<std::size_t>(workers), false);
  fabric->counters_.assign(static_cast<std::size_t>(workers), LinkCounters{});
  return fabric;
}

TcpFabric::~TcpFabric() {
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::string TcpFabric::bound_address() const {
  return format_socket_address(bound_);
}

std::uint16_t TcpFabric::port() const {
  if (bound_.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&bound_)->sin6_port);
  }
  return ntohs(reinterpret_cast<const sockaddr_in*>(&bound_)->sin_port);
}

int TcpFabric::workers() const { return workers_; }

void TcpFabric::kill_conn(Conn& conn, bool notify) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  if (conn.worker >= 0) {
    if (by_worker_[static_cast<std::size_t>(conn.worker)] == &conn) {
      by_worker_[static_cast<std::size_t>(conn.worker)] = nullptr;
    }
    if (notify) {
      CoordRecv ev;
      ev.status = RecvStatus::kClosed;
      ev.worker = conn.worker;
      ready_.push_back(std::move(ev));
    }
    conn.worker = -1;
  }
}

void TcpFabric::bind_conn(Conn& conn, const std::string& frame) {
  // The opening frame of every connection must be a decodable kRejoin: it
  // is the only way an anonymous stream gets a worker identity. Anything
  // else is a stranger — hang up.
  auto decoded = decode_frame(frame);
  if (!decoded.message || decoded.message->type != MsgType::kRejoin) {
    kill_conn(conn, /*notify=*/false);
    return;
  }
  const std::uint32_t w = decoded.message->worker;
  if (w >= static_cast<std::uint32_t>(workers_) || banned_[w]) {
    kill_conn(conn, /*notify=*/false);
    return;
  }
  if (by_worker_[w] != nullptr && by_worker_[w] != &conn) {
    // A replacement connection supersedes a half-open predecessor the
    // kernel never reported dead; the coordinator sees the old link close
    // before the new link's handshake.
    kill_conn(*by_worker_[w], /*notify=*/true);
  }
  conn.worker = static_cast<int>(w);
  by_worker_[w] = &conn;
  counters_[w].bytes_received += conn.rx_bytes;
  conn.rx_bytes = 0;
  if (seen_[w]) ++counters_[w].reconnects;
  seen_[w] = true;
  CoordRecv ev;
  ev.status = RecvStatus::kFrame;
  ev.worker = static_cast<int>(w);
  ev.frame = frame;
  ready_.push_back(std::move(ev));
}

void TcpFabric::read_conn(Conn& conn) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      if (conn.worker >= 0) {
        counters_[static_cast<std::size_t>(conn.worker)].bytes_received +=
            static_cast<std::uint64_t>(n);
      } else {
        conn.rx_bytes += static_cast<std::uint64_t>(n);
      }
      if (!conn.in.feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
        // Poisoned stream: no resync is possible. Close; a live worker
        // reconnects with a fresh stream and the handshake.
        kill_conn(conn, /*notify=*/true);
        return;
      }
      while (auto frame = conn.in.next()) {
        if (conn.worker < 0) {
          bind_conn(conn, *frame);
          if (conn.fd < 0) return;  // stranger hung up
        } else {
          CoordRecv ev;
          ev.status = RecvStatus::kFrame;
          ev.worker = conn.worker;
          ev.frame = std::move(*frame);
          ready_.push_back(std::move(ev));
        }
      }
      continue;
    }
    if (n == 0) {  // orderly FIN
      kill_conn(conn, /*notify=*/true);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    // ECONNRESET and friends: the peer is gone mid-stream.
    kill_conn(conn, /*notify=*/true);
    return;
  }
}

void TcpFabric::flush_conn(Conn& conn) {
  while (!conn.out.empty()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE here, not kill
    // the process with SIGPIPE.
    const ssize_t n =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      if (conn.worker >= 0) {
        counters_[static_cast<std::size_t>(conn.worker)].bytes_sent +=
            static_cast<std::uint64_t>(n);
      }
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    kill_conn(conn, /*notify=*/true);
    return;
  }
}

void TcpFabric::service_io(int poll_timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  if (listen_fd_ >= 0) {
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  }
  std::vector<Conn*> polled;
  for (auto& conn : conns_) {
    if (conn->fd < 0) continue;
    short events = POLLIN;
    if (!conn->out.empty()) events |= POLLOUT;
    fds.push_back(pollfd{conn->fd, events, 0});
    polled.push_back(conn.get());
  }
  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), poll_timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return;
  std::size_t i = 0;
  if (listen_fd_ >= 0) {
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!prepare_socket(fd)) {
          ::close(fd);
          continue;
        }
        int one = 1;
        (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        enable_nodelay(fd);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conns_.push_back(std::move(conn));
      }
    }
    i = 1;
  }
  for (std::size_t c = 0; c < polled.size(); ++c, ++i) {
    Conn& conn = *polled[c];
    if (conn.fd < 0) continue;  // killed by an earlier event this pass
    const short re = fds[i].revents;
    if ((re & POLLOUT) != 0) flush_conn(conn);
    if (conn.fd >= 0 && (re & (POLLIN | POLLHUP | POLLERR)) != 0) {
      read_conn(conn);
    }
  }
  // Reap connections whose fd died; pointers into conns_ are only held
  // within one service_io pass.
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::unique_ptr<Conn>& c) {
                                return c->fd < 0;
                              }),
               conns_.end());
}

TcpFabric::CoordRecv TcpFabric::recv_any(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!ready_.empty()) {
      CoordRecv out = std::move(ready_.front());
      ready_.pop_front();
      return out;
    }
    const auto now = Clock::now();
    if (now >= deadline) return {};
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    service_io(static_cast<int>(std::max<long long>(remaining, 1)));
  }
}

bool TcpFabric::send_to(int worker, std::string frame) {
  if (closed_all_ || worker < 0 || worker >= workers_) return false;
  if (banned_[static_cast<std::size_t>(worker)]) return false;
  Conn* conn = by_worker_[static_cast<std::size_t>(worker)];
  if (conn == nullptr) {
    // Disconnected but not fenced: the frame is dropped; the reliable
    // channel retransmits onto the rejoined stream.
    return true;
  }
  conn->out.append(frame);
  flush_conn(*conn);
  return true;
}

void TcpFabric::drop_worker(int worker) {
  if (worker < 0 || worker >= workers_) return;
  banned_[static_cast<std::size_t>(worker)] = true;
  Conn* conn = by_worker_[static_cast<std::size_t>(worker)];
  if (conn == nullptr) return;
  // Best-effort flush so a queued kRejoinRefused reaches the zombie before
  // the hangup — its diagnostic is the worker's only explanation.
  const auto deadline = Clock::now() + std::chrono::milliseconds(200);
  while (!conn->out.empty() && conn->fd >= 0 && Clock::now() < deadline) {
    pollfd pfd{conn->fd, POLLOUT, 0};
    if (::poll(&pfd, 1, 10) > 0) flush_conn(*conn);
  }
  kill_conn(*conn, /*notify=*/false);
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::unique_ptr<Conn>& c) {
                                return c->fd < 0;
                              }),
               conns_.end());
}

void TcpFabric::close_all() {
  closed_all_ = true;
  const auto deadline = Clock::now() + std::chrono::milliseconds(500);
  for (auto& conn : conns_) {
    while (!conn->out.empty() && conn->fd >= 0 && Clock::now() < deadline) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 10) > 0) flush_conn(*conn);
    }
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  conns_.clear();
  std::fill(by_worker_.begin(), by_worker_.end(), nullptr);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

LinkCounters TcpFabric::link_counters(int worker) const {
  if (worker < 0 || worker >= workers_) return {};
  return counters_[static_cast<std::size_t>(worker)];
}

// ---- TcpWorkerTransport ----------------------------------------------------

TcpWorkerTransport::TcpWorkerTransport(TcpWorkerOptions options)
    : opt_(std::move(options)) {}

std::unique_ptr<TcpWorkerTransport> TcpWorkerTransport::create(
    TcpWorkerOptions options, std::string& error) {
  auto transport =
      std::unique_ptr<TcpWorkerTransport>(new TcpWorkerTransport(options));
  if (!parse_socket_address(transport->opt_.connect_address, transport->addr_,
                            transport->addr_len_, error)) {
    return nullptr;
  }
  std::lock_guard lock{transport->mu_};
  if (!transport->connect_locked(error)) return nullptr;
  return transport;
}

TcpWorkerTransport::~TcpWorkerTransport() {
  std::lock_guard lock{mu_};
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpWorkerTransport::connect_locked(std::string& error) {
  const int fd = socket(addr_.ss_family, SOCK_STREAM, 0);
  if (fd < 0) {
    error = "fabric: socket() for " + opt_.connect_address + " failed: " +
            errno_text(errno);
    return false;
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (!prepare_socket(fd)) {
    error = "fabric: fcntl for " + opt_.connect_address + " failed: " +
            errno_text(errno);
    ::close(fd);
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr_), addr_len_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, opt_.connect_timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      error = "fabric: connect to " + opt_.connect_address +
              " timed out after " + std::to_string(opt_.connect_timeout_ms) +
              "ms";
      ::close(fd);
      return false;
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (rc < 0 ||
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
        soerr != 0) {
      error = "fabric: connect to " + opt_.connect_address + " failed: " +
              errno_text(soerr != 0 ? soerr : errno);
      ::close(fd);
      return false;
    }
  } else if (rc < 0) {
    error = "fabric: connect to " + opt_.connect_address + " failed: " +
            errno_text(errno);
    ::close(fd);
    return false;
  }
  enable_nodelay(fd);
  fd_ = fd;
  in_.reset();
  out_.clear();
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  queue_rejoin_locked();
  flush_locked();
  return true;
}

void TcpWorkerTransport::queue_rejoin_locked() {
  Message rejoin;
  rejoin.type = MsgType::kRejoin;
  rejoin.worker = static_cast<std::uint32_t>(opt_.worker);
  rejoin.fingerprint = opt_.fingerprint;
  rejoin.has_lease = lease_held_;
  rejoin.shard = lease_shard_;
  rejoin.epoch = lease_epoch_;
  out_.append(encode_frame(rejoin));
}

void TcpWorkerTransport::disconnect_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A partially-written frame must not leak onto the next stream — the
  // rejoined stream starts at a frame boundary; the reliable channel
  // re-sends whole frames.
  out_.clear();
  in_.reset();
  const auto now = Clock::now();
  down_since_ = now;
  next_attempt_ = now + std::chrono::milliseconds(opt_.reconnect_delay_ms);
  if (opt_.reconnect_window_ms <= 0) closed_ = true;
}

void TcpWorkerTransport::ensure_connected_locked() {
  if (fd_ >= 0 || closed_ || refused_) return;
  const auto now = Clock::now();
  if (now - down_since_ >
      std::chrono::milliseconds(opt_.reconnect_window_ms)) {
    closed_ = true;
    return;
  }
  if (now < next_attempt_) return;
  std::string error;
  if (!connect_locked(error)) {
    next_attempt_ =
        Clock::now() + std::chrono::milliseconds(opt_.reconnect_delay_ms);
  }
}

void TcpWorkerTransport::flush_locked() {
  while (fd_ >= 0 && !out_.empty()) {
    const ssize_t n = ::send(fd_, out_.data(), out_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      out_.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    disconnect_locked();
    return;
  }
}

void TcpWorkerTransport::pump_in_locked() {
  char buf[65536];
  while (fd_ >= 0) {
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      if (!in_.feed(std::string_view(buf, static_cast<std::size_t>(n)))) {
        disconnect_locked();
        return;
      }
      while (auto frame = in_.next()) {
        const std::uint8_t type = frame_type(*frame);
        if (type == static_cast<std::uint8_t>(MsgType::kRejoinOk)) {
          continue;  // handshake settled; nothing for the layers above
        }
        if (type == static_cast<std::uint8_t>(MsgType::kRejoinRefused)) {
          auto decoded = decode_frame(*frame);
          refusal_ = decoded.message ? decoded.message->diagnostic
                                     : "rejoin refused";
          refused_ = true;
          if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
          }
          return;
        }
        pending_.push_back(std::move(*frame));
      }
      continue;
    }
    if (n == 0) {
      disconnect_locked();
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    disconnect_locked();
    return;
  }
}

bool TcpWorkerTransport::send(std::string frame) {
  std::lock_guard lock{mu_};
  if (closed_ || refused_) return false;
  if (fd_ < 0) {
    ensure_connected_locked();
    if (closed_ || refused_) return false;
    if (fd_ < 0) {
      // Disconnected inside the reconnect window: the frame is dropped;
      // heartbeats are unreliable by contract and the stop-and-wait
      // channel retransmits everything else after the rejoin.
      return true;
    }
  }
  out_.append(frame);
  flush_locked();
  return true;
}

Transport::RecvResult TcpWorkerTransport::recv(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int fd = -1;
    bool want_out = false;
    {
      std::lock_guard lock{mu_};
      if (!pending_.empty()) {
        RecvResult out;
        out.status = RecvStatus::kFrame;
        out.frame = std::move(pending_.front());
        pending_.pop_front();
        return out;
      }
      if (closed_ || refused_) return {RecvStatus::kClosed, {}};
      ensure_connected_locked();
      if (closed_ || refused_) return {RecvStatus::kClosed, {}};
      fd = fd_;
      want_out = !out_.empty();
    }
    const auto now = Clock::now();
    if (now >= deadline) return {};
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    // Short unlocked slices on an fd snapshot: a concurrent send() or
    // close() is never starved, and a stale snapshot costs one harmless
    // 5ms poll before the re-check.
    const long long remaining_ms = std::max<long long>(remaining, 1);
    const int slice = static_cast<int>(std::min<long long>(remaining_ms, 5));
    if (fd < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<long long>(remaining_ms, 2)));
      continue;
    }
    pollfd pfd{fd, static_cast<short>(POLLIN | (want_out ? POLLOUT : 0)), 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, slice);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) continue;
    std::lock_guard lock{mu_};
    if (fd_ != fd) continue;
    if ((pfd.revents & POLLOUT) != 0) flush_locked();
    if (fd_ == fd && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      pump_in_locked();
    }
  }
}

void TcpWorkerTransport::close() {
  std::lock_guard lock{mu_};
  if (closed_) return;
  closed_ = true;
  if (fd_ < 0) return;
  // Drain queued frames (final acks, a Refuse) briefly, then hang up.
  const auto deadline = Clock::now() + std::chrono::milliseconds(200);
  while (!out_.empty() && fd_ >= 0 && Clock::now() < deadline) {
    pollfd pfd{fd_, POLLOUT, 0};
    if (::poll(&pfd, 1, 10) > 0) flush_locked();
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpWorkerTransport::note_lease(std::uint32_t shard, std::uint32_t epoch,
                                    bool held) {
  std::lock_guard lock{mu_};
  lease_shard_ = shard;
  lease_epoch_ = epoch;
  lease_held_ = held;
}

std::uint64_t TcpWorkerTransport::reconnects() const {
  std::lock_guard lock{mu_};
  return reconnects_;
}

std::string TcpWorkerTransport::refusal() const {
  std::lock_guard lock{mu_};
  return refusal_;
}

}  // namespace xmap::fabric
