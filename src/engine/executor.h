// The parallel scan executor.
//
// ZMap/XMap's send/recv/monitor thread architecture, adapted to the
// simulated substrate. The key property making the scan embarrassingly
// parallel is that both halves are deterministic and stateless:
//
//   * the world is a pure function of (specs, BuildConfig) — every worker
//     thread rebuilds an identical, thread-confined sim::Network replica;
//   * the permutation is shardable — worker w of N walks shard
//     (machine_shard*N + w) of (machine_shards*N), so the workers' target
//     sets partition the permutation exactly (no gaps, no double-probing).
//
// Each worker runs its own SimChannelScanner to completion and pushes
// validated responses through a bounded MPSC queue; the main thread drains
// the queue, orders the records deterministically, and merges them into one
// ResultCollector + summed ScanStats. A monitor thread renders live status
// lines from shared atomic counters (see telemetry.h).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "engine/telemetry.h"
#include "obs/config.h"
#include "obs/trace.h"
#include "topology/builder.h"
#include "xmap/results.h"
#include "xmap/scanner.h"

namespace xmap::engine {

struct EngineConfig {
  // The world every worker replicates (resolve with topo::resolve_world).
  std::vector<topo::IspSpec> world_specs;
  std::vector<topo::VendorProfile> vendors;
  topo::BuildConfig build;
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");

  // The probing technique; required, not owned, shared read-only by all
  // workers (modules are immutable — see probe_factory.h).
  const scan::ProbeModule* module = nullptr;

  // Base scan parameters. `scan.shard`/`scan.shards` express the
  // machine-level partition (multi-instance scanning); worker sub-shards
  // compose underneath it. `scan.max_probes` is a global cap, distributed
  // across workers. `scan.targets` empty = scan every block of the world.
  scan::ScanConfig scan;

  // Fault-injection plan installed into every worker's network replica
  // (plan.any() == false leaves the substrate pristine). Every CPE/UE
  // device node is a silent-window candidate.
  sim::FaultPlan faults;

  int threads = 1;  // worker count (1..kMaxWorkers)

  // Result-queue bound: workers block (backpressure) when the collector
  // falls this many responses behind.
  std::size_t queue_capacity = 4096;

  // Passed through to the merged ResultCollector (see results.h).
  std::uint64_t alias_threshold = 16;

  // Live telemetry; nullptr disables the monitor thread entirely.
  std::ostream* status_out = nullptr;
  int status_interval_ms = 250;

  // Observability: trace level, metrics registry, stage profiling. Each
  // worker gets its own thread-confined TraceBuffer / MetricsShard /
  // StageProfile; the engine merges them deterministically after join (see
  // EngineResult::trace / metrics_snapshot / stage_profile).
  obs::ObsConfig obs;
};

inline constexpr int kMaxWorkers = 64;

// One validated response as it crossed the queue. `when` is the worker's
// sim-clock arrival time (deterministic per worker).
struct EngineRecord {
  scan::ProbeResponse response;
  sim::SimTime when = 0;
  int worker = 0;
};

struct WorkerReport {
  scan::ScanStats stats;
  sim::SimTime sim_duration = 0;  // worker's final sim-clock reading
  // Failure containment: a worker thread that throws is reported here
  // (partial stats retained) instead of taking the process down.
  bool failed = false;
  std::string error;
};

struct EngineResult {
  bool ok = false;
  std::string error;  // set when !ok (bad config)

  // All validated responses, deterministically ordered (worker sim time,
  // then worker id, then responder/probe) — byte-stable across runs.
  std::vector<EngineRecord> records;

  scan::ResultCollector collector;  // merged union of all workers
  scan::ScanStats stats;            // per-worker stats, summed
  std::vector<WorkerReport> workers;
  int failed_workers = 0;  // workers that threw (see WorkerReport::error)
  double wall_seconds = 0;

  // The JSON metrics snapshot (also written to status_out when set).
  std::string metrics;

  // Observability outputs (populated per EngineConfig::obs; empty when
  // off). `trace` and `metrics_snapshot` carry only sim-clock /
  // partition-invariant data, so their serialized forms are byte-identical
  // across --threads values; `stage_profile` is wall clock by design.
  std::vector<obs::TraceEvent> trace;
  obs::MetricsSnapshot metrics_snapshot;
  obs::StageProfile stage_profile;
};

// Runs the scan across config.threads workers and blocks until every
// worker finished and results are merged.
[[nodiscard]] EngineResult run_parallel_scan(const EngineConfig& config);

}  // namespace xmap::engine
