// The parallel scan executor.
//
// ZMap/XMap's send/recv/monitor thread architecture, adapted to the
// simulated substrate. The key property making the scan embarrassingly
// parallel is that both halves are deterministic and stateless:
//
//   * the world is a pure function of (specs, BuildConfig) — every worker
//     thread rebuilds an identical, thread-confined sim::Network replica;
//   * the permutation is shardable — worker w of N walks shard
//     (machine_shard*N + w) of (machine_shards*N), so the workers' target
//     sets partition the permutation exactly (no gaps, no double-probing).
//
// Each worker runs its own SimChannelScanner to completion and pushes
// validated responses through a bounded MPSC queue; the main thread drains
// the queue, orders the records deterministically, and merges them into one
// ResultCollector + summed ScanStats. A monitor thread renders live status
// lines from shared atomic counters (see telemetry.h).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "engine/telemetry.h"
#include "obs/config.h"
#include "obs/trace.h"
#include "recover/state.h"
#include "topology/builder.h"
#include "xmap/results.h"
#include "xmap/scanner.h"

namespace xmap::engine {

struct EngineConfig {
  // The world every worker replicates (resolve with topo::resolve_world).
  std::vector<topo::IspSpec> world_specs;
  std::vector<topo::VendorProfile> vendors;
  topo::BuildConfig build;
  net::Ipv6Prefix vantage = *net::Ipv6Prefix::parse("2001:500::/48");

  // The probing technique; required, not owned, shared read-only by all
  // workers (modules are immutable — see probe_factory.h).
  const scan::ProbeModule* module = nullptr;

  // Base scan parameters. `scan.shard`/`scan.shards` express the
  // machine-level partition (multi-instance scanning); worker sub-shards
  // compose underneath it. `scan.max_probes` is a global target budget,
  // enforced as a cut at a fixed permutation slot shared by all workers so
  // capped scans stay byte-identical across --threads values.
  // `scan.targets` empty = scan every block of the world.
  scan::ScanConfig scan;

  // Fault-injection plan installed into every worker's network replica
  // (plan.any() == false leaves the substrate pristine). Every CPE/UE
  // device node is a silent-window candidate.
  sim::FaultPlan faults;

  int threads = 1;  // worker count (1..kMaxWorkers)

  // Result-queue bound: workers block (backpressure) when the collector
  // falls this many responses behind.
  std::size_t queue_capacity = 4096;

  // Passed through to the merged ResultCollector (see results.h).
  std::uint64_t alias_threshold = 16;

  // Live telemetry; nullptr disables the monitor thread entirely.
  std::ostream* status_out = nullptr;
  int status_interval_ms = 250;

  // Observability: trace level, metrics registry, stage profiling. Each
  // worker gets its own thread-confined TraceBuffer / MetricsShard /
  // StageProfile; the engine merges them deterministically after join (see
  // EngineResult::trace / metrics_snapshot / stage_profile).
  obs::ObsConfig obs;

  // Checkpoint/resume (see src/recover/). `resume` seeds the run from a
  // loaded checkpoint: worker iterators fast-forward to their cursors, and
  // the checkpoint's records/stats/trace/metrics merge with this run's so
  // the final artifacts equal an uninterrupted run's. The engine trusts
  // the caller to have validated the fingerprint (threads must match
  // cursors.size()).
  const recover::CheckpointState* resume = nullptr;
  // Periodic mid-flight checkpointing: every `checkpoint_interval_targets`
  // drawn targets each worker publishes a stable cursor; when every worker
  // has published, the collector assembles a non-quiescent CheckpointState
  // (cursors + records filtered to completed probe lifecycles + live
  // stats) and hands it to `checkpoint_sink` (the CLI stamps the
  // fingerprint and writes the file). 0 = off.
  std::uint64_t checkpoint_interval_targets = 0;
  std::function<void(recover::CheckpointState&)> checkpoint_sink;
  // Graceful shutdown: polled by every worker; non-zero stops fresh sends
  // at each worker's frontier, drains in-flight copies, and reports
  // EngineResult::interrupted with per-worker cursors.
  const std::atomic<int>* shutdown_flag = nullptr;
  // Deterministic interruption test hook (see
  // ScanConfig::shutdown_at_raw_slot).
  std::uint64_t shutdown_at_raw_slot = scan::kNoBudgetCut;
  // Where checkpoints are written (display only — surfaces as
  // "checkpoint_file" in the telemetry JSON; the sink does the writing).
  std::string checkpoint_file;
};

inline constexpr int kMaxWorkers = 64;

// One validated response as it crossed the queue. `when` is the worker's
// sim-clock arrival time (deterministic per worker); `raw_slot` is the
// global permutation slot of the probe that elicited it (checkpoint
// provenance).
struct EngineRecord {
  scan::ProbeResponse response;
  sim::SimTime when = 0;
  int worker = 0;
  std::uint64_t raw_slot = 0;
};

struct WorkerReport {
  scan::ScanStats stats;
  sim::SimTime sim_duration = 0;  // worker's final sim-clock reading
  // Failure containment: a worker thread that throws is reported here
  // (partial stats retained) instead of taking the process down.
  bool failed = false;
  std::string error;
  // The worker's final permutation position and whether it stopped early
  // on a shutdown request (quiescent by then — in-flight copies drained).
  scan::ScanCursor cursor;
  bool interrupted = false;
};

struct EngineResult {
  bool ok = false;
  std::string error;  // set when !ok (bad config)

  // All validated responses, deterministically ordered (worker sim time,
  // then worker id, then responder/probe) — byte-stable across runs.
  std::vector<EngineRecord> records;

  scan::ResultCollector collector;  // merged union of all workers
  scan::ScanStats stats;            // per-worker stats, summed
  std::vector<WorkerReport> workers;
  int failed_workers = 0;  // workers that threw (see WorkerReport::error)
  double wall_seconds = 0;

  // The JSON metrics snapshot (also written to status_out when set).
  std::string metrics;

  // Observability outputs (populated per EngineConfig::obs; empty when
  // off). `trace` and `metrics_snapshot` carry only sim-clock /
  // partition-invariant data, so their serialized forms are byte-identical
  // across --threads values; `stage_profile` is wall clock by design.
  std::vector<obs::TraceEvent> trace;
  obs::MetricsSnapshot metrics_snapshot;
  obs::StageProfile stage_profile;

  // Graceful-shutdown outcome: true when any worker stopped on a shutdown
  // request. The run is quiescent and resumable from `cursors` (one per
  // worker; workers that finished naturally carry their end-of-walk
  // cursor, which fast-forwards to "nothing left" on resume).
  bool interrupted = false;
  bool resumed = false;  // this run was seeded from a checkpoint
  std::vector<scan::ScanCursor> cursors;
};

// Runs the scan across config.threads workers and blocks until every
// worker finished and results are merged.
[[nodiscard]] EngineResult run_parallel_scan(const EngineConfig& config);

}  // namespace xmap::engine
