// Probe-module construction from CLI-style selector strings.
//
// One strict parser shared by tools/xmap_sim and the parallel engine:
// "icmp_echo[:<hoplimit>]", "tcp_syn:<port>", "udp_dns", "udp_ntp".
// Malformed suffixes ("icmp_echo:abc", "tcp_syn:") are rejected with a
// descriptive error instead of silently probing hop limit 0 / port 0.
//
// The returned module is immutable and safe to share across worker
// threads (make_probe/classify are const and stateless).
#pragma once

#include <memory>
#include <string>

#include "xmap/probe_module.h"

namespace xmap::engine {

struct ProbeModuleResult {
  std::unique_ptr<scan::ProbeModule> module;  // null on error
  std::string error;                          // set on error
};

[[nodiscard]] ProbeModuleResult make_probe_module(const std::string& selector);

}  // namespace xmap::engine
