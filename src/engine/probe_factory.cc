#include "engine/probe_factory.h"

#include <charconv>

#include "services/dns_codec.h"

namespace xmap::engine {
namespace {

ProbeModuleResult fail(std::string message) {
  return ProbeModuleResult{nullptr, std::move(message)};
}

// Strict integer suffix parse: the whole suffix must be digits and the
// value must land in [lo, hi].
bool parse_suffix(std::string_view text, long lo, long hi, long& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size() && out >= lo &&
         out <= hi;
}

}  // namespace

ProbeModuleResult make_probe_module(const std::string& selector) {
  if (selector == "icmp_echo") {
    return {std::make_unique<scan::IcmpEchoProbe>(64), {}};
  }
  if (selector.rfind("icmp_echo:", 0) == 0) {
    long hop_limit = 0;
    if (!parse_suffix(std::string_view{selector}.substr(10), 1, 255,
                      hop_limit)) {
      return fail("probe module '" + selector +
                  "': hop limit must be an integer in 1..255");
    }
    return {std::make_unique<scan::IcmpEchoProbe>(
                static_cast<std::uint8_t>(hop_limit)),
            {}};
  }
  if (selector.rfind("tcp_syn:", 0) == 0) {
    long port = 0;
    if (!parse_suffix(std::string_view{selector}.substr(8), 1, 65535, port)) {
      return fail("probe module '" + selector +
                  "': port must be an integer in 1..65535");
    }
    return {std::make_unique<scan::TcpSynProbe>(
                static_cast<std::uint16_t>(port)),
            {}};
  }
  if (selector == "udp_dns") {
    const auto wire = svc::make_version_query(0x4242).encode();
    return {std::make_unique<scan::UdpProbe>(
                53, pkt::Bytes(wire.begin(), wire.end()), "udp_dns"),
            {}};
  }
  if (selector == "udp_ntp") {
    pkt::Bytes ntp(48, 0);
    ntp[0] = (4 << 3) | 3;  // NTPv4, client mode
    return {std::make_unique<scan::UdpProbe>(123, std::move(ntp), "udp_ntp"),
            {}};
  }
  if (selector == "traceroute") {
    return fail(
        "probe module 'traceroute' is a hop-walking runner, not a bulk "
        "probe module");
  }
  return fail("unknown probe module '" + selector + "'");
}

}  // namespace xmap::engine
