#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>

#include "engine/bounded_queue.h"

namespace xmap::engine {
namespace {

EngineResult fail(std::string message) {
  EngineResult result;
  result.ok = false;
  result.error = std::move(message);
  return result;
}

// Default targets (every block of the world). Window placement is a pure
// function of the spec, so this costs nothing — no throwaway world build on
// the main thread (which would be a serial prefix as long as one worker's
// whole replica build).
std::vector<scan::TargetSpec> default_targets(const EngineConfig& config) {
  std::vector<scan::TargetSpec> targets;
  targets.reserve(config.world_specs.size());
  for (const auto& spec : config.world_specs) {
    const topo::ScanWindow window =
        topo::scan_window(spec, config.build.window_bits);
    targets.push_back(scan::TargetSpec{window.scan_base, window.window_lo,
                                       window.window_hi});
  }
  return targets;
}

std::uint64_t expected_targets(const std::vector<scan::TargetSpec>& targets,
                               int machine_shards) {
  net::Uint128 total{0};
  for (const auto& spec : targets) total = total + spec.count();
  const std::uint64_t capped =
      total.fits_u64() ? total.to_u64() : ~std::uint64_t{0};
  return capped / static_cast<std::uint64_t>(machine_shards);
}

}  // namespace

EngineResult run_parallel_scan(const EngineConfig& config) {
  if (config.module == nullptr) return fail("engine: no probe module");
  if (config.threads < 1 || config.threads > kMaxWorkers) {
    return fail("engine: threads must be in 1.." +
                std::to_string(kMaxWorkers));
  }
  if (config.scan.shards < 1 || config.scan.shard < 0 ||
      config.scan.shard >= config.scan.shards) {
    return fail("engine: invalid machine shard configuration");
  }
  if (config.world_specs.empty()) return fail("engine: empty world spec");

  const auto wall_start = std::chrono::steady_clock::now();
  const int threads = config.threads;

  scan::ScanConfig base = config.scan;
  if (base.targets.empty()) base.targets = default_targets(config);

  scan::ScanProgress progress;
  MonitorOptions monitor_options;
  monitor_options.out = config.status_out;
  monitor_options.interval_ms = config.status_interval_ms;
  monitor_options.expected_targets =
      expected_targets(base.targets, config.scan.shards);
  monitor_options.workers = threads;
  Monitor monitor{progress, monitor_options};

  BoundedQueue<EngineRecord> queue{config.queue_capacity};
  std::vector<WorkerReport> reports(static_cast<std::size_t>(threads));
  std::atomic<int> active{threads};

  const auto worker_body = [&](int w) {
    // Thread-confined deterministic replica: every worker builds the same
    // world from the same specs and seed, then walks its own sub-shard of
    // the permutation. No state is shared with other workers except the
    // result queue and the progress atomics.
    sim::Network net{config.build.seed};
    auto internet = topo::build_internet(net, config.world_specs,
                                         config.vendors, config.build);
    if (config.faults.any()) {
      sim::FaultInjector* injector = net.install_faults(config.faults);
      // Every periphery device is a silent-window candidate; the injector
      // picks the configured fraction with a keyed per-node coin, so the
      // selection is identical in every replica.
      std::vector<sim::NodeId> candidates;
      for (const auto& isp : internet.isps) {
        for (const auto& device : isp.devices) {
          candidates.push_back(device.node);
        }
      }
      injector->choose_silent(candidates);
    }
    scan::ScanConfig wcfg = base;
    wcfg.shard = config.scan.shard * threads + w;
    wcfg.shards = config.scan.shards * threads;
    if (base.max_probes != 0) {
      // Distribute the global cap; shares sum exactly to the cap.
      const std::uint64_t n = static_cast<std::uint64_t>(threads);
      const std::uint64_t uw = static_cast<std::uint64_t>(w);
      wcfg.max_probes = base.max_probes / n + (uw < base.max_probes % n);
      if (wcfg.max_probes == 0) {
        // Zero share means "send nothing", but 0 encodes "unlimited" in
        // ScanConfig — skip the scan outright.
        reports[static_cast<std::size_t>(w)].sim_duration = 0;
        return;
      }
    }

    auto* scanner =
        net.make_node<scan::SimChannelScanner>(wcfg, *config.module);
    const int iface =
        topo::attach_vantage(net, internet, scanner, config.vantage);
    scanner->set_iface(iface);
    scanner->set_progress(&progress);
    scanner->on_response(
        [&queue, w](const scan::ProbeResponse& r, sim::SimTime when) {
          queue.push(EngineRecord{r, when, w});
        });
    scanner->start();
    net.run();

    WorkerReport& report = reports[static_cast<std::size_t>(w)];
    report.stats = scanner->stats();
    report.sim_duration = net.now();
  };

  const auto worker_main = [&](int w) {
    // Failure containment: a throwing worker must neither std::terminate
    // the process nor leave the collector blocked on an open queue. The
    // error is reported structurally; surviving workers' results stand.
    try {
      worker_body(w);
    } catch (const std::exception& e) {
      WorkerReport& report = reports[static_cast<std::size_t>(w)];
      report.failed = true;
      report.error = e.what();
      progress.workers_failed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      WorkerReport& report = reports[static_cast<std::size_t>(w)];
      report.failed = true;
      report.error = "unknown exception";
      progress.workers_failed.fetch_add(1, std::memory_order_relaxed);
    }
    progress.workers_done.fetch_add(1, std::memory_order_relaxed);
    // The last worker out closes the queue so the collector loop drains
    // the tail and terminates.
    if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) queue.close();
  };

  monitor.start();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) workers.emplace_back(worker_main, w);

  // Collector: the main thread is ZMap's recv thread — single consumer of
  // the MPSC queue.
  EngineResult result;
  result.collector = scan::ResultCollector{config.alias_threshold};
  while (auto record = queue.pop()) {
    result.records.push_back(std::move(*record));
  }
  for (auto& t : workers) t.join();
  monitor.stop();

  // Deterministic merge order: worker sim clocks are deterministic, so
  // sorting by (sim time, worker, responder, probe) yields a byte-stable
  // record stream regardless of real-time interleaving.
  std::sort(result.records.begin(), result.records.end(),
            [](const EngineRecord& a, const EngineRecord& b) {
              return std::tuple(a.when, a.worker, a.response.responder,
                                a.response.probe_dst,
                                static_cast<int>(a.response.kind)) <
                     std::tuple(b.when, b.worker, b.response.responder,
                                b.response.probe_dst,
                                static_cast<int>(b.response.kind));
            });
  for (const auto& record : result.records) {
    result.collector.add(record.response);
  }

  MetricsSummary summary;
  summary.threads = threads;
  for (const auto& report : reports) {
    result.stats += report.stats;
    summary.per_worker.push_back(report.stats);
    summary.worker_errors.push_back(report.error);
    if (report.failed) ++result.failed_workers;
    summary.sim_duration_ns =
        std::max<std::uint64_t>(summary.sim_duration_ns, report.sim_duration);
  }
  summary.failed_workers = result.failed_workers;
  result.workers = std::move(reports);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  summary.wall_seconds = result.wall_seconds;
  summary.merged = result.stats;
  summary.unique_responders = result.collector.unique_responders();
  summary.aliased_responders = result.collector.aliased().size();
  result.metrics = metrics_json(summary);
  if (config.status_out != nullptr) {
    *config.status_out << result.metrics << '\n' << std::flush;
  }
  result.ok = true;
  return result;
}

}  // namespace xmap::engine
