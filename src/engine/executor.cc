#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>

#include "engine/bounded_queue.h"
#include "netbase/pool.h"

namespace xmap::engine {
namespace {

EngineResult fail(std::string message) {
  EngineResult result;
  result.ok = false;
  result.error = std::move(message);
  return result;
}

// Worker-local record batch size. Small enough that a batch never exceeds
// the queue's backpressure bound (queue_capacity defaults to 4096), large
// enough to amortize the queue mutex to noise.
constexpr std::size_t kRecordFlushThreshold = 256;

// Default targets (every block of the world). Window placement is a pure
// function of the spec, so this costs nothing — no throwaway world build on
// the main thread (which would be a serial prefix as long as one worker's
// whole replica build).
std::vector<scan::TargetSpec> default_targets(const EngineConfig& config) {
  std::vector<scan::TargetSpec> targets;
  targets.reserve(config.world_specs.size());
  for (const auto& spec : config.world_specs) {
    const topo::ScanWindow window =
        topo::scan_window(spec, config.build.window_bits);
    targets.push_back(scan::TargetSpec{window.scan_base, window.window_lo,
                                       window.window_hi});
  }
  return targets;
}

std::uint64_t expected_targets(const std::vector<scan::TargetSpec>& targets,
                               int machine_shards) {
  net::Uint128 total{0};
  for (const auto& spec : targets) total = total + spec.count();
  const std::uint64_t capped =
      total.fits_u64() ? total.to_u64() : ~std::uint64_t{0};
  return capped / static_cast<std::uint64_t>(machine_shards);
}

}  // namespace

EngineResult run_parallel_scan(const EngineConfig& config) {
  if (config.module == nullptr) return fail("engine: no probe module");
  if (config.threads < 1 || config.threads > kMaxWorkers) {
    return fail("engine: threads must be in 1.." +
                std::to_string(kMaxWorkers));
  }
  if (config.scan.shards < 1 || config.scan.shard < 0 ||
      config.scan.shard >= config.scan.shards) {
    return fail("engine: invalid machine shard configuration");
  }
  if (config.world_specs.empty()) return fail("engine: empty world spec");

  const auto wall_start = std::chrono::steady_clock::now();
  const int threads = config.threads;

  scan::ScanConfig base = config.scan;
  if (base.targets.empty()) base.targets = default_targets(config);
  base.shutdown_flag = config.shutdown_flag;
  base.shutdown_at_raw_slot = config.shutdown_at_raw_slot;
  if (base.max_probes != 0) {
    // Global target budget as a slot cut, computed once on the machine
    // shard's walk and shared by every worker: each worker stops at the
    // same permutation index regardless of --threads, so a capped scan is
    // byte-identical at any thread count (per-worker budget shares were
    // not).
    base.budget_cut_raw_slot =
        scan::compute_budget_cut(base.targets, base.seed, base.blocklist,
                                 base.max_probes, base.shard, base.shards);
    base.max_probes = 0;  // fully encoded in the cut; don't recompute
  }

  scan::ScanProgress progress;
  MonitorOptions monitor_options;
  monitor_options.out = config.status_out;
  monitor_options.interval_ms = config.status_interval_ms;
  monitor_options.expected_targets =
      expected_targets(base.targets, config.scan.shards);
  monitor_options.workers = threads;
  Monitor monitor{progress, monitor_options};

  BoundedQueue<EngineRecord> queue{config.queue_capacity};
  std::vector<WorkerReport> reports(static_cast<std::size_t>(threads));
  std::atomic<int> active{threads};

  // Mid-flight checkpoint rendezvous: workers publish stable cursors here
  // (cheap — once per checkpoint interval); the collector assembles a
  // checkpoint once every worker has published.
  struct PublishedCursor {
    std::mutex mu;
    scan::ScanCursor cursor;
    bool valid = false;
  };
  const bool periodic_checkpoints =
      config.checkpoint_interval_targets != 0 &&
      config.checkpoint_sink != nullptr;
  std::vector<std::unique_ptr<PublishedCursor>> published;
  for (int w = 0; w < threads; ++w) {
    published.push_back(std::make_unique<PublishedCursor>());
  }
  std::atomic<std::uint64_t> publish_epoch{0};

  // Per-worker observability sinks, thread-confined like everything else a
  // worker touches; merged deterministically after join. The fixed-size
  // vectors never reallocate, so the per-worker pointers stay stable.
  const bool tracing = config.obs.trace_level != obs::TraceLevel::kOff;
  std::vector<obs::TraceBuffer> traces(
      static_cast<std::size_t>(threads),
      obs::TraceBuffer{config.obs.trace_level});
  std::vector<obs::MetricsShard> shards(static_cast<std::size_t>(threads));
  std::vector<obs::StageProfile> profiles(static_cast<std::size_t>(threads));
  obs::MetricsShard main_shard;     // collector-side (main thread) series
  obs::StageProfile main_profile;   // collector-side merge timing

  const auto worker_body = [&](int w) {
    obs::TraceBuffer* trace = tracing ? &traces[static_cast<std::size_t>(w)]
                                      : nullptr;
    obs::MetricsShard* metrics =
        config.obs.metrics ? &shards[static_cast<std::size_t>(w)] : nullptr;
    obs::StageProfile* profile =
        config.obs.profile ? &profiles[static_cast<std::size_t>(w)] : nullptr;

    // Thread-confined deterministic replica: every worker builds the same
    // world from the same specs and seed, then walks its own sub-shard of
    // the permutation. No state is shared with other workers except the
    // result queue and the progress atomics.
    sim::Network net{config.build.seed};
    net.set_obs(trace, metrics);
    auto internet = [&] {
      obs::ScopedStageTimer build_timer{profile, obs::Stage::kBuild};
      return topo::build_internet(net, config.world_specs, config.vendors,
                                  config.build);
    }();
    if (config.faults.any()) {
      sim::FaultInjector* injector = net.install_faults(config.faults);
      // Every periphery device is a silent-window candidate; the injector
      // picks the configured fraction with a keyed per-node coin, so the
      // selection is identical in every replica.
      std::vector<sim::NodeId> candidates;
      for (const auto& isp : internet.isps) {
        for (const auto& device : isp.devices) {
          candidates.push_back(device.node);
        }
      }
      injector->choose_silent(candidates);
    }
    scan::ScanConfig wcfg = base;
    wcfg.shard = config.scan.shard * threads + w;
    wcfg.shards = config.scan.shards * threads;
    if (config.resume != nullptr &&
        static_cast<std::size_t>(w) < config.resume->cursors.size()) {
      wcfg.resume_spec_steps = config.resume->cursors[w].spec_steps;
    }

    auto* scanner =
        net.make_node<scan::SimChannelScanner>(wcfg, *config.module);
    const int iface =
        topo::attach_vantage(net, internet, scanner, config.vantage);
    scanner->set_iface(iface);
    scanner->set_progress(&progress);
    scanner->set_obs(config.obs, trace, metrics, profile);
    // Records accumulate thread-locally and cross to the collector in
    // batches: one queue lock round-trip per flush instead of per record.
    // Flush points are load-bearing, not just periodic: a published cursor
    // claims every record below it has already reached the collector, so
    // the buffer MUST drain before each publication (and after the run).
    std::vector<EngineRecord> local_records;
    local_records.reserve(kRecordFlushThreshold);
    const auto flush_records = [&queue, &local_records] {
      if (local_records.empty()) return;
      queue.push_many(local_records.begin(), local_records.end());
      local_records.clear();
    };
    scanner->on_response_slotted(
        [&local_records, &flush_records, w](const scan::ProbeResponse& r,
                                            sim::SimTime when,
                                            std::uint64_t raw_slot) {
          local_records.push_back(EngineRecord{r, when, w, raw_slot});
          if (local_records.size() >= kRecordFlushThreshold) flush_records();
        });
    if (periodic_checkpoints) {
      PublishedCursor* slot = published[static_cast<std::size_t>(w)].get();
      scanner->set_checkpoint_hook(
          config.checkpoint_interval_targets,
          [slot, &publish_epoch, &flush_records](
              const scan::ScanCursor& cursor) {
            flush_records();
            {
              std::lock_guard lock{slot->mu};
              slot->cursor = cursor;
              slot->valid = true;
            }
            publish_epoch.fetch_add(1, std::memory_order_release);
          });
    }
    scanner->start();
    const auto run_begin = std::chrono::steady_clock::now();
    net.run();
    flush_records();
    const auto run_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_begin)
            .count();

    if (metrics != nullptr) {
      // Wall-clock artifacts of this machine's scheduling and allocator
      // warm-up — flagged so the deterministic export skips them (the same
      // treatment as engine_queue_depth_peak below).
      const obs::Labels worker_label = {{"worker", std::to_string(w)}};
      *metrics->gauge("xmap_packet_rate", worker_label,
                      "Probes sent per wall-clock second by this worker",
                      /*wall_clock=*/true) =
          run_secs > 0 ? static_cast<std::uint64_t>(
                             static_cast<double>(scanner->stats().sent) /
                             run_secs)
                       : 0;
      const net::BytePool::Stats& pool = net::BytePool::local().stats();
      *metrics->gauge("pool_retained_bytes", worker_label,
                      "Arena bytes retained by this worker's BytePool",
                      /*wall_clock=*/true) = pool.retained_bytes;
      *metrics->gauge("pool_recycled_blocks", worker_label,
                      "Allocations served from the worker pool free lists",
                      /*wall_clock=*/true) = pool.recycled;
      *metrics->gauge("pool_heap_allocs", worker_label,
                      "Worker pool falls-through to the global heap",
                      /*wall_clock=*/true) = pool.heap_allocs;
    }

    WorkerReport& report = reports[static_cast<std::size_t>(w)];
    report.stats = scanner->stats();
    report.sim_duration = net.now();
    report.cursor = scanner->cursor();
    report.interrupted = scanner->interrupted();
  };

  const auto worker_main = [&](int w) {
    // Failure containment: a throwing worker must neither std::terminate
    // the process nor leave the collector blocked on an open queue. The
    // error is reported structurally; surviving workers' results stand.
    try {
      worker_body(w);
    } catch (const std::exception& e) {
      WorkerReport& report = reports[static_cast<std::size_t>(w)];
      report.failed = true;
      report.error = e.what();
      progress.workers_failed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      WorkerReport& report = reports[static_cast<std::size_t>(w)];
      report.failed = true;
      report.error = "unknown exception";
      progress.workers_failed.fetch_add(1, std::memory_order_relaxed);
    }
    progress.workers_done.fetch_add(1, std::memory_order_relaxed);
    // The last worker out closes the queue so the collector loop drains
    // the tail and terminates.
    if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) queue.close();
  };

  monitor.start();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) workers.emplace_back(worker_main, w);

  // Collector: the main thread is ZMap's recv thread — single consumer of
  // the MPSC queue.
  EngineResult result;
  result.collector = scan::ResultCollector{config.alias_threshold};
  if (config.resume != nullptr) {
    // Seed the record stream with the checkpoint's collected responses;
    // the deterministic content sort below interleaves them with this
    // run's exactly as an uninterrupted run would have produced them.
    result.resumed = true;
    result.records.reserve(config.resume->records.size());
    for (const auto& r : config.resume->records) {
      result.records.push_back(
          EngineRecord{r.response, r.when, r.worker, r.raw_slot});
    }
  }
  std::size_t queue_peak = 0;
  if (!periodic_checkpoints) {
    while (auto record = queue.pop()) {
      // +1 for the record just popped: peak occupancy as the consumer saw
      // it.
      queue_peak = std::max(queue_peak, queue.size() + 1);
      result.records.push_back(std::move(*record));
    }
  } else {
    std::uint64_t written_epoch = 0;
    const auto maybe_checkpoint = [&] {
      const std::uint64_t epoch =
          publish_epoch.load(std::memory_order_acquire);
      if (epoch == written_epoch) return;
      // Assemble a mid-flight checkpoint once every worker has published a
      // stable cursor. Records below each worker's cursor belong to
      // completed probe lifecycles (the cursor lags the send frontier by a
      // response horizon), so "filter by slot, re-scan from the cursor"
      // reproduces the uninterrupted output exactly.
      std::vector<scan::ScanCursor> cursors(
          static_cast<std::size_t>(threads));
      bool all_published = true;
      for (int w = 0; w < threads; ++w) {
        PublishedCursor* slot = published[static_cast<std::size_t>(w)].get();
        std::lock_guard lock{slot->mu};
        if (!slot->valid) {
          all_published = false;
          break;
        }
        cursors[static_cast<std::size_t>(w)] = slot->cursor;
      }
      if (!all_published) return;
      written_epoch = epoch;
      // Cursors were published before their workers pushed any record at
      // or above them; drain the queue to empty so every record below a
      // cursor is in hand before filtering.
      while (auto tail = queue.try_pop()) {
        result.records.push_back(std::move(*tail));
      }
      recover::CheckpointState state;
      state.quiescent = false;
      state.signal = 0;
      state.stats = progress.snapshot();
      if (config.resume != nullptr) state.stats += config.resume->stats;
      for (const auto& cursor : cursors) {
        state.cursors.push_back(
            recover::WorkerCursor{cursor.spec_steps, cursor.frontier_slot});
      }
      for (const auto& rec : result.records) {
        const auto uw = static_cast<std::size_t>(rec.worker);
        if (uw < cursors.size() &&
            rec.raw_slot < cursors[uw].frontier_slot) {
          state.records.push_back(recover::CheckpointRecord{
              rec.response, rec.when, rec.worker, rec.raw_slot});
        }
      }
      config.checkpoint_sink(state);
    };
    // Check the epoch on every iteration, not just on queue timeouts: a
    // fast scan can stream records without ever leaving a 20ms gap, and
    // its snapshots must still land.
    while (true) {
      auto record = queue.pop_for(std::chrono::milliseconds(20));
      if (record) {
        queue_peak = std::max(queue_peak, queue.size() + 1);
        result.records.push_back(std::move(*record));
        maybe_checkpoint();
        continue;
      }
      if (queue.drained()) break;
      maybe_checkpoint();
    }
  }
  for (auto& t : workers) t.join();

  for (const auto& report : reports) {
    result.interrupted = result.interrupted || report.interrupted;
    result.cursors.push_back(report.cursor);
  }
  monitor.set_interrupted(result.interrupted);
  monitor.stop();

  {
    // Deterministic merge order: worker sim clocks are deterministic, so a
    // content sort by (sim time, responder, probe, kind) yields a
    // byte-stable record stream regardless of real-time interleaving. The
    // worker index is only the final tiebreak — putting it before the
    // content fields would order same-time records by sharding and break
    // byte-identity across --threads values.
    obs::ScopedStageTimer merge_timer{
        config.obs.profile ? &main_profile : nullptr, obs::Stage::kMerge};
    std::sort(result.records.begin(), result.records.end(),
              [](const EngineRecord& a, const EngineRecord& b) {
                return std::tuple(a.when, a.response.responder,
                                  a.response.probe_dst,
                                  static_cast<int>(a.response.kind),
                                  a.worker) <
                       std::tuple(b.when, b.response.responder,
                                  b.response.probe_dst,
                                  static_cast<int>(b.response.kind),
                                  b.worker);
              });
    for (const auto& record : result.records) {
      result.collector.add(record.response);
    }
  }

  MetricsSummary summary;
  summary.threads = threads;
  for (const auto& report : reports) {
    result.stats += report.stats;
    summary.per_worker.push_back(report.stats);
    summary.worker_errors.push_back(report.error);
    if (report.failed) ++result.failed_workers;
    summary.sim_duration_ns =
        std::max<std::uint64_t>(summary.sim_duration_ns, report.sim_duration);
  }
  if (config.resume != nullptr) result.stats += config.resume->stats;
  summary.failed_workers = result.failed_workers;
  summary.interrupted = result.interrupted;
  summary.resumed = result.resumed;
  summary.checkpoint_file = config.checkpoint_file;
  result.workers = std::move(reports);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  summary.wall_seconds = result.wall_seconds;
  summary.merged = result.stats;
  summary.unique_responders = result.collector.unique_responders();
  summary.aliased_responders = result.collector.aliased().size();

  if (tracing) {
    std::vector<std::vector<obs::TraceEvent>> buffers;
    buffers.reserve(traces.size() + 1);
    for (auto& t : traces) buffers.push_back(t.take());
    if (config.resume != nullptr && config.resume->has_obs) {
      // The checkpoint's trace is just another buffer to the content sort:
      // the merged stream equals the uninterrupted run's.
      buffers.push_back(config.resume->trace);
    }
    result.trace = obs::merge_traces(std::move(buffers));
  }
  if (config.obs.metrics) {
    // Queue depth is a wall-clock artifact of scheduling, not of the scan:
    // flagged so the deterministic Prometheus export skips it.
    *main_shard.gauge("engine_queue_depth_peak", {},
                      "Peak result-queue occupancy seen by the collector",
                      /*wall_clock=*/true) =
        static_cast<std::uint64_t>(queue_peak);
    std::vector<const obs::MetricsShard*> shard_ptrs;
    shard_ptrs.reserve(shards.size() + 1);
    for (const auto& shard : shards) shard_ptrs.push_back(&shard);
    shard_ptrs.push_back(&main_shard);
    result.metrics_snapshot = obs::merge_shards(shard_ptrs);
    if (config.resume != nullptr && config.resume->has_obs) {
      result.metrics_snapshot = obs::merge_snapshots(
          {&config.resume->metrics, &result.metrics_snapshot});
    }
    summary.obs_metrics = result.metrics_snapshot;
  }
  if (config.obs.profile) {
    for (const auto& profile : profiles) result.stage_profile.merge(profile);
    result.stage_profile.merge(main_profile);
    summary.stage_profile = result.stage_profile;
  }

  result.metrics = metrics_json(summary);
  if (config.status_out != nullptr) {
    *config.status_out << result.metrics << '\n' << std::flush;
  }
  result.ok = true;
  return result;
}

}  // namespace xmap::engine
