#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>

#include "engine/bounded_queue.h"

namespace xmap::engine {
namespace {

EngineResult fail(std::string message) {
  EngineResult result;
  result.ok = false;
  result.error = std::move(message);
  return result;
}

// Default targets (every block of the world). Window placement is a pure
// function of the spec, so this costs nothing — no throwaway world build on
// the main thread (which would be a serial prefix as long as one worker's
// whole replica build).
std::vector<scan::TargetSpec> default_targets(const EngineConfig& config) {
  std::vector<scan::TargetSpec> targets;
  targets.reserve(config.world_specs.size());
  for (const auto& spec : config.world_specs) {
    const topo::ScanWindow window =
        topo::scan_window(spec, config.build.window_bits);
    targets.push_back(scan::TargetSpec{window.scan_base, window.window_lo,
                                       window.window_hi});
  }
  return targets;
}

std::uint64_t expected_targets(const std::vector<scan::TargetSpec>& targets,
                               int machine_shards) {
  net::Uint128 total{0};
  for (const auto& spec : targets) total = total + spec.count();
  const std::uint64_t capped =
      total.fits_u64() ? total.to_u64() : ~std::uint64_t{0};
  return capped / static_cast<std::uint64_t>(machine_shards);
}

}  // namespace

EngineResult run_parallel_scan(const EngineConfig& config) {
  if (config.module == nullptr) return fail("engine: no probe module");
  if (config.threads < 1 || config.threads > kMaxWorkers) {
    return fail("engine: threads must be in 1.." +
                std::to_string(kMaxWorkers));
  }
  if (config.scan.shards < 1 || config.scan.shard < 0 ||
      config.scan.shard >= config.scan.shards) {
    return fail("engine: invalid machine shard configuration");
  }
  if (config.world_specs.empty()) return fail("engine: empty world spec");

  const auto wall_start = std::chrono::steady_clock::now();
  const int threads = config.threads;

  scan::ScanConfig base = config.scan;
  if (base.targets.empty()) base.targets = default_targets(config);

  scan::ScanProgress progress;
  MonitorOptions monitor_options;
  monitor_options.out = config.status_out;
  monitor_options.interval_ms = config.status_interval_ms;
  monitor_options.expected_targets =
      expected_targets(base.targets, config.scan.shards);
  monitor_options.workers = threads;
  Monitor monitor{progress, monitor_options};

  BoundedQueue<EngineRecord> queue{config.queue_capacity};
  std::vector<WorkerReport> reports(static_cast<std::size_t>(threads));
  std::atomic<int> active{threads};

  // Per-worker observability sinks, thread-confined like everything else a
  // worker touches; merged deterministically after join. The fixed-size
  // vectors never reallocate, so the per-worker pointers stay stable.
  const bool tracing = config.obs.trace_level != obs::TraceLevel::kOff;
  std::vector<obs::TraceBuffer> traces(
      static_cast<std::size_t>(threads),
      obs::TraceBuffer{config.obs.trace_level});
  std::vector<obs::MetricsShard> shards(static_cast<std::size_t>(threads));
  std::vector<obs::StageProfile> profiles(static_cast<std::size_t>(threads));
  obs::MetricsShard main_shard;     // collector-side (main thread) series
  obs::StageProfile main_profile;   // collector-side merge timing

  const auto worker_body = [&](int w) {
    obs::TraceBuffer* trace = tracing ? &traces[static_cast<std::size_t>(w)]
                                      : nullptr;
    obs::MetricsShard* metrics =
        config.obs.metrics ? &shards[static_cast<std::size_t>(w)] : nullptr;
    obs::StageProfile* profile =
        config.obs.profile ? &profiles[static_cast<std::size_t>(w)] : nullptr;

    // Thread-confined deterministic replica: every worker builds the same
    // world from the same specs and seed, then walks its own sub-shard of
    // the permutation. No state is shared with other workers except the
    // result queue and the progress atomics.
    sim::Network net{config.build.seed};
    net.set_obs(trace, metrics);
    auto internet = [&] {
      obs::ScopedStageTimer build_timer{profile, obs::Stage::kBuild};
      return topo::build_internet(net, config.world_specs, config.vendors,
                                  config.build);
    }();
    if (config.faults.any()) {
      sim::FaultInjector* injector = net.install_faults(config.faults);
      // Every periphery device is a silent-window candidate; the injector
      // picks the configured fraction with a keyed per-node coin, so the
      // selection is identical in every replica.
      std::vector<sim::NodeId> candidates;
      for (const auto& isp : internet.isps) {
        for (const auto& device : isp.devices) {
          candidates.push_back(device.node);
        }
      }
      injector->choose_silent(candidates);
    }
    scan::ScanConfig wcfg = base;
    wcfg.shard = config.scan.shard * threads + w;
    wcfg.shards = config.scan.shards * threads;
    if (base.max_probes != 0) {
      // Distribute the global cap; shares sum exactly to the cap.
      const std::uint64_t n = static_cast<std::uint64_t>(threads);
      const std::uint64_t uw = static_cast<std::uint64_t>(w);
      wcfg.max_probes = base.max_probes / n + (uw < base.max_probes % n);
      if (wcfg.max_probes == 0) {
        // Zero share means "send nothing", but 0 encodes "unlimited" in
        // ScanConfig — skip the scan outright.
        reports[static_cast<std::size_t>(w)].sim_duration = 0;
        return;
      }
    }

    auto* scanner =
        net.make_node<scan::SimChannelScanner>(wcfg, *config.module);
    const int iface =
        topo::attach_vantage(net, internet, scanner, config.vantage);
    scanner->set_iface(iface);
    scanner->set_progress(&progress);
    scanner->set_obs(config.obs, trace, metrics, profile);
    scanner->on_response(
        [&queue, w](const scan::ProbeResponse& r, sim::SimTime when) {
          queue.push(EngineRecord{r, when, w});
        });
    scanner->start();
    net.run();

    WorkerReport& report = reports[static_cast<std::size_t>(w)];
    report.stats = scanner->stats();
    report.sim_duration = net.now();
  };

  const auto worker_main = [&](int w) {
    // Failure containment: a throwing worker must neither std::terminate
    // the process nor leave the collector blocked on an open queue. The
    // error is reported structurally; surviving workers' results stand.
    try {
      worker_body(w);
    } catch (const std::exception& e) {
      WorkerReport& report = reports[static_cast<std::size_t>(w)];
      report.failed = true;
      report.error = e.what();
      progress.workers_failed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      WorkerReport& report = reports[static_cast<std::size_t>(w)];
      report.failed = true;
      report.error = "unknown exception";
      progress.workers_failed.fetch_add(1, std::memory_order_relaxed);
    }
    progress.workers_done.fetch_add(1, std::memory_order_relaxed);
    // The last worker out closes the queue so the collector loop drains
    // the tail and terminates.
    if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) queue.close();
  };

  monitor.start();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) workers.emplace_back(worker_main, w);

  // Collector: the main thread is ZMap's recv thread — single consumer of
  // the MPSC queue.
  EngineResult result;
  result.collector = scan::ResultCollector{config.alias_threshold};
  std::size_t queue_peak = 0;
  while (auto record = queue.pop()) {
    // +1 for the record just popped: peak occupancy as the consumer saw it.
    queue_peak = std::max(queue_peak, queue.size() + 1);
    result.records.push_back(std::move(*record));
  }
  for (auto& t : workers) t.join();
  monitor.stop();

  {
    // Deterministic merge order: worker sim clocks are deterministic, so a
    // content sort by (sim time, responder, probe, kind) yields a
    // byte-stable record stream regardless of real-time interleaving. The
    // worker index is only the final tiebreak — putting it before the
    // content fields would order same-time records by sharding and break
    // byte-identity across --threads values.
    obs::ScopedStageTimer merge_timer{
        config.obs.profile ? &main_profile : nullptr, obs::Stage::kMerge};
    std::sort(result.records.begin(), result.records.end(),
              [](const EngineRecord& a, const EngineRecord& b) {
                return std::tuple(a.when, a.response.responder,
                                  a.response.probe_dst,
                                  static_cast<int>(a.response.kind),
                                  a.worker) <
                       std::tuple(b.when, b.response.responder,
                                  b.response.probe_dst,
                                  static_cast<int>(b.response.kind),
                                  b.worker);
              });
    for (const auto& record : result.records) {
      result.collector.add(record.response);
    }
  }

  MetricsSummary summary;
  summary.threads = threads;
  for (const auto& report : reports) {
    result.stats += report.stats;
    summary.per_worker.push_back(report.stats);
    summary.worker_errors.push_back(report.error);
    if (report.failed) ++result.failed_workers;
    summary.sim_duration_ns =
        std::max<std::uint64_t>(summary.sim_duration_ns, report.sim_duration);
  }
  summary.failed_workers = result.failed_workers;
  result.workers = std::move(reports);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  summary.wall_seconds = result.wall_seconds;
  summary.merged = result.stats;
  summary.unique_responders = result.collector.unique_responders();
  summary.aliased_responders = result.collector.aliased().size();

  if (tracing) {
    std::vector<std::vector<obs::TraceEvent>> buffers;
    buffers.reserve(traces.size());
    for (auto& t : traces) buffers.push_back(t.take());
    result.trace = obs::merge_traces(std::move(buffers));
  }
  if (config.obs.metrics) {
    // Queue depth is a wall-clock artifact of scheduling, not of the scan:
    // flagged so the deterministic Prometheus export skips it.
    *main_shard.gauge("engine_queue_depth_peak", {},
                      "Peak result-queue occupancy seen by the collector",
                      /*wall_clock=*/true) =
        static_cast<std::uint64_t>(queue_peak);
    std::vector<const obs::MetricsShard*> shard_ptrs;
    shard_ptrs.reserve(shards.size() + 1);
    for (const auto& shard : shards) shard_ptrs.push_back(&shard);
    shard_ptrs.push_back(&main_shard);
    result.metrics_snapshot = obs::merge_shards(shard_ptrs);
    summary.obs_metrics = result.metrics_snapshot;
  }
  if (config.obs.profile) {
    for (const auto& profile : profiles) result.stage_profile.merge(profile);
    result.stage_profile.merge(main_profile);
    summary.stage_profile = result.stage_profile;
  }

  result.metrics = metrics_json(summary);
  if (config.status_out != nullptr) {
    *config.status_out << result.metrics << '\n' << std::flush;
  }
  result.ok = true;
  return result;
}

}  // namespace xmap::engine
