#include "engine/telemetry.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace xmap::engine {
namespace {

// "m:ss" like the zmap monitor (hours folded into minutes).
std::string clock_string(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<std::uint64_t>(seconds);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu:%02llu",
                static_cast<unsigned long long>(total / 60),
                static_cast<unsigned long long>(total % 60));
  return buf;
}

std::string rate_string(double per_sec) {
  char buf[32];
  if (per_sec >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f Mp/s", per_sec / 1e6);
  } else if (per_sec >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f Kp/s", per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f p/s", per_sec);
  }
  return buf;
}

}  // namespace

void Monitor::start() {
  if (options_.out == nullptr || running_) return;
  running_ = true;
  stopping_ = false;
  started_ = std::chrono::steady_clock::now();
  emit(false);
  thread_ = std::thread([this] { thread_main(); });
}

void Monitor::stop() {
  if (!running_) return;
  {
    std::lock_guard lock{mu_};
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  emit(true);
  running_ = false;
}

void Monitor::thread_main() {
  std::unique_lock lock{mu_};
  const auto interval = std::chrono::milliseconds(
      options_.interval_ms > 0 ? options_.interval_ms : 250);
  while (!cv_.wait_for(lock, interval, [this] { return stopping_; })) {
    lock.unlock();
    emit(false);
    lock.lock();
  }
}

void Monitor::emit(bool final_line) {
  *options_.out << status_line(final_line) << '\n' << std::flush;
}

std::string Monitor::status_line(bool final_line) const {
  return status_line(
      final_line,
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count());
}

std::string Monitor::status_line(bool final_line, double elapsed) const {
  const scan::ScanStats s = progress_.snapshot();
  const std::uint64_t done =
      progress_.workers_done.load(std::memory_order_relaxed);

  // Below this elapsed floor the very first tick would divide by a
  // near-zero duration and print garbage rates / ETAs; render "--" instead.
  constexpr double kMinElapsed = 1e-3;

  std::ostringstream line;
  line << clock_string(elapsed);
  if (options_.expected_targets > 0) {
    const double frac = std::min(
        1.0, static_cast<double>(s.targets_generated) /
                 static_cast<double>(options_.expected_targets));
    char pct[16];
    std::snprintf(pct, sizeof pct, " %.0f%%", 100.0 * frac);
    line << pct;
    if (!final_line && frac < 1) {
      // An ETA extrapolated from a sliver of progress (or none) is
      // nonsense; admit it instead of printing it.
      if (elapsed >= kMinElapsed && frac >= 1e-4) {
        const double eta = elapsed * (1.0 - frac) / frac;
        line << " (" << clock_string(eta) << " left)";
      } else {
        line << " (-- left)";
      }
    }
  }
  if (final_line) line << (interrupted_ ? " (interrupted)" : " (done)");
  line << "; send: " << s.sent << " (";
  if (elapsed >= kMinElapsed) {
    line << rate_string(static_cast<double>(s.sent) / elapsed);
  } else {
    line << "--";
  }
  line << " avg); recv: " << s.validated << " ok";
  if (s.discarded > 0) line << ", " << s.discarded << " stray";
  if (s.corrupted > 0) line << ", " << s.corrupted << " corrupt";
  if (s.late > 0) line << ", " << s.late << " late";
  if (s.duplicates > 0) line << ", " << s.duplicates << " dup";
  char hits[32];
  std::snprintf(hits, sizeof hits, "; hits: %.2f%%", 100.0 * s.hit_rate());
  line << hits;
  line << "; workers: " << done << "/" << options_.workers << " done";
  const std::uint32_t failed =
      progress_.workers_failed.load(std::memory_order_relaxed);
  if (failed > 0) line << ", " << failed << " FAILED";
  return line.str();
}

std::string metrics_json(const MetricsSummary& summary) {
  std::ostringstream out;
  const auto stats_fields = [&out](const scan::ScanStats& s) {
    out << "\"targets_generated\":" << s.targets_generated
        << ",\"blocked\":" << s.blocked << ",\"sent\":" << s.sent
        << ",\"received\":" << s.received << ",\"validated\":" << s.validated
        << ",\"discarded\":" << s.discarded
        << ",\"retransmits\":" << s.retransmits
        << ",\"duplicates\":" << s.duplicates
        << ",\"corrupted\":" << s.corrupted << ",\"late\":" << s.late
        << ",\"rate_adjustments\":" << s.rate_adjustments;
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.6f", s.hit_rate());
    out << ",\"hit_rate\":" << rate;
  };
  const auto json_escape = [](const std::string& s) {
    std::string escaped;
    escaped.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        escaped += '\\';
        escaped += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        escaped += ' ';
      } else {
        escaped += c;
      }
    }
    return escaped;
  };

  char wall[32];
  std::snprintf(wall, sizeof wall, "%.6f", summary.wall_seconds);
  out << "{\"threads\":" << summary.threads << ",\"wall_seconds\":" << wall
      << ",";
  stats_fields(summary.merged);
  out << ",\"unique_responders\":" << summary.unique_responders
      << ",\"aliased_responders\":" << summary.aliased_responders
      << ",\"sim_duration_ns\":" << summary.sim_duration_ns
      << ",\"workers_failed\":" << summary.failed_workers
      << ",\"interrupted\":" << (summary.interrupted ? "true" : "false")
      << ",\"resumed\":" << (summary.resumed ? "true" : "false");
  if (!summary.checkpoint_file.empty()) {
    out << ",\"checkpoint_file\":\"" << json_escape(summary.checkpoint_file)
        << "\"";
  }
  if (!summary.obs_metrics.empty()) {
    out << ",\"metrics\":";
    obs::append_metrics_json(out, summary.obs_metrics);
  }
  if (!summary.stage_profile.empty()) {
    out << ",\"stage_profile\":";
    obs::append_stage_profile_json(out, summary.stage_profile);
  }
  out << ",\"per_worker\":[";
  for (std::size_t w = 0; w < summary.per_worker.size(); ++w) {
    if (w != 0) out << ",";
    out << "{\"worker\":" << w << ",";
    stats_fields(summary.per_worker[w]);
    if (w < summary.worker_errors.size() && !summary.worker_errors[w].empty()) {
      out << ",\"error\":\"" << json_escape(summary.worker_errors[w]) << "\"";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace xmap::engine
