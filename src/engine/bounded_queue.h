// Bounded multi-producer / single-consumer result queue.
//
// The parallel executor's only cross-thread data channel: N scanning
// workers push validated responses, one collector thread pops and merges.
// The bound applies backpressure — a worker that outpaces the collector
// blocks in push() instead of growing an unbounded buffer (ZMap's recv
// thread has the same property via the kernel socket buffer).
//
// Mutex + condvar rather than a lock-free ring: producers block anyway at
// the bound, the queue is far from the scan's hot path (one push per
// *validated response*, not per probe), and a mutex is trivially clean
// under ThreadSanitizer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace xmap::engine {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false (dropping `value`) if the
  // queue was closed.
  bool push(T value) {
    std::unique_lock lock{mu_};
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Bulk push: one lock round-trip and one consumer wake for the whole
  // batch. Blocks until every item fits (capacity permitting batches to
  // land whole keeps the backpressure bound intact); returns the number of
  // items enqueued — short only if the queue was closed mid-wait. The
  // batch is consumed (moved-from) either way.
  template <typename Iter>
  std::size_t push_many(Iter first, Iter last) {
    std::size_t pushed = 0;
    std::unique_lock lock{mu_};
    while (first != last) {
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) break;
      while (first != last && items_.size() < capacity_) {
        items_.push_back(std::move(*first));
        ++first;
        ++pushed;
      }
      // Wake the consumer before (possibly) blocking for more room, or the
      // full-queue wait would deadlock against a sleeping collector.
      not_empty_.notify_one();
    }
    return pushed;
  }

  // Blocks while the queue is empty. Returns nullopt once the queue is
  // closed *and* fully drained.
  std::optional<T> pop() {
    std::unique_lock lock{mu_};
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // Like pop(), but gives up after `timeout`: nullopt then means either
  // "drained and closed" or "nothing arrived yet" — disambiguate with
  // drained(). Lets the consumer interleave periodic work (checkpoint
  // capture) with draining.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock{mu_};
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // Non-blocking pop: nullopt when the queue is momentarily empty.
  std::optional<T> try_pop() {
    std::unique_lock lock{mu_};
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  // True once the queue is closed and fully drained — the consumer's
  // termination condition when using pop_for/try_pop.
  [[nodiscard]] bool drained() const {
    std::lock_guard lock{mu_};
    return closed_ && items_.empty();
  }

  // Idempotent. Wakes all waiters; subsequent pushes fail, pops drain the
  // remaining items then return nullopt.
  void close() {
    {
      std::lock_guard lock{mu_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mu_};
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const {
    std::lock_guard lock{mu_};
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace xmap::engine
