// Live scan telemetry: the ZMap-style monitor thread.
//
// While workers scan, a monitor thread samples the shared ScanProgress
// atomics on a fixed wall-clock cadence and renders one status line per
// tick (elapsed, %-complete, ETA, send/recv rates, hit rate) — the
// operator-facing heartbeat ZMap/XMap print during long scans. At exit the
// executor emits a machine-readable JSON metrics snapshot through
// metrics_json() for harnesses and dashboards.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "xmap/stats.h"

namespace xmap::engine {

struct MonitorOptions {
  std::ostream* out = nullptr;         // where status lines go
  int interval_ms = 250;               // tick cadence (wall clock)
  std::uint64_t expected_targets = 0;  // 0 = unknown (no %-complete / ETA)
  int workers = 1;
};

class Monitor {
 public:
  Monitor(const scan::ScanProgress& progress, MonitorOptions options)
      : progress_(progress), options_(std::move(options)) {}
  ~Monitor() { stop(); }

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // Emits an initial line and begins ticking. No-op without an out stream.
  void start();
  // Emits the final status line and joins the monitor thread. Idempotent.
  void stop();

  // Marks the run as interrupted (graceful shutdown): the final status line
  // reads "(interrupted)" instead of "(done)". Call before stop().
  void set_interrupted(bool interrupted) { interrupted_ = interrupted; }

  // One rendered status line for the current counters (exposed for tests).
  [[nodiscard]] std::string status_line(bool final_line) const;
  // Same, with the elapsed wall seconds supplied by the caller — the
  // deterministic variant the edge-case tests use (elapsed ~ 0 must render
  // "--" rates/ETA instead of dividing by a near-zero duration).
  [[nodiscard]] std::string status_line(bool final_line,
                                        double elapsed_seconds) const;

 private:
  void thread_main();
  void emit(bool final_line);

  const scan::ScanProgress& progress_;
  MonitorOptions options_;
  std::chrono::steady_clock::time_point started_{};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  bool interrupted_ = false;
  std::thread thread_;
};

// The final machine-readable snapshot (merged + per-worker accounting).
struct MetricsSummary {
  int threads = 1;
  double wall_seconds = 0;
  scan::ScanStats merged;
  std::vector<scan::ScanStats> per_worker;
  // Parallel to per_worker: the contained failure message for workers that
  // threw ("" for healthy workers).
  std::vector<std::string> worker_errors;
  int failed_workers = 0;
  std::uint64_t unique_responders = 0;
  std::uint64_t aliased_responders = 0;
  std::uint64_t sim_duration_ns = 0;  // longest worker sim-clock duration

  // Optional observability sections (empty = omitted from the JSON): the
  // merged labeled-metrics registry and the summed wall-clock stage
  // profile.
  obs::MetricsSnapshot obs_metrics;
  obs::StageProfile stage_profile;

  // Checkpoint/resume accounting: whether this run stopped on a shutdown
  // request (resumable), whether it was seeded from a checkpoint, and the
  // state file it wrote ("" = none).
  bool interrupted = false;
  bool resumed = false;
  std::string checkpoint_file;
};

// Renders the summary as a single-line JSON object (no trailing newline).
[[nodiscard]] std::string metrics_json(const MetricsSummary& summary);

}  // namespace xmap::engine
