#include "sim/faults.h"

#include <cmath>

#include "netbase/random.h"

namespace xmap::sim {
namespace {

// Domain-separation salts for the keyed draws.
constexpr std::uint64_t kSaltIid = 0x69696471;      // "iid"
constexpr std::uint64_t kSaltDup = 0x64757031;      // "dup"
constexpr std::uint64_t kSaltCorrupt = 0x636f7272;  // "corr"
constexpr std::uint64_t kSaltJitter = 0x6a697474;   // "jitt"
constexpr std::uint64_t kSaltBurst = 0x62757273;    // "burs"
constexpr std::uint64_t kSaltFlap = 0x666c6170;     // "flap"
constexpr std::uint64_t kSaltSilent = 0x73696c74;   // "silt"

// Burst windows are regenerated per 1-second epoch; a burst may straddle at
// most one epoch boundary (durations are capped at one epoch), so any query
// only needs epochs k and k-1.
constexpr SimTime kBurstEpoch = kSecond;

std::uint64_t fnv1a64(const pkt::Bytes& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

double keyed_unit(std::uint64_t key, std::uint64_t salt) {
  const std::uint64_t v = net::mix64(net::hash_combine64(key, salt));
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

// Verdict kinds in the [kind] index order of verdict_cells_ / note_verdict.
enum : int {
  kKindIidDrop = 0,
  kKindBurstDrop,
  kKindFlapDrop,
  kKindDuplicate,
  kKindCorrupt,
  kKindJitter,
};
constexpr const char* kFaultKindNames[6] = {
    "iid_drop", "burst_drop", "flap_drop", "duplicate", "corrupt", "jitter",
};
constexpr const char* kFaultEventNames[6] = {
    "fault_iid_drop",  "fault_burst_drop", "fault_flap_drop",
    "fault_duplicate", "fault_corrupt",    "fault_jitter",
};

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t network_seed)
    : plan_(plan),
      seed_(plan.seed != 0 ? plan.seed : network_seed) {}

void FaultInjector::set_obs(obs::TraceBuffer* trace,
                            obs::MetricsShard* metrics) {
  trace_ = trace;
  if (metrics == nullptr) {
    for (auto& row : verdict_cells_) row[0] = row[1] = row[2] = nullptr;
    silent_cell_ = nullptr;
    return;
  }
  for (int kind = 0; kind < kVerdictKinds; ++kind) {
    for (int cls = 0; cls < 3; ++cls) {
      verdict_cells_[kind][cls] = metrics->counter(
          "fault_verdicts",
          {{"kind", kFaultKindNames[kind]},
           {"link_class", link_class_name(static_cast<LinkClass>(cls))}},
          "Fault-injection verdicts by kind and link class");
    }
  }
  silent_cell_ = metrics->counter(
      "fault_verdicts", {{"kind", "silent_drop"}, {"link_class", "node"}},
      "Fault-injection verdicts by kind and link class");
}

void FaultInjector::note_verdict(int kind, const char* event_name,
                                 LinkClass cls, LinkId link, SimTime when,
                                 std::uint64_t extra) {
  if (std::uint64_t* cell = verdict_cells_[kind][static_cast<int>(cls)]) {
    ++*cell;
  }
  if (trace_ != nullptr && trace_->at(obs::TraceLevel::kPacket)) {
    obs::TraceEvent e;
    e.ts = when;
    e.name = event_name;
    e.cat = "fault";
    e.str_key = "link_class";
    e.str_val = link_class_name(cls);
    e.i0 = {"link", link};
    if (kind == kKindJitter) e.i1 = {"delay_ns", extra};
    trace_->add(e);
  }
}

void FaultInjector::note_silent_drop(NodeId node, SimTime when) {
  ++stats_.silent_dropped;
  if (silent_cell_ != nullptr) ++*silent_cell_;
  if (trace_ != nullptr && trace_->at(obs::TraceLevel::kPacket)) {
    obs::TraceEvent e;
    e.ts = when;
    e.name = "fault_silent_drop";
    e.cat = "fault";
    e.i0 = {"node", node};
    trace_->add(e);
  }
}

const LinkFaultParams& FaultInjector::params_for(LinkClass cls) const {
  switch (cls) {
    case LinkClass::kCore:
      return plan_.core;
    case LinkClass::kAccess:
      return plan_.access;
    case LinkClass::kOther:
      break;
  }
  return plan_.other;
}

bool FaultInjector::in_burst(LinkId link, LinkClass cls, SimTime when) const {
  const BurstLossParams& burst = params_for(cls).burst;
  if (burst.rate_per_sec <= 0) return false;

  const std::uint64_t link_key =
      net::hash_combine64(net::hash_combine64(seed_, kSaltBurst), link);
  const SimTime epoch = when / kBurstEpoch;
  // Check the current epoch and (for straddling bursts) the previous one.
  for (int back = 0; back < 2; ++back) {
    if (back == 1 && epoch == 0) break;
    const SimTime e = epoch - static_cast<SimTime>(back);
    net::Rng rng{net::hash_combine64(link_key, e)};
    // Bursts starting in this epoch: floor(rate) plus a Bernoulli for the
    // fractional part (expected count == rate_per_sec per epoch-second).
    const double rate = burst.rate_per_sec;
    int count = static_cast<int>(rate);
    if (rng.bernoulli(rate - std::floor(rate))) ++count;
    for (int i = 0; i < count; ++i) {
      const SimTime start =
          e * kBurstEpoch + rng.uniform(kBurstEpoch);
      // Exponential duration with the configured mean, capped at one epoch
      // so a burst can straddle at most one boundary.
      const double mean_ns = burst.mean_ms * static_cast<double>(kMillisecond);
      double dur = -mean_ns * std::log(1.0 - rng.unit());
      if (dur > static_cast<double>(kBurstEpoch)) {
        dur = static_cast<double>(kBurstEpoch);
      }
      if (when >= start && when < start + static_cast<SimTime>(dur)) {
        return true;
      }
    }
  }
  return false;
}

bool FaultInjector::link_down(LinkId link, LinkClass cls, SimTime when) const {
  const FlapParams& flap = params_for(cls).flap;
  if (flap.period_ms <= 0 || flap.down_ms <= 0) return false;

  const std::uint64_t link_key =
      net::hash_combine64(net::hash_combine64(seed_, kSaltFlap), link);
  if (flap.fraction < 1.0 &&
      keyed_unit(link_key, 1) >= flap.fraction) {
    return false;
  }
  const auto period =
      static_cast<SimTime>(flap.period_ms * static_cast<double>(kMillisecond));
  const auto down =
      static_cast<SimTime>(flap.down_ms * static_cast<double>(kMillisecond));
  if (period == 0) return false;
  // Per-link phase desynchronizes the flaps across the class.
  const SimTime phase = net::mix64(net::hash_combine64(link_key, 2)) % period;
  return (when + phase) % period < (down < period ? down : period);
}

FaultInjector::Verdict FaultInjector::on_transmit(LinkId link, LinkClass cls,
                                                  SimTime when,
                                                  const pkt::Bytes& packet) {
  Verdict verdict;
  const LinkFaultParams& params = params_for(cls);
  if (!params.any()) return verdict;

  if (link_down(link, cls, when)) {
    verdict.drop = true;
    ++stats_.flap_dropped;
    note_verdict(kKindFlapDrop, kFaultEventNames[kKindFlapDrop], cls, link,
                 when);
    return verdict;
  }

  const std::uint64_t pkt_hash = fnv1a64(packet);
  const std::uint64_t pair_key =
      net::hash_combine64(net::hash_combine64(seed_, link), pkt_hash);
  const std::uint32_t attempt = attempts_[pair_key]++;
  const std::uint64_t key = net::hash_combine64(pair_key, attempt);

  if (in_burst(link, cls, when) &&
      keyed_unit(key, kSaltBurst) < params.burst.loss) {
    verdict.drop = true;
    ++stats_.burst_dropped;
    note_verdict(kKindBurstDrop, kFaultEventNames[kKindBurstDrop], cls, link,
                 when);
    return verdict;
  }
  if (params.loss > 0 && keyed_unit(key, kSaltIid) < params.loss) {
    verdict.drop = true;
    ++stats_.iid_dropped;
    note_verdict(kKindIidDrop, kFaultEventNames[kKindIidDrop], cls, link,
                 when);
    return verdict;
  }
  if (params.duplicate > 0 && keyed_unit(key, kSaltDup) < params.duplicate) {
    verdict.duplicate = true;
    ++stats_.duplicated;
    note_verdict(kKindDuplicate, kFaultEventNames[kKindDuplicate], cls, link,
                 when);
  }
  if (params.corrupt > 0 && keyed_unit(key, kSaltCorrupt) < params.corrupt) {
    verdict.corrupt = true;
    verdict.corrupt_key = net::mix64(net::hash_combine64(key, kSaltCorrupt));
    ++stats_.corrupted;
    note_verdict(kKindCorrupt, kFaultEventNames[kKindCorrupt], cls, link,
                 when);
  }
  if (params.jitter_ms > 0) {
    const double u = keyed_unit(key, kSaltJitter);
    verdict.extra_delay = static_cast<SimTime>(
        u * params.jitter_ms * static_cast<double>(kMillisecond));
    if (verdict.extra_delay > 0) {
      ++stats_.jittered;
      note_verdict(kKindJitter, kFaultEventNames[kKindJitter], cls, link,
                   when, verdict.extra_delay);
    }
  }
  return verdict;
}

void FaultInjector::choose_silent(const std::vector<NodeId>& candidates) {
  if (plan_.silent.fraction <= 0) return;
  const std::uint64_t base =
      net::hash_combine64(seed_, kSaltSilent);
  const auto start = static_cast<SimTime>(
      plan_.silent.start_ms * static_cast<double>(kMillisecond));
  const SimTime end =
      plan_.silent.duration_ms <= 0
          ? ~SimTime{0}
          : start + static_cast<SimTime>(plan_.silent.duration_ms *
                                         static_cast<double>(kMillisecond));
  for (const NodeId node : candidates) {
    if (keyed_unit(net::hash_combine64(base, node), 1) <
        plan_.silent.fraction) {
      silent_[node] = {start, end};
    }
  }
}

bool FaultInjector::node_silent(NodeId node, SimTime when) const {
  const auto it = silent_.find(node);
  if (it == silent_.end()) return false;
  return when >= it->second.first && when < it->second.second;
}

FabricMessageVerdict fabric_message_verdict(
    const FabricFaultPlan& plan, std::uint32_t endpoint, bool to_coordinator,
    bool heartbeat, const void* frame, std::size_t frame_len,
    std::uint32_t attempt) {
  FabricMessageVerdict verdict;
  const FabricMessageFaults& m = plan.messages;
  if (!m.any()) return verdict;

  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = static_cast<const std::uint8_t*>(frame);
  for (std::size_t i = 0; i < frame_len; ++i) {
    h ^= static_cast<std::uint64_t>(bytes[i]);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t key = net::hash_combine64(plan.seed, h);
  key = net::hash_combine64(key, endpoint);
  key = net::hash_combine64(key, to_coordinator ? 1 : 0);
  key = net::hash_combine64(key, attempt);

  // Heartbeats are liveness signals with no delivery guarantee: they may
  // vanish outright. Data frames are never dropped here — the reliable
  // channel's retransmission is what the truncate/delay/duplicate dials
  // exercise — so a lost heartbeat can cost a false suspicion but never a
  // record.
  if (heartbeat && m.drop_heartbeat > 0 &&
      keyed_unit(key, kSaltIid) < m.drop_heartbeat) {
    verdict.drop = true;
    return verdict;
  }
  if (m.duplicate > 0 && keyed_unit(key, kSaltDup) < m.duplicate) {
    verdict.duplicate = true;
  }
  if (m.truncate > 0 && frame_len > 1 &&
      keyed_unit(key, kSaltCorrupt) < m.truncate) {
    // A keyed strictly-shorter prefix: the frame checksum must reject it.
    verdict.truncate_to = 1 + static_cast<std::size_t>(
        net::mix64(net::hash_combine64(key, kSaltCorrupt)) %
        (frame_len - 1));
  }
  if (m.delay_ms > 0) {
    verdict.extra_delay_ms = keyed_unit(key, kSaltJitter) * m.delay_ms;
  }
  return verdict;
}

}  // namespace xmap::sim
