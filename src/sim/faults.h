// Seeded, deterministic fault injection for the simulated network.
//
// Real scans cross a hostile Internet: access links lose packets in bursts
// (Gilbert–Elliott, not i.i.d.), middleboxes duplicate and reorder,
// last-mile links flap, bit errors corrupt payloads, and CPEs go silent for
// minutes at a time. The substrate's base LinkParams::loss models only
// i.i.d. Bernoulli drops from a sequentially-consumed RNG, which is neither
// realistic nor stable across the parallel engine's per-worker replicas.
//
// This layer injects all of the above from a FaultPlan, with every decision
// keyed by hash(seed, link, packet bytes, attempt#) and every burst window
// derived from (seed, link, epoch) — pure functions of *what* is sent and
// *when*, never of global call order. Because the scanner's slot pacing
// makes send times thread-invariant, the same plan + seed produces
// byte-identical outcomes for any --threads value.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "netbase/pool.h"
#include "packet/packet.h"
#include "sim/event_loop.h"

namespace xmap::sim {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

// Coarse link taxonomy for class-scoped fault plans: the paper's loss and
// rate-limit pathologies live on the access tier, not the core.
enum class LinkClass : std::uint8_t { kOther = 0, kCore = 1, kAccess = 2 };

[[nodiscard]] constexpr const char* link_class_name(LinkClass cls) {
  switch (cls) {
    case LinkClass::kCore:
      return "core";
    case LinkClass::kAccess:
      return "access";
    case LinkClass::kOther:
      break;
  }
  return "other";
}

// Gilbert–Elliott style bursty loss: bursts begin at `rate_per_sec` per
// link-second, last `mean_ms` on average, and drop packets with probability
// `loss` while active.
struct BurstLossParams {
  double rate_per_sec = 0.0;  // expected burst starts per second (0 = off)
  double mean_ms = 50.0;      // mean burst duration
  double loss = 1.0;          // drop probability inside a burst
};

// Scheduled link flaps: a deterministic subset (`fraction`) of the class's
// links goes fully down for `down_ms` out of every `period_ms`, with a
// per-link phase so flaps are not synchronized.
struct FlapParams {
  double period_ms = 0.0;  // flap cycle length (0 = off)
  double down_ms = 0.0;    // down-window at the start of each cycle
  double fraction = 1.0;   // fraction of links that flap
};

// Per-link-class fault dials. All probabilities are per transmission.
struct LinkFaultParams {
  double loss = 0.0;       // keyed i.i.d. drop probability
  BurstLossParams burst;   // bursty (correlated) loss
  double duplicate = 0.0;  // probability the packet is delivered twice
  double corrupt = 0.0;    // probability of delivered-copy bit flips
  double jitter_ms = 0.0;  // max extra delivery delay (uniform, reorders)
  FlapParams flap;

  [[nodiscard]] bool any() const {
    return loss > 0 || burst.rate_per_sec > 0 || duplicate > 0 ||
           corrupt > 0 || jitter_ms > 0 || flap.period_ms > 0;
  }
};

// Silent-device windows: a deterministic `fraction` of the registered
// candidate nodes (CPEs) ignores all inbound traffic during
// [start_ms, start_ms + duration_ms); duration 0 = silent forever.
struct SilentParams {
  double fraction = 0.0;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 0;  // 0 = inherit the network's seed
  LinkFaultParams access;
  LinkFaultParams core;
  LinkFaultParams other;
  SilentParams silent;

  [[nodiscard]] bool any() const {
    return access.any() || core.any() || other.any() || silent.fraction > 0;
  }
};

struct FaultStats {
  std::uint64_t iid_dropped = 0;
  std::uint64_t burst_dropped = 0;
  std::uint64_t flap_dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t jittered = 0;
  std::uint64_t silent_dropped = 0;

  [[nodiscard]] std::uint64_t dropped_total() const {
    return iid_dropped + burst_dropped + flap_dropped + silent_dropped;
  }
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t network_seed);

  // Fate of one transmission departing on `link` (class `cls`) at `when`.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;      // deliver a second copy
    bool corrupt = false;        // flip bits in the delivered copy
    SimTime extra_delay = 0;     // reordering jitter
    std::uint64_t corrupt_key = 0;  // which bits to flip (when corrupt)
  };
  [[nodiscard]] Verdict on_transmit(LinkId link, LinkClass cls, SimTime when,
                                    const pkt::Bytes& packet);

  // Registers the silent-window candidate set (typically every CPE/UE
  // node); a keyed per-node coin selects plan.silent.fraction of them.
  void choose_silent(const std::vector<NodeId>& candidates);
  [[nodiscard]] bool node_silent(NodeId node, SimTime when) const;
  void note_silent_drop(NodeId node, SimTime when);

  // Attaches observability sinks (both owned by the caller, thread-confined
  // with this injector). Every verdict then bumps a
  // fault_verdicts{kind,link_class} counter and — at packet trace level —
  // emits a "fault"-category event stamped with the sim clock.
  void set_obs(obs::TraceBuffer* trace, obs::MetricsShard* metrics);

  // True when `link` of class `cls` sits inside a bursty-loss window at
  // `when` (exposed for tests; on_transmit folds this into the verdict).
  [[nodiscard]] bool in_burst(LinkId link, LinkClass cls, SimTime when) const;

  // True when the link is inside a flap down-window at `when`.
  [[nodiscard]] bool link_down(LinkId link, LinkClass cls, SimTime when) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  // The dial set a link of class `cls` is subject to. The network's bulk
  // delivery path inspects this to decide which links need per-packet
  // events (duplication and jitter change arrival times/counts; drops and
  // corruption are keyed off stamps and packet bytes, so they batch).
  [[nodiscard]] const LinkFaultParams& params(LinkClass cls) const {
    return params_for(cls);
  }

 private:
  [[nodiscard]] const LinkFaultParams& params_for(LinkClass cls) const;

  // Bumps the (kind, class) verdict counter and records the trace event.
  void note_verdict(int kind, const char* event_name, LinkClass cls,
                    LinkId link, SimTime when, std::uint64_t extra = 0);

  FaultPlan plan_;
  std::uint64_t seed_ = 1;
  FaultStats stats_;
  obs::TraceBuffer* trace_ = nullptr;
  // Counter cells indexed [kind][link class]; resolved once in set_obs so
  // the verdict hot path is a single increment. kind order matches
  // kFaultKindNames in faults.cc; the silent-drop counter is node-scoped
  // and lives in its own cell.
  static constexpr int kVerdictKinds = 6;
  std::uint64_t* verdict_cells_[kVerdictKinds][3] = {};
  std::uint64_t* silent_cell_ = nullptr;
  // Per-(link, packet-hash) attempt counters: retransmitted probes are
  // byte-identical, so the attempt index is what differentiates their fault
  // draws. Counts depend only on this replica's own traffic per packet, so
  // they are identical across thread counts.
  net::PoolMap<std::uint64_t, std::uint32_t> attempts_;
  // Nodes selected for a silent window: node -> [start, end) in sim time
  // (end == ~0 for "forever").
  std::unordered_map<NodeId, std::pair<SimTime, SimTime>> silent_;
};

// ---- Fabric-layer faults ---------------------------------------------------
//
// The distributed scan fabric (src/fabric) moves control and data frames
// over a message transport; these dials extend the seeded fault model to
// that layer. Every verdict is keyed by (seed, endpoint, direction, frame
// bytes, attempt) — a pure function of what is sent, never of global call
// order — so a fault scenario replays identically run to run while the
// reliable channel's retransmissions (attempt index) still get fresh
// draws. The fabric's delivery guarantees must hold under any plan: the
// headline byte-identity tests run with these dials wide open.

// Per-frame fault dials. All probabilities are per transmission.
struct FabricMessageFaults {
  double drop_heartbeat = 0.0;  // P(silently drop a heartbeat frame)
  double duplicate = 0.0;       // P(deliver a second copy of a frame)
  double truncate = 0.0;        // P(deliver only a keyed-length prefix)
  double delay_ms = 0.0;        // max extra delivery delay (uniform)

  [[nodiscard]] bool any() const {
    return drop_heartbeat > 0 || duplicate > 0 || truncate > 0 ||
           delay_ms > 0;
  }
};

struct FabricFaultPlan {
  std::uint64_t seed = 0;  // 0 = inherit the fabric's seed
  FabricMessageFaults messages;

  // Seeded worker crashes: worker `node` dies when its scan frontier
  // reaches global permutation slot `at_slot` — it stops heartbeating and
  // streaming without any goodbye (and, when `close_transport`, its
  // connection drops like a TCP reset, giving the coordinator an immediate
  // death signal instead of a heartbeat timeout).
  struct Kill {
    int node = 0;
    std::uint64_t at_slot = 0;
    bool close_transport = false;
  };
  std::vector<Kill> kills;

  [[nodiscard]] bool any() const { return messages.any() || !kills.empty(); }
};

// Fate of one fabric frame transmission.
struct FabricMessageVerdict {
  bool drop = false;             // heartbeats only — data frames retransmit
  bool duplicate = false;        // deliver a second copy
  std::size_t truncate_to = 0;   // nonzero = deliver only this prefix
  double extra_delay_ms = 0.0;   // hold the frame back this long
};

// Keyed verdict for a frame on channel `endpoint` (the channel's worker
// index) in the direction given by `to_coordinator`. `attempt` is the
// retransmission index of this exact byte string on this
// endpoint/direction, tracked by the caller.
[[nodiscard]] FabricMessageVerdict fabric_message_verdict(
    const FabricFaultPlan& plan, std::uint32_t endpoint, bool to_coordinator,
    bool heartbeat, const void* frame, std::size_t frame_len,
    std::uint32_t attempt);

}  // namespace xmap::sim
