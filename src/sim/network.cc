#include "sim/network.h"

namespace xmap::sim {

Network::Attachment Network::connect(NodeId a, NodeId b,
                                     const LinkParams& params) {
  if (node_links_.size() < nodes_.size()) node_links_.resize(nodes_.size());

  const LinkId id = static_cast<LinkId>(links_.size());
  Link link;
  link.a = {a, nodes_[a]->interface_count_++};
  link.b = {b, nodes_[b]->interface_count_++};
  link.params = params;
  links_.push_back(link);

  node_links_[a].push_back(id);
  node_links_[b].push_back(id);
  bulk_cached_ = -1;
  run_prepared_ = false;
  return {id, link.a.iface, link.b.iface};
}

// Bulk eligibility: see the mode discussion in network.h. The per-link
// strict flags let a fault plan with duplication/jitter dials keep bulk
// delivery on every other link class.
void Network::recompute_bulk() {
  bool ok = bulk_user_enabled_ && !tracer_ &&
            (trace_ == nullptr || !trace_->at(obs::TraceLevel::kPacket));
  if (ok) {
    for (const Link& link : links_) {
      if (link.params.loss > 0 || link.params.rate_bps > 0) {
        // Sequential-RNG loss and transmit-queue serialization both depend
        // on global transmit order; no per-link fallback can save them.
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    for (const auto& node : nodes_) {
      if (node->time_sensitive()) {
        ok = false;
        break;
      }
    }
  }
  link_strict_.assign(links_.size(), 0);
  if (ok && faults_) {
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const LinkFaultParams& p =
          faults_->params(links_[i].params.fault_class);
      if (p.duplicate > 0 || p.jitter_ms > 0) link_strict_[i] = 1;
    }
  }
  if (ok && channels_.size() < links_.size() * 2) {
    channels_.resize(links_.size() * 2);
  }
  bulk_cached_ = ok ? 1 : 0;
}

void Network::transmit(NodeId from, int iface, pkt::Bytes packet) {
  assert_confined();
  // Unplugged port or node with no links: packet silently dropped.
  if (from >= node_links_.size() || iface < 0 ||
      static_cast<std::size_t>(iface) >= node_links_[from].size()) {
    return;
  }
  const LinkId link_id = node_links_[from][static_cast<std::size_t>(iface)];
  Link& link = links_[link_id];
  const bool is_a = link.a.node == from && link.a.iface == iface;

  if (link.params.loss > 0 && rng_.bernoulli(link.params.loss)) {
    ++link.stats.dropped;
    return;
  }

  FaultInjector::Verdict verdict;
  if (faults_) {
    verdict = faults_->on_transmit(link_id, link.params.fault_class,
                                   loop_.now(), packet);
    if (verdict.drop) {
      ++link.stats.dropped;
      return;
    }
    if (verdict.corrupt && packet.size() > pkt::kIpv6HeaderSize) {
      // Flip a couple of bits in the delivered copy: enough to break the
      // upper-layer checksum without changing the packet length. Flips are
      // confined to the L4 payload — real-world flips that rewrite the IPv6
      // header (addresses, hop limit) die at the next hop's checks and are
      // indistinguishable from loss, which the loss dials already model;
      // letting them through would also let corruption re-aim or resurrect
      // packets caught in routing loops, turning the loop amplifier into an
      // unbounded event cascade when combined with duplication.
      const std::size_t span = packet.size() - pkt::kIpv6HeaderSize;
      std::uint64_t k = verdict.corrupt_key;
      const int flips = 1 + static_cast<int>(k % 3);
      for (int i = 0; i < flips; ++i) {
        k = net::mix64(k);
        packet[pkt::kIpv6HeaderSize + k % span] ^=
            static_cast<std::uint8_t>(1u << ((k >> 32) % 8));
      }
    }
  }

  const std::size_t size = packet.size();

  // Serialization delay: the sender's transmit queue frees up after
  // size*8/rate seconds; packets queue FIFO behind earlier ones.
  SimTime depart = loop_.now();
  if (link.params.rate_bps > 0) {
    SimTime& next_free = is_a ? link.next_free_ab : link.next_free_ba;
    const SimTime ser =
        static_cast<SimTime>(size) * 8 * kSecond / link.params.rate_bps;
    depart = std::max(depart, next_free);
    next_free = depart + ser;
    depart += ser;
  }
  const SimTime arrive = depart + link.params.latency + verdict.extra_delay;

  if (is_a) {
    ++link.stats.packets_ab;
    link.stats.bytes_ab += size;
  } else {
    ++link.stats.packets_ba;
    link.stats.bytes_ba += size;
  }

  const std::uint32_t chan =
      static_cast<std::uint32_t>(link_id) * 2 + (is_a ? 0u : 1u);
  if (bulk_mode() && link_strict_[link_id] == 0) {
    // Bulk links never see duplicate/jitter verdicts (those dials force
    // the per-link strict flag), so one channel item per packet suffices.
    chan_append(chan, arrive, std::move(packet));
    return;
  }
  if (verdict.duplicate) {
    schedule_deliver(arrive + kMicrosecond, chan, packet);
  }
  schedule_deliver(arrive, chan, std::move(packet));
}

void Network::schedule_deliver(SimTime when, std::uint32_t chan,
                               pkt::Bytes packet) {
  std::uint32_t idx;
  if (!pkt_free_.empty()) {
    idx = pkt_free_.back();
    pkt_free_.pop_back();
    pkt_slab_[idx] = std::move(packet);
  } else {
    idx = static_cast<std::uint32_t>(pkt_slab_.size());
    pkt_slab_.push_back(std::move(packet));
  }
  loop_.schedule_event(when, kEventDeliver, idx, chan);
}

void Network::on_deliver_event(void* ctx, SimTime when, std::uint64_t a,
                               std::uint64_t b) {
  auto* net = static_cast<Network*>(ctx);
  const auto idx = static_cast<std::uint32_t>(a);
  pkt::Bytes packet = std::move(net->pkt_slab_[idx]);
  net->pkt_free_.push_back(idx);
  net->deliver_one(static_cast<std::uint32_t>(b), when, std::move(packet));
}

void Network::chan_append(std::uint32_t chan, SimTime stamp,
                          pkt::Bytes packet) {
  assert(chan < channels_.size());  // sized by recompute_bulk()
  Channel& c = channels_[chan];
  if (c.items.size() > c.head && stamp < c.items.back().stamp) {
    // A drain cascade produced a lower arrival stamp than an already-queued
    // one (trains of different channels interleave out of stamp order).
    // upper_bound keeps FIFO transmit order for equal stamps.
    auto pos = std::upper_bound(
        c.items.begin() + c.head, c.items.end(), stamp,
        [](SimTime s, const ChanItem& item) { return s < item.stamp; });
    c.items.insert(pos, ChanItem{stamp, std::move(packet)});
  } else {
    c.items.push_back(ChanItem{stamp, std::move(packet)});
  }
  const SimTime head_stamp = c.items[c.head].stamp;
  if (head_stamp < c.armed_when) {
    c.armed_when = head_stamp;
    loop_.schedule_event(head_stamp, kEventChannelDrain, chan, head_stamp);
  }
}

void Network::on_drain_event(void* ctx, SimTime /*when*/, std::uint64_t a,
                             std::uint64_t b) {
  auto* net = static_cast<Network*>(ctx);
  Channel& c = net->channels_[static_cast<std::uint32_t>(a)];
  EventLoop& loop = net->loop_;
  // Payload b carries the armed stamp: an event superseded by a lower
  // re-arm (its work already done by the earlier drain) returns without
  // touching the channel, so stale drains never multiply.
  if (static_cast<SimTime>(b) != c.armed_when) return;
  // Deliver the run of packets whose stamps precede the bulk horizon —
  // and, when an order observer (checkpoint hook) is registered, the next
  // queued event, which reproduces exact per-event interleaving. Indices,
  // not iterators: a delivery can cascade into an append on this very
  // channel.
  const SimTime horizon = loop.bulk_horizon();
  const bool strict_order = net->order_observed_;
  while (c.head < c.items.size()) {
    const SimTime stamp = c.items[c.head].stamp;
    if (stamp > horizon || (strict_order && stamp > loop.next_when())) break;
    pkt::Bytes packet = std::move(c.items[c.head].bytes);
    ++c.head;
    loop.set_time(stamp);
    net->deliver_one(static_cast<std::uint32_t>(a), stamp, std::move(packet));
  }
  if (c.head >= c.items.size()) {
    c.items.clear();
    c.head = 0;
    c.armed_when = kNeverTime;
  } else {
    const SimTime head_stamp = c.items[c.head].stamp;
    c.armed_when = head_stamp;
    loop.schedule_event(head_stamp, kEventChannelDrain,
                        static_cast<std::uint32_t>(a), head_stamp);
  }
}

void Network::deliver_one(std::uint32_t chan, SimTime when,
                          pkt::Bytes packet) {
  const Link& link = links_[chan >> 1];
  const bool to_b = (chan & 1) == 0;  // direction 0 = a->b
  const Endpoint& dest = to_b ? link.b : link.a;
  const NodeId from = to_b ? link.a.node : link.b.node;

  if (faults_ && faults_->node_silent(dest.node, when)) {
    faults_->note_silent_drop(dest.node, when);
    return;
  }
  ++packets_delivered_;
  if (delivered_cell_ != nullptr) ++*delivered_cell_;
  if (trace_ != nullptr && trace_->at(obs::TraceLevel::kPacket)) {
    obs::TraceEvent e;
    e.ts = when;
    e.name = "packet_hop";
    e.cat = "net";
    e.i0 = {"from", from};
    e.i1 = {"to", dest.node};
    e.i2 = {"bytes", packet.size()};
    trace_->add(e);
  }
  if (tracer_) tracer_(when, from, dest.node, packet);
  nodes_[dest.node]->receive(std::move(packet), dest.iface);
}

}  // namespace xmap::sim
