#include "sim/network.h"

namespace xmap::sim {

Network::Attachment Network::connect(NodeId a, NodeId b,
                                     const LinkParams& params) {
  if (node_links_.size() < nodes_.size()) node_links_.resize(nodes_.size());

  const LinkId id = static_cast<LinkId>(links_.size());
  Link link;
  link.a = {a, nodes_[a]->interface_count_++};
  link.b = {b, nodes_[b]->interface_count_++};
  link.params = params;
  links_.push_back(link);

  node_links_[a].push_back(id);
  node_links_[b].push_back(id);
  return {id, link.a.iface, link.b.iface};
}

void Network::transmit(NodeId from, int iface, pkt::Bytes packet) {
  assert_confined();
  // Unplugged port or node with no links: packet silently dropped.
  if (from >= node_links_.size() || iface < 0 ||
      static_cast<std::size_t>(iface) >= node_links_[from].size()) {
    return;
  }
  Link& link = links_[node_links_[from][static_cast<std::size_t>(iface)]];
  const bool is_a = link.a.node == from && link.a.iface == iface;

  if (link.params.loss > 0 && rng_.bernoulli(link.params.loss)) {
    ++link.stats.dropped;
    return;
  }

  const Endpoint dest = is_a ? link.b : link.a;
  const std::size_t size = packet.size();

  // Serialization delay: the sender's transmit queue frees up after
  // size*8/rate seconds; packets queue FIFO behind earlier ones.
  SimTime depart = loop_.now();
  if (link.params.rate_bps > 0) {
    SimTime& next_free = is_a ? link.next_free_ab : link.next_free_ba;
    const SimTime ser =
        static_cast<SimTime>(size) * 8 * kSecond / link.params.rate_bps;
    depart = std::max(depart, next_free);
    next_free = depart + ser;
    depart += ser;
  }
  const SimTime arrive = depart + link.params.latency;

  if (is_a) {
    ++link.stats.packets_ab;
    link.stats.bytes_ab += size;
  } else {
    ++link.stats.packets_ba;
    link.stats.bytes_ba += size;
  }

  loop_.schedule_at(
      arrive, [this, from, dest, p = std::move(packet)]() mutable {
        ++packets_delivered_;
        if (tracer_) tracer_(loop_.now(), from, dest.node, p);
        nodes_[dest.node]->receive(p, dest.iface);
      });
}

}  // namespace xmap::sim
