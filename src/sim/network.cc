#include "sim/network.h"

namespace xmap::sim {

Network::Attachment Network::connect(NodeId a, NodeId b,
                                     const LinkParams& params) {
  if (node_links_.size() < nodes_.size()) node_links_.resize(nodes_.size());

  const LinkId id = static_cast<LinkId>(links_.size());
  Link link;
  link.a = {a, nodes_[a]->interface_count_++};
  link.b = {b, nodes_[b]->interface_count_++};
  link.params = params;
  links_.push_back(link);

  node_links_[a].push_back(id);
  node_links_[b].push_back(id);
  return {id, link.a.iface, link.b.iface};
}

void Network::transmit(NodeId from, int iface, pkt::Bytes packet) {
  assert_confined();
  // Unplugged port or node with no links: packet silently dropped.
  if (from >= node_links_.size() || iface < 0 ||
      static_cast<std::size_t>(iface) >= node_links_[from].size()) {
    return;
  }
  const LinkId link_id = node_links_[from][static_cast<std::size_t>(iface)];
  Link& link = links_[link_id];
  const bool is_a = link.a.node == from && link.a.iface == iface;

  if (link.params.loss > 0 && rng_.bernoulli(link.params.loss)) {
    ++link.stats.dropped;
    return;
  }

  FaultInjector::Verdict verdict;
  if (faults_) {
    verdict = faults_->on_transmit(link_id, link.params.fault_class,
                                   loop_.now(), packet);
    if (verdict.drop) {
      ++link.stats.dropped;
      return;
    }
    if (verdict.corrupt && packet.size() > pkt::kIpv6HeaderSize) {
      // Flip a couple of bits in the delivered copy: enough to break the
      // upper-layer checksum without changing the packet length. Flips are
      // confined to the L4 payload — real-world flips that rewrite the IPv6
      // header (addresses, hop limit) die at the next hop's checks and are
      // indistinguishable from loss, which the loss dials already model;
      // letting them through would also let corruption re-aim or resurrect
      // packets caught in routing loops, turning the loop amplifier into an
      // unbounded event cascade when combined with duplication.
      const std::size_t span = packet.size() - pkt::kIpv6HeaderSize;
      std::uint64_t k = verdict.corrupt_key;
      const int flips = 1 + static_cast<int>(k % 3);
      for (int i = 0; i < flips; ++i) {
        k = net::mix64(k);
        packet[pkt::kIpv6HeaderSize + k % span] ^=
            static_cast<std::uint8_t>(1u << ((k >> 32) % 8));
      }
    }
  }

  const Endpoint dest = is_a ? link.b : link.a;
  const std::size_t size = packet.size();

  // Serialization delay: the sender's transmit queue frees up after
  // size*8/rate seconds; packets queue FIFO behind earlier ones.
  SimTime depart = loop_.now();
  if (link.params.rate_bps > 0) {
    SimTime& next_free = is_a ? link.next_free_ab : link.next_free_ba;
    const SimTime ser =
        static_cast<SimTime>(size) * 8 * kSecond / link.params.rate_bps;
    depart = std::max(depart, next_free);
    next_free = depart + ser;
    depart += ser;
  }
  const SimTime arrive = depart + link.params.latency + verdict.extra_delay;

  if (is_a) {
    ++link.stats.packets_ab;
    link.stats.bytes_ab += size;
  } else {
    ++link.stats.packets_ba;
    link.stats.bytes_ba += size;
  }

  const auto deliver = [this, from, dest](const pkt::Bytes& p) {
    if (faults_ && faults_->node_silent(dest.node, loop_.now())) {
      faults_->note_silent_drop(dest.node, loop_.now());
      return;
    }
    ++packets_delivered_;
    if (delivered_cell_ != nullptr) ++*delivered_cell_;
    if (trace_ != nullptr && trace_->at(obs::TraceLevel::kPacket)) {
      obs::TraceEvent e;
      e.ts = loop_.now();
      e.name = "packet_hop";
      e.cat = "net";
      e.i0 = {"from", from};
      e.i1 = {"to", dest.node};
      e.i2 = {"bytes", p.size()};
      trace_->add(e);
    }
    if (tracer_) tracer_(loop_.now(), from, dest.node, p);
    nodes_[dest.node]->receive(p, dest.iface);
  };
  if (verdict.duplicate) {
    loop_.schedule_at(arrive + kMicrosecond,
                      [deliver, p = packet] { deliver(p); });
  }
  loop_.schedule_at(arrive,
                    [deliver, p = std::move(packet)] { deliver(p); });
}

}  // namespace xmap::sim
