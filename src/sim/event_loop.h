// Discrete-event simulation core.
//
// A single-threaded event loop with a virtual clock in nanoseconds. All
// substrate behaviour (link latency, serialization delay, scanner send
// pacing, service response times) is expressed as scheduled events, which
// makes every experiment fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "netbase/pool.h"

namespace xmap::sim {

// Simulated time in nanoseconds since the start of the run.
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// Move-only callable with fixed inline storage — the event loop's closure
// type. std::function heap-allocates any capture beyond its tiny SBO
// (libstdc++: 16 bytes), which on the scan hot path means one allocation
// per scheduled send and one per simulated hop delivery. Every closure the
// substrate schedules fits in kInlineFunctionCapacity bytes; captures that
// can't (cold paths only) should wrap themselves in a std::function, which
// fits by definition.
inline constexpr std::size_t kInlineFunctionCapacity = 88;

class InlineFunction {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& fn) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineFunctionCapacity,
                  "capture too large for InlineFunction — trim the capture "
                  "or box it in a std::function");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    relocate_ = [](void* dst, void* src) {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(buf_); }

 private:
  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }
  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineFunctionCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  void schedule_at(SimTime when, InlineFunction fn) {
    queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(fn)});
  }
  void schedule_after(SimTime delay, InlineFunction fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs one event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // top() is const-ref by contract, but moving the closure out before
    // pop() is safe: the heap rebalance only relocates the hollowed-out
    // event. Saves a full Event copy (and its captured packet) per event.
    Event& ev = const_cast<Event&>(queue_.top());
    now_ = ev.when;
    InlineFunction fn = std::move(ev.fn);
    queue_.pop();
    ++processed_;
    fn();
    return true;
  }

  // Runs until the queue is empty or `max_events` have been processed.
  void run(std::uint64_t max_events = ~std::uint64_t{0}) {
    std::uint64_t budget = max_events;
    while (budget-- > 0 && step()) {
    }
  }

  // Runs events with timestamps <= `deadline`; the clock ends at `deadline`
  // if the queue drains or only later events remain.
  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    InlineFunction fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Pool-backed storage: the queue's backing vector grows through the
  // thread-local BytePool, so a warmed-up thread schedules events without
  // touching the global heap.
  std::priority_queue<Event, net::PoolVector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace xmap::sim
