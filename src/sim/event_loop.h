// Discrete-event simulation core.
//
// A single-threaded event loop with a virtual clock in nanoseconds. All
// substrate behaviour (link latency, serialization delay, scanner send
// pacing, service response times) is expressed as scheduled events, which
// makes every experiment fully deterministic for a given seed.
//
// The queue is a timing wheel, not a heap. Scan pacing generates a dense
// stream of near-future timestamps (sends one gap apart, deliveries one
// link latency ahead), for which a binary heap pays O(log n) pointer-heavy
// sifts per operation on every schedule and pop. Here an event lands in a
// 4096-slot wheel of 1.024 us ticks with one store and a bitmap bit; pops
// walk the bitmap. Only the slot under the cursor is ordered — as a small
// binary heap, so out-of-order appends into it (bulk-train re-arms) cost
// O(log slot) instead of a re-sort. Far-future events (cooldown expiry, spaced
// retransmit blocks, flap epochs) overflow into a small min-heap, and they
// re-enter the wheel wholesale as the window slides over them. Pop order
// is exactly (timestamp, schedule seq) — identical to the old heap — which
// the wheel/heap equivalence property test pins down.
//
// Event records are fixed-size PODs. The common kinds (packet delivery,
// bulk channel drains, scanner block sends) dispatch through a registered
// handler table with two payload words, so the hot path never constructs,
// relocates or indirectly invokes a closure. Closure events still exist
// for cold paths: the callable lives in a stable side slab and the record
// carries its index, so heap/wheel data movement never runs user code.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "netbase/compiler.h"
#include "netbase/pool.h"

namespace xmap::sim {

// Simulated time in nanoseconds since the start of the run.
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// "No such time": later than every schedulable timestamp.
inline constexpr SimTime kNeverTime = ~SimTime{0};

// Move-only callable with fixed inline storage — the event loop's closure
// type. std::function heap-allocates any capture beyond its tiny SBO
// (libstdc++: 16 bytes). Closures that the substrate schedules fit in
// kInlineFunctionCapacity bytes; captures that can't (cold paths only)
// should wrap themselves in a std::function, which fits by definition.
inline constexpr std::size_t kInlineFunctionCapacity = 88;

class InlineFunction {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& fn) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineFunctionCapacity,
                  "capture too large for InlineFunction — trim the capture "
                  "or box it in a std::function");
    static_assert(alignof(Fn) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    relocate_ = [](void* dst, void* src) {
      Fn* s = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(buf_); }

 private:
  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }
  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineFunctionCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

// Typed event kinds. Kind 0 is the closure fallback; the others dispatch
// through the handler table (see EventLoop::register_handler). The set is
// small and closed on purpose: these are the simulator's hot paths.
enum : std::uint32_t {
  kEventClosure = 0,      // payload a = closure slab index
  kEventDeliver = 1,      // sim::Network: one packet delivery
  kEventChannelDrain = 2, // sim::Network: bulk link-channel drain
  kEventScanBlock = 3,    // scan::SimChannelScanner: probe-block send train
  kEventKindCount = 8,
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // Typed-event dispatch target: (ctx, event timestamp, payload a, b).
  using Handler = void (*)(void* ctx, SimTime when, std::uint64_t a,
                           std::uint64_t b);
  void register_handler(std::uint32_t kind, void* ctx, Handler fn) {
    assert(kind > kEventClosure && kind < kEventKindCount);
    handlers_[kind] = {ctx, fn};
  }

  // Schedules a typed POD event — no closure, no allocation beyond the
  // wheel slot itself.
  void schedule_event(SimTime when, std::uint32_t kind, std::uint64_t a,
                      std::uint64_t b) {
    if (XMAP_UNLIKELY(when < now_)) {
      // A past timestamp is a latent determinism bug in the caller (the
      // event would run at a load-dependent time, not the intended one):
      // trap in debug builds, clamp-and-count in release so production
      // runs degrade exactly as the old silent-clamp behaviour did —
      // except now the sim_events_clamped_total counter makes it visible.
      assert(when >= now_ &&
             "EventLoop: event scheduled in the past (latent determinism "
             "bug in the caller)");
      ++clamped_;
      if (clamp_cell_ != nullptr) ++*clamp_cell_;
      when = now_;
    }
    push_record(Record{when, next_seq_++, a, b, kind, 0});
  }

  void schedule_at(SimTime when, InlineFunction fn) {
    std::uint32_t ci;
    if (!closure_free_.empty()) {
      ci = closure_free_.back();
      closure_free_.pop_back();
      closures_[ci] = std::move(fn);
    } else {
      ci = static_cast<std::uint32_t>(closures_.size());
      closures_.push_back(std::move(fn));
    }
    schedule_event(when, kEventClosure, ci, 0);
  }
  void schedule_after(SimTime delay, InlineFunction fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Events scheduled into the past since construction (release builds
  // clamp them to now; debug builds assert). Wired to the
  // sim_events_clamped_total counter by Network::set_obs.
  [[nodiscard]] std::uint64_t clamped() const { return clamped_; }
  void set_clamp_cell(std::uint64_t* cell) { clamp_cell_ = cell; }

  // ---- Bulk-processing contract -------------------------------------------
  //
  // A bulk handler (channel drain, scan block) processes a train of
  // sub-items inside one popped event, advancing the clock to each item's
  // precomputed analytic stamp via set_time(). It must not process items
  // stamped beyond bulk_horizon(): run_until() lowers the horizon to its
  // deadline so a train straddling the deadline re-arms itself instead of
  // overshooting. After a train the loop clock may be ahead of the next
  // queued event; the next pop simply rewinds it. Causality is preserved
  // because every stamp carried by a train is a pure function of the
  // schedule, never of processing order.
  [[nodiscard]] SimTime bulk_horizon() const { return bulk_horizon_; }
  void set_time(SimTime t) {
    assert(t <= bulk_horizon_);
    now_ = t;
  }

  // Timestamp of the next queued event, or kNeverTime when the queue is
  // empty. Bulk handlers cap their trains at this bound so every delivery
  // happens with all earlier-stamped events already processed.
  [[nodiscard]] SimTime next_when() {
    if (!prepare(~std::uint64_t{0})) return kNeverTime;
    return slots_[cur_tick_ & kSlotMask].front().when;
  }

  // Runs one event; returns false when the queue is empty.
  bool step() {
    if (!prepare(~std::uint64_t{0})) return false;
    pop_dispatch();
    return true;
  }

  // Runs until the queue is empty or `max_events` have been processed.
  void run(std::uint64_t max_events = ~std::uint64_t{0}) {
    std::uint64_t budget = max_events;
    while (budget-- > 0 && step()) {
    }
  }

  // Runs events with timestamps <= `deadline`; the clock ends at `deadline`
  // if the queue drains or only later events remain. Bulk trains stop at
  // the deadline too (see bulk_horizon above).
  void run_until(SimTime deadline) {
    const SimTime saved_horizon = bulk_horizon_;
    bulk_horizon_ = deadline;
    const std::uint64_t deadline_tick = deadline >> kSlotShift;
    while (prepare(deadline_tick)) {
      const net::PoolVector<Record>& v = slots_[cur_tick_ & kSlotMask];
      if (v.front().when > deadline) break;
      pop_dispatch();
    }
    bulk_horizon_ = saved_horizon;
    if (now_ < deadline) now_ = deadline;
  }

 private:
  // One scheduled event: fixed-size, trivially copyable, 40 bytes. The
  // wheel and the overflow heap move these with plain stores — no
  // user-code relocation ever runs during queue maintenance.
  struct Record {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint64_t a;    // payload word (closure slab index for kind 0)
    std::uint64_t b;    // payload word
    std::uint32_t kind;
    std::uint32_t pad_;
  };
  struct LaterRec {
    bool operator()(const Record& x, const Record& y) const {
      if (x.when != y.when) return x.when > y.when;
      return x.seq > y.seq;
    }
  };

  // 4096 slots of 2^10 ns: a ~4.19 ms look-ahead window, covering link
  // latencies and paced send gaps. Events beyond it wait in the overflow
  // heap and are swept into the wheel as the window slides.
  static constexpr int kSlotShift = 10;
  static constexpr int kSlotBits = 12;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kSlotMask = kSlots - 1;

  void push_record(const Record& r) {
    const std::uint64_t tick = r.when >> kSlotShift;
    // tick >= cur_tick_ holds because when >= now_ and the cursor never
    // rests past the earliest queued event (run_until parks it at the
    // deadline tick, below every event it skipped).
    if (tick - cur_tick_ < kSlots) {
      push_slot(r, tick);
    } else {
      overflow_.push(r);
    }
    ++live_;
  }

  void push_slot(const Record& r, std::uint64_t tick) {
    net::PoolVector<Record>& v = slots_[tick & kSlotMask];
    v.push_back(r);
    // Future slots take plain O(1) appends and are heapified only when the
    // cursor reaches them. The current slot is already a heap while being
    // drained, so appends there (drain re-arms, block resumes) sift in at
    // O(log n) — dense same-slot churn never triggers a full re-sort.
    if (tick == cur_tick_ && cur_heaped_) {
      std::push_heap(v.begin(), v.end(), LaterRec{});
    }
    bitmap_[(tick & kSlotMask) >> 6] |= std::uint64_t{1}
                                        << ((tick & kSlotMask) & 63);
  }

  // Distance (1..kSlots-1) to the next nonempty slot after the cursor, or
  // 0 when the wheel holds nothing beyond the current slot. The window is
  // exactly kSlots wide, so circular order equals timestamp order.
  [[nodiscard]] std::uint32_t next_bit_distance() const {
    const std::uint32_t cur = static_cast<std::uint32_t>(cur_tick_) & kSlotMask;
    for (std::uint32_t probed = 1; probed <= kSlotMask;) {
      const std::uint32_t pos = (cur + probed) & kSlotMask;
      const std::uint32_t word = pos >> 6;
      std::uint64_t bits = bitmap_[word] >> (pos & 63);
      if (bits != 0) {
        const auto d =
            probed + static_cast<std::uint32_t>(std::countr_zero(bits));
        if (d <= kSlotMask) return d;
        return 0;
      }
      probed += 64 - (pos & 63);
    }
    return 0;
  }

  // Positions the cursor on the next due record, heapifying its slot and
  // sweeping overflow events that the sliding window now covers. Stops
  // (returning false) when the queue is empty or the next record's tick is
  // beyond `max_tick` — in which case the cursor parks at max_tick so later
  // schedules can never land behind it.
  bool prepare(std::uint64_t max_tick) {
    for (;;) {
      net::PoolVector<Record>& v = slots_[cur_tick_ & kSlotMask];
      if (!v.empty()) {
        if (!cur_heaped_) {
          std::make_heap(v.begin(), v.end(), LaterRec{});
          cur_heaped_ = true;
        }
        return true;
      }
      cur_heaped_ = false;
      bitmap_[((cur_tick_ & kSlotMask) >> 6)] &=
          ~(std::uint64_t{1} << (cur_tick_ & 63));
      // Sweep far-future events the window has slid over.
      while (!overflow_.empty() &&
             (overflow_.top().when >> kSlotShift) - cur_tick_ < kSlots) {
        const Record r = overflow_.top();
        overflow_.pop();
        push_slot(r, r.when >> kSlotShift);
      }
      if (!v.empty()) continue;  // overflow sweep refilled the current slot
      const std::uint32_t d = next_bit_distance();
      std::uint64_t target;
      if (d != 0) {
        target = cur_tick_ + d;
      } else if (!overflow_.empty()) {
        target = overflow_.top().when >> kSlotShift;
      } else {
        if (cur_tick_ < max_tick && max_tick != ~std::uint64_t{0}) {
          cur_tick_ = max_tick;
        }
        return false;
      }
      if (target > max_tick) {
        if (cur_tick_ < max_tick) cur_tick_ = max_tick;
        return false;
      }
      cur_tick_ = target;
    }
  }

  void pop_dispatch() {
    net::PoolVector<Record>& v = slots_[cur_tick_ & kSlotMask];
    std::pop_heap(v.begin(), v.end(), LaterRec{});
    const Record r = v.back();  // copy: handlers may grow/move the slot
    v.pop_back();
    now_ = r.when;
    ++processed_;
    --live_;
    if (r.kind == kEventClosure) {
      const auto ci = static_cast<std::uint32_t>(r.a);
      InlineFunction fn = std::move(closures_[ci]);
      closure_free_.push_back(ci);
      fn();
    } else {
      const HandlerEntry& h = handlers_[r.kind];
      h.fn(h.ctx, r.when, r.a, r.b);
    }
  }

  // Pool-backed storage throughout: slot vectors, the overflow heap's
  // backing vector and the closure slab all grow through the thread-local
  // BytePool, so a warmed-up thread schedules events without touching the
  // global heap.
  net::PoolVector<Record> slots_[kSlots];
  std::uint64_t bitmap_[kSlots / 64] = {};
  std::uint64_t cur_tick_ = 0;
  bool cur_heaped_ = false;  // current slot heapified (min on (when, seq))
  std::priority_queue<Record, net::PoolVector<Record>, LaterRec> overflow_;

  struct HandlerEntry {
    void* ctx = nullptr;
    Handler fn = nullptr;
  };
  HandlerEntry handlers_[kEventKindCount];

  net::PoolVector<InlineFunction> closures_;
  net::PoolVector<std::uint32_t> closure_free_;

  SimTime now_ = 0;
  SimTime bulk_horizon_ = kNeverTime;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t clamped_ = 0;
  std::uint64_t* clamp_cell_ = nullptr;
};

}  // namespace xmap::sim
