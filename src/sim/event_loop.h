// Discrete-event simulation core.
//
// A single-threaded event loop with a virtual clock in nanoseconds. All
// substrate behaviour (link latency, serialization delay, scanner send
// pacing, service response times) is expressed as scheduled events, which
// makes every experiment fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xmap::sim {

// Simulated time in nanoseconds since the start of the run.
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  void schedule_at(SimTime when, std::function<void()> fn) {
    queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(fn)});
  }
  void schedule_after(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs one event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // The queue stores const refs; move the callable out before popping.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++processed_;
    ev.fn();
    return true;
  }

  // Runs until the queue is empty or `max_events` have been processed.
  void run(std::uint64_t max_events = ~std::uint64_t{0}) {
    std::uint64_t budget = max_events;
    while (budget-- > 0 && step()) {
    }
  }

  // Runs events with timestamps <= `deadline`; the clock ends at `deadline`
  // if the queue drains or only later events remain.
  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) step();
    if (now_ < deadline) now_ = deadline;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace xmap::sim
