// Simulated network graph: nodes joined by point-to-point links.
//
// Nodes exchange wire-format IPv6 packets (pkt::Bytes). Links model
// propagation latency, serialization delay (bit rate) and random loss, and
// keep per-direction traffic counters — the routing-loop amplification
// experiments read those counters directly.
//
// Packet delivery runs in one of two modes:
//
//  * Strict mode: every hop is one typed event (kEventDeliver), popped in
//    exact (timestamp, seq) order. Always correct, used whenever anything
//    order-sensitive is attached (per-packet tracing, a delivery tracer,
//    sequential-RNG link loss, serialization queues, or a node whose
//    observable behaviour depends on cross-link packet interleaving).
//
//  * Bulk mode: each (link, direction) owns a persistent stamp-sorted
//    channel of in-flight packets; one kEventChannelDrain event delivers a
//    whole run of them, advancing the virtual clock to each packet's
//    precomputed arrival stamp. Drains never run past the next queued
//    event's timestamp, so every delivery still happens with all
//    earlier-stamped events already processed — per-channel order is exact
//    (timestamp, transmit-order ties), and cross-channel ties are the only
//    freedom, which the eligibility gates restrict to nodes that declare
//    themselves order-insensitive (time_sensitive() == false). Fault
//    verdicts are keyed off (link, packet bytes, attempt, stamp), so
//    drop/corrupt/flap dials batch; duplication and jitter change arrival
//    times, so links under those dials individually fall back to strict
//    per-packet events.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "netbase/random.h"
#include "packet/packet.h"
#include "sim/event_loop.h"
#include "sim/faults.h"

namespace xmap::sim {

inline constexpr NodeId kInvalidNode = ~NodeId{0};

class Network;

// Base class for everything attached to the network (routers, hosts, the
// scanner itself).
class Node {
 public:
  virtual ~Node() = default;

  // Called when a packet arrives on interface `iface` (per-node numbering in
  // order of connect() calls). The packet is handed over by value so
  // forwarding nodes can patch it in place and move it onward without a
  // per-hop copy.
  virtual void receive(pkt::Bytes packet, int iface) = 0;

  // Bulk-delivery eligibility. Return false when this node's observable
  // behaviour is a pure function of each packet's bytes and arrival
  // timestamp (counters that only ever sum are fine). Return true (the
  // conservative default) when behaviour depends on the interleaving of
  // packets across different links — e.g. a token-bucket rate limiter, or
  // a provisioning protocol whose allocations follow request order. One
  // time-sensitive node pins the whole network to strict mode.
  [[nodiscard]] virtual bool time_sensitive() const { return true; }

  // Called once before event processing starts (and again after topology
  // changes). Hook for deferred setup that would otherwise run lazily
  // inside the measured hot path — routers compile their LC-trie
  // forwarding index here. Must not schedule events or send packets.
  virtual void prepare_run() {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Network* network() const { return network_; }
  [[nodiscard]] int interface_count() const { return interface_count_; }

 protected:
  // Sends a packet out of one of this node's interfaces.
  void send(int iface, pkt::Bytes packet);

 private:
  friend class Network;
  Network* network_ = nullptr;
  NodeId id_ = kInvalidNode;
  int interface_count_ = 0;
};

struct LinkParams {
  SimTime latency = 100 * kMicrosecond;  // one-way propagation
  double loss = 0.0;                     // per-packet drop probability
  // Serialization rate in bits per simulated second; 0 = infinite.
  std::uint64_t rate_bps = 0;
  // Fault-plan scope: which LinkFaultParams of an installed FaultPlan
  // applies to this link (builders tag core vs access tiers).
  LinkClass fault_class = LinkClass::kOther;
};

struct LinkStats {
  std::uint64_t packets_ab = 0;  // delivered a -> b
  std::uint64_t packets_ba = 0;
  std::uint64_t bytes_ab = 0;
  std::uint64_t bytes_ba = 0;
  std::uint64_t dropped = 0;

  [[nodiscard]] std::uint64_t packets_total() const {
    return packets_ab + packets_ba;
  }
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {
    loop_.register_handler(kEventDeliver, this, &Network::on_deliver_event);
    loop_.register_handler(kEventChannelDrain, this, &Network::on_drain_event);
  }
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] SimTime now() const { return loop_.now(); }

  // Takes ownership; returns the node for convenience.
  template <typename T>
  T* add_node(std::unique_ptr<T> node) {
    T* raw = node.get();
    raw->network_ = this;
    raw->id_ = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(node));
    bulk_cached_ = -1;
    run_prepared_ = false;
    return raw;
  }
  template <typename T, typename... Args>
  T* make_node(Args&&... args) {
    return add_node(std::make_unique<T>(std::forward<Args>(args)...));
  }

  [[nodiscard]] Node* node(NodeId id) const { return nodes_[id].get(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // Connects two nodes; allocates the next interface index on each side and
  // returns {link id, iface on a, iface on b}.
  struct Attachment {
    LinkId link;
    int iface_a;
    int iface_b;
  };
  Attachment connect(NodeId a, NodeId b, const LinkParams& params = {});

  [[nodiscard]] const LinkStats& link_stats(LinkId id) const {
    return links_[id].stats;
  }
  void reset_link_stats(LinkId id) { links_[id].stats = LinkStats{}; }

  // Runs the event loop to completion (bounded by max_events as a backstop).
  void run(std::uint64_t max_events = ~std::uint64_t{0}) {
    assert_confined();
    prepare();
    loop_.run(max_events);
  }
  void run_until(SimTime deadline) {
    assert_confined();
    prepare();
    loop_.run_until(deadline);
  }

  // Gives every node its prepare_run() callback (route-table compiles and
  // similar deferred setup). run()/run_until() call this automatically the
  // first time after a topology change; benchmarks call it explicitly so
  // setup cost stays out of the timed region.
  void prepare() {
    if (run_prepared_) return;
    run_prepared_ = true;
    for (const auto& node : nodes_) node->prepare_run();
  }

  // A Network (and everything attached to it) is thread-confined: there is
  // no internal locking, so one thread must own all event processing. The
  // parallel engine gives each worker thread its own deterministic replica.
  // The owner is captured on the first run()/run_until() call; debug builds
  // assert on cross-thread use.
  void assert_confined() {
#ifndef NDEBUG
    if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
    assert(owner_ == std::this_thread::get_id() &&
           "sim::Network used from a second thread (not thread-safe)");
#endif
  }

  [[nodiscard]] std::uint64_t packets_delivered() const {
    return packets_delivered_;
  }

  // True when the network delivers through bulk channels (recomputed
  // lazily after any topology/fault/observability change). The scanner
  // checks this to decide whether block-granular send events are safe.
  [[nodiscard]] bool bulk_mode() {
    if (bulk_cached_ < 0) recompute_bulk();
    return bulk_cached_ != 0;
  }
  // Declares that something observes event-processing order, not just
  // event stamps — today that is a checkpoint hook, whose "every record
  // below the cursor is in hand" claim only holds under exact global
  // stamp-order processing. While set, bulk trains (channel drains, scan
  // block sweeps) cap every item at the loop's next queued event, exactly
  // reproducing per-event interleaving. Without an observer the caps drop
  // and a drain delivers its whole backlog in one dispatch; stamps are
  // analytic either way, so stamped outputs are identical.
  void set_order_observed(bool observed) { order_observed_ = observed; }
  [[nodiscard]] bool order_observed() const { return order_observed_; }

  // Master switch, default on. The bulk-vs-strict equivalence tests turn
  // it off to produce the per-packet reference run. Set before run().
  void set_bulk_enabled(bool enabled) {
    bulk_user_enabled_ = enabled;
    bulk_cached_ = -1;
  }

  // Delivery tracer: called for every delivered packet (after loss, at
  // arrival time) — a pcap-style tap for debugging and the examples.
  // Pass nullptr to disable. Forces strict per-packet delivery.
  using Tracer = std::function<void(SimTime when, NodeId from, NodeId to,
                                    const pkt::Bytes& packet)>;
  void set_tracer(Tracer tracer) {
    tracer_ = std::move(tracer);
    bulk_cached_ = -1;
  }

  // Installs (or replaces) the fault-injection layer. A plan with
  // seed == 0 inherits the network seed, so one seed still pins the whole
  // run. Returns the injector for silent-candidate registration.
  FaultInjector* install_faults(const FaultPlan& plan) {
    faults_ = std::make_unique<FaultInjector>(plan, seed_);
    faults_->set_obs(trace_, metrics_);
    bulk_cached_ = -1;
    return faults_.get();
  }
  [[nodiscard]] FaultInjector* faults() const { return faults_.get(); }

  // Attaches observability sinks (caller-owned, thread-confined with this
  // network). At packet trace level every delivery emits a "packet_hop"
  // event stamped with the sim clock; ICMPv6 rate-limiter suppressions
  // reported by devices via note_icmp_rate_limited() are counted and
  // traced. Propagates to the installed fault injector (and to any
  // installed later).
  void set_obs(obs::TraceBuffer* trace, obs::MetricsShard* metrics) {
    trace_ = trace;
    metrics_ = metrics;
    delivered_cell_ =
        metrics != nullptr
            ? metrics->counter("sim_packets_delivered", {},
                               "Packets delivered by the simulated substrate")
            : nullptr;
    icmp_limited_cell_ =
        metrics != nullptr
            ? metrics->counter(
                  "icmp_rate_limited", {},
                  "ICMPv6 errors suppressed by device token buckets")
            : nullptr;
    clamped_cell_ =
        metrics != nullptr
            ? metrics->counter("sim_events_clamped_total", {},
                               "Events scheduled into the past and clamped "
                               "to now (latent determinism bug)")
            : nullptr;
    loop_.set_clamp_cell(clamped_cell_);
    if (faults_) faults_->set_obs(trace, metrics);
    bulk_cached_ = -1;
  }

  // Called by device nodes when their RFC 4443 ICMPv6 token bucket denies
  // an error transmission.
  void note_icmp_rate_limited(NodeId node) {
    if (icmp_limited_cell_ != nullptr) ++*icmp_limited_cell_;
    if (trace_ != nullptr && trace_->at(obs::TraceLevel::kPacket)) {
      obs::TraceEvent e;
      e.ts = loop_.now();
      e.name = "icmp_rate_limited";
      e.cat = "net";
      e.i0 = {"node", node};
      trace_->add(e);
    }
  }

 private:
  friend class Node;

  struct Endpoint {
    NodeId node = kInvalidNode;
    int iface = -1;
  };
  struct Link {
    Endpoint a;
    Endpoint b;
    LinkParams params;
    LinkStats stats;
    SimTime next_free_ab = 0;  // transmit-queue model per direction
    SimTime next_free_ba = 0;
  };

  // One in-flight packet inside a bulk channel.
  struct ChanItem {
    SimTime stamp;  // arrival time
    pkt::Bytes bytes;
  };
  // Per-(link, direction) delivery channel: `items[head..)` sorted by
  // arrival stamp (transmit-order FIFO for equal stamps), one armed drain
  // event at the head stamp. Channel index = link * 2 + direction
  // (0 = a->b, 1 = b->a).
  struct Channel {
    net::PoolVector<ChanItem> items;
    std::uint32_t head = 0;
    SimTime armed_when = kNeverTime;
  };

  // Routes a transmit request from (node, iface) onto its link.
  void transmit(NodeId from, int iface, pkt::Bytes packet);

  // Shared delivery tail for both modes: silent-node check, counters,
  // trace, hand the packet to the destination node. `chan` encodes
  // (link, direction); the loop clock equals `when` on entry.
  void deliver_one(std::uint32_t chan, SimTime when, pkt::Bytes packet);

  // Strict mode: parks the packet in the slab and schedules a typed
  // delivery event.
  void schedule_deliver(SimTime when, std::uint32_t chan, pkt::Bytes packet);

  // Bulk mode: appends to the channel (sorted insert when a drain cascade
  // produced an out-of-order arrival stamp) and arms a drain if needed.
  void chan_append(std::uint32_t chan, SimTime stamp, pkt::Bytes packet);

  static void on_deliver_event(void* ctx, SimTime when, std::uint64_t a,
                               std::uint64_t b);
  static void on_drain_event(void* ctx, SimTime when, std::uint64_t a,
                             std::uint64_t b);

  void recompute_bulk();

  EventLoop loop_;
  net::Rng rng_;
  std::uint64_t seed_ = 1;
  Tracer tracer_;
  obs::TraceBuffer* trace_ = nullptr;
  obs::MetricsShard* metrics_ = nullptr;
  std::uint64_t* delivered_cell_ = nullptr;
  std::uint64_t* icmp_limited_cell_ = nullptr;
  std::uint64_t* clamped_cell_ = nullptr;
  std::unique_ptr<FaultInjector> faults_;
#ifndef NDEBUG
  std::thread::id owner_{};  // set by the first run(); see assert_confined()
#endif
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Link> links_;
  // node_links_[node][iface] == link id (interfaces are dense per node).
  std::vector<std::vector<LinkId>> node_links_;
  std::uint64_t packets_delivered_ = 0;

  // Bulk-delivery state.
  // Pool-backed so the lazy recompute inside run() stays off the global
  // heap once the thread-local pool is warm.
  net::PoolVector<Channel> channels_;          // 2 per link, lazily sized
  net::PoolVector<std::uint8_t> link_strict_;  // per-link fall-back flag
  net::PoolVector<pkt::Bytes> pkt_slab_;   // strict-mode in-flight packets
  net::PoolVector<std::uint32_t> pkt_free_;
  bool bulk_user_enabled_ = true;
  bool run_prepared_ = false;
  bool order_observed_ = false;
  int bulk_cached_ = -1;  // -1 unknown, else 0/1
};

inline void Node::send(int iface, pkt::Bytes packet) {
  network_->transmit(id_, iface, std::move(packet));
}

}  // namespace xmap::sim
