// Simulated network graph: nodes joined by point-to-point links.
//
// Nodes exchange wire-format IPv6 packets (pkt::Bytes). Links model
// propagation latency, serialization delay (bit rate) and random loss, and
// keep per-direction traffic counters — the routing-loop amplification
// experiments read those counters directly.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "netbase/random.h"
#include "packet/packet.h"
#include "sim/event_loop.h"
#include "sim/faults.h"

namespace xmap::sim {

inline constexpr NodeId kInvalidNode = ~NodeId{0};

class Network;

// Base class for everything attached to the network (routers, hosts, the
// scanner itself).
class Node {
 public:
  virtual ~Node() = default;

  // Called when a packet arrives on interface `iface` (per-node numbering in
  // order of connect() calls).
  virtual void receive(const pkt::Bytes& packet, int iface) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Network* network() const { return network_; }
  [[nodiscard]] int interface_count() const { return interface_count_; }

 protected:
  // Sends a packet out of one of this node's interfaces.
  void send(int iface, pkt::Bytes packet);

 private:
  friend class Network;
  Network* network_ = nullptr;
  NodeId id_ = kInvalidNode;
  int interface_count_ = 0;
};

struct LinkParams {
  SimTime latency = 100 * kMicrosecond;  // one-way propagation
  double loss = 0.0;                     // per-packet drop probability
  // Serialization rate in bits per simulated second; 0 = infinite.
  std::uint64_t rate_bps = 0;
  // Fault-plan scope: which LinkFaultParams of an installed FaultPlan
  // applies to this link (builders tag core vs access tiers).
  LinkClass fault_class = LinkClass::kOther;
};

struct LinkStats {
  std::uint64_t packets_ab = 0;  // delivered a -> b
  std::uint64_t packets_ba = 0;
  std::uint64_t bytes_ab = 0;
  std::uint64_t bytes_ba = 0;
  std::uint64_t dropped = 0;

  [[nodiscard]] std::uint64_t packets_total() const {
    return packets_ab + packets_ba;
  }
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] SimTime now() const { return loop_.now(); }

  // Takes ownership; returns the node for convenience.
  template <typename T>
  T* add_node(std::unique_ptr<T> node) {
    T* raw = node.get();
    raw->network_ = this;
    raw->id_ = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(node));
    return raw;
  }
  template <typename T, typename... Args>
  T* make_node(Args&&... args) {
    return add_node(std::make_unique<T>(std::forward<Args>(args)...));
  }

  [[nodiscard]] Node* node(NodeId id) const { return nodes_[id].get(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // Connects two nodes; allocates the next interface index on each side and
  // returns {link id, iface on a, iface on b}.
  struct Attachment {
    LinkId link;
    int iface_a;
    int iface_b;
  };
  Attachment connect(NodeId a, NodeId b, const LinkParams& params = {});

  [[nodiscard]] const LinkStats& link_stats(LinkId id) const {
    return links_[id].stats;
  }
  void reset_link_stats(LinkId id) { links_[id].stats = LinkStats{}; }

  // Runs the event loop to completion (bounded by max_events as a backstop).
  void run(std::uint64_t max_events = ~std::uint64_t{0}) {
    assert_confined();
    loop_.run(max_events);
  }
  void run_until(SimTime deadline) {
    assert_confined();
    loop_.run_until(deadline);
  }

  // A Network (and everything attached to it) is thread-confined: there is
  // no internal locking, so one thread must own all event processing. The
  // parallel engine gives each worker thread its own deterministic replica.
  // The owner is captured on the first run()/run_until() call; debug builds
  // assert on cross-thread use.
  void assert_confined() {
#ifndef NDEBUG
    if (owner_ == std::thread::id{}) owner_ = std::this_thread::get_id();
    assert(owner_ == std::this_thread::get_id() &&
           "sim::Network used from a second thread (not thread-safe)");
#endif
  }

  [[nodiscard]] std::uint64_t packets_delivered() const {
    return packets_delivered_;
  }

  // Delivery tracer: called for every delivered packet (after loss, at
  // arrival time) — a pcap-style tap for debugging and the examples.
  // Pass nullptr to disable.
  using Tracer = std::function<void(SimTime when, NodeId from, NodeId to,
                                    const pkt::Bytes& packet)>;
  void set_tracer(Tracer tracer) { tracer_ = std::move(tracer); }

  // Installs (or replaces) the fault-injection layer. A plan with
  // seed == 0 inherits the network seed, so one seed still pins the whole
  // run. Returns the injector for silent-candidate registration.
  FaultInjector* install_faults(const FaultPlan& plan) {
    faults_ = std::make_unique<FaultInjector>(plan, seed_);
    faults_->set_obs(trace_, metrics_);
    return faults_.get();
  }
  [[nodiscard]] FaultInjector* faults() const { return faults_.get(); }

  // Attaches observability sinks (caller-owned, thread-confined with this
  // network). At packet trace level every delivery emits a "packet_hop"
  // event stamped with the sim clock; ICMPv6 rate-limiter suppressions
  // reported by devices via note_icmp_rate_limited() are counted and
  // traced. Propagates to the installed fault injector (and to any
  // installed later).
  void set_obs(obs::TraceBuffer* trace, obs::MetricsShard* metrics) {
    trace_ = trace;
    metrics_ = metrics;
    delivered_cell_ =
        metrics != nullptr
            ? metrics->counter("sim_packets_delivered", {},
                               "Packets delivered by the simulated substrate")
            : nullptr;
    icmp_limited_cell_ =
        metrics != nullptr
            ? metrics->counter(
                  "icmp_rate_limited", {},
                  "ICMPv6 errors suppressed by device token buckets")
            : nullptr;
    if (faults_) faults_->set_obs(trace, metrics);
  }

  // Called by device nodes when their RFC 4443 ICMPv6 token bucket denies
  // an error transmission.
  void note_icmp_rate_limited(NodeId node) {
    if (icmp_limited_cell_ != nullptr) ++*icmp_limited_cell_;
    if (trace_ != nullptr && trace_->at(obs::TraceLevel::kPacket)) {
      obs::TraceEvent e;
      e.ts = loop_.now();
      e.name = "icmp_rate_limited";
      e.cat = "net";
      e.i0 = {"node", node};
      trace_->add(e);
    }
  }

 private:
  friend class Node;

  struct Endpoint {
    NodeId node = kInvalidNode;
    int iface = -1;
  };
  struct Link {
    Endpoint a;
    Endpoint b;
    LinkParams params;
    LinkStats stats;
    SimTime next_free_ab = 0;  // transmit-queue model per direction
    SimTime next_free_ba = 0;
  };

  // Routes a transmit request from (node, iface) onto its link.
  void transmit(NodeId from, int iface, pkt::Bytes packet);

  EventLoop loop_;
  net::Rng rng_;
  std::uint64_t seed_ = 1;
  Tracer tracer_;
  obs::TraceBuffer* trace_ = nullptr;
  obs::MetricsShard* metrics_ = nullptr;
  std::uint64_t* delivered_cell_ = nullptr;
  std::uint64_t* icmp_limited_cell_ = nullptr;
  std::unique_ptr<FaultInjector> faults_;
#ifndef NDEBUG
  std::thread::id owner_{};  // set by the first run(); see assert_confined()
#endif
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Link> links_;
  // node_links_[node][iface] == link id (interfaces are dense per node).
  std::vector<std::vector<LinkId>> node_links_;
  std::uint64_t packets_delivered_ = 0;
};

inline void Node::send(int iface, pkt::Bytes packet) {
  network_->transmit(id_, iface, std::move(packet));
}

}  // namespace xmap::sim
