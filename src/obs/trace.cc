#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace xmap::obs {
namespace {

// Compares possibly-null C strings by content (null sorts first).
int cstr_cmp(const char* a, const char* b) {
  if (a == nullptr || b == nullptr) {
    return (a == nullptr ? 0 : 1) - (b == nullptr ? 0 : 1);
  }
  return std::strcmp(a, b);
}

int addr_cmp(const net::Ipv6Address& a, const net::Ipv6Address& b) {
  if (a.value() < b.value()) return -1;
  return a.value() == b.value() ? 0 : 1;
}

int int_arg_cmp(const TraceEvent::IntArg& a, const TraceEvent::IntArg& b) {
  if (const int c = cstr_cmp(a.key, b.key)) return c;
  if (a.value != b.value) return a.value < b.value ? -1 : 1;
  return 0;
}

void json_escape_into(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

// Renders the shared "args" object ({} when the event carries none).
void write_args(std::ostream& out, const TraceEvent& e) {
  out << '{';
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ',';
    first = false;
  };
  if (e.addr1_key != nullptr) {
    sep();
    out << '"';
    json_escape_into(out, e.addr1_key);
    out << "\":\"" << e.addr1.to_string() << '"';
  }
  if (e.addr2_key != nullptr) {
    sep();
    out << '"';
    json_escape_into(out, e.addr2_key);
    out << "\":\"" << e.addr2.to_string() << '"';
  }
  if (e.str_key != nullptr) {
    sep();
    out << '"';
    json_escape_into(out, e.str_key);
    out << "\":\"";
    json_escape_into(out, e.str_val != nullptr ? e.str_val : "");
    out << '"';
  }
  for (const TraceEvent::IntArg* arg : {&e.i0, &e.i1, &e.i2}) {
    if (arg->key == nullptr) continue;
    sep();
    out << '"';
    json_escape_into(out, arg->key);
    out << "\":" << arg->value;
  }
  out << '}';
}

}  // namespace

bool trace_event_less(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (const int c = cstr_cmp(a.name, b.name)) return c < 0;
  if (const int c = cstr_cmp(a.cat, b.cat)) return c < 0;
  if (const int c = cstr_cmp(a.addr1_key, b.addr1_key)) return c < 0;
  if (const int c = addr_cmp(a.addr1, b.addr1)) return c < 0;
  if (const int c = cstr_cmp(a.addr2_key, b.addr2_key)) return c < 0;
  if (const int c = addr_cmp(a.addr2, b.addr2)) return c < 0;
  if (const int c = cstr_cmp(a.str_key, b.str_key)) return c < 0;
  if (const int c = cstr_cmp(a.str_val, b.str_val)) return c < 0;
  if (const int c = int_arg_cmp(a.i0, b.i0)) return c < 0;
  if (const int c = int_arg_cmp(a.i1, b.i1)) return c < 0;
  if (const int c = int_arg_cmp(a.i2, b.i2)) return c < 0;
  return a.dur < b.dur;
}

std::vector<TraceEvent> merge_traces(
    std::vector<std::vector<TraceEvent>> buffers) {
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const auto& b : buffers) total += b.size();
  merged.reserve(total);
  for (auto& b : buffers) {
    merged.insert(merged.end(), b.begin(), b.end());
  }
  std::sort(merged.begin(), merged.end(), trace_event_less);
  return merged;
}

void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    out << "{\"ts\":" << e.ts << ",\"name\":\"";
    json_escape_into(out, e.name);
    out << "\",\"cat\":\"";
    json_escape_into(out, e.cat);
    out << "\",\"ph\":\"" << (e.dur > 0 ? 'X' : 'i') << '"';
    if (e.dur > 0) out << ",\"dur\":" << e.dur;
    out << ",\"args\":";
    write_args(out, e);
    out << "}\n";
  }
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events) {
  // Chrome trace timestamps are microseconds; keep full nanosecond
  // precision as fixed three-decimal text so output stays byte-stable.
  const auto us = [](std::uint64_t ns) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return std::string{buf};
  };
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":\"";
    json_escape_into(out, e.name);
    out << "\",\"cat\":\"";
    json_escape_into(out, e.cat);
    out << "\",\"ph\":\"" << (e.dur > 0 ? 'X' : 'i') << '"';
    if (e.dur == 0) out << ",\"s\":\"g\"";
    out << ",\"ts\":" << us(e.ts);
    if (e.dur > 0) out << ",\"dur\":" << us(e.dur);
    // The trace is partition-invariant, so there is no meaningful thread
    // identity to attach: everything renders on one deterministic track.
    out << ",\"pid\":1,\"tid\":1,\"args\":";
    write_args(out, e);
    out << '}';
  }
  out << "\n]}\n";
}

}  // namespace xmap::obs
