// Causal cross-node tracing for the distributed scan fabric.
//
// This is the *deployment* half of the observability split: spans are
// stamped with wall-clock nanoseconds and carry node identities — exactly
// the data the deterministic scan trace (trace.h) must never contain. A
// fabric trace therefore differs between two runs whose scan records are
// byte-identical; it is quarantined the same way wall_clock metrics series
// are (docs/observability.md, "determinism taxonomy").
//
// The model is a single trace per fabric run: every span carries the run's
// trace id, a span id unique across nodes (the node index is folded into
// the id's high bits, so nodes allocate ids without coordination), and a
// parent span id (0 = root). Frames propagate (trace_id, span_id) in the
// versioned protocol header, so a receiver parents its handling span under
// the sender's span and a shard's life — lease grant, probe stream,
// checkpoints, death verdict, migration, resume — renders as one connected
// tree spanning the coordinator track and each worker track in Perfetto.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace xmap::obs {

// Track index for coordinator spans; workers use their worker index >= 0.
inline constexpr int kCoordinatorNode = -1;

struct FabricSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  int node = kCoordinatorNode;  // Perfetto track: coordinator or worker index
  std::string name;
  std::uint64_t start_ns = 0;  // wall clock, ns since tracer construction
  std::uint64_t dur_ns = 0;    // 0 renders as an instant event
  std::vector<std::pair<std::string, std::string>> args;
};

// Shared, mutex-guarded span sink for one fabric run. The loopback fabric
// runs every node in-process, so one tracer serves them all; contention is
// per-protocol-event, far off any packet hot path. All methods are
// thread-safe.
class FabricTracer {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  explicit FabricTracer(std::uint64_t trace_id) : trace_id_(trace_id) {}
  FabricTracer(const FabricTracer&) = delete;
  FabricTracer& operator=(const FabricTracer&) = delete;

  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }

  // Monotonic nanoseconds since tracer construction.
  [[nodiscard]] std::uint64_t now_ns() const;

  // Opens a span on `node`'s track under `parent` (0 = root); returns its
  // span id. Close with end(); spans still open at finish() are closed
  // there.
  std::uint64_t begin(int node, std::string name, std::uint64_t parent,
                      Args args = {});
  void end(std::uint64_t span_id);

  // A zero-duration span (rendered as an instant mark).
  std::uint64_t instant(int node, std::string name, std::uint64_t parent,
                        Args args = {});

  // Appends arguments to a span recorded earlier (e.g. a death verdict
  // added to the shard's lease span).
  void add_args(std::uint64_t span_id, Args args);

  // Closes any still-open spans and returns all spans ordered by
  // (node, start_ns, span_id). The tracer is spent afterwards.
  [[nodiscard]] std::vector<FabricSpan> finish();

 private:
  std::uint64_t next_id_locked(int node);

  const std::uint64_t trace_id_;
  const std::uint64_t epoch_ns_ = steady_now_ns();
  mutable std::mutex mu_;
  std::vector<FabricSpan> spans_;
  // span id -> index into spans_; open spans carry end sentinel 0.
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::vector<std::uint64_t> open_;
  std::unordered_map<int, std::uint64_t> counters_;

  [[nodiscard]] static std::uint64_t steady_now_ns();
};

// Chrome trace-event JSON with one track per node: coordinator and each
// worker get a tid of their own plus a thread_name metadata record, so
// Perfetto renders the fabric as parallel swimlanes. Span/parent/trace ids
// are emitted as hex strings in each event's args — that is what
// tools/xmap_trace walks to rebuild the causal tree.
void write_fabric_chrome_trace(std::ostream& out,
                               const std::vector<FabricSpan>& spans);

}  // namespace xmap::obs
