// Wall-clock stage profiling for the scan pipeline.
//
// Scoped timers around the pipeline stages (world build, target
// generation, send, receive, classify, merge) accumulate into a per-worker
// StageProfile; the engine merges worker profiles after join and surfaces
// the result as the "stage_profile" section of the telemetry JSON and as
// the --profile summary table. These are *real* (wall-clock) nanoseconds —
// the one observability signal that is intentionally not deterministic —
// so they never appear in the trace or the deterministic Prometheus
// export.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

namespace xmap::obs {

enum class Stage : std::uint8_t {
  kBuild = 0,    // world-replica construction (per worker)
  kGenerate,     // permutation draw + blocklist + schedule
  kSend,         // probe encode + transmit
  kReceive,      // receive path, wire gate + bookkeeping (includes classify)
  kClassify,     // probe-module classification (subset of kReceive)
  kMerge,        // main-thread record sort + collector union
  kLease,        // fabric coordinator: shard lease assignment (Assign send)
  kDecode,       // fabric coordinator: inbound frame decode + dispatch
  kCount_,
};

inline constexpr int kStageCount = static_cast<int>(Stage::kCount_);

[[nodiscard]] constexpr const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kBuild:
      return "build";
    case Stage::kGenerate:
      return "generate";
    case Stage::kSend:
      return "send";
    case Stage::kReceive:
      return "receive";
    case Stage::kClassify:
      return "classify";
    case Stage::kMerge:
      return "merge";
    case Stage::kLease:
      return "lease";
    case Stage::kDecode:
      return "decode";
    case Stage::kCount_:
      break;
  }
  return "?";
}

struct StageProfile {
  struct Entry {
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
  };
  std::array<Entry, kStageCount> stages{};

  [[nodiscard]] Entry& at(Stage stage) {
    return stages[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] const Entry& at(Stage stage) const {
    return stages[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] bool empty() const {
    for (const Entry& e : stages) {
      if (e.calls != 0) return false;
    }
    return true;
  }

  StageProfile& merge(const StageProfile& other) {
    for (int i = 0; i < kStageCount; ++i) {
      stages[static_cast<std::size_t>(i)].ns +=
          other.stages[static_cast<std::size_t>(i)].ns;
      stages[static_cast<std::size_t>(i)].calls +=
          other.stages[static_cast<std::size_t>(i)].calls;
    }
    return *this;
  }
};

// RAII stage timer; a null profile makes construction and destruction a
// pointer test each — cheap enough to leave in release hot paths.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageProfile* profile, Stage stage)
      : profile_(profile), stage_(stage) {
    if (profile_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedStageTimer() {
    if (profile_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    StageProfile::Entry& entry = profile_->at(stage_);
    entry.ns += static_cast<std::uint64_t>(ns > 0 ? ns : 0);
    ++entry.calls;
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageProfile* profile_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_{};
};

// {"build":{"ns":..,"calls":..},...} — the telemetry JSON section.
void append_stage_profile_json(std::ostream& out, const StageProfile& profile);

// Human-readable --profile summary (aligned columns, one stage per row).
[[nodiscard]] std::string stage_profile_table(const StageProfile& profile);

}  // namespace xmap::obs
