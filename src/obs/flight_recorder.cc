#include "obs/flight_recorder.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace xmap::obs {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_ns_(steady_ns()) {
  ring_.reserve(capacity_);
}

std::uint64_t FlightRecorder::now_ns() const {
  const std::uint64_t now = steady_ns();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

void FlightRecorder::record(const char* kind, std::string detail,
                            std::uint64_t seq, std::uint64_t attempt) {
  Event e;
  e.t_ns = now_ns();
  e.kind = kind;
  e.detail = std::move(detail);
  e.seq = seq;
  e.attempt = attempt;
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

void FlightRecorder::dump_jsonl(std::ostream& out,
                                const std::string& node) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string buf;
  buf += "{\"node\":\"";
  json_escape_into(buf, node);
  buf += "\",\"recorded\":";
  buf += std::to_string(recorded_);
  buf += ",\"dropped\":";
  buf += std::to_string(recorded_ - ring_.size());
  buf += "}\n";
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // head_ is the oldest entry once the ring has wrapped.
    const Event& e = ring_[(head_ + i) % n];
    buf += "{\"t_ns\":";
    buf += std::to_string(e.t_ns);
    buf += ",\"kind\":\"";
    json_escape_into(buf, e.kind);
    buf += "\",\"detail\":\"";
    json_escape_into(buf, e.detail);
    buf += "\",\"seq\":";
    buf += std::to_string(e.seq);
    buf += ",\"attempt\":";
    buf += std::to_string(e.attempt);
    buf += "}\n";
  }
  out << buf;
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  const std::string& node) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  dump_jsonl(out, node);
  return out.good();
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

}  // namespace xmap::obs
