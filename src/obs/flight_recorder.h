// Per-node protocol flight recorder: the last N protocol events in a
// bounded ring, dumped to JSONL only when something goes wrong.
//
// Every fabric node (coordinator and each worker) keeps one of these and
// records frames sent and received, acks, backoff sleeps, heartbeats and
// refusal diagnostics. In the steady state the ring just rotates — nothing
// is written anywhere. On a failure path (worker declared dead, a
// fingerprint or torn-cursor refusal, nonzero fabric exit) each node's ring
// is dumped to `<prefix>.<node>.jsonl`, so a failover post-mortem has both
// sides' last moments without re-running the scan.
//
// Timestamps are wall-clock nanoseconds since recorder construction —
// deployment data, never part of the deterministic scan outputs.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace xmap::obs {

class FlightRecorder {
 public:
  struct Event {
    std::uint64_t t_ns = 0;
    const char* kind = "";   // "tx" | "rx" | "ack" | "backoff" | "drop" | ...
    std::string detail;      // e.g. "records seq=5 shard=2"
    std::uint64_t seq = 0;
    std::uint64_t attempt = 0;
  };

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Thread-safe: worker loop and its heartbeat thread both record.
  void record(const char* kind, std::string detail, std::uint64_t seq = 0,
              std::uint64_t attempt = 0);

  // Oldest-first JSONL: a meta line ({"node":...,"recorded":..,"dropped":..})
  // then one event object per line.
  void dump_jsonl(std::ostream& out, const std::string& node) const;
  // Convenience: atomically-ish write to `path` (truncate + write); returns
  // false when the file cannot be opened.
  bool dump_to_file(const std::string& path, const std::string& node) const;

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  [[nodiscard]] std::uint64_t now_ns() const;

  const std::size_t capacity_;
  const std::uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;       // next write position once the ring is full
  std::uint64_t recorded_ = 0;
};

}  // namespace xmap::obs
