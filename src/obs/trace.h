// Deterministic event tracing: the probe-lifecycle span/event model.
//
// Every event is stamped with the *simulation* clock, never wall clock, and
// carries only data that is a pure function of (seed, world, scan config) —
// no worker ids, no thread ids, no real-time readings. Per-worker buffers
// are therefore partition-invariant: the union of the events recorded by N
// workers (each scanning sub-shard w of N) equals the event set of a
// single-worker run, and after the deterministic content sort in
// merge_traces() the serialized output is byte-identical for any --threads
// value — the same guarantee the engine gives for scan records.
//
// Two serializations are provided: JSONL (one event object per line, the
// documented schema in docs/observability.md) and Chrome trace-event JSON,
// loadable in Perfetto / chrome://tracing (spans render as slices, instants
// as marks).
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "netbase/ipv6.h"
#include "obs/config.h"

namespace xmap::obs {

// One trace event. All strings are pointers to static storage (string
// literals at the emit sites); events are plain values, freely copyable.
// `dur == 0` renders as an instant event, `dur > 0` as a complete span
// [ts, ts+dur).
struct TraceEvent {
  std::uint64_t ts = 0;   // sim-clock nanoseconds
  std::uint64_t dur = 0;  // span duration in ns; 0 = instant
  const char* name = "";  // event name, e.g. "probe_sent"
  const char* cat = "";   // category: "scan" | "net" | "fault" | "loop"

  // Optional arguments. A null key means "unused". Addresses serialize in
  // RFC 5952 text form; the str argument must point at static storage.
  const char* addr1_key = nullptr;
  net::Ipv6Address addr1{};
  const char* addr2_key = nullptr;
  net::Ipv6Address addr2{};
  const char* str_key = nullptr;
  const char* str_val = nullptr;
  struct IntArg {
    const char* key = nullptr;
    std::uint64_t value = 0;
  };
  IntArg i0, i1, i2;
};

// Strict weak ordering on event *content* (timestamp first, then name,
// category and every argument, with strings compared by value). Two events
// with identical content compare equal, so the sorted order of any
// partition's union is unique — the determinism anchor for merge_traces().
[[nodiscard]] bool trace_event_less(const TraceEvent& a, const TraceEvent& b);

// A thread-confined event sink. One buffer per worker; no locking — the
// engine merges after join, mirroring how ScanStats are handled.
class TraceBuffer {
 public:
  explicit TraceBuffer(TraceLevel level = TraceLevel::kOff) : level_(level) {}

  [[nodiscard]] TraceLevel level() const { return level_; }
  // True when events of `need` verbosity should be recorded.
  [[nodiscard]] bool at(TraceLevel need) const {
    return static_cast<int>(level_) >= static_cast<int>(need) &&
           level_ != TraceLevel::kOff;
  }

  void add(const TraceEvent& event) { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::vector<TraceEvent> take() { return std::move(events_); }

 private:
  TraceLevel level_;
  std::vector<TraceEvent> events_;
};

// Merges per-worker event streams into one deterministically ordered
// stream: concatenate, then content-sort. Because event content is
// partition-invariant, any sharding of the same scan merges to the same
// sequence.
[[nodiscard]] std::vector<TraceEvent> merge_traces(
    std::vector<std::vector<TraceEvent>> buffers);

// JSONL: one {"ts":..,"name":..,"cat":..,"ph":"i"|"X"[,"dur":..],
// "args":{..}} object per line. Keys render in fixed order.
void write_trace_jsonl(std::ostream& out,
                       const std::vector<TraceEvent>& events);

// Chrome trace-event JSON ("traceEvents" array form) for Perfetto /
// chrome://tracing. Timestamps are microseconds with nanosecond decimals.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events);

}  // namespace xmap::obs
