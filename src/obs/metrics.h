// Labeled metrics registry: counters, gauges and fixed-bucket histograms.
//
// Built for the parallel engine's threading model: each worker owns one
// thread-confined MetricsShard and bumps plain (non-atomic) uint64 cells
// through pointers resolved once at setup — the hot path is a single
// increment, no locks, no hashing. After the workers join, the shards are
// merged in deterministic shard order into a MetricsSnapshot: counters and
// histogram buckets sum, gauges sum (a gauge that must not sum lives in
// exactly one shard). Series are keyed by (name, sorted labels), so the
// merged snapshot of any N-way sharding of the same scan is identical —
// which is what keeps the Prometheus text export byte-stable across
// --threads values.
//
// Series carrying wall-clock-dependent values (queue depths, timings) are
// registered with wall_clock = true; the deterministic Prometheus export
// omits them (they still appear in the JSON telemetry).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace xmap::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      break;
  }
  return "histogram";
}

// Label set as sorted key/value pairs; sorted form is the identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Fixed-bucket histogram with Prometheus le-semantics: observation v lands
// in the first bucket whose upper bound satisfies v <= bound; values above
// every bound land in the implicit +Inf bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(std::uint64_t value) {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += value;
    ++count_;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  // counts()[i] is the count for bounds()[i]; back() is the +Inf bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

  // Bucket-wise sum; bounds must match (callers register identical specs).
  void merge(const Histogram& other);

  // Reconstructs a histogram from its serialized parts (checkpoint
  // round-trip). `counts` must have bounds.size() + 1 entries; its tail is
  // padded with zeros if short.
  [[nodiscard]] static Histogram from_parts(std::vector<std::uint64_t> bounds,
                                            std::vector<std::uint64_t> counts,
                                            std::uint64_t sum,
                                            std::uint64_t count);

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

// One worker's thread-confined slice of the registry.
class MetricsShard {
 public:
  MetricsShard() = default;
  MetricsShard(const MetricsShard&) = delete;
  MetricsShard& operator=(const MetricsShard&) = delete;

  // Find-or-create; the returned cell pointer is stable for the shard's
  // lifetime — resolve once, increment freely. `help` is kept from the
  // first registration that supplies one.
  std::uint64_t* counter(const std::string& name, Labels labels = {},
                         const char* help = "", bool wall_clock = false);
  std::uint64_t* gauge(const std::string& name, Labels labels = {},
                       const char* help = "", bool wall_clock = false);
  Histogram* histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds, Labels labels = {},
                       const char* help = "");

  struct Series {
    MetricKind kind = MetricKind::kCounter;
    bool wall_clock = false;
    std::uint64_t value = 0;                // counter / gauge cell
    std::unique_ptr<Histogram> histogram;   // kHistogram only
    std::string help;
  };
  using SeriesKey = std::pair<std::string, Labels>;  // (name, sorted labels)

  [[nodiscard]] const std::map<SeriesKey, Series>& series() const {
    return series_;
  }

 private:
  Series& find_or_create(const std::string& name, Labels&& labels,
                         MetricKind kind, const char* help, bool wall_clock);

  std::map<SeriesKey, Series> series_;
};

// The merged, ordered view of N shards.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    bool wall_clock = false;
    std::uint64_t value = 0;                  // counter / gauge
    std::optional<Histogram> histogram;       // kHistogram
    std::string help;
  };
  std::vector<Entry> entries;  // sorted by (name, labels)

  [[nodiscard]] bool empty() const { return entries.empty(); }
  // The entry for (name, labels), or nullptr (exposed for tests).
  [[nodiscard]] const Entry* find(const std::string& name,
                                  const Labels& labels = {}) const;
};

// Merges shards in the given (deterministic) order: counters, gauges and
// histogram buckets sum per series key.
[[nodiscard]] MetricsSnapshot merge_shards(
    const std::vector<const MetricsShard*>& shards);

// Merges already-merged snapshots the same way (used on resume: the
// checkpointed snapshot plus the resumed run's snapshot sum to the
// uninterrupted run's). Null entries are skipped.
[[nodiscard]] MetricsSnapshot merge_snapshots(
    const std::vector<const MetricsSnapshot*>& snapshots);

// Prometheus text exposition format. Metric names are prefixed "xmap_";
// counters additionally get the "_total" suffix. With
// include_wall_clock == false (the default, used for --metrics-file) the
// output contains only deterministic series and is byte-identical across
// --threads values.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot,
                                          bool include_wall_clock = false);

// Compact JSON object fragment ({"series":value,...}; histograms render as
// {"buckets":{...},"sum":..,"count":..}) — merged into metrics_json().
void append_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace xmap::obs
