#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <string_view>

namespace xmap::obs {
namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void prom_escape_into(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

void json_escape_into(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

// `probes_sent{worker="0",shard="3"}` — the flat series name used as the
// JSON key and (prefixed) in the Prometheus body.
std::string series_label(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::ostringstream out;
  out << name << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << k << "=\"";
    prom_escape_into(out, v);
    out << '"';
  }
  out << '}';
  return out.str();
}

// Prometheus label body including the extra `le` label of histogram
// buckets; `le` empty = omit.
void prom_labels_into(std::ostream& out, const Labels& labels,
                      const std::string& le = {}) {
  if (labels.empty() && le.empty()) return;
  out << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ',';
    first = false;
    out << k << "=\"";
    prom_escape_into(out, v);
    out << '"';
  }
  if (!le.empty()) {
    if (!first) out << ',';
    out << "le=\"" << le << '"';
  }
  out << '}';
}

}  // namespace

void Histogram::merge(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    // Mismatched registrations for one series name: keep our shape, fold
    // the other's population into sum/count and its tail into +Inf so no
    // observation silently disappears.
    counts_.back() += other.count_;
  } else {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

Histogram Histogram::from_parts(std::vector<std::uint64_t> bounds,
                                std::vector<std::uint64_t> counts,
                                std::uint64_t sum, std::uint64_t count) {
  Histogram h{std::move(bounds)};
  counts.resize(h.bounds_.size() + 1, 0);
  h.counts_ = std::move(counts);
  h.sum_ = sum;
  h.count_ = count;
  return h;
}

MetricsShard::Series& MetricsShard::find_or_create(const std::string& name,
                                                   Labels&& labels,
                                                   MetricKind kind,
                                                   const char* help,
                                                   bool wall_clock) {
  Series& series = series_[SeriesKey{name, std::move(labels)}];
  series.kind = kind;
  if (wall_clock) series.wall_clock = true;
  if (series.help.empty() && help != nullptr) series.help = help;
  return series;
}

std::uint64_t* MetricsShard::counter(const std::string& name, Labels labels,
                                     const char* help, bool wall_clock) {
  return &find_or_create(name, sorted(std::move(labels)),
                         MetricKind::kCounter, help, wall_clock)
              .value;
}

std::uint64_t* MetricsShard::gauge(const std::string& name, Labels labels,
                                   const char* help, bool wall_clock) {
  return &find_or_create(name, sorted(std::move(labels)), MetricKind::kGauge,
                         help, wall_clock)
              .value;
}

Histogram* MetricsShard::histogram(const std::string& name,
                                   std::vector<std::uint64_t> bounds,
                                   Labels labels, const char* help) {
  Series& series = find_or_create(name, sorted(std::move(labels)),
                                  MetricKind::kHistogram, help, false);
  if (series.histogram == nullptr) {
    std::sort(bounds.begin(), bounds.end());
    series.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series.histogram.get();
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name, const Labels& labels) const {
  for (const Entry& entry : entries) {
    if (entry.name == name && entry.labels == labels) return &entry;
  }
  return nullptr;
}

MetricsSnapshot merge_shards(const std::vector<const MetricsShard*>& shards) {
  // std::map iteration gives (name, labels) order within each shard, and
  // the merged map is insertion-order independent — deterministic for any
  // partition of the same series population.
  std::map<MetricsShard::SeriesKey, MetricsSnapshot::Entry> merged;
  for (const MetricsShard* shard : shards) {
    if (shard == nullptr) continue;
    for (const auto& [key, series] : shard->series()) {
      MetricsSnapshot::Entry& entry = merged[key];
      if (entry.name.empty()) {
        entry.name = key.first;
        entry.labels = key.second;
        entry.kind = series.kind;
      }
      if (series.wall_clock) entry.wall_clock = true;
      if (entry.help.empty()) entry.help = series.help;
      entry.value += series.value;
      if (series.histogram != nullptr) {
        if (!entry.histogram.has_value()) {
          entry.histogram.emplace(series.histogram->bounds());
        }
        entry.histogram->merge(*series.histogram);
      }
    }
  }
  MetricsSnapshot snapshot;
  snapshot.entries.reserve(merged.size());
  for (auto& [key, entry] : merged) {
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

MetricsSnapshot merge_snapshots(
    const std::vector<const MetricsSnapshot*>& snapshots) {
  std::map<MetricsShard::SeriesKey, MetricsSnapshot::Entry> merged;
  for (const MetricsSnapshot* snapshot : snapshots) {
    if (snapshot == nullptr) continue;
    for (const MetricsSnapshot::Entry& other : snapshot->entries) {
      MetricsSnapshot::Entry& entry =
          merged[MetricsShard::SeriesKey{other.name, other.labels}];
      if (entry.name.empty()) {
        entry.name = other.name;
        entry.labels = other.labels;
        entry.kind = other.kind;
      }
      if (other.wall_clock) entry.wall_clock = true;
      if (entry.help.empty()) entry.help = other.help;
      entry.value += other.value;
      if (other.histogram.has_value()) {
        if (!entry.histogram.has_value()) {
          entry.histogram.emplace(other.histogram->bounds());
        }
        entry.histogram->merge(*other.histogram);
      }
    }
  }
  MetricsSnapshot out;
  out.entries.reserve(merged.size());
  for (auto& [key, entry] : merged) out.entries.push_back(std::move(entry));
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot,
                            bool include_wall_clock) {
  std::ostringstream out;
  std::string last_family;
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    if (entry.wall_clock && !include_wall_clock) continue;
    std::string family = "xmap_" + entry.name;
    // Counters carry the conventional _total suffix — unless the registered
    // name already ends with it (the fabric_* series do).
    constexpr std::string_view kTotal = "_total";
    if (entry.kind == MetricKind::kCounter &&
        (family.size() < kTotal.size() ||
         family.compare(family.size() - kTotal.size(), kTotal.size(),
                        kTotal.data()) != 0)) {
      family += "_total";
    }
    if (family != last_family) {
      if (!entry.help.empty()) {
        out << "# HELP " << family << ' ' << entry.help << '\n';
      }
      out << "# TYPE " << family << ' ' << to_string(entry.kind) << '\n';
      last_family = family;
    }
    if (entry.kind == MetricKind::kHistogram && entry.histogram.has_value()) {
      const Histogram& h = *entry.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.counts()[i];
        out << family << "_bucket";
        prom_labels_into(out, entry.labels, std::to_string(h.bounds()[i]));
        out << ' ' << cumulative << '\n';
      }
      cumulative += h.counts().back();
      out << family << "_bucket";
      prom_labels_into(out, entry.labels, "+Inf");
      out << ' ' << cumulative << '\n';
      out << family << "_sum";
      prom_labels_into(out, entry.labels);
      out << ' ' << h.sum() << '\n';
      out << family << "_count";
      prom_labels_into(out, entry.labels);
      out << ' ' << h.count() << '\n';
    } else {
      out << family;
      prom_labels_into(out, entry.labels);
      out << ' ' << entry.value << '\n';
    }
  }
  return out.str();
}

void append_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << '{';
  bool first = true;
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    if (!first) out << ',';
    first = false;
    out << '"';
    json_escape_into(out, series_label(entry.name, entry.labels));
    out << "\":";
    if (entry.kind == MetricKind::kHistogram && entry.histogram.has_value()) {
      const Histogram& h = *entry.histogram;
      out << "{\"buckets\":{";
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        out << '"' << h.bounds()[i] << "\":" << h.counts()[i] << ',';
      }
      out << "\"+Inf\":" << h.counts().back() << "},\"sum\":" << h.sum()
          << ",\"count\":" << h.count() << '}';
    } else {
      out << entry.value;
    }
  }
  out << '}';
}

}  // namespace xmap::obs
