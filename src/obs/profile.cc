#include "obs/profile.h"

#include <cstdio>
#include <sstream>

namespace xmap::obs {

void append_stage_profile_json(std::ostream& out,
                               const StageProfile& profile) {
  out << '{';
  bool first = true;
  for (int i = 0; i < kStageCount; ++i) {
    const Stage stage = static_cast<Stage>(i);
    const StageProfile::Entry& entry = profile.at(stage);
    if (!first) out << ',';
    first = false;
    out << '"' << stage_name(stage) << "\":{\"ns\":" << entry.ns
        << ",\"calls\":" << entry.calls << '}';
  }
  out << '}';
}

std::string stage_profile_table(const StageProfile& profile) {
  std::uint64_t total_ns = 0;
  for (int i = 0; i < kStageCount; ++i) {
    // kClassify is nested inside kReceive; keep the total a wall-clock sum
    // of disjoint stages.
    if (static_cast<Stage>(i) == Stage::kClassify) continue;
    total_ns += profile.at(static_cast<Stage>(i)).ns;
  }
  std::ostringstream out;
  out << "stage profile (wall clock, all workers summed)\n";
  out << "  stage      time_ms        calls   share\n";
  for (int i = 0; i < kStageCount; ++i) {
    const Stage stage = static_cast<Stage>(i);
    const StageProfile::Entry& entry = profile.at(stage);
    const double ms = static_cast<double>(entry.ns) / 1e6;
    const double share =
        total_ns > 0
            ? 100.0 * static_cast<double>(entry.ns) /
                  static_cast<double>(total_ns)
            : 0.0;
    char line[128];
    std::snprintf(line, sizeof line, "  %-9s %10.3f %12llu %6.1f%%%s\n",
                  stage_name(stage), ms,
                  static_cast<unsigned long long>(entry.calls), share,
                  stage == Stage::kClassify ? "  (within receive)" : "");
    out << line;
  }
  return out.str();
}

}  // namespace xmap::obs
