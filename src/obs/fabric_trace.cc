#include "obs/fabric_trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace xmap::obs {
namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string hex_id(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// Microseconds with nanosecond decimals, matching write_chrome_trace.
std::string us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::uint64_t FabricTracer::steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t FabricTracer::now_ns() const {
  const std::uint64_t now = steady_now_ns();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

std::uint64_t FabricTracer::next_id_locked(int node) {
  // Node index in the high 16 bits (coordinator = 1, worker w = w + 2), a
  // per-node counter below: ids are unique across nodes with no handshake.
  const std::uint64_t track = static_cast<std::uint64_t>(node + 2);
  return (track << 48) | ++counters_[node];
}

std::uint64_t FabricTracer::begin(int node, std::string name,
                                  std::uint64_t parent, Args args) {
  const std::uint64_t start = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_locked(node);
  FabricSpan span;
  span.trace_id = trace_id_;
  span.span_id = id;
  span.parent_id = parent;
  span.node = node;
  span.name = std::move(name);
  span.start_ns = start;
  span.args = std::move(args);
  index_[id] = spans_.size();
  open_.push_back(id);
  spans_.push_back(std::move(span));
  return id;
}

void FabricTracer::end(std::uint64_t span_id) {
  const std::uint64_t now = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(span_id);
  if (it == index_.end()) return;
  FabricSpan& span = spans_[it->second];
  span.dur_ns = now > span.start_ns ? now - span.start_ns : 1;
  open_.erase(std::remove(open_.begin(), open_.end(), span_id), open_.end());
}

std::uint64_t FabricTracer::instant(int node, std::string name,
                                    std::uint64_t parent, Args args) {
  const std::uint64_t start = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_locked(node);
  FabricSpan span;
  span.trace_id = trace_id_;
  span.span_id = id;
  span.parent_id = parent;
  span.node = node;
  span.name = std::move(name);
  span.start_ns = start;
  span.args = std::move(args);
  index_[id] = spans_.size();
  spans_.push_back(std::move(span));
  return id;
}

void FabricTracer::add_args(std::uint64_t span_id, Args args) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(span_id);
  if (it == index_.end()) return;
  auto& dst = spans_[it->second].args;
  for (auto& kv : args) dst.push_back(std::move(kv));
}

std::vector<FabricSpan> FabricTracer::finish() {
  const std::uint64_t now = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint64_t id : open_) {
    FabricSpan& span = spans_[index_[id]];
    span.dur_ns = now > span.start_ns ? now - span.start_ns : 1;
  }
  open_.clear();
  std::vector<FabricSpan> out = std::move(spans_);
  spans_.clear();
  index_.clear();
  std::sort(out.begin(), out.end(),
            [](const FabricSpan& a, const FabricSpan& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

void write_fabric_chrome_trace(std::ostream& out,
                               const std::vector<FabricSpan>& spans) {
  std::string buf;
  buf += "{\"traceEvents\":[";
  bool first = true;
  // One metadata record per track present, so Perfetto names the lanes.
  int max_node = kCoordinatorNode;
  bool any_coord = false;
  for (const FabricSpan& s : spans) {
    if (s.node == kCoordinatorNode) any_coord = true;
    if (s.node > max_node) max_node = s.node;
  }
  auto track_meta = [&](int node, const std::string& label) {
    if (!first) buf += ',';
    first = false;
    buf += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    buf += std::to_string(node + 2);
    buf += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(buf, label);
    buf += "\"}}";
  };
  if (any_coord) track_meta(kCoordinatorNode, "coordinator");
  for (int n = 0; n <= max_node; ++n) {
    track_meta(n, "worker-" + std::to_string(n));
  }
  for (const FabricSpan& s : spans) {
    if (!first) buf += ',';
    first = false;
    buf += "{\"name\":\"";
    json_escape_into(buf, s.name);
    buf += "\",\"cat\":\"fabric\",\"ph\":\"";
    buf += s.dur_ns == 0 ? 'i' : 'X';
    buf += "\",\"pid\":1,\"tid\":";
    buf += std::to_string(s.node + 2);
    buf += ",\"ts\":";
    buf += us(s.start_ns);
    if (s.dur_ns != 0) {
      buf += ",\"dur\":";
      buf += us(s.dur_ns);
    } else {
      buf += ",\"s\":\"t\"";
    }
    buf += ",\"args\":{\"trace_id\":\"";
    buf += hex_id(s.trace_id);
    buf += "\",\"span_id\":\"";
    buf += hex_id(s.span_id);
    buf += "\",\"parent_id\":\"";
    buf += hex_id(s.parent_id);
    buf += "\"";
    for (const auto& [k, v] : s.args) {
      buf += ",\"";
      json_escape_into(buf, k);
      buf += "\":\"";
      json_escape_into(buf, v);
      buf += "\"";
    }
    buf += "}}";
  }
  buf += "]}\n";
  out << buf;
}

}  // namespace xmap::obs
