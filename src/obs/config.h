// Observability configuration shared by every instrumented layer.
//
// One small value type selects how much the run records: the trace level
// (off / per-target scan events / per-packet network events), whether the
// labeled metrics registry is populated, and whether wall-clock stage
// profiling runs. The engine, the classic single-thread path, the CLI and
// the JSON world spec all speak this struct; absent config means every
// hook compiles down to a null-pointer check on the hot path.
#pragma once

#include <cstdint>
#include <string_view>

namespace xmap::obs {

// How much of the probe lifecycle the trace records.
//   kOff:    nothing (the default; hooks cost one branch)
//   kScan:   per-target lifecycle — generated / blocked / sent /
//            retransmit / classify verdicts / rate adjustments
//   kPacket: kScan plus per-packet substrate events — hop traversals,
//            fault verdicts, ICMPv6 rate-limiter suppressions
enum class TraceLevel : std::uint8_t { kOff = 0, kScan = 1, kPacket = 2 };

[[nodiscard]] constexpr const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::kScan:
      return "scan";
    case TraceLevel::kPacket:
      return "packet";
    case TraceLevel::kOff:
      break;
  }
  return "off";
}

// "off" | "scan" | "packet" -> level; false when the text matches none.
[[nodiscard]] constexpr bool trace_level_from_string(std::string_view text,
                                                    TraceLevel& out) {
  if (text == "off") {
    out = TraceLevel::kOff;
  } else if (text == "scan") {
    out = TraceLevel::kScan;
  } else if (text == "packet") {
    out = TraceLevel::kPacket;
  } else {
    return false;
  }
  return true;
}

struct ObsConfig {
  TraceLevel trace_level = TraceLevel::kOff;
  bool metrics = false;  // populate the labeled metrics registry
  bool profile = false;  // wall-clock stage timers + stage_profile section

  [[nodiscard]] bool any() const {
    return trace_level != TraceLevel::kOff || metrics || profile;
  }
};

}  // namespace xmap::obs
