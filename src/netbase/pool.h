// Thread-local size-class pool allocator for the packet hot path.
//
// Every probe send allocates a packet buffer, every hop simulation copies
// one, and every scheduled event stores a closure — at millions of probes
// per second those global-heap round trips dominate. BytePool gives each
// thread a bump arena carved into power-of-two size classes with per-class
// free lists: after a warm-up pass the steady-state scan path recycles
// blocks without ever calling ::operator new (asserted by the
// counting-allocator test in tests/sim/alloc_free_scan_test.cc).
//
// Memory model:
//  - Small blocks (<= 4 KiB) are carved from 256 KiB arena chunks owned by
//    the allocating thread's pool.
//  - Large blocks get an exact power-of-two allocation, recycled through
//    the same per-class free lists.
//  - When a thread exits, its chunks and free blocks move to a global
//    graveyard; future threads (e.g. the next scan's workers) adopt them
//    instead of hitting the heap. Pool memory is process-retained, so a
//    rare block that outlives its allocating thread (none on the scan path
//    today) stays valid — memory is never returned to the OS mid-process.
//  - Blocks freed on a different thread than they were allocated on simply
//    join the freeing thread's free list; safe because the backing chunks
//    are never released.
//
// The pool is deliberately not a general-purpose malloc: no headers on
// small blocks (the size class is recomputed from the size argument, which
// allocator-aware containers always pass back), no shrinking, no
// thread-shared fast path.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <new>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/compiler.h"

namespace xmap::net {

class BytePool {
 public:
  // Cumulative per-thread counters (monotonic; wall-clock artifacts — the
  // warm-up state of a thread's pool depends on what ran before, so these
  // must only feed wall_clock-flagged metrics).
  struct Stats {
    std::uint64_t alloc_calls = 0;    // allocate() invocations
    std::uint64_t recycled = 0;       // served from a free list
    std::uint64_t heap_allocs = 0;    // fell through to ::operator new
    std::uint64_t retained_bytes = 0; // chunk + large-block bytes owned
  };

  [[nodiscard]] static BytePool& local() {
    thread_local BytePool pool;
    return pool;
  }

  // While any instance is alive on this thread, allocate()/deallocate()
  // fall through to the global heap. Benchmarks use it to reproduce the
  // pre-pool allocation behaviour of the probe path; heap tools (ASan,
  // valgrind, massif) see individual blocks again instead of recycled
  // arena memory. Allocations must not cross the scope boundary in either
  // direction. Nests.
  class HeapFallbackScope {
   public:
    HeapFallbackScope() { ++local().bypass_; }
    ~HeapFallbackScope() { --local().bypass_; }
    HeapFallbackScope(const HeapFallbackScope&) = delete;
    HeapFallbackScope& operator=(const HeapFallbackScope&) = delete;
  };

  [[nodiscard]] void* allocate(std::size_t bytes) {
    ++stats_.alloc_calls;
    if (XMAP_UNLIKELY(bypass_ != 0)) {
      ++stats_.heap_allocs;
      return ::operator new(bytes);
    }
    const int c = class_for(bytes);
    if (XMAP_UNLIKELY(c >= kClasses)) {
      ++stats_.heap_allocs;
      return ::operator new(bytes);
    }
    if (XMAP_LIKELY(free_[c] != nullptr) || adopt(c)) {
      Block* b = free_[c];
      free_[c] = b->next;
      ++stats_.recycled;
      return b;
    }
    const std::size_t csize = std::size_t{1} << (c + kMinShift);
    if (csize <= kSmallMax) {
      if (XMAP_UNLIKELY(bump_left_ < csize)) grab_chunk();
      void* p = bump_;
      bump_ += csize;
      bump_left_ -= csize;
      return p;
    }
    return grab_large(c, csize);
  }

  void deallocate(void* p, std::size_t bytes) {
    if (XMAP_UNLIKELY(bypass_ != 0)) {
      ::operator delete(p);
      return;
    }
    const int c = class_for(bytes);
    if (XMAP_UNLIKELY(c >= kClasses)) {
      ::operator delete(p);
      return;
    }
    Block* b = static_cast<Block*>(p);
    b->next = free_[c];
    free_[c] = b;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  ~BytePool();

 private:
  BytePool() = default;
  BytePool(const BytePool&) = delete;
  BytePool& operator=(const BytePool&) = delete;

  static constexpr int kMinShift = 4;              // smallest class: 16 B
  static constexpr int kClasses = 25;              // largest: 16 B << 24 = 256 MiB
  static constexpr std::size_t kSmallMax = 4096;   // carved from arena chunks
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  struct Block {
    Block* next;
  };
  struct Chunk {
    Chunk* next;
  };

  [[nodiscard]] static int class_for(std::size_t bytes) {
    const std::size_t n = bytes < 16 ? 16 : std::bit_ceil(bytes);
    return std::bit_width(n) - 1 - kMinShift;
  }

  void grab_chunk();
  void* grab_large(int c, std::size_t csize);
  // Splices the graveyard's free list for class `c` into this pool;
  // returns whether anything was adopted.
  bool adopt(int c);

  Block* free_[kClasses] = {};
  int bypass_ = 0;           // live HeapFallbackScope count on this thread
  Chunk* chunks_ = nullptr;  // owned arena chunks (for graveyard handoff)
  std::uint8_t* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  Stats stats_;
};

// Standard-library allocator over the thread-local pool. Stateless: any
// instance deallocates into the current thread's pool.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(runtime/explicit)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(BytePool::local().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BytePool::local().deallocate(p, n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

// Pool-backed container aliases for hot-path state.
template <typename T>
using PoolVector = std::vector<T, PoolAllocator<T>>;

template <typename K>
using PoolSet =
    std::unordered_set<K, std::hash<K>, std::equal_to<K>, PoolAllocator<K>>;

template <typename K, typename V>
using PoolMap = std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
                                   PoolAllocator<std::pair<const K, V>>>;

}  // namespace xmap::net
