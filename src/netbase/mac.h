// MAC (EUI-48) addresses and the Modified EUI-64 interface-identifier
// transform (RFC 4291 appendix A): flip the universal/local bit of the first
// octet and insert 0xfffe between the OUI and the NIC-specific bytes.
//
// The reverse transform is what lets a scanner recover the hardware vendor of
// a periphery device from an SLAAC EUI-64 address — the basis of the paper's
// vendor identification (Tables II and IV).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace xmap::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(const std::array<std::uint8_t, 6>& bytes)
      : b_(bytes) {}
  // From a 48-bit integer, big-endian byte order.
  static constexpr MacAddress from_u64(std::uint64_t v) {
    std::array<std::uint8_t, 6> b{};
    for (int i = 5; i >= 0; --i) {
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
    return MacAddress{b};
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& bytes() const {
    return b_;
  }
  [[nodiscard]] constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (std::uint8_t byte : b_) v = (v << 8) | byte;
    return v;
  }

  // Organisationally Unique Identifier: the high 24 bits.
  [[nodiscard]] constexpr std::uint32_t oui() const {
    return (static_cast<std::uint32_t>(b_[0]) << 16) |
           (static_cast<std::uint32_t>(b_[1]) << 8) | b_[2];
  }

  [[nodiscard]] constexpr bool is_locally_administered() const {
    return (b_[0] & 0x02) != 0;
  }
  [[nodiscard]] constexpr bool is_multicast() const {
    return (b_[0] & 0x01) != 0;
  }

  // Modified EUI-64 interface identifier for SLAAC.
  [[nodiscard]] constexpr std::uint64_t to_eui64_iid() const {
    const std::uint8_t first = b_[0] ^ 0x02;  // flip U/L bit
    return (static_cast<std::uint64_t>(first) << 56) |
           (static_cast<std::uint64_t>(b_[1]) << 48) |
           (static_cast<std::uint64_t>(b_[2]) << 40) |
           (std::uint64_t{0xff} << 32) | (std::uint64_t{0xfe} << 24) |
           (static_cast<std::uint64_t>(b_[3]) << 16) |
           (static_cast<std::uint64_t>(b_[4]) << 8) | b_[5];
  }

  // Recovers the MAC from a Modified EUI-64 IID; nullopt when the IID does
  // not carry the 0xfffe marker.
  [[nodiscard]] static constexpr std::optional<MacAddress> from_eui64_iid(
      std::uint64_t iid) {
    if (((iid >> 24) & 0xffff) != 0xfffe) return std::nullopt;
    std::array<std::uint8_t, 6> b{};
    b[0] = static_cast<std::uint8_t>((iid >> 56) & 0xff) ^ 0x02;
    b[1] = static_cast<std::uint8_t>((iid >> 48) & 0xff);
    b[2] = static_cast<std::uint8_t>((iid >> 40) & 0xff);
    b[3] = static_cast<std::uint8_t>((iid >> 16) & 0xff);
    b[4] = static_cast<std::uint8_t>((iid >> 8) & 0xff);
    b[5] = static_cast<std::uint8_t>(iid & 0xff);
    return MacAddress{b};
  }

  // Parses "aa:bb:cc:dd:ee:ff" (case-insensitive); nullopt on bad syntax.
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;  // lowercase, colon-separated

  friend constexpr bool operator==(const MacAddress&, const MacAddress&) =
      default;
  friend constexpr auto operator<=>(const MacAddress& a, const MacAddress& b) {
    return a.to_u64() <=> b.to_u64();
  }

 private:
  std::array<std::uint8_t, 6> b_{};
};

}  // namespace xmap::net

template <>
struct std::hash<xmap::net::MacAddress> {
  std::size_t operator()(const xmap::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};
