#include "netbase/pool.h"

#include <atomic>

namespace xmap::net {
namespace {

// Process-lifetime graveyard: memory handed back by exiting threads and
// adopted by later pools. Allocated once and never destroyed — keeps the
// memory valid for any block that outlives its allocating thread, keeps it
// reachable for leak checkers, and dodges static-destruction-order races
// with main-thread thread_locals.
struct Graveyard {
  std::mutex mu;
  void* free_lists[32] = {};          // per size class, Block-layout
  void* chunks = nullptr;             // retained arena chunks (never reused)
  std::atomic<std::uint32_t> nonempty{0};  // bit c: free_lists[c] non-null
};

Graveyard& graveyard() {
  static Graveyard* g = new Graveyard;
  return *g;
}

}  // namespace

void BytePool::grab_chunk() {
  // Adopt nothing here — chunks in the graveyard may contain live blocks
  // from their previous owner and cannot be re-carved; fresh bump space
  // always comes from the heap.
  void* p = ::operator new(kChunkBytes);
  ++stats_.heap_allocs;
  stats_.retained_bytes += kChunkBytes;
  Chunk* ch = static_cast<Chunk*>(p);
  ch->next = chunks_;
  chunks_ = ch;
  bump_ = static_cast<std::uint8_t*>(p) + 16;  // skip the chunk header
  bump_left_ = kChunkBytes - 16;
}

void* BytePool::grab_large(int /*c*/, std::size_t csize) {
  void* p = ::operator new(csize);
  ++stats_.heap_allocs;
  stats_.retained_bytes += csize;
  return p;
}

bool BytePool::adopt(int c) {
  Graveyard& g = graveyard();
  if ((g.nonempty.load(std::memory_order_relaxed) & (1u << c)) == 0) {
    return false;
  }
  std::lock_guard lock{g.mu};
  if (g.free_lists[c] == nullptr) return false;
  free_[c] = static_cast<Block*>(g.free_lists[c]);
  g.free_lists[c] = nullptr;
  g.nonempty.fetch_and(~(1u << c), std::memory_order_relaxed);
  return true;
}

BytePool::~BytePool() {
  Graveyard& g = graveyard();
  std::lock_guard lock{g.mu};
  std::uint32_t mask = g.nonempty.load(std::memory_order_relaxed);
  for (int c = 0; c < kClasses; ++c) {
    while (free_[c] != nullptr) {
      Block* b = free_[c];
      free_[c] = b->next;
      b->next = static_cast<Block*>(g.free_lists[c]);
      g.free_lists[c] = b;
      mask |= 1u << c;
    }
  }
  while (chunks_ != nullptr) {
    Chunk* ch = chunks_;
    chunks_ = ch->next;
    ch->next = static_cast<Chunk*>(g.chunks);
    g.chunks = ch;
  }
  g.nonempty.store(mask, std::memory_order_relaxed);
}

}  // namespace xmap::net
