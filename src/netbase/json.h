// Minimal JSON document model and parser (RFC 8259 subset sufficient for
// configuration files: all value types, nested containers, string escapes,
// no surrogate-pair decoding).
//
// Exists so that topology specifications can be loaded from files
// (topology/spec_loader.h) without an external dependency; error messages
// carry line/column positions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace xmap::net {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}  // NOLINT(runtime/explicit)
  JsonValue(bool b) : value_(b) {}                // NOLINT(runtime/explicit)
  JsonValue(double d) : value_(d) {}              // NOLINT(runtime/explicit)
  JsonValue(int i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}    // NOLINT
  JsonValue(const char* s) : value_(std::string{s}) {}  // NOLINT
  JsonValue(JsonArray a) : value_(std::move(a)) {}      // NOLINT
  JsonValue(JsonObject o) : value_(std::move(o)) {}     // NOLINT

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return std::get<JsonArray>(value_);
  }
  [[nodiscard]] const JsonObject& as_object() const {
    return std::get<JsonObject>(value_);
  }

  // Object member access; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = as_object().find(key);
    return it == as_object().end() ? nullptr : &it->second;
  }

  // Typed getters with defaults, for config-file ergonomics.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_number() ? v->as_number() : fallback;
  }
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_string() ? v->as_string()
                                          : std::move(fallback);
  }
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
  }

  // Serializes back to compact JSON text.
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const JsonValue&, const JsonValue&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

struct JsonParseError {
  std::string message;
  int line = 0;
  int column = 0;

  [[nodiscard]] std::string to_string() const {
    return message + " at line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }
};

struct JsonParseResult {
  std::optional<JsonValue> value;  // nullopt on error
  JsonParseError error;
};

[[nodiscard]] JsonParseResult json_parse(std::string_view text);

}  // namespace xmap::net
