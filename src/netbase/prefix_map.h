// Longest-prefix-match container over IPv6 prefixes.
//
// A binary trie on address bits, generic over the mapped value so it backs
// the forwarding tables (RoutingTable), the measurement lookups (GeoDb's
// prefix -> AS/country mapping) and the results store's attribution index
// (src/store compiles one per loaded snapshot). Nodes live in a flat vector for
// locality; an ISP router holding one route per subscriber does a lookup per
// forwarded packet, so this is on the simulator's hot path.
//
// Lookups are served from a level-compressed (LC) trie compiled from the
// binary trie (Nilsson & Karlsson): single-child valueless chains collapse
// into skip strings and dense regions branch on several bits at once, so a
// match costs a handful of multi-bit node visits instead of up to 128
// single-bit steps. Values on levels a stride jumps over are pushed into
// the jump table entries, keeping longest-prefix semantics exact (the
// equivalence property test in tests/topology/lc_trie_test.cc checks every
// lookup against the plain binary-trie walk). The index compiles lazily on
// first lookup — or eagerly via compile() — and any insert/erase
// invalidates it; its arrays ride the thread-local BytePool so a mid-scan
// compile recycles pool blocks instead of hitting the heap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/compiler.h"
#include "netbase/ipv6.h"
#include "netbase/pool.h"

namespace xmap::net {

template <typename T>
class PrefixMap {
 public:
  PrefixMap() { nodes_.push_back(Node{}); }

  // Inserts or replaces the value at `prefix`.
  void insert(const Ipv6Prefix& prefix, T value) {
    std::size_t node = 0;
    const Uint128 bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      if (nodes_[node].child[b] < 0) {
        nodes_[node].child[b] = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(Node{});
      }
      node = static_cast<std::size_t>(nodes_[node].child[b]);
    }
    if (nodes_[node].value < 0) {
      nodes_[node].value = static_cast<std::int32_t>(values_.size());
      values_.push_back(std::move(value));
      ++size_;
    } else {
      values_[static_cast<std::size_t>(nodes_[node].value)] = std::move(value);
    }
    compiled_ = false;
  }

  // Longest-prefix match; nullptr when nothing matches.
  [[nodiscard]] const T* lookup(const Ipv6Address& addr) const {
    if (XMAP_UNLIKELY(!compiled_)) do_compile();
    const Uint128 v = addr.value();
    const std::uint64_t hi = v.hi();
    const std::uint64_t lo = v.lo();
    std::int32_t best = -1;
    std::size_t idx = 0;
    int depth = 0;
    for (;;) {
      const LcNode& n = lc_[idx];
      if (n.skip > 0) {
        if (get_bits(hi, lo, depth, n.skip) != n.skip_bits) break;
        depth += n.skip;
      }
      if (n.value >= 0) best = n.value;
      if (n.stride == 0) break;
      const LcEntry& e = entries_[static_cast<std::size_t>(n.child_base) +
                                  get_bits(hi, lo, depth, n.stride)];
      if (e.pushed >= 0) best = e.pushed;
      if (e.node < 0) break;
      depth += n.stride;
      idx = static_cast<std::size_t>(e.node);
    }
    return best < 0 ? nullptr : &values_[static_cast<std::size_t>(best)];
  }

  // The reference single-bit walk the LC-trie must agree with (kept for the
  // equivalence property test; not used on the forwarding path).
  [[nodiscard]] const T* lookup_linear(const Ipv6Address& addr) const {
    const Uint128 bits = addr.value();
    std::size_t node = 0;
    std::int32_t best = nodes_[0].value;
    for (int depth = 0; depth < 128; ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      const std::int32_t next = nodes_[node].child[b];
      if (next < 0) break;
      node = static_cast<std::size_t>(next);
      if (nodes_[node].value >= 0) best = nodes_[node].value;
    }
    return best < 0 ? nullptr : &values_[static_cast<std::size_t>(best)];
  }

  // Builds the LC index now instead of lazily on the first lookup. Call
  // before handing the map to concurrent readers (lazy compilation mutates
  // shared state; a compiled map's lookup path is fully const).
  void compile() const {
    if (!compiled_) do_compile();
  }

  // Exact-match lookup at a specific prefix; nullptr when absent.
  [[nodiscard]] const T* exact(const Ipv6Prefix& prefix) const {
    const Uint128 bits = prefix.address().value();
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      const std::int32_t next = nodes_[node].child[b];
      if (next < 0) return nullptr;
      node = static_cast<std::size_t>(next);
    }
    return nodes_[node].value < 0
               ? nullptr
               : &values_[static_cast<std::size_t>(nodes_[node].value)];
  }

  // Removes the exact entry; returns whether one existed. (The trie node is
  // left in place — removal is rare and the memory cost is negligible.)
  bool erase(const Ipv6Prefix& prefix) {
    const Uint128 bits = prefix.address().value();
    std::size_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int b = bits.bit(127 - depth) ? 1 : 0;
      const std::int32_t next = nodes_[node].child[b];
      if (next < 0) return false;
      node = static_cast<std::size_t>(next);
    }
    if (nodes_[node].value < 0) return false;
    nodes_[node].value = -1;
    --size_;
    compiled_ = false;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Visits every (prefix, value) pair in trie order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    Uint128 bits{};
    walk(0, 0, bits, fn);
  }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::int32_t value = -1;
  };

  // Compiled LC-trie node: after `skip` path-compressed bits (which must
  // equal `skip_bits`), apply `value` as the running best match, then
  // branch on the next `stride` bits into the entry array at `child_base`.
  // stride == 0 marks a leaf.
  struct LcNode {
    std::uint64_t skip_bits = 0;
    std::int32_t child_base = -1;
    std::int32_t value = -1;
    std::uint8_t skip = 0;
    std::uint8_t stride = 0;
  };
  // One jump-table slot: `pushed` is the deepest value on the binary path
  // the stride jumps over (depths 1..stride-1, or the partial path when the
  // subtree ends early and `node` is -1).
  struct LcEntry {
    std::int32_t node = -1;
    std::int32_t pushed = -1;
  };

  static constexpr int kMaxStride = 8;

  [[nodiscard]] static std::uint64_t bit_mask(int len) {
    return len >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len) - 1;
  }
  // Bits [pos, pos+len) of the 128-bit big-endian address value, len <= 64.
  [[nodiscard]] static std::uint64_t get_bits(std::uint64_t hi,
                                              std::uint64_t lo, int pos,
                                              int len) {
    if (pos + len <= 64) return (hi >> (64 - pos - len)) & bit_mask(len);
    if (pos >= 64) return (lo >> (128 - pos - len)) & bit_mask(len);
    const int lo_len = pos + len - 64;
    return ((hi & bit_mask(64 - pos)) << lo_len) | (lo >> (64 - lo_len));
  }

  // Binary nodes at depth exactly `depth` below `bin` (stride heuristic).
  [[nodiscard]] std::size_t count_at_depth(std::size_t bin, int depth) const {
    if (depth == 0) return 1;
    std::size_t n = 0;
    for (int b = 0; b < 2; ++b) {
      if (nodes_[bin].child[b] >= 0) {
        n += count_at_depth(static_cast<std::size_t>(nodes_[bin].child[b]),
                            depth - 1);
      }
    }
    return n;
  }

  void do_compile() const {
    lc_.clear();
    entries_.clear();
    lc_.push_back(LcNode{});
    compile_node(0, 0);
    compiled_ = true;
  }

  // Compiles the binary subtree rooted at `bin` into lc_[out]. All writes
  // go through indices: lc_ and entries_ reallocate during recursion.
  void compile_node(std::size_t bin, std::size_t out) const {
    // Path-compress through valueless single-child chains. Chains longer
    // than 64 bits simply continue in the (stride-1) child node.
    std::uint64_t skip_bits = 0;
    int skip = 0;
    while (skip < 64 && nodes_[bin].value < 0 &&
           (nodes_[bin].child[0] < 0) != (nodes_[bin].child[1] < 0)) {
      const int b = nodes_[bin].child[1] >= 0 ? 1 : 0;
      skip_bits = (skip_bits << 1) | static_cast<std::uint64_t>(b);
      bin = static_cast<std::size_t>(nodes_[bin].child[b]);
      ++skip;
    }
    lc_[out].skip = static_cast<std::uint8_t>(skip);
    lc_[out].skip_bits = skip_bits;
    lc_[out].value = nodes_[bin].value;
    if (nodes_[bin].child[0] < 0 && nodes_[bin].child[1] < 0) return;

    // Level compression: branch on the widest level that is at least half
    // full, so sparse regions stay narrow and dense ones flatten.
    int stride = 1;
    for (int s = 2; s <= kMaxStride; ++s) {
      if (count_at_depth(bin, s) * 2 >= (std::size_t{1} << s)) stride = s;
    }
    lc_[out].stride = static_cast<std::uint8_t>(stride);
    const std::size_t base = entries_.size();
    lc_[out].child_base = static_cast<std::int32_t>(base);
    entries_.resize(base + (std::size_t{1} << stride));

    for (std::uint64_t e = 0; e < (std::uint64_t{1} << stride); ++e) {
      std::size_t cur = bin;
      std::int32_t pushed = -1;
      bool alive = true;
      for (int d = 0; d < stride; ++d) {
        const int b = static_cast<int>((e >> (stride - 1 - d)) & 1);
        const std::int32_t next = nodes_[cur].child[b];
        if (next < 0) {
          alive = false;
          break;
        }
        cur = static_cast<std::size_t>(next);
        if (d + 1 < stride && nodes_[cur].value >= 0) {
          pushed = nodes_[cur].value;
        }
      }
      if (!alive) {
        entries_[base + e].pushed = pushed;
        continue;
      }
      const auto child = static_cast<std::int32_t>(lc_.size());
      entries_[base + e] = LcEntry{child, pushed};
      lc_.push_back(LcNode{});
      compile_node(cur, static_cast<std::size_t>(child));
    }
  }

  template <typename Fn>
  void walk(std::size_t node, int depth, Uint128& bits, Fn&& fn) const {
    if (nodes_[node].value >= 0) {
      fn(Ipv6Prefix{Ipv6Address::from_value(bits), depth},
         values_[static_cast<std::size_t>(nodes_[node].value)]);
    }
    for (int b = 0; b < 2; ++b) {
      if (nodes_[node].child[b] < 0) continue;
      if (b) bits.set_bit(127 - depth, true);
      walk(static_cast<std::size_t>(nodes_[node].child[b]), depth + 1, bits,
           fn);
      if (b) bits.set_bit(127 - depth, false);
    }
  }

  std::vector<Node> nodes_;
  std::vector<T> values_;
  std::size_t size_ = 0;

  // Compiled index (mutable: rebuilt lazily from the const lookup path).
  mutable PoolVector<LcNode> lc_;
  mutable PoolVector<LcEntry> entries_;
  mutable bool compiled_ = false;
};

}  // namespace xmap::net
