#include "netbase/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace xmap::net {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    skip_whitespace();
    auto value = parse_value();
    if (!value) return fail_result();
    skip_whitespace();
    if (pos_ != text_.size()) {
      set_error("trailing characters after document");
      return fail_result();
    }
    return JsonParseResult{std::move(value), {}};
  }

 private:
  JsonParseResult fail_result() {
    return JsonParseResult{std::nullopt, error_};
  }

  void set_error(std::string message) {
    if (!error_.message.empty()) return;  // keep the first error
    error_.message = std::move(message);
    error_.line = 1;
    error_.column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++error_.line;
        error_.column = 1;
      } else {
        ++error_.column;
      }
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    if (++depth_ > 64) {
      set_error("nesting too deep");
      return std::nullopt;
    }
    skip_whitespace();
    if (at_end()) {
      set_error("unexpected end of input");
      return std::nullopt;
    }
    std::optional<JsonValue> out;
    switch (peek()) {
      case '{': out = parse_object(); break;
      case '[': out = parse_array(); break;
      case '"': {
        auto s = parse_string();
        if (s) out = JsonValue{std::move(*s)};
        break;
      }
      case 't':
        if (consume_literal("true")) out = JsonValue{true};
        else set_error("bad literal");
        break;
      case 'f':
        if (consume_literal("false")) out = JsonValue{false};
        else set_error("bad literal");
        break;
      case 'n':
        if (consume_literal("null")) out = JsonValue{nullptr};
        else set_error("bad literal");
        break;
      default:
        out = parse_number();
    }
    --depth_;
    return out;
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonObject object;
    skip_whitespace();
    if (consume('}')) return JsonValue{std::move(object)};
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') {
        set_error("expected object key");
        return std::nullopt;
      }
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) {
        set_error("expected ':'");
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) return std::nullopt;
      object[std::move(*key)] = std::move(*value);
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue{std::move(object)};
      set_error("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonArray array;
    skip_whitespace();
    if (consume(']')) return JsonValue{std::move(array)};
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      array.push_back(std::move(*value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue{std::move(array)};
      set_error("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (at_end()) {
        set_error("unterminated string");
        return std::nullopt;
      }
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        set_error("control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) {
        set_error("dangling escape");
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            set_error("bad \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              set_error("bad \\u escape");
              return std::nullopt;
            }
          }
          // Encode as UTF-8 (no surrogate-pair handling; config files only).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          set_error("unknown escape");
          return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' ||
                         peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      set_error("expected value");
      return std::nullopt;
    }
    const std::string copy{token};
    char* end = nullptr;
    const double value = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || !std::isfinite(value)) {
      set_error("bad number");
      return std::nullopt;
    }
    return JsonValue{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  JsonParseError error_;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const JsonValue& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    const double d = v.as_number();
    char buf[32];
    if (d == static_cast<double>(static_cast<long long>(d)) &&
        std::abs(d) < 1e15) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", d);
    }
    out += buf;
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const auto& item : v.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(item, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : v.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      dump_string(key, out);
      out.push_back(':');
      dump_value(value, out);
    }
    out.push_back('}');
  }
}

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

JsonParseResult json_parse(std::string_view text) {
  return Parser{text}.run();
}

}  // namespace xmap::net
