// Internet checksum (RFC 1071) and the IPv6 pseudo-header variant used by
// ICMPv6 (RFC 4443 §2.3), UDP and TCP over IPv6 (RFC 8200 §8.1).
#pragma once

#include <cstdint>
#include <span>

#include "netbase/ipv6.h"

namespace xmap::net {

// Ones-complement sum of 16-bit words, returning the running 32-bit
// accumulator (not yet folded/complemented). Odd trailing byte is padded
// with zero per RFC 1071. Large buffers take a SIMD-widened path where the
// CPU supports it; the accumulator is only guaranteed equal to the
// reference modulo 0xffff (zero iff the reference is zero), which every
// fold/finish consumer preserves.
[[nodiscard]] std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                                std::uint32_t acc = 0);

// Byte-pair RFC 1071 reference: no word tricks, no carry shortcuts, no
// SIMD. The ground truth the property tests (and the SIMD equality asserts
// in the micro bench) compare against.
[[nodiscard]] std::uint32_t checksum_accumulate_reference(
    std::span<const std::uint8_t> data, std::uint32_t acc = 0);

// Folds the accumulator and returns the ones-complement checksum.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t acc);

// Folds the accumulator to 16 bits WITHOUT the final complement — the form
// to cache when a precomputed partial sum will have more words added later
// (e.g. a probe template's fixed bytes, re-summed with per-target fields).
[[nodiscard]] constexpr std::uint16_t checksum_fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(acc);
}

// Plain RFC 1071 checksum over a buffer.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

// Upper-layer checksum over the IPv6 pseudo-header (src, dst, length,
// next-header) plus the L4 payload. The payload's checksum field must be
// zero when computing, and left in place when verifying (result is 0 for a
// valid packet).
[[nodiscard]] std::uint16_t ipv6_upper_layer_checksum(
    const Ipv6Address& src, const Ipv6Address& dst, std::uint8_t next_header,
    std::span<const std::uint8_t> l4_data);

// Incremental checksum update (RFC 1624): given the checksum of some data
// and the old/new contents of one contiguous changed region, returns the
// checksum of the updated data without re-reading the rest. `before` and
// `after` must be the same even length and start at an even offset within
// the checksummed data (which includes the pseudo-header for upper-layer
// checksums). This is what lets a cached probe template re-aim at a new
// destination in a handful of adds instead of a full packet walk.
[[nodiscard]] std::uint16_t checksum_update(std::uint16_t csum,
                                            std::span<const std::uint8_t> before,
                                            std::span<const std::uint8_t> after);

}  // namespace xmap::net
