#include "netbase/ipv6.h"

#include <charconv>
#include <cstdio>
#include <vector>

namespace xmap::net {
namespace {

// Parses one hex group (1-4 digits); returns nullopt on bad syntax.
std::optional<std::uint16_t> parse_group(std::string_view g) {
  if (g.empty() || g.size() > 4) return std::nullopt;
  std::uint16_t v = 0;
  for (char c : g) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    v = static_cast<std::uint16_t>((v << 4) | digit);
  }
  return v;
}

// Parses a dotted-quad IPv4 tail into two 16-bit groups.
std::optional<std::pair<std::uint16_t, std::uint16_t>> parse_v4_tail(
    std::string_view text) {
  std::array<std::uint32_t, 4> oct{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    std::size_t dot = i < 3 ? text.find('.', pos) : text.size();
    if (dot == std::string_view::npos) return std::nullopt;
    std::string_view part = text.substr(pos, dot - pos);
    if (part.empty() || part.size() > 3) return std::nullopt;
    std::uint32_t v = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (v > 255) return std::nullopt;
    oct[static_cast<std::size_t>(i)] = v;
    pos = dot + 1;
  }
  return std::pair{static_cast<std::uint16_t>((oct[0] << 8) | oct[1]),
                   static_cast<std::uint16_t>((oct[2] << 8) | oct[3])};
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  if (text.size() < 2 || text.size() > 45) return std::nullopt;

  // Split on "::" (at most one occurrence).
  std::size_t dc = text.find("::");
  if (dc != std::string_view::npos &&
      text.find("::", dc + 1) != std::string_view::npos) {
    return std::nullopt;
  }

  auto split_groups = [](std::string_view part,
                         std::vector<std::string_view>& out) -> bool {
    if (part.empty()) return true;
    std::size_t pos = 0;
    while (true) {
      std::size_t colon = part.find(':', pos);
      if (colon == std::string_view::npos) {
        out.push_back(part.substr(pos));
        return true;
      }
      if (colon == pos) return false;  // empty group (stray colon)
      out.push_back(part.substr(pos, colon - pos));
      pos = colon + 1;
      if (pos >= part.size()) return false;  // trailing single colon
    }
  };

  std::vector<std::string_view> head, tail;
  if (dc == std::string_view::npos) {
    if (!split_groups(text, head)) return std::nullopt;
  } else {
    if (!split_groups(text.substr(0, dc), head)) return std::nullopt;
    if (!split_groups(text.substr(dc + 2), tail)) return std::nullopt;
  }

  // Expand groups, handling a possible IPv4 dotted-quad in the final group.
  std::vector<std::uint16_t> groups_head, groups_tail;
  auto expand = [](const std::vector<std::string_view>& parts,
                   std::vector<std::uint16_t>& out, bool allow_v4) -> bool {
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const bool last = i + 1 == parts.size();
      if (last && allow_v4 && parts[i].find('.') != std::string_view::npos) {
        auto v4 = parse_v4_tail(parts[i]);
        if (!v4) return false;
        out.push_back(v4->first);
        out.push_back(v4->second);
        return true;
      }
      auto g = parse_group(parts[i]);
      if (!g) return false;
      out.push_back(*g);
    }
    return true;
  };

  const bool v4_in_tail = dc != std::string_view::npos;
  if (!expand(head, groups_head, /*allow_v4=*/!v4_in_tail)) return std::nullopt;
  if (!expand(tail, groups_tail, /*allow_v4=*/true)) return std::nullopt;

  const std::size_t total = groups_head.size() + groups_tail.size();
  if (dc == std::string_view::npos) {
    if (total != 8) return std::nullopt;
  } else {
    // "::" elides at least one zero group, so at most 7 explicit groups.
    if (total > 7) return std::nullopt;
  }

  std::array<std::uint8_t, 16> b{};
  std::size_t gi = 0;
  for (std::uint16_t g : groups_head) {
    b[2 * gi] = static_cast<std::uint8_t>(g >> 8);
    b[2 * gi + 1] = static_cast<std::uint8_t>(g & 0xff);
    ++gi;
  }
  gi = 8 - groups_tail.size();
  for (std::uint16_t g : groups_tail) {
    b[2 * gi] = static_cast<std::uint8_t>(g >> 8);
    b[2 * gi + 1] = static_cast<std::uint8_t>(g & 0xff);
    ++gi;
  }
  return Ipv6Address{b};
}

std::string Ipv6Address::to_string() const {
  // RFC 5952 §5: IPv4-mapped addresses render with a dotted-quad tail.
  if (group(0) == 0 && group(1) == 0 && group(2) == 0 && group(3) == 0 &&
      group(4) == 0 && group(5) == 0xffff) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "::ffff:%u.%u.%u.%u", byte(12), byte(13),
                  byte(14), byte(15));
    return std::string{buf};
  }
  // Find the longest run of zero groups (length >= 2), leftmost on ties.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(40);
  for (int i = 0; i < 8; ++i) {
    if (i == best_start) {
      out += "::";
      i += best_len - 1;  // loop increment lands on the group after the run
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    char g[8];
    std::snprintf(g, sizeof g, "%x", group(i));
    out += g;
  }
  return out;
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  int len = 0;
  auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size())
    return std::nullopt;
  if (len < 0 || len > 128) return std::nullopt;
  return Ipv6Prefix{*addr, len};
}

std::string Ipv6Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace xmap::net
