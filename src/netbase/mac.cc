#include "netbase/mac.h"

#include <cstdio>

namespace xmap::net {

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> b{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t pos = static_cast<std::size_t>(3 * i);
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int high = nibble(text[pos]);
    const int low = nibble(text[pos + 1]);
    if (high < 0 || low < 0) return std::nullopt;
    if (i < 5 && text[pos + 2] != ':') return std::nullopt;
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((high << 4) | low);
  }
  return MacAddress{b};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", b_[0], b_[1],
                b_[2], b_[3], b_[4], b_[5]);
  return std::string{buf};
}

}  // namespace xmap::net
