// Minimal IPv4 address value type.
//
// Needed for two things: the "Embed-IPv4" interface-identifier class of the
// addr6 taxonomy (Table III/V/X), and XMap's ZMap-compatible IPv4 target
// generation (XMap can permute IPv4 spaces too, e.g. 192.168.0.0/20-25).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace xmap::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t v) : v_(v) {}
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(static_cast<std::uint32_t>(a) << 24) |
                       (static_cast<std::uint32_t>(b) << 16) |
                       (static_cast<std::uint32_t>(c) << 8) | d};
  }

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(v_ >> (8 * (3 - i)));
  }

  // Plausibly a globally-routed unicast host address: not 0.x, not 127.x,
  // not multicast/reserved (224.0.0.0/3), not broadcast.
  [[nodiscard]] constexpr bool is_plausible_host() const {
    const std::uint8_t first = octet(0);
    if (first == 0 || first == 127 || first >= 224) return false;
    return v_ != 0xffffffffu;
  }

  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Ipv4Address&, const Ipv4Address&) =
      default;
  friend constexpr auto operator<=>(const Ipv4Address& a,
                                    const Ipv4Address& b) {
    return a.v_ <=> b.v_;
  }

 private:
  std::uint32_t v_ = 0;
};

}  // namespace xmap::net
