#include "netbase/ipv4.h"

#include <cstdio>

namespace xmap::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t v = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    std::size_t dot = i < 3 ? text.find('.', pos) : text.size();
    if (dot == std::string_view::npos) return std::nullopt;
    std::string_view part = text.substr(pos, dot - pos);
    if (part.empty() || part.size() > 3) return std::nullopt;
    std::uint32_t octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    v = (v << 8) | octet;
    pos = dot + 1;
  }
  return Ipv4Address{v};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return std::string{buf};
}

}  // namespace xmap::net
