// Portable hot-path annotations.
//
// Everything here is safe under -fno-exceptions and degrades to a no-op on
// compilers without the underlying builtin. Used by the packet hot path
// (checksum, template patching, pool allocator, LC-trie lookups) to keep
// branch layout and alias information explicit without sprinkling raw
// builtins through the code.
#pragma once

#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define XMAP_LIKELY(x) (__builtin_expect(!!(x), 1))
#define XMAP_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#define XMAP_ALWAYS_INLINE inline __attribute__((always_inline))
#define XMAP_NOINLINE __attribute__((noinline))
#else
#define XMAP_LIKELY(x) (x)
#define XMAP_UNLIKELY(x) (x)
#define XMAP_ALWAYS_INLINE inline
#define XMAP_NOINLINE
#endif

namespace xmap::net {

// Tells the optimizer `p` is aligned to `Align` bytes. Unlike a raw
// __builtin_assume_aligned chain this keeps the pointer type, and unlike
// std::assume_aligned it is available regardless of library support level.
template <std::size_t Align, typename T>
[[nodiscard]] XMAP_ALWAYS_INLINE T* assume_aligned(T* p) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<T*>(__builtin_assume_aligned(p, Align));
#else
  return p;
#endif
}

}  // namespace xmap::net
