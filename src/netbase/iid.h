// Interface-identifier (IID) taxonomy.
//
// The paper analyses discovered addresses with the addr6 tool's classes
// (Tables III, V and X): EUI-64, Low-byte, Embed-IPv4, Byte-pattern and
// Randomized. Classification and synthesis live together here so the
// topology generator and the analysis pipeline agree on semantics by
// construction — a device generated with a given style always classifies
// back to that style (enforced by tests and by rejection sampling in the
// generators).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netbase/mac.h"
#include "netbase/random.h"

namespace xmap::net {

enum class IidStyle : std::uint8_t {
  kEui64 = 0,
  kLowByte = 1,
  kEmbedIpv4 = 2,
  kBytePattern = 3,
  kRandomized = 4,
};

inline constexpr int kIidStyleCount = 5;

[[nodiscard]] constexpr const char* iid_style_name(IidStyle s) {
  switch (s) {
    case IidStyle::kEui64: return "EUI-64";
    case IidStyle::kLowByte: return "Low-byte";
    case IidStyle::kEmbedIpv4: return "Embed-IPv4";
    case IidStyle::kBytePattern: return "Byte-pattern";
    case IidStyle::kRandomized: return "Randomized";
  }
  return "?";
}

// Classifies a 64-bit IID. Checks run in priority order (EUI-64 marker,
// low-byte, embedded IPv4, byte patterns) with Randomized as the fallback,
// mirroring addr6's decision order.
[[nodiscard]] IidStyle classify_iid(std::uint64_t iid);

// Generates an IID of the requested style. For kEui64 the OUI seeds the
// embedded MAC and the MAC is reported through `mac_out`; other styles leave
// it untouched. Generation uses rejection sampling so that
// classify_iid(generate_iid(style)) == style always holds.
[[nodiscard]] std::uint64_t generate_iid(IidStyle style, Rng& rng,
                                         std::uint32_t oui = 0,
                                         MacAddress* mac_out = nullptr);

}  // namespace xmap::net
