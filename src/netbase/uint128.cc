#include "netbase/uint128.h"

#include <algorithm>
#include <cctype>

namespace xmap::net {

Uint128 Uint128::mulmod(Uint128 a, Uint128 b, Uint128 m) {
  if (m.is_zero()) return Uint128{};
  a %= m;
  b %= m;
  // Fast path: product fits in 128 bits exactly when the operand widths sum
  // to at most 128.
  if (a.bit_width() + b.bit_width() <= 128) return (a * b) % m;
  // Russian-peasant multiplication with modular reduction at each step.
  Uint128 result{};
  while (!b.is_zero()) {
    if (b.bit(0)) {
      result = result + a;
      if (result >= m || result < a) result -= m;  // handle wrap
    }
    Uint128 doubled = a + a;
    if (doubled >= m || doubled < a) doubled -= m;
    a = doubled;
    b >>= 1;
  }
  return result;
}

Uint128 Uint128::powmod(Uint128 base, Uint128 exp, Uint128 m) {
  if (m.is_zero()) return Uint128{};
  if (m == Uint128{1}) return Uint128{};
  Uint128 result{1};
  base %= m;
  while (!exp.is_zero()) {
    if (exp.bit(0)) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::string Uint128::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  Uint128 v = *this;
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, Uint128{10});
    out.push_back(static_cast<char>('0' + r.to_u64()));
    v = q;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Uint128::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  Uint128 v = *this;
  while (!v.is_zero()) {
    out.push_back(kDigits[v.to_u64() & 0xf]);
    v >>= 4;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::optional<Uint128> Uint128::from_string(std::string_view dec) {
  if (dec.empty()) return std::nullopt;
  Uint128 v{};
  for (char c : dec) {
    if (c < '0' || c > '9') return std::nullopt;
    Uint128 next = v * Uint128{10} + Uint128{static_cast<std::uint64_t>(c - '0')};
    if (next < v) return std::nullopt;  // overflow
    v = next;
  }
  return v;
}

std::optional<Uint128> Uint128::from_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 32) return std::nullopt;
  Uint128 v{};
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    v = (v << 4) | Uint128{static_cast<std::uint64_t>(digit)};
  }
  return v;
}

}  // namespace xmap::net
