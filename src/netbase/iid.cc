#include "netbase/iid.h"

#include "netbase/ipv4.h"

namespace xmap::net {
namespace {

[[nodiscard]] bool has_eui64_marker(std::uint64_t iid) {
  return ((iid >> 24) & 0xffff) == 0xfffe;
}

[[nodiscard]] bool is_low_byte(std::uint64_t iid) {
  // A run of zeroes followed only by a low number.
  return iid <= 0xffff;
}

[[nodiscard]] bool is_embed_ipv4(std::uint64_t iid) {
  // Form 1: ::a.b.c.d — IPv4 in the low 32 bits, upper 32 bits zero.
  if ((iid >> 32) == 0) {
    return Ipv4Address{static_cast<std::uint32_t>(iid)}.is_plausible_host();
  }
  // Form 2: groups-as-octets, e.g. 2001:db8::192:168:1:1 — each 16-bit
  // group holds one decimal octet value.
  std::uint8_t octets[4];
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t group = (iid >> (16 * (3 - i))) & 0xffff;
    // Groups-as-octets means each group reads as a decimal octet: the hex
    // digits must be valid decimal and the value <= 255 when read as decimal.
    std::uint64_t g = group;
    std::uint32_t dec = 0, mul = 1;
    bool ok = true;
    if (g == 0) dec = 0;
    while (g != 0) {
      const std::uint64_t digit = g & 0xf;
      if (digit > 9 || mul > 100) {
        ok = false;
        break;
      }
      dec += static_cast<std::uint32_t>(digit) * mul;
      mul *= 10;
      g >>= 4;
    }
    if (!ok || dec > 255) return false;
    octets[i] = static_cast<std::uint8_t>(dec);
  }
  return Ipv4Address::from_octets(octets[0], octets[1], octets[2], octets[3])
      .is_plausible_host();
}

[[nodiscard]] bool is_byte_pattern(std::uint64_t iid) {
  // Few distinct byte values, or all 16-bit groups identical.
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(iid >> (8 * (7 - i)));
  int distinct = 0;
  bool seen[256] = {};
  for (std::uint8_t b : bytes) {
    if (!seen[b]) {
      seen[b] = true;
      ++distinct;
    }
  }
  if (distinct <= 2) return true;
  const std::uint64_t g = iid & 0xffff;
  return ((iid >> 48) & 0xffff) == g && ((iid >> 32) & 0xffff) == g &&
         ((iid >> 16) & 0xffff) == g;
}

}  // namespace

IidStyle classify_iid(std::uint64_t iid) {
  if (has_eui64_marker(iid)) return IidStyle::kEui64;
  if (is_low_byte(iid)) return IidStyle::kLowByte;
  if (is_embed_ipv4(iid)) return IidStyle::kEmbedIpv4;
  if (is_byte_pattern(iid)) return IidStyle::kBytePattern;
  return IidStyle::kRandomized;
}

std::uint64_t generate_iid(IidStyle style, Rng& rng, std::uint32_t oui,
                           MacAddress* mac_out) {
  switch (style) {
    case IidStyle::kEui64: {
      const std::uint64_t nic = rng.next() & 0xffffff;
      const MacAddress mac = MacAddress::from_u64(
          (static_cast<std::uint64_t>(oui) << 24) | nic);
      if (mac_out != nullptr) *mac_out = mac;
      return mac.to_eui64_iid();
    }
    case IidStyle::kLowByte:
      return rng.uniform_range(1, 0xff);
    case IidStyle::kEmbedIpv4: {
      // ::a.b.c.d form with a plausible global IPv4.
      while (true) {
        const std::uint32_t v4 = static_cast<std::uint32_t>(rng.next());
        if (Ipv4Address{v4}.is_plausible_host() &&
            classify_iid(v4) == IidStyle::kEmbedIpv4) {
          return v4;
        }
      }
    }
    case IidStyle::kBytePattern: {
      while (true) {
        // Two random byte values arranged in an alternating pattern.
        const std::uint8_t x = static_cast<std::uint8_t>(rng.next());
        const std::uint8_t y = static_cast<std::uint8_t>(rng.next());
        std::uint64_t iid = 0;
        for (int i = 0; i < 8; ++i)
          iid = (iid << 8) | ((i % 2 == 0) ? x : y);
        if (classify_iid(iid) == IidStyle::kBytePattern) return iid;
      }
    }
    case IidStyle::kRandomized: {
      while (true) {
        const std::uint64_t iid = rng.next();
        if (classify_iid(iid) == IidStyle::kRandomized) return iid;
      }
    }
  }
  return 0;
}

}  // namespace xmap::net
