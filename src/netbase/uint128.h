// 128-bit unsigned integer arithmetic.
//
// XMap generalises ZMap's 32-bit cyclic-group permutation to scan windows at
// arbitrary positions inside a 128-bit IPv6 address, so every layer of this
// library (address values, permutation group, target generation) needs full
// 128-bit arithmetic. We implement it from scratch — no compiler extension
// types in public interfaces — so the representation is portable and
// constexpr-friendly.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace xmap::net {

// Value-semantic 128-bit unsigned integer with wrap-around (mod 2^128)
// semantics, mirroring the built-in unsigned types.
class Uint128 {
 public:
  constexpr Uint128() = default;
  constexpr Uint128(std::uint64_t lo) : lo_(lo) {}  // NOLINT(runtime/explicit)
  constexpr Uint128(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  [[nodiscard]] constexpr std::uint64_t hi() const { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const { return lo_; }

  // Truncating conversion, analogous to static_cast<uint64_t> on integers.
  [[nodiscard]] constexpr std::uint64_t to_u64() const { return lo_; }
  [[nodiscard]] constexpr bool fits_u64() const { return hi_ == 0; }

  [[nodiscard]] constexpr bool is_zero() const { return hi_ == 0 && lo_ == 0; }

  static constexpr Uint128 max() {
    return Uint128{~std::uint64_t{0}, ~std::uint64_t{0}};
  }

  // 2^n for n in [0, 128). n == 128 would overflow; callers handle that case.
  static constexpr Uint128 pow2(int n) {
    if (n < 64) return Uint128{0, std::uint64_t{1} << n};
    return Uint128{std::uint64_t{1} << (n - 64), 0};
  }

  friend constexpr bool operator==(Uint128 a, Uint128 b) {
    return a.hi_ == b.hi_ && a.lo_ == b.lo_;
  }
  friend constexpr auto operator<=>(Uint128 a, Uint128 b) {
    if (a.hi_ != b.hi_) return a.hi_ <=> b.hi_;
    return a.lo_ <=> b.lo_;
  }

  friend constexpr Uint128 operator+(Uint128 a, Uint128 b) {
    std::uint64_t lo = a.lo_ + b.lo_;
    std::uint64_t carry = lo < a.lo_ ? 1 : 0;
    return Uint128{a.hi_ + b.hi_ + carry, lo};
  }
  friend constexpr Uint128 operator-(Uint128 a, Uint128 b) {
    std::uint64_t lo = a.lo_ - b.lo_;
    std::uint64_t borrow = a.lo_ < b.lo_ ? 1 : 0;
    return Uint128{a.hi_ - b.hi_ - borrow, lo};
  }

  friend constexpr Uint128 operator*(Uint128 a, Uint128 b) {
    // Schoolbook on 32-bit limbs; keep low 128 bits.
    const std::uint64_t a32 = a.lo_ >> 32, a0 = a.lo_ & 0xffffffffu;
    const std::uint64_t b32 = b.lo_ >> 32, b0 = b.lo_ & 0xffffffffu;
    const std::uint64_t p00 = a0 * b0;
    const std::uint64_t p01 = a0 * b32;
    const std::uint64_t p10 = a32 * b0;
    const std::uint64_t p11 = a32 * b32;
    std::uint64_t mid = (p00 >> 32) + (p01 & 0xffffffffu) + (p10 & 0xffffffffu);
    std::uint64_t lo = (p00 & 0xffffffffu) | (mid << 32);
    std::uint64_t hi = p11 + (p01 >> 32) + (p10 >> 32) + (mid >> 32);
    hi += a.hi_ * b.lo_ + a.lo_ * b.hi_;
    return Uint128{hi, lo};
  }

  friend constexpr Uint128 operator&(Uint128 a, Uint128 b) {
    return Uint128{a.hi_ & b.hi_, a.lo_ & b.lo_};
  }
  friend constexpr Uint128 operator|(Uint128 a, Uint128 b) {
    return Uint128{a.hi_ | b.hi_, a.lo_ | b.lo_};
  }
  friend constexpr Uint128 operator^(Uint128 a, Uint128 b) {
    return Uint128{a.hi_ ^ b.hi_, a.lo_ ^ b.lo_};
  }
  friend constexpr Uint128 operator~(Uint128 a) {
    return Uint128{~a.hi_, ~a.lo_};
  }

  friend constexpr Uint128 operator<<(Uint128 a, int n) {
    if (n <= 0) return a;
    if (n >= 128) return Uint128{};
    if (n >= 64) return Uint128{a.lo_ << (n - 64), 0};
    return Uint128{(a.hi_ << n) | (a.lo_ >> (64 - n)), a.lo_ << n};
  }
  friend constexpr Uint128 operator>>(Uint128 a, int n) {
    if (n <= 0) return a;
    if (n >= 128) return Uint128{};
    if (n >= 64) return Uint128{0, a.hi_ >> (n - 64)};
    return Uint128{a.hi_ >> n, (a.lo_ >> n) | (a.hi_ << (64 - n))};
  }

  constexpr Uint128& operator+=(Uint128 b) { return *this = *this + b; }
  constexpr Uint128& operator-=(Uint128 b) { return *this = *this - b; }
  constexpr Uint128& operator*=(Uint128 b) { return *this = *this * b; }
  constexpr Uint128& operator&=(Uint128 b) { return *this = *this & b; }
  constexpr Uint128& operator|=(Uint128 b) { return *this = *this | b; }
  constexpr Uint128& operator^=(Uint128 b) { return *this = *this ^ b; }
  constexpr Uint128& operator<<=(int n) { return *this = *this << n; }
  constexpr Uint128& operator>>=(int n) { return *this = *this >> n; }

  constexpr Uint128& operator++() { return *this += Uint128{1}; }
  constexpr Uint128 operator++(int) {
    Uint128 old = *this;
    ++*this;
    return old;
  }
  constexpr Uint128& operator--() { return *this -= Uint128{1}; }

  // Number of bits needed to represent the value; 0 for value 0.
  [[nodiscard]] constexpr int bit_width() const {
    if (hi_ != 0) return 64 + std::bit_width(hi_);
    return std::bit_width(lo_);
  }
  [[nodiscard]] constexpr int popcount() const {
    return std::popcount(hi_) + std::popcount(lo_);
  }
  [[nodiscard]] constexpr int countl_zero() const { return 128 - bit_width(); }
  [[nodiscard]] constexpr int countr_zero() const {
    if (lo_ != 0) return std::countr_zero(lo_);
    if (hi_ != 0) return 64 + std::countr_zero(hi_);
    return 128;
  }

  // Bit i (0 = least significant).
  [[nodiscard]] constexpr bool bit(int i) const {
    if (i < 64) return (lo_ >> i) & 1;
    return (hi_ >> (i - 64)) & 1;
  }
  constexpr void set_bit(int i, bool v) {
    if (i < 64) {
      const std::uint64_t m = std::uint64_t{1} << i;
      lo_ = v ? (lo_ | m) : (lo_ & ~m);
    } else {
      const std::uint64_t m = std::uint64_t{1} << (i - 64);
      hi_ = v ? (hi_ | m) : (hi_ & ~m);
    }
  }

  struct DivMod;
  // Long division by shift-subtract. Division by zero is a programming error;
  // callers must check (we return {0, 0} to keep the function total).
  [[nodiscard]] static constexpr DivMod divmod(Uint128 num, Uint128 den);

  constexpr Uint128& operator/=(Uint128 b);
  constexpr Uint128& operator%=(Uint128 b);

  // (a * b) mod m without overflow; m must be nonzero.
  [[nodiscard]] static Uint128 mulmod(Uint128 a, Uint128 b, Uint128 m);
  // (base ^ exp) mod m; m must be nonzero.
  [[nodiscard]] static Uint128 powmod(Uint128 base, Uint128 exp, Uint128 m);

  [[nodiscard]] std::string to_string() const;  // decimal
  [[nodiscard]] std::string to_hex() const;     // lowercase, no 0x prefix
  [[nodiscard]] static std::optional<Uint128> from_string(std::string_view dec);
  [[nodiscard]] static std::optional<Uint128> from_hex(std::string_view hex);

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

struct Uint128::DivMod {
  Uint128 quot;
  Uint128 rem;
};

constexpr Uint128::DivMod Uint128::divmod(Uint128 num, Uint128 den) {
  if (den.is_zero()) return {Uint128{}, Uint128{}};
  if (num < den) return {Uint128{}, num};
  int shift = num.bit_width() - den.bit_width();
  Uint128 d = den << shift;
  Uint128 q{};
  for (; shift >= 0; --shift, d >>= 1) {
    q <<= 1;
    if (num >= d) {
      num -= d;
      q |= Uint128{1};
    }
  }
  return {q, num};
}

[[nodiscard]] constexpr Uint128 operator/(Uint128 a, Uint128 b) {
  return Uint128::divmod(a, b).quot;
}
[[nodiscard]] constexpr Uint128 operator%(Uint128 a, Uint128 b) {
  return Uint128::divmod(a, b).rem;
}
constexpr Uint128& Uint128::operator/=(Uint128 b) { return *this = *this / b; }
constexpr Uint128& Uint128::operator%=(Uint128 b) { return *this = *this % b; }

}  // namespace xmap::net
