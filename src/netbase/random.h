// Deterministic pseudo-random generators.
//
// Every experiment in this reproduction is seeded, so the whole pipeline
// (topology generation, scan permutation, probe validation tags) must use
// generators with precisely specified output. We use SplitMix64 for seeding
// and one-shot hashing, and xoshiro256** as the workhorse generator.
#pragma once

#include <cstdint>
#include <span>

namespace xmap::net {

// SplitMix64 step: advances the state and returns the next output. Also the
// recommended seeder for xoshiro.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless 64-bit mix, usable as a keyed hash for probe validation (the
// ZMap/XMap trick: echo identifiers are a keyed hash of the destination so
// responses validate without per-probe state).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

[[nodiscard]] constexpr std::uint64_t hash_combine64(std::uint64_t a,
                                                     std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64_next(sm);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound); bound must be nonzero. Uses rejection
  // sampling to avoid modulo bias.
  constexpr std::uint64_t uniform(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  constexpr double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  constexpr bool bernoulli(double p) { return unit() < p; }

  // Picks an index from a discrete distribution given by non-negative
  // weights; weights summing to zero yield index 0.
  std::size_t pick_weighted(std::span<const double> weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    double x = unit() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (x < weights[i]) return i;
      x -= weights[i];
    }
    return weights.size() - 1;
  }

  // Derives an independent child generator (for per-device streams).
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream) {
    return Rng{hash_combine64(next(), stream)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace xmap::net
