#include "netbase/checksum.h"

namespace xmap::net {

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(data));
}

std::uint16_t ipv6_upper_layer_checksum(const Ipv6Address& src,
                                        const Ipv6Address& dst,
                                        std::uint8_t next_header,
                                        std::span<const std::uint8_t> l4_data) {
  std::uint32_t acc = 0;
  acc = checksum_accumulate(std::span{src.bytes()}, acc);
  acc = checksum_accumulate(std::span{dst.bytes()}, acc);
  const std::uint32_t len = static_cast<std::uint32_t>(l4_data.size());
  acc += len >> 16;
  acc += len & 0xffff;
  acc += next_header;  // high three bytes of the pseudo-header field are zero
  acc = checksum_accumulate(l4_data, acc);
  return checksum_finish(acc);
}

}  // namespace xmap::net
