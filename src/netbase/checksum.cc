#include "netbase/checksum.h"

#include <bit>
#include <cassert>
#include <cstring>

#include "netbase/compiler.h"

#if defined(__x86_64__) || defined(__i386__)
#define XMAP_CHECKSUM_X86 1
#include <immintrin.h>
#endif

namespace xmap::net {
namespace {

// Byte-order-correct 64/32/16-bit loads from possibly unaligned memory.
// memcpy compiles to a plain (unaligned-tolerant) load on every target we
// build for; the bswap places the bytes in RFC 1071 network order.
XMAP_ALWAYS_INLINE std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
}

XMAP_ALWAYS_INLINE std::uint32_t load_be32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap32(v);
  }
  return v;
}

// Folds a 64-bit ones-complement accumulator into 32 bits (still unfolded
// with respect to the final 16-bit checksum — checksum_finish handles that).
XMAP_ALWAYS_INLINE std::uint32_t fold64(std::uint64_t acc) {
  acc = (acc & 0xffffffffu) + (acc >> 32);
  acc = (acc & 0xffffffffu) + (acc >> 32);
  return static_cast<std::uint32_t>(acc);
}

// Folds an accumulator to a 16-bit value WITHOUT complementing (the
// intermediate form RFC 1624 arithmetic works in).
XMAP_ALWAYS_INLINE std::uint16_t fold16(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(acc);
}

#ifdef XMAP_CHECKSUM_X86
// AVX2 kernel over a multiple-of-64-byte block. Lanes accumulate the
// buffer's *little-endian* 32-bit words — the ones-complement sum is
// byte-order independent up to a final byte swap (RFC 1071 §2B): for a
// 16-bit x, bswap16(x) == 256*x mod 0xffff, so the swap cancels when
// applied to the folded sum. Returns a folded 32-bit network-order
// accumulator combined with `acc`; congruent to the reference mod 0xffff
// and zero only when the reference is zero (a plain sum of non-negative
// lanes is zero iff every byte is).
__attribute__((target("avx2"))) std::uint32_t accumulate_avx2_blocks(
    const std::uint8_t* p, std::size_t n, std::uint32_t acc) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  for (; n >= 64; p += 64, n -= 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
    // Widen each 32-bit word to a 64-bit lane (interleave order is
    // irrelevant to a sum); 64-bit lanes cannot overflow for any real
    // packet length.
    acc0 = _mm256_add_epi64(acc0, _mm256_unpacklo_epi32(v0, zero));
    acc1 = _mm256_add_epi64(acc1, _mm256_unpackhi_epi32(v0, zero));
    acc0 = _mm256_add_epi64(acc0, _mm256_unpacklo_epi32(v1, zero));
    acc1 = _mm256_add_epi64(acc1, _mm256_unpackhi_epi32(v1, zero));
  }
  acc0 = _mm256_add_epi64(acc0, acc1);
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc0);
  std::uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  std::uint32_t le = fold64(sum);
  while (le >> 16) le = (le & 0xffff) + (le >> 16);
  const std::uint32_t be = (le >> 8) | ((le & 0xff) << 8);
  return fold64(static_cast<std::uint64_t>(acc) + be);
}
#endif  // XMAP_CHECKSUM_X86

std::uint32_t accumulate_words(std::span<const std::uint8_t> data,
                               std::uint32_t acc) {
  // Word-at-a-time RFC 1071: the ones-complement sum is invariant under
  // word size, so eight bytes are added as one 64-bit network-order word
  // with end-around carry, then folded back down. Semantics match the
  // byte-wise original exactly: each *call* pads an odd trailing byte with
  // zero (callers chain even-length regions, e.g. the pseudo-header).
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t sum = acc;
  while (n >= 32) {
    std::uint64_t s0 = load_be64(p);
    std::uint64_t s1 = load_be64(p + 8);
    std::uint64_t s2 = load_be64(p + 16);
    std::uint64_t s3 = load_be64(p + 24);
    // Each 64-bit word is four 16-bit fields; adding into the running sum
    // with end-around carry keeps the ones-complement invariant.
    sum += s0;
    if (sum < s0) ++sum;
    sum += s1;
    if (sum < s1) ++sum;
    sum += s2;
    if (sum < s2) ++sum;
    sum += s3;
    if (sum < s3) ++sum;
    p += 32;
    n -= 32;
  }
  while (n >= 8) {
    const std::uint64_t s = load_be64(p);
    sum += s;
    if (sum < s) ++sum;
    p += 8;
    n -= 8;
  }
  // Tail adds happen in 64 bits: the folded accumulator can already be
  // 0xffffffff (e.g. a 4-byte run of 0xff), so a 32-bit add here could
  // wrap and silently drop a carry (2^32 == 1 mod 0xffff).
  std::uint64_t tail = fold64(sum);
  if (n >= 4) {
    tail += load_be32(p);
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    tail += static_cast<std::uint32_t>(p[0]) << 8 | p[1];
    p += 2;
    n -= 2;
  }
  if (n > 0) tail += static_cast<std::uint32_t>(p[0]) << 8;
  return fold64(tail);
}

}  // namespace

std::uint32_t checksum_accumulate(std::span<const std::uint8_t> data,
                                  std::uint32_t acc) {
#ifdef XMAP_CHECKSUM_X86
  // Resolved once per process; below ~2 cache lines the vector setup and
  // horizontal fold cost more than the scalar 64-bit unroll saves.
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2") != 0;
  if (kHasAvx2 && data.size() >= 128) {
    const std::size_t blocks = data.size() & ~std::size_t{63};
    acc = accumulate_avx2_blocks(data.data(), blocks, acc);
    data = data.subspan(blocks);
  }
#endif
  return accumulate_words(data, acc);
}

std::uint32_t checksum_accumulate_reference(std::span<const std::uint8_t> data,
                                            std::uint32_t acc) {
  std::uint64_t sum = acc;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint64_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint64_t>(data[i]) << 8;
  return fold64(sum);
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(data));
}

std::uint16_t ipv6_upper_layer_checksum(const Ipv6Address& src,
                                        const Ipv6Address& dst,
                                        std::uint8_t next_header,
                                        std::span<const std::uint8_t> l4_data) {
  std::uint32_t acc = 0;
  acc = checksum_accumulate(std::span{src.bytes()}, acc);
  acc = checksum_accumulate(std::span{dst.bytes()}, acc);
  const std::uint32_t len = static_cast<std::uint32_t>(l4_data.size());
  // 64-bit intermediate: `acc` may be 0xffffffff after two all-ones
  // addresses, so 32-bit adds of the length/next-header words could wrap.
  acc = fold64(static_cast<std::uint64_t>(acc) + (len >> 16) + (len & 0xffff) +
               next_header);  // high 3 bytes of the NH pseudo-field are zero
  acc = checksum_accumulate(l4_data, acc);
  return checksum_finish(acc);
}

std::uint16_t checksum_update(std::uint16_t csum,
                              std::span<const std::uint8_t> before,
                              std::span<const std::uint8_t> after) {
  // RFC 1624 incremental update generalized to a region:
  //   HC' = ~( ~HC + sum(~m_i) + sum(m'_i) )
  // with sum(~m_i) computed as the ones-complement negation of the folded
  // old-region sum. Requires before/after to be the same even length and
  // to sit at an even offset of the checksummed data, so bytes keep their
  // high/low position within 16-bit words (asserted; every patched probe
  // field satisfies this). One caveat inherited from RFC 1624: if the
  // entire checksummed data is zero the update yields 0xffff where a full
  // recompute yields 0x0000 — impossible under an IPv6 pseudo-header,
  // whose next-header and length fields are never both zero.
  assert(before.size() == after.size());
  assert(before.size() % 2 == 0);
  // Fold both region sums to 16 bits first: checksum_accumulate returns an
  // *unfolded* 32-bit accumulator (for an 8+-byte region it is a fold of
  // raw 64-bit loads and ranges up to ~2^32), and adding that to ~HC could
  // wrap the 32-bit intermediate, silently dropping a carry (2^32 == 1
  // mod 0xffff). Folded, the three terms stay well under 2^18.
  std::uint32_t acc = static_cast<std::uint16_t>(~csum);
  acc += fold16(checksum_accumulate(after));
  acc += 0xffffu - fold16(checksum_accumulate(before));
  return checksum_finish(acc);
}

}  // namespace xmap::net
