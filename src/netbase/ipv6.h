// IPv6 address and prefix value types.
//
// Text parsing accepts every RFC 4291 form (full, "::" compression, embedded
// IPv4 dotted-quad tail); formatting follows RFC 5952 (lowercase hex,
// longest/leftmost zero-run compression, no single-group compression).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/uint128.h"

namespace xmap::net {

class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  explicit constexpr Ipv6Address(const std::array<std::uint8_t, 16>& bytes)
      : b_(bytes) {}

  // Builds from the numeric value (big-endian: bit 127 of `v` is the first
  // bit on the wire).
  static constexpr Ipv6Address from_value(Uint128 v) {
    std::array<std::uint8_t, 16> b{};
    for (int i = 15; i >= 0; --i) {
      b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v.to_u64() & 0xff);
      v >>= 8;
    }
    return Ipv6Address{b};
  }

  [[nodiscard]] constexpr Uint128 value() const {
    Uint128 v{};
    for (std::uint8_t byte : b_) v = (v << 8) | Uint128{byte};
    return v;
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& bytes() const {
    return b_;
  }
  [[nodiscard]] constexpr std::uint8_t byte(int i) const {
    return b_[static_cast<std::size_t>(i)];
  }

  // 16-bit group i in [0, 8), network order.
  [[nodiscard]] constexpr std::uint16_t group(int i) const {
    return static_cast<std::uint16_t>((b_[static_cast<std::size_t>(2 * i)] << 8) |
                                      b_[static_cast<std::size_t>(2 * i + 1)]);
  }

  // Low 64 bits: the interface identifier under the /64 convention.
  [[nodiscard]] constexpr std::uint64_t iid() const {
    return value().to_u64();
  }
  // High 64 bits: the /64 routing prefix.
  [[nodiscard]] constexpr std::uint64_t prefix64() const {
    return value().hi();
  }

  [[nodiscard]] constexpr bool is_unspecified() const {
    return value().is_zero();
  }
  [[nodiscard]] constexpr bool is_loopback() const {
    return value() == Uint128{1};
  }
  [[nodiscard]] constexpr bool is_multicast() const { return b_[0] == 0xff; }
  [[nodiscard]] constexpr bool is_link_local() const {
    return b_[0] == 0xfe && (b_[1] & 0xc0) == 0x80;
  }

  // Parses any RFC 4291 text form; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Address> parse(std::string_view text);
  // RFC 5952 canonical text form.
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Ipv6Address&, const Ipv6Address&) =
      default;
  friend constexpr auto operator<=>(const Ipv6Address& a,
                                    const Ipv6Address& b) {
    return a.value() <=> b.value();
  }

 private:
  std::array<std::uint8_t, 16> b_{};
};

// A CIDR prefix: address plus length, canonicalised (host bits zero).
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;
  // Host bits of `addr` beyond `len` are cleared.
  constexpr Ipv6Prefix(Ipv6Address addr, int len)
      : len_(len < 0 ? 0 : (len > 128 ? 128 : len)) {
    Uint128 v = addr.value();
    if (len_ < 128) {
      Uint128 mask = len_ == 0 ? Uint128{} : (Uint128::max() << (128 - len_));
      v &= mask;
    }
    addr_ = Ipv6Address::from_value(v);
  }

  [[nodiscard]] constexpr Ipv6Address address() const { return addr_; }
  [[nodiscard]] constexpr int length() const { return len_; }

  [[nodiscard]] constexpr bool contains(const Ipv6Address& a) const {
    if (len_ == 0) return true;
    Uint128 mask = Uint128::max() << (128 - len_);
    return (a.value() & mask) == addr_.value();
  }
  [[nodiscard]] constexpr bool contains(const Ipv6Prefix& p) const {
    return p.len_ >= len_ && contains(p.addr_);
  }

  // Number of sub-prefixes of length `sublen` (for sublen - len_ < 128).
  [[nodiscard]] constexpr Uint128 subprefix_count(int sublen) const {
    if (sublen < len_) return Uint128{};
    return Uint128::pow2(sublen - len_);
  }

  // The index-th sub-prefix of length `sublen` (index < subprefix_count).
  [[nodiscard]] constexpr Ipv6Prefix nth_subprefix(int sublen,
                                                   Uint128 index) const {
    Uint128 v = addr_.value() | (index << (128 - sublen));
    return Ipv6Prefix{Ipv6Address::from_value(v), sublen};
  }

  // An address inside this prefix with the given suffix value in the host
  // bits (suffix is masked to fit).
  [[nodiscard]] constexpr Ipv6Address address_with_suffix(Uint128 suffix) const {
    if (len_ == 0) return Ipv6Address::from_value(suffix);
    if (len_ == 128) return addr_;
    Uint128 host_mask = ~(Uint128::max() << (128 - len_));
    return Ipv6Address::from_value(addr_.value() | (suffix & host_mask));
  }

  // Parses "addr/len"; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv6Prefix> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Ipv6Prefix&, const Ipv6Prefix&) =
      default;
  friend constexpr auto operator<=>(const Ipv6Prefix& a, const Ipv6Prefix& b) {
    if (auto c = a.addr_ <=> b.addr_; c != 0) return c;
    return a.len_ <=> b.len_;
  }

 private:
  Ipv6Address addr_{};
  int len_ = 0;
};

}  // namespace xmap::net

template <>
struct std::hash<xmap::net::Ipv6Address> {
  std::size_t operator()(const xmap::net::Ipv6Address& a) const noexcept {
    const xmap::net::Uint128 v = a.value();
    // Simple 64-bit mix of both halves (splitmix finaliser).
    std::uint64_t x = v.hi() ^ (v.lo() + 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<xmap::net::Ipv6Prefix> {
  std::size_t operator()(const xmap::net::Ipv6Prefix& p) const noexcept {
    return std::hash<xmap::net::Ipv6Address>{}(p.address()) ^
           (static_cast<std::size_t>(p.length()) * 0x9e3779b97f4a7c15ULL);
  }
};
