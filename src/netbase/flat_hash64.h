// Open-addressed hash map/set keyed by pre-mixed 64-bit keys.
//
// The scanner's per-probe bookkeeping (first-send times for the RTT
// histogram, slot-by-address for the engine merge, response dedup) lives on
// the packet hot path and only ever inserts and looks up — never erases.
// node-based std::unordered_map pays an allocation and a pointer chase per
// operation there; measured on the observability_overhead bench that was
// the entire metrics-on overhead (~9% wall). This table is the
// insert/find-only replacement: linear probing over two parallel arrays
// (keys, values), power-of-two capacity, grow at 7/8 load — one probe
// sequence touching contiguous memory per operation.
//
// Keys are expected to be pre-hashed (addr_key already runs
// hash_combine64), but one more round of mixing is applied so structured
// keys cannot cluster a probe sequence. Key 0 is valid: it is kept in a
// dedicated side slot, since 0 marks an empty bucket in the array.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xmap::net {

template <typename V>
class FlatHash64 {
 public:
  FlatHash64() = default;

  // Pre-sizes for at least `n` entries without growth.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap - cap / 8 < n) cap <<= 1;
    if (cap > keys_.size()) rehash(cap);
  }

  // Keep-first semantics (unordered_map::emplace): returns true and stores
  // `value` when `key` is new, false (leaving the stored value) otherwise.
  bool insert(std::uint64_t key, const V& value) {
    if (key == 0) {
      if (has_zero_) return false;
      has_zero_ = true;
      zero_val_ = value;
      return true;
    }
    if ((size_ + 1) * 8 > keys_.size() * 7) {
      rehash(keys_.empty() ? kMinCapacity : keys_.size() * 2);
    }
    std::size_t i = mix(key) & mask_;
    while (keys_[i] != 0) {
      if (keys_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
    return true;
  }

  [[nodiscard]] const V* find(std::uint64_t key) const {
    if (key == 0) return has_zero_ ? &zero_val_ : nullptr;
    if (keys_.empty()) return nullptr;
    std::size_t i = mix(key) & mask_;
    while (keys_[i] != 0) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t size() const {
    return size_ + (has_zero_ ? 1 : 0);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void clear() {
    keys_.clear();
    vals_.clear();
    mask_ = 0;
    size_ = 0;
    has_zero_ = false;
    zero_val_ = V{};
  }

 private:
  static constexpr std::size_t kMinCapacity = 64;

  // splitmix64 finalizer: full-avalanche, so linear probing stays
  // well-distributed even for keys with shared high or low bits.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    keys_.assign(cap, 0);
    vals_.assign(cap, V{});
    mask_ = cap - 1;
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == 0) continue;
      std::size_t i = mix(old_keys[j]) & mask_;
      while (keys_[i] != 0) i = (i + 1) & mask_;
      keys_[i] = old_keys[j];
      vals_[i] = old_vals[j];
    }
  }

  std::vector<std::uint64_t> keys_;  // 0 = empty bucket
  std::vector<V> vals_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  bool has_zero_ = false;
  V zero_val_{};
};

// The value-less form, for dedup sets. insert() returns true when the key
// was new — the drop-in for `set.insert(k).second`.
class FlatSet64 {
 public:
  void reserve(std::size_t n) { map_.reserve(n); }
  bool insert(std::uint64_t key) { return map_.insert(key, 0); }
  [[nodiscard]] bool contains(std::uint64_t key) const {
    return map_.find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  FlatHash64<std::uint8_t> map_;
};

}  // namespace xmap::net
