// The process exit-code taxonomy shared by every tool in the repo
// (xmap_sim, xmap_store, the fabric coordinator). Scripts and CI steps
// branch on these values, so they are part of the public contract and
// documented in README.md — add new codes here, never ad hoc in a tool.
#pragma once

namespace xmap {

// Scan/query completed; artifacts are whole.
inline constexpr int kExitOk = 0;
// One or more workers (threads or fabric nodes) failed unrecoverably;
// results, if written, are partial.
inline constexpr int kExitWorkerFailure = 1;
// Bad configuration or an I/O error before/while writing artifacts.
inline constexpr int kExitConfig = 2;
// Interrupted by SIGINT/SIGTERM after a graceful drain; a resumable state
// file was written (see docs/recovery.md).
inline constexpr int kExitInterrupted = 3;

[[nodiscard]] constexpr const char* exit_code_name(int code) {
  switch (code) {
    case kExitOk: return "ok";
    case kExitWorkerFailure: return "worker-failure";
    case kExitConfig: return "config-or-io-error";
    case kExitInterrupted: return "interrupted-resumable";
    default: return "unknown";
  }
}

}  // namespace xmap
