// Wire-format IPv6 packets.
//
// The whole simulation substrate forwards genuine IPv6 packet bytes: a 40-byte
// RFC 8200 base header followed by ICMPv6 (RFC 4443), UDP (RFC 768) or TCP
// (RFC 9293) with correct pseudo-header checksums. Builders construct
// packets; *View classes are non-owning parsers. Keeping everything
// wire-accurate means the scanner's validation logic (checksums, quoted
// invoking packets inside ICMPv6 errors) is exercised exactly as it would be
// against a real network.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netbase/ipv6.h"
#include "netbase/pool.h"

namespace xmap::pkt {

// Packet buffers ride the thread-local BytePool: probe sends, hop-by-hop
// forwarding copies and fault-injected duplicates all recycle fixed-size
// blocks instead of hitting the global heap mid-scan (see netbase/pool.h).
using Bytes = net::PoolVector<std::uint8_t>;

inline constexpr std::size_t kIpv6HeaderSize = 40;
inline constexpr std::size_t kIpv6MinMtu = 1280;  // RFC 8200 §5

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
inline constexpr std::uint8_t kProtoIcmpv6 = 58;

inline constexpr std::uint8_t kDefaultHopLimit = 64;
inline constexpr std::uint8_t kMaxHopLimit = 255;

// ICMPv6 message types (RFC 4443).
enum class Icmpv6Type : std::uint8_t {
  kDestUnreachable = 1,
  kPacketTooBig = 2,
  kTimeExceeded = 3,
  kParamProblem = 4,
  kEchoRequest = 128,
  kEchoReply = 129,
};

// Destination Unreachable codes (RFC 4443 §3.1).
enum class UnreachCode : std::uint8_t {
  kNoRoute = 0,
  kAdminProhibited = 1,
  kBeyondScope = 2,
  kAddressUnreachable = 3,
  kPortUnreachable = 4,
  kFailedPolicy = 5,
  kRejectRoute = 6,
};

// Time Exceeded codes (RFC 4443 §3.3).
enum class TimeExceededCode : std::uint8_t {
  kHopLimitExceeded = 0,
  kReassemblyTimeout = 1,
};

// TCP flag bits.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

// ---------------------------------------------------------------------------
// Views (non-owning parsers)
// ---------------------------------------------------------------------------

class Ipv6View {
 public:
  explicit Ipv6View(std::span<const std::uint8_t> data) : d_(data) {}

  // Structurally valid: big enough, version 6, payload length consistent.
  [[nodiscard]] bool valid() const;

  [[nodiscard]] int version() const { return d_[0] >> 4; }
  [[nodiscard]] std::uint8_t traffic_class() const {
    return static_cast<std::uint8_t>(((d_[0] & 0x0f) << 4) | (d_[1] >> 4));
  }
  [[nodiscard]] std::uint32_t flow_label() const {
    return (static_cast<std::uint32_t>(d_[1] & 0x0f) << 16) |
           (static_cast<std::uint32_t>(d_[2]) << 8) | d_[3];
  }
  [[nodiscard]] std::uint16_t payload_length() const {
    return static_cast<std::uint16_t>((d_[4] << 8) | d_[5]);
  }
  [[nodiscard]] std::uint8_t next_header() const { return d_[6]; }
  [[nodiscard]] std::uint8_t hop_limit() const { return d_[7]; }
  [[nodiscard]] net::Ipv6Address src() const { return read_addr(8); }
  [[nodiscard]] net::Ipv6Address dst() const { return read_addr(24); }
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return d_.subspan(kIpv6HeaderSize,
                      std::min<std::size_t>(payload_length(),
                                            d_.size() - kIpv6HeaderSize));
  }
  [[nodiscard]] std::span<const std::uint8_t> raw() const { return d_; }

 private:
  [[nodiscard]] net::Ipv6Address read_addr(std::size_t offset) const {
    std::array<std::uint8_t, 16> b{};
    for (int i = 0; i < 16; ++i)
      b[static_cast<std::size_t>(i)] = d_[offset + static_cast<std::size_t>(i)];
    return net::Ipv6Address{b};
  }
  std::span<const std::uint8_t> d_;
};

class Icmpv6View {
 public:
  // `l4` is the ICMPv6 message (the IPv6 payload).
  explicit Icmpv6View(std::span<const std::uint8_t> l4) : d_(l4) {}

  [[nodiscard]] bool valid() const { return d_.size() >= 8; }
  [[nodiscard]] Icmpv6Type type() const {
    return static_cast<Icmpv6Type>(d_[0]);
  }
  [[nodiscard]] std::uint8_t code() const { return d_[1]; }
  [[nodiscard]] std::uint16_t checksum() const {
    return static_cast<std::uint16_t>((d_[2] << 8) | d_[3]);
  }
  [[nodiscard]] bool is_error() const { return !d_.empty() && d_[0] < 128; }

  // Echo messages.
  [[nodiscard]] std::uint16_t ident() const {
    return static_cast<std::uint16_t>((d_[4] << 8) | d_[5]);
  }
  [[nodiscard]] std::uint16_t seq() const {
    return static_cast<std::uint16_t>((d_[6] << 8) | d_[7]);
  }
  [[nodiscard]] std::span<const std::uint8_t> echo_payload() const {
    return d_.subspan(8);
  }

  // Error messages quote the invoking packet after 4 unused/MTU bytes.
  [[nodiscard]] std::span<const std::uint8_t> invoking_packet() const {
    return d_.subspan(8);
  }

  // Verifies the pseudo-header checksum given the enclosing addresses.
  [[nodiscard]] bool checksum_ok(const net::Ipv6Address& src,
                                 const net::Ipv6Address& dst) const;

 private:
  std::span<const std::uint8_t> d_;
};

class UdpView {
 public:
  explicit UdpView(std::span<const std::uint8_t> l4) : d_(l4) {}
  [[nodiscard]] bool valid() const {
    return d_.size() >= 8 && length() >= 8 && length() <= d_.size();
  }
  [[nodiscard]] std::uint16_t src_port() const {
    return static_cast<std::uint16_t>((d_[0] << 8) | d_[1]);
  }
  [[nodiscard]] std::uint16_t dst_port() const {
    return static_cast<std::uint16_t>((d_[2] << 8) | d_[3]);
  }
  [[nodiscard]] std::uint16_t length() const {
    return static_cast<std::uint16_t>((d_[4] << 8) | d_[5]);
  }
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return d_.subspan(8, length() - 8);
  }
  [[nodiscard]] bool checksum_ok(const net::Ipv6Address& src,
                                 const net::Ipv6Address& dst) const;

 private:
  std::span<const std::uint8_t> d_;
};

class TcpView {
 public:
  explicit TcpView(std::span<const std::uint8_t> l4) : d_(l4) {}
  [[nodiscard]] bool valid() const {
    return d_.size() >= 20 && data_offset() >= 20 && data_offset() <= d_.size();
  }
  [[nodiscard]] std::uint16_t src_port() const {
    return static_cast<std::uint16_t>((d_[0] << 8) | d_[1]);
  }
  [[nodiscard]] std::uint16_t dst_port() const {
    return static_cast<std::uint16_t>((d_[2] << 8) | d_[3]);
  }
  [[nodiscard]] std::uint32_t seq() const { return read32(4); }
  [[nodiscard]] std::uint32_t ack() const { return read32(8); }
  [[nodiscard]] std::size_t data_offset() const {
    return static_cast<std::size_t>(d_[12] >> 4) * 4;
  }
  [[nodiscard]] std::uint8_t flags() const { return d_[13]; }
  [[nodiscard]] std::uint16_t window() const {
    return static_cast<std::uint16_t>((d_[14] << 8) | d_[15]);
  }
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return d_.subspan(data_offset());
  }
  [[nodiscard]] bool checksum_ok(const net::Ipv6Address& src,
                                 const net::Ipv6Address& dst) const;

 private:
  [[nodiscard]] std::uint32_t read32(std::size_t i) const {
    return (static_cast<std::uint32_t>(d_[i]) << 24) |
           (static_cast<std::uint32_t>(d_[i + 1]) << 16) |
           (static_cast<std::uint32_t>(d_[i + 2]) << 8) | d_[i + 3];
  }
  std::span<const std::uint8_t> d_;
};

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

// Generic IPv6 packet around a fully-formed L4 payload (checksum included).
[[nodiscard]] Bytes build_ipv6(const net::Ipv6Address& src,
                               const net::Ipv6Address& dst,
                               std::uint8_t next_header, std::uint8_t hop_limit,
                               std::span<const std::uint8_t> l4_payload);

[[nodiscard]] Bytes build_echo_request(const net::Ipv6Address& src,
                                       const net::Ipv6Address& dst,
                                       std::uint8_t hop_limit,
                                       std::uint16_t ident, std::uint16_t seq,
                                       std::span<const std::uint8_t> payload = {});

// Echo reply mirroring `request` (src/dst swapped, ident/seq/payload copied).
[[nodiscard]] Bytes build_echo_reply(const Bytes& request,
                                     std::uint8_t hop_limit = kDefaultHopLimit);

// ICMPv6 error message (Destination Unreachable / Time Exceeded) quoting the
// invoking packet, truncated so the result fits in the IPv6 minimum MTU.
// Errors are originated at hop limit 255 (the common embedded-stack
// behaviour) — which is what lets the spoofed-source variant of the routing
// loop attack re-amplify through the victim's own Time Exceeded replies.
[[nodiscard]] Bytes build_icmpv6_error(const net::Ipv6Address& router_src,
                                       Icmpv6Type type, std::uint8_t code,
                                       std::span<const std::uint8_t> invoking,
                                       std::uint8_t hop_limit = kMaxHopLimit);

[[nodiscard]] Bytes build_udp(const net::Ipv6Address& src,
                              const net::Ipv6Address& dst,
                              std::uint16_t src_port, std::uint16_t dst_port,
                              std::span<const std::uint8_t> payload,
                              std::uint8_t hop_limit = kDefaultHopLimit);

[[nodiscard]] Bytes build_tcp(const net::Ipv6Address& src,
                              const net::Ipv6Address& dst,
                              std::uint16_t src_port, std::uint16_t dst_port,
                              std::uint32_t seq, std::uint32_t ack,
                              std::uint8_t flags, std::uint16_t window,
                              std::span<const std::uint8_t> payload = {},
                              std::uint8_t hop_limit = kDefaultHopLimit);

// ---------------------------------------------------------------------------
// In-place mutation helpers used by the forwarding plane.
// ---------------------------------------------------------------------------

[[nodiscard]] inline std::uint8_t hop_limit_of(const Bytes& p) { return p[7]; }
inline void set_hop_limit(Bytes& p, std::uint8_t h) { p[7] = h; }
// Decrements the hop limit; returns false when it was already zero or one
// (i.e. the packet must be discarded and Time Exceeded generated).
[[nodiscard]] bool decrement_hop_limit(Bytes& p);

[[nodiscard]] net::Ipv6Address src_of(const Bytes& p);
[[nodiscard]] net::Ipv6Address dst_of(const Bytes& p);

// One-line human-readable summary (for traces and examples).
[[nodiscard]] std::string summarize(const Bytes& p);

}  // namespace xmap::pkt
