#include "packet/packet.h"

#include <algorithm>
#include <cstdio>

#include "netbase/checksum.h"

namespace xmap::pkt {
namespace {

void write16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void write32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

}  // namespace

bool Ipv6View::valid() const {
  if (d_.size() < kIpv6HeaderSize) return false;
  if (version() != 6) return false;
  return d_.size() >= kIpv6HeaderSize + payload_length();
}

bool Icmpv6View::checksum_ok(const net::Ipv6Address& src,
                             const net::Ipv6Address& dst) const {
  if (!valid()) return false;
  return net::ipv6_upper_layer_checksum(src, dst, kProtoIcmpv6, d_) == 0;
}

bool UdpView::checksum_ok(const net::Ipv6Address& src,
                          const net::Ipv6Address& dst) const {
  if (!valid()) return false;
  return net::ipv6_upper_layer_checksum(src, dst, kProtoUdp,
                                        d_.subspan(0, length())) == 0;
}

bool TcpView::checksum_ok(const net::Ipv6Address& src,
                          const net::Ipv6Address& dst) const {
  if (!valid()) return false;
  return net::ipv6_upper_layer_checksum(src, dst, kProtoTcp, d_) == 0;
}

Bytes build_ipv6(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                 std::uint8_t next_header, std::uint8_t hop_limit,
                 std::span<const std::uint8_t> l4_payload) {
  Bytes p(kIpv6HeaderSize + l4_payload.size());
  p[0] = 0x60;  // version 6, traffic class 0
  write16(&p[4], static_cast<std::uint16_t>(l4_payload.size()));
  p[6] = next_header;
  p[7] = hop_limit;
  std::copy(src.bytes().begin(), src.bytes().end(), p.begin() + 8);
  std::copy(dst.bytes().begin(), dst.bytes().end(), p.begin() + 24);
  std::copy(l4_payload.begin(), l4_payload.end(),
            p.begin() + kIpv6HeaderSize);
  return p;
}

namespace {

// Assembles an ICMPv6 message with correct checksum and wraps it in IPv6.
Bytes build_icmpv6(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                   std::uint8_t hop_limit, Icmpv6Type type, std::uint8_t code,
                   std::span<const std::uint8_t> rest_and_body) {
  Bytes msg(4 + rest_and_body.size());
  msg[0] = static_cast<std::uint8_t>(type);
  msg[1] = code;
  // checksum (bytes 2-3) zero for computation
  std::copy(rest_and_body.begin(), rest_and_body.end(), msg.begin() + 4);
  const std::uint16_t csum =
      net::ipv6_upper_layer_checksum(src, dst, kProtoIcmpv6, msg);
  write16(&msg[2], csum);
  return build_ipv6(src, dst, kProtoIcmpv6, hop_limit, msg);
}

}  // namespace

Bytes build_echo_request(const net::Ipv6Address& src,
                         const net::Ipv6Address& dst, std::uint8_t hop_limit,
                         std::uint16_t ident, std::uint16_t seq,
                         std::span<const std::uint8_t> payload) {
  Bytes rest(4 + payload.size());
  write16(&rest[0], ident);
  write16(&rest[2], seq);
  std::copy(payload.begin(), payload.end(), rest.begin() + 4);
  return build_icmpv6(src, dst, hop_limit, Icmpv6Type::kEchoRequest, 0, rest);
}

Bytes build_echo_reply(const Bytes& request, std::uint8_t hop_limit) {
  Ipv6View ip{request};
  Icmpv6View icmp{ip.payload()};
  Bytes rest(ip.payload().size() - 4);
  std::copy(ip.payload().begin() + 4, ip.payload().end(), rest.begin());
  return build_icmpv6(ip.dst(), ip.src(), hop_limit, Icmpv6Type::kEchoReply, 0,
                      rest);
}

Bytes build_icmpv6_error(const net::Ipv6Address& router_src, Icmpv6Type type,
                         std::uint8_t code,
                         std::span<const std::uint8_t> invoking,
                         std::uint8_t hop_limit) {
  Ipv6View orig{invoking};
  // RFC 4443 §2.4(c): quote as much of the invoking packet as fits without
  // the error packet exceeding the minimum IPv6 MTU.
  constexpr std::size_t kMaxQuoted =
      kIpv6MinMtu - kIpv6HeaderSize - 8;  // 8 = ICMPv6 header + unused field
  const std::size_t quoted = std::min(invoking.size(), kMaxQuoted);
  Bytes rest(4 + quoted);  // 4 unused bytes, then the quoted packet
  std::copy(invoking.begin(),
            invoking.begin() + static_cast<std::ptrdiff_t>(quoted),
            rest.begin() + 4);
  return build_icmpv6(router_src, orig.src(), hop_limit, type, code, rest);
}

Bytes build_udp(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                std::uint16_t src_port, std::uint16_t dst_port,
                std::span<const std::uint8_t> payload,
                std::uint8_t hop_limit) {
  Bytes seg(8 + payload.size());
  write16(&seg[0], src_port);
  write16(&seg[2], dst_port);
  write16(&seg[4], static_cast<std::uint16_t>(seg.size()));
  std::copy(payload.begin(), payload.end(), seg.begin() + 8);
  std::uint16_t csum = net::ipv6_upper_layer_checksum(src, dst, kProtoUdp, seg);
  if (csum == 0) csum = 0xffff;  // RFC 8200 §8.1: zero transmitted as 0xffff
  write16(&seg[6], csum);
  return build_ipv6(src, dst, kProtoUdp, hop_limit, seg);
}

Bytes build_tcp(const net::Ipv6Address& src, const net::Ipv6Address& dst,
                std::uint16_t src_port, std::uint16_t dst_port,
                std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
                std::uint16_t window, std::span<const std::uint8_t> payload,
                std::uint8_t hop_limit) {
  Bytes seg(20 + payload.size());
  write16(&seg[0], src_port);
  write16(&seg[2], dst_port);
  write32(&seg[4], seq);
  write32(&seg[8], ack);
  seg[12] = 5 << 4;  // data offset: 5 words, no options
  seg[13] = flags;
  write16(&seg[14], window);
  std::copy(payload.begin(), payload.end(), seg.begin() + 20);
  const std::uint16_t csum =
      net::ipv6_upper_layer_checksum(src, dst, kProtoTcp, seg);
  write16(&seg[16], csum);
  return build_ipv6(src, dst, kProtoTcp, hop_limit, seg);
}

bool decrement_hop_limit(Bytes& p) {
  if (p[7] <= 1) return false;
  --p[7];
  return true;
}

net::Ipv6Address src_of(const Bytes& p) { return Ipv6View{p}.src(); }
net::Ipv6Address dst_of(const Bytes& p) { return Ipv6View{p}.dst(); }

std::string summarize(const Bytes& p) {
  Ipv6View ip{p};
  if (!ip.valid()) return "<malformed>";
  std::string out = ip.src().to_string() + " > " + ip.dst().to_string();
  char extra[96] = {0};
  switch (ip.next_header()) {
    case kProtoIcmpv6: {
      Icmpv6View icmp{ip.payload()};
      if (icmp.valid()) {
        std::snprintf(extra, sizeof extra, " icmp6 type=%u code=%u hlim=%u",
                      static_cast<unsigned>(icmp.type()), icmp.code(),
                      ip.hop_limit());
      }
      break;
    }
    case kProtoUdp: {
      UdpView udp{ip.payload()};
      if (udp.valid()) {
        std::snprintf(extra, sizeof extra, " udp %u>%u len=%u", udp.src_port(),
                      udp.dst_port(), udp.length());
      }
      break;
    }
    case kProtoTcp: {
      TcpView tcp{ip.payload()};
      if (tcp.valid()) {
        std::snprintf(extra, sizeof extra, " tcp %u>%u flags=%02x",
                      tcp.src_port(), tcp.dst_port(), tcp.flags());
      }
      break;
    }
    default:
      std::snprintf(extra, sizeof extra, " proto=%u", ip.next_header());
  }
  return out + extra;
}

}  // namespace xmap::pkt
