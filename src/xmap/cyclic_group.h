// Full-cycle random permutation over arbitrary-size scan spaces.
//
// This is ZMap's address-randomisation trick generalised as XMap does it:
// to visit every element of [0, N) exactly once in pseudo-random order with
// O(1) state, iterate x -> x*g (mod p) in the multiplicative group of
// integers modulo p, where p is the smallest prime > N and g is a primitive
// root mod p. Group elements 1..p-1 map to offsets 0..p-2; offsets >= N are
// skipped (at most (p-N-1) of them, vanishingly few by Bertrand/PNT).
//
// ZMap hard-codes p = 2^32 + 15 for the IPv4 space; XMap's contribution is
// supporting any window width at any bit position of a 128-bit address, so
// p is found at runtime (Miller-Rabin) and a generator is derived by
// factoring p-1 (trial division + Pollard's rho). All arithmetic is done in
// Uint128, which is exact for every N < 2^64 and for p slightly above it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/random.h"
#include "netbase/uint128.h"

namespace xmap::scan {

// Deterministic Miller-Rabin for n < ~3.3e24 (covers everything < 2^81).
[[nodiscard]] bool is_prime(net::Uint128 n);

// Smallest prime >= n (n >= 2).
[[nodiscard]] net::Uint128 next_prime(net::Uint128 n);

// Prime factorisation (with multiplicity collapsed to distinct factors) of
// n < 2^64-ish; uses trial division then Pollard's rho.
[[nodiscard]] std::vector<net::Uint128> distinct_prime_factors(net::Uint128 n);

// The multiplicative group used for one scan.
class CyclicGroup {
 public:
  // size = N, the number of elements to permute (>= 1).
  explicit CyclicGroup(net::Uint128 size, std::uint64_t seed);

  [[nodiscard]] net::Uint128 size() const { return size_; }
  [[nodiscard]] net::Uint128 prime() const { return p_; }
  [[nodiscard]] net::Uint128 generator() const { return g_; }

  // An iterator over the permutation: yields every offset in [0, size)
  // exactly once, then returns nullopt forever.
  class Iterator {
   public:
    // Yields the next offset, or nullopt when the cycle is complete.
    [[nodiscard]] std::optional<net::Uint128> next();

    // Number of offsets already yielded.
    [[nodiscard]] net::Uint128 yielded() const { return yielded_; }

    // Raw cycle positions this shard's walk has left to visit.
    [[nodiscard]] net::Uint128 raw_remaining() const {
      return raw_remaining_;
    }

    // Raw cycle steps consumed so far (yielded offsets plus skipped
    // positions >= size). After a successful next(), the yielded element's
    // raw index within this shard's walk is raw_visited() - 1 — the slot
    // arithmetic the scanner's thread-invariant pacing is built on.
    [[nodiscard]] net::Uint128 raw_visited() const { return raw_visited_; }

    // Advances by `raw_steps` raw cycle positions in O(log raw_steps)
    // multiplications (x -> x * step^raw_steps) — the resume primitive:
    // restoring a checkpointed cursor never re-walks the permutation.
    // Steps beyond the shard's remaining raw positions are clamped.
    // yielded() is NOT maintained across a fast-forward (counting yields
    // would require the O(n) walk this exists to avoid); raw_visited()
    // stays exact, which is all the scanner's slot arithmetic needs.
    void fast_forward(net::Uint128 raw_steps);

   private:
    friend class CyclicGroup;
    Iterator(const CyclicGroup* group, net::Uint128 start, net::Uint128 step)
        : group_(group), step_(step), x_(start) {}

    const CyclicGroup* group_;
    net::Uint128 step_;  // g^shards (shard stride)
    net::Uint128 x_;
    net::Uint128 raw_remaining_{0};  // raw group elements left to visit
    net::Uint128 raw_visited_{0};
    net::Uint128 yielded_{0};
  };

  // Whole-space iterator (single shard).
  [[nodiscard]] Iterator iterate() const { return shard_iterate(0, 1); }

  // Shard `shard` of `shards`: the cycle is partitioned by stride so the
  // union over all shards is the whole space and shards are disjoint —
  // ZMap/XMap's multi-instance scanning scheme.
  [[nodiscard]] Iterator shard_iterate(int shard, int shards) const;

 private:
  net::Uint128 size_;
  net::Uint128 p_;
  net::Uint128 g_;
  net::Uint128 start_;  // random starting element derived from the seed
};

}  // namespace xmap::scan
