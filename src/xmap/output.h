// Scan result output writers (the xmap/zmap "output module" equivalent).
//
// Two formats: CSV (one header + one row per validated response) and JSON
// Lines (one object per response). Used by the CLI driver; stream-based so
// tests can write into a stringstream.
#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "sim/event_loop.h"
#include "xmap/probe_module.h"

namespace xmap::scan {

class ResultWriter {
 public:
  virtual ~ResultWriter() = default;

  // Called once before any record.
  virtual void begin() {}
  // One validated response.
  virtual void record(const ProbeResponse& response, sim::SimTime when) = 0;
  // Called once after the last record.
  virtual void end() {}
};

// classic zmap-style CSV: saddr,probe_dst,kind,icmp_code,hlim,timestamp_us
class CsvWriter final : public ResultWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}
  void begin() override;
  void record(const ProbeResponse& response, sim::SimTime when) override;

 private:
  std::ostream& out_;
};

// JSON Lines; keys mirror the CSV columns.
class JsonlWriter final : public ResultWriter {
 public:
  explicit JsonlWriter(std::ostream& out) : out_(out) {}
  void record(const ProbeResponse& response, sim::SimTime when) override;

 private:
  std::ostream& out_;
};

// Factory by format name ("csv" | "jsonl"); nullptr for unknown names.
[[nodiscard]] std::unique_ptr<ResultWriter> make_writer(
    const std::string& format, std::ostream& out);

}  // namespace xmap::scan
