// Scan blocklist / allowlist.
//
// Mirrors ZMap's blacklist semantics: targets inside a blocked prefix are
// skipped at generation time; an optional allowlist restricts the scan to
// listed space. Good-citizenship defaults cover the special-use IPv6
// registry (loopback, link-local, multicast, documentation, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/random.h"
#include "topology/prefix_map.h"

namespace xmap::scan {

class Blocklist {
 public:
  Blocklist() = default;

  void block(const net::Ipv6Prefix& prefix) {
    blocked_.insert(prefix, 1);
    fp_ ^= prefix_hash(prefix, 0xb10cULL);
  }
  void allow(const net::Ipv6Prefix& prefix) {
    allowed_.insert(prefix, 1);
    has_allowlist_ = true;
    fp_ ^= prefix_hash(prefix, 0xa110ULL);
  }

  // Order-independent content hash of the blocked+allowed prefix sets.
  // Used by the checkpoint fingerprint: resuming a scan under a different
  // blocklist would silently change which permutation slots send.
  [[nodiscard]] std::uint64_t fingerprint() const { return fp_; }

  // A target may be probed when it is not under a blocked prefix and — if
  // an allowlist is present — is under an allowed prefix. A blocked entry
  // that is more specific than an allowed one wins, and vice versa.
  [[nodiscard]] bool permitted(const net::Ipv6Address& addr) const;

  [[nodiscard]] std::size_t blocked_count() const { return blocked_.size(); }
  [[nodiscard]] std::size_t allowed_count() const { return allowed_.size(); }

  // RFC 6890 / IANA special-purpose space that a well-behaved Internet
  // scanner never probes.
  [[nodiscard]] static Blocklist well_behaved_defaults();

 private:
  [[nodiscard]] static std::uint64_t prefix_hash(
      const net::Ipv6Prefix& prefix, std::uint64_t salt) {
    const net::Uint128 v = prefix.address().value();
    std::uint64_t h = net::hash_combine64(salt, v.hi());
    h = net::hash_combine64(h, v.lo());
    return net::hash_combine64(
        h, static_cast<std::uint64_t>(prefix.length()));
  }

  topo::PrefixMap<char> blocked_;
  topo::PrefixMap<char> allowed_;
  bool has_allowlist_ = false;
  std::uint64_t fp_ = 0;
};

}  // namespace xmap::scan
