// Command-line options for the xmap_sim driver.
//
// The flag vocabulary deliberately mirrors the released XMap/ZMap tools
// (--target-port via module suffix, --rate, --seed, --shards/--shard,
// --max-results style caps) so that someone who knows the real scanner can
// drive the simulation the same way. Parsing lives in the library so it is
// unit-testable without spawning the binary.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/config.h"
#include "sim/faults.h"
#include "xmap/blocklist.h"
#include "xmap/target_spec.h"

namespace xmap::scan {

struct CliOptions {
  // Targets; empty = scan every block of the selected world.
  std::vector<TargetSpec> targets;

  // Probe module selector: "icmp_echo" (default), "icmp_echo:<hoplimit>",
  // "tcp_syn:<port>", "udp_dns", "udp_ntp", "traceroute".
  std::string probe_module = "icmp_echo";

  double rate_pps = 25000;  // --rate (paper's good-citizen default)
  std::uint64_t seed = 1;   // --seed
  int shard = 0;            // --shard
  int shards = 1;           // --shards
  std::uint64_t max_probes = 0;  // --max-probes (0 = all)
  int retries = 0;               // --retries
  double retry_spacing_ms = 100;  // --retry-spacing-ms
  double cooldown_secs = 8;       // --cooldown-secs (ZMap semantics)
  bool adaptive_rate = false;     // --adaptive-rate (AIMD backoff)
  bool use_default_blocklist = true;  // --no-blocklist disables

  // Fault injection (sim substrate). The flags build an access/core-scoped
  // plan; when none is given, a plan embedded in a file: world applies.
  sim::FaultPlan faults;
  bool faults_given = false;
  // RFC 4443 ICMPv6 error rate limits (tokens/sec; 0 = unlimited).
  std::uint32_t device_icmp_rate = 0;  // --device-icmp-rate
  std::uint32_t router_icmp_rate = 0;  // --router-icmp-rate

  std::string output_format = "csv";  // --output-format csv|jsonl
  std::string output_file;            // --output-file (empty = stdout)
  // Results-store snapshot (src/store): the sorted, checksummed, queryable
  // form of the scan's records, written atomically alongside the flat
  // output. Byte-identical for a fixed config across --threads values.
  std::string store_file;             // --store-file (empty = off)
  bool quiet = false;                 // --quiet (suppress the stats footer)

  // Observability (src/obs). CLI flags override any "obs" section of a
  // file: world spec. --trace-file without --trace-level implies scan
  // level; --metrics-file implies the metrics registry.
  std::string trace_file;    // --trace-file (empty = no trace output)
  std::string trace_format;  // --trace-format jsonl|chrome ("" = by suffix)
  std::optional<obs::TraceLevel> trace_level;  // --trace-level
  std::string metrics_file;  // --metrics-file (Prometheus text)
  bool profile = false;      // --profile (stage table on stderr at exit)

  // Parallel engine: --threads routes the scan through the multi-worker
  // executor (src/engine). 0 = flag absent, classic in-process path.
  int threads = 0;  // --threads (1..64)
  // Live monitor destination: empty = off, "-" = stderr, else a file path.
  // Implies the engine path (a 1-worker executor when --threads is absent).
  std::string status_updates_file;  // --status-updates-file
  int status_interval_ms = 250;     // --status-interval-ms

  // Distributed scan fabric (src/fabric): --fabric-nodes routes the scan
  // through the coordinator/worker fabric over the loopback transport.
  // 0 = flag absent. The fabric shard count — not the node count — is the
  // determinism unit: records match an engine run at that --threads value.
  int fabric_nodes = 0;                  // --fabric-nodes (1..32)
  int fabric_shards = 8;                 // --fabric-shards (default 8)
  int fabric_heartbeat_ms = 25;          // --fabric-heartbeat-ms
  int fabric_heartbeat_timeout_ms = 250;  // --fabric-heartbeat-timeout-ms
  // Transport: "loopback" (in-process, the default) or "tcp" (real
  // sockets: the coordinator binds --fabric-listen, workers connect to
  // --fabric-connect, default the coordinator's bound address). Loopback
  // message-fault flags are refused with tcp.
  std::string fabric_transport = "loopback";  // --fabric-transport
  std::string fabric_listen = "127.0.0.1:0";  // --fabric-listen addr:port
  std::string fabric_connect;                 // --fabric-connect addr:port
  // Fabric-layer faults: seeded worker kills (--kill-node-at) and message
  // faults (--fabric-drop-heartbeat/-duplicate/-truncate/-delay-ms).
  sim::FabricFaultPlan fabric_faults;
  // Fabric-deployment observability (wall clock, quarantined from the
  // deterministic scan artifacts; the plain --trace-file/--metrics-file
  // flags stay byte-identical to an engine run at --fabric-shards threads).
  std::string fabric_trace_file;     // --fabric-trace-file (Perfetto JSON)
  std::string fabric_metrics_file;   // --fabric-metrics-file (incl. fabric_*)
  std::string fabric_timeline_file;  // --fabric-timeline-file (JSONL)
  // Flight recorders: ring capacity (0 = off) and the dump-path prefix
  // (defaults next to --output-file when recorders are on).
  std::size_t flight_recorder_events = 0;  // --flight-recorder-events
  std::string flight_recorder_prefix;      // --flight-recorder-prefix

  // Simulation substrate: "paper" (the 15 calibrated blocks),
  // "bgp:<n_ases>", or "file:<path>" (a JSON spec document; see
  // topology/spec_loader.h for the schema).
  std::string world = "paper";
  int window_bits = 10;  // --window-bits

  // Checkpoint/resume (src/recover). `checkpoint_file` is where snapshots
  // go (defaults to "<output-file>.state" or "xmap.state" when output goes
  // to stdout); a SIGINT/SIGTERM always writes one. `checkpoint_interval`
  // additionally snapshots every n drawn targets (0 = only on shutdown).
  // `resume` restarts from a state file after validating its fingerprint.
  std::string resume_file;                    // --resume
  std::string checkpoint_file;                // --checkpoint-file
  std::uint64_t checkpoint_interval = 0;      // --checkpoint-interval-probes
  // Deterministic interruption test hook: behave as if SIGTERM arrived when
  // the scan frontier reaches this global permutation slot (0 = off).
  std::uint64_t shutdown_after_probes = 0;    // --shutdown-after-probes

  bool help = false;
  bool list_probe_modules = false;
};

struct CliParseResult {
  std::optional<CliOptions> options;  // nullopt on error
  std::string error;                  // set on error
};

[[nodiscard]] CliParseResult parse_cli(int argc, const char* const* argv);

// The --help text.
[[nodiscard]] std::string cli_usage();

// Names accepted by --probe-module, for --list-probe-modules.
[[nodiscard]] std::vector<std::string> probe_module_names();

}  // namespace xmap::scan
