// Scan accounting.
//
// `ScanStats` is the per-engine counter block (what one SimChannelScanner
// accumulates); it is merge-friendly so that per-worker stats from the
// parallel executor sum exactly to the single-thread totals. `ScanProgress`
// is the lock-free live view of the same counters: workers publish into it
// with relaxed atomics and the monitor thread samples it for status lines.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/event_loop.h"

namespace xmap::scan {

struct ScanStats {
  std::uint64_t targets_generated = 0;
  std::uint64_t blocked = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;   // packets that reached the scanner
  std::uint64_t validated = 0;  // passed probe-module validation
  std::uint64_t discarded = 0;  // failed validation (stray/spoofed)
  // Robustness accounting. Invariant:
  //   received == validated + discarded + corrupted + late
  // and duplicates is the subset of validated already seen for the same
  // (responder, probe target, kind).
  std::uint64_t retransmits = 0;  // retry copies sent (subset of `sent`)
  std::uint64_t duplicates = 0;   // validated repeats of an earlier response
  std::uint64_t corrupted = 0;    // malformed on the wire (bad checksum/len)
  std::uint64_t late = 0;         // arrived after the cooldown closed
  std::uint64_t rate_adjustments = 0;  // adaptive-rate controller steps
  sim::SimTime first_send = 0;
  sim::SimTime last_send = 0;

  [[nodiscard]] double hit_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(validated) /
                           static_cast<double>(sent);
  }

  // Counter union: counts add; the send window widens to cover both
  // (min first_send, max last_send). Merging a default-constructed (idle)
  // stats block is a no-op.
  ScanStats& merge(const ScanStats& other) {
    const bool self_active = sent != 0 || targets_generated != 0;
    const bool other_active =
        other.sent != 0 || other.targets_generated != 0;
    targets_generated += other.targets_generated;
    blocked += other.blocked;
    sent += other.sent;
    received += other.received;
    validated += other.validated;
    discarded += other.discarded;
    retransmits += other.retransmits;
    duplicates += other.duplicates;
    corrupted += other.corrupted;
    late += other.late;
    rate_adjustments += other.rate_adjustments;
    if (other_active) {
      if (!self_active) {
        first_send = other.first_send;
        last_send = other.last_send;
      } else {
        if (other.first_send < first_send) first_send = other.first_send;
        if (other.last_send > last_send) last_send = other.last_send;
      }
    }
    return *this;
  }
  ScanStats& operator+=(const ScanStats& other) { return merge(other); }

  friend bool operator==(const ScanStats&, const ScanStats&) = default;
};

// Live counters shared between N scanning workers and the monitor thread.
// Relaxed ordering is sufficient: the monitor only renders approximate
// progress; exact totals come from the per-worker ScanStats after join.
struct ScanProgress {
  std::atomic<std::uint64_t> targets_generated{0};
  std::atomic<std::uint64_t> blocked{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> validated{0};
  std::atomic<std::uint64_t> discarded{0};
  std::atomic<std::uint64_t> retransmits{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> late{0};
  std::atomic<std::uint64_t> rate_adjustments{0};
  std::atomic<std::uint32_t> workers_done{0};
  std::atomic<std::uint32_t> workers_failed{0};

  [[nodiscard]] ScanStats snapshot() const {
    ScanStats s;
    s.targets_generated = targets_generated.load(std::memory_order_relaxed);
    s.blocked = blocked.load(std::memory_order_relaxed);
    s.sent = sent.load(std::memory_order_relaxed);
    s.received = received.load(std::memory_order_relaxed);
    s.validated = validated.load(std::memory_order_relaxed);
    s.discarded = discarded.load(std::memory_order_relaxed);
    s.retransmits = retransmits.load(std::memory_order_relaxed);
    s.duplicates = duplicates.load(std::memory_order_relaxed);
    s.corrupted = corrupted.load(std::memory_order_relaxed);
    s.late = late.load(std::memory_order_relaxed);
    s.rate_adjustments = rate_adjustments.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace xmap::scan
