// Pluggable probe modules.
//
// A probe module owns one scanning technique: it crafts the probe packet
// for a target and classifies+validates response packets. Validation is
// stateless, the ZMap design XMap inherits: every mutable field the prober
// controls (ICMP ident/seq, TCP source port and sequence number, UDP source
// port) is a keyed hash of the probed address, so a response — including an
// ICMPv6 error quoting the probe — can be checked without keeping one word
// of per-probe state. Spoofed or stale packets fail the hash check.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "packet/packet.h"

namespace xmap::scan {

// What a (validated) response tells us.
enum class ResponseKind : std::uint8_t {
  kEchoReply,        // target address itself is alive
  kDestUnreachable,  // a last-hop device reported unreachability
  kTimeExceeded,     // hop limit expired (loop indicator in our usage)
  kTcpSynAck,        // TCP port open
  kTcpRst,           // TCP port closed
  kUdpData,          // UDP application data came back
  kOther,
};

[[nodiscard]] constexpr const char* response_kind_name(ResponseKind k) {
  switch (k) {
    case ResponseKind::kEchoReply: return "echo-reply";
    case ResponseKind::kDestUnreachable: return "dest-unreach";
    case ResponseKind::kTimeExceeded: return "time-exceeded";
    case ResponseKind::kTcpSynAck: return "syn-ack";
    case ResponseKind::kTcpRst: return "rst";
    case ResponseKind::kUdpData: return "udp-data";
    case ResponseKind::kOther: return "other";
  }
  return "?";
}

struct ProbeResponse {
  ResponseKind kind = ResponseKind::kOther;
  net::Ipv6Address responder;  // the packet's source (last hop for errors)
  net::Ipv6Address probe_dst;  // the original probed address (recovered)
  std::uint8_t icmp_code = 0;  // for ICMPv6 errors
  std::uint8_t hop_limit = 0;  // received hop limit (distance signal)
};

// A worker-cached probe frame: built once per scan via make_template(),
// then re-aimed per target by patch_probe(), which rewrites only the
// destination address and the keyed validation fields (ident/seq, ports,
// TCP sequence — XMap's flow-label/payload-cookie analogues) and rebuilds
// the upper-layer checksum incrementally from a precomputed partial sum.
// The patched frame is byte-identical to what make_probe() would build
// from scratch.
class ProbeTemplate {
 public:
  ProbeTemplate() = default;

  [[nodiscard]] const pkt::Bytes& frame() const { return frame_; }
  [[nodiscard]] bool valid() const { return !frame_.empty(); }

 private:
  friend class ProbeModule;
  friend class IcmpEchoProbe;
  friend class TcpSynProbe;
  friend class UdpProbe;

  pkt::Bytes frame_;
  // Folded ones-complement sum of the checksum coverage (pseudo-header +
  // L4) with every per-target word — destination address, keyed fields,
  // checksum itself — taken as zero. The ones-complement sum is
  // order-independent, so a patch only adds the new destination and keyed
  // words to this base; the old values never need to be read back. Kept
  // pre-complement and unmapped (UDP transmits a computed 0 as 0xffff,
  // RFC 8200 §8.1), the per-patch cost is one 16-byte accumulate plus a
  // handful of word adds.
  std::uint32_t l4_acc_ = 0;
};

class ProbeModule {
 public:
  virtual ~ProbeModule() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Crafts the probe for `target`, sourced from `src`, keyed by `seed`.
  [[nodiscard]] virtual pkt::Bytes make_probe(const net::Ipv6Address& src,
                                              const net::Ipv6Address& target,
                                              std::uint64_t seed) const = 0;

  // Builds the reusable frame for the scan hot path. The default
  // implementation (and any custom module that doesn't override
  // patch_probe) falls back to a full rebuild per target, so modules stay
  // correct without opting in.
  [[nodiscard]] virtual ProbeTemplate make_template(
      const net::Ipv6Address& src, std::uint64_t seed) const;

  // Re-aims `tmpl` at `target` in place. Postcondition: tmpl.frame() ==
  // make_probe(src, target, seed) for the src/seed the template was built
  // with (asserted by tests/xmap/probe_template_test.cc).
  virtual void patch_probe(ProbeTemplate& tmpl, const net::Ipv6Address& src,
                           const net::Ipv6Address& target,
                           std::uint64_t seed) const;

  // Validates and classifies an inbound packet. nullopt = not a response to
  // this scan (wrong protocol, failed validation, stray traffic).
  [[nodiscard]] virtual std::optional<ProbeResponse> classify(
      const pkt::Bytes& packet, const net::Ipv6Address& src,
      std::uint64_t seed) const = 0;
};

// ICMPv6 Echo probing — the paper's periphery-discovery module. The probe's
// identifier and sequence are keyed hashes of the destination; for ICMPv6
// errors the quoted invoking packet is parsed and re-validated.
class IcmpEchoProbe final : public ProbeModule {
 public:
  explicit IcmpEchoProbe(std::uint8_t hop_limit = pkt::kDefaultHopLimit)
      : hop_limit_(hop_limit) {}

  [[nodiscard]] std::string name() const override { return "icmpv6_echo"; }
  [[nodiscard]] pkt::Bytes make_probe(const net::Ipv6Address& src,
                                      const net::Ipv6Address& target,
                                      std::uint64_t seed) const override;
  [[nodiscard]] ProbeTemplate make_template(const net::Ipv6Address& src,
                                            std::uint64_t seed) const override;
  void patch_probe(ProbeTemplate& tmpl, const net::Ipv6Address& src,
                   const net::Ipv6Address& target,
                   std::uint64_t seed) const override;
  [[nodiscard]] std::optional<ProbeResponse> classify(
      const pkt::Bytes& packet, const net::Ipv6Address& src,
      std::uint64_t seed) const override;

  [[nodiscard]] std::uint8_t hop_limit() const { return hop_limit_; }

 private:
  std::uint8_t hop_limit_;
};

// TCP SYN probing (port scan module).
class TcpSynProbe final : public ProbeModule {
 public:
  explicit TcpSynProbe(std::uint16_t port) : port_(port) {}

  [[nodiscard]] std::string name() const override { return "tcp_syn"; }
  [[nodiscard]] pkt::Bytes make_probe(const net::Ipv6Address& src,
                                      const net::Ipv6Address& target,
                                      std::uint64_t seed) const override;
  [[nodiscard]] ProbeTemplate make_template(const net::Ipv6Address& src,
                                            std::uint64_t seed) const override;
  void patch_probe(ProbeTemplate& tmpl, const net::Ipv6Address& src,
                   const net::Ipv6Address& target,
                   std::uint64_t seed) const override;
  [[nodiscard]] std::optional<ProbeResponse> classify(
      const pkt::Bytes& packet, const net::Ipv6Address& src,
      std::uint64_t seed) const override;

 private:
  std::uint16_t port_;
};

// UDP probing with a fixed application payload (DNS/NTP modules are built
// on this with the payload supplied by the caller).
class UdpProbe final : public ProbeModule {
 public:
  UdpProbe(std::uint16_t port, pkt::Bytes payload, std::string module_name)
      : port_(port), payload_(std::move(payload)),
        name_(std::move(module_name)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] pkt::Bytes make_probe(const net::Ipv6Address& src,
                                      const net::Ipv6Address& target,
                                      std::uint64_t seed) const override;
  [[nodiscard]] ProbeTemplate make_template(const net::Ipv6Address& src,
                                            std::uint64_t seed) const override;
  void patch_probe(ProbeTemplate& tmpl, const net::Ipv6Address& src,
                   const net::Ipv6Address& target,
                   std::uint64_t seed) const override;
  [[nodiscard]] std::optional<ProbeResponse> classify(
      const pkt::Bytes& packet, const net::Ipv6Address& src,
      std::uint64_t seed) const override;

 private:
  std::uint16_t port_;
  pkt::Bytes payload_;
  std::string name_;
};

// Stateless validation tags shared by the modules (exposed for tests).
[[nodiscard]] std::uint16_t probe_tag16(const net::Ipv6Address& dst,
                                        std::uint64_t seed, int salt);
[[nodiscard]] std::uint32_t probe_tag32(const net::Ipv6Address& dst,
                                        std::uint64_t seed, int salt);

}  // namespace xmap::scan
