// Scan result aggregation.
//
// The paper reports *unique, non-aliased last hops*: responses are deduped
// by responder address, and responders that answer for an implausible
// number of distinct probes (ISP edge routers emitting errors for a whole
// block, aliased space) are flagged and excluded from periphery statistics.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "xmap/probe_module.h"

namespace xmap::scan {

struct LastHop {
  net::Ipv6Address address;
  ResponseKind first_kind = ResponseKind::kOther;
  std::uint8_t first_icmp_code = 0;
  net::Ipv6Address first_probe_dst;
  std::uint64_t responses = 0;
  // Did the first response come from the same /64 as the probed address?
  // (Table II's "same" vs "diff" columns.)
  [[nodiscard]] bool same_prefix64() const {
    return address.prefix64() == first_probe_dst.prefix64();
  }
};

class ResultCollector {
 public:
  // `alias_threshold`: a responder answering for more distinct probes than
  // this is treated as aliased (e.g. an ISP router), not a periphery.
  explicit ResultCollector(std::uint64_t alias_threshold = 16)
      : alias_threshold_(alias_threshold) {}

  void add(const ProbeResponse& response) {
    ++total_;
    ++by_kind_[static_cast<int>(response.kind)];
    auto [it, inserted] = hops_.try_emplace(response.responder);
    LastHop& hop = it->second;
    if (inserted) {
      hop.address = response.responder;
      hop.first_kind = response.kind;
      hop.first_icmp_code = response.icmp_code;
      hop.first_probe_dst = response.probe_dst;
    }
    ++hop.responses;
  }

  // Union with another collector (the parallel executor's merge step):
  // response counts add, so the alias-threshold verdict over the union is
  // identical to a single-collector run. For responders seen by both sides
  // this collector's first_* fields win — "first" is per-shard arrival
  // order, which is not globally ordered across workers.
  void merge(const ResultCollector& other) {
    total_ += other.total_;
    for (int k = 0; k < 8; ++k) by_kind_[k] += other.by_kind_[k];
    for (const auto& [addr, hop] : other.hops_) {
      auto [it, inserted] = hops_.try_emplace(addr, hop);
      if (!inserted) it->second.responses += hop.responses;
    }
  }

  [[nodiscard]] std::uint64_t total_responses() const { return total_; }
  [[nodiscard]] std::uint64_t count_of(ResponseKind kind) const {
    return by_kind_[static_cast<int>(kind)];
  }

  // Unique responders below the alias threshold — the periphery candidates.
  [[nodiscard]] std::vector<LastHop> last_hops() const {
    std::vector<LastHop> out;
    out.reserve(hops_.size());
    for (const auto& [addr, hop] : hops_) {
      if (hop.responses <= alias_threshold_) out.push_back(hop);
    }
    return out;
  }

  // Responders answering for many probes (ISP routers, aliased prefixes).
  [[nodiscard]] std::vector<LastHop> aliased() const {
    std::vector<LastHop> out;
    for (const auto& [addr, hop] : hops_) {
      if (hop.responses > alias_threshold_) out.push_back(hop);
    }
    return out;
  }

  [[nodiscard]] std::size_t unique_responders() const { return hops_.size(); }

 private:
  std::uint64_t alias_threshold_;
  std::unordered_map<net::Ipv6Address, LastHop> hops_;
  std::uint64_t total_ = 0;
  std::uint64_t by_kind_[8] = {};
};

}  // namespace xmap::scan
