// Scan target specification.
//
// XMap's target syntax extends ZMap's: "2001:db8::/32-64" names the 2^32
// sub-prefix space between bit 32 and bit 64 of the base prefix — each
// element of the space is one /64 sub-prefix, probed at one address. The
// bits below the window (the would-be IID space) are filled per the
// configured policy; the paper uses a random IID per probed sub-prefix,
// generated statelessly from the scan seed so that responses can be
// re-derived and validated.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv6.h"
#include "netbase/random.h"

namespace xmap::scan {

enum class SuffixPolicy : std::uint8_t {
  kRandom,  // keyed-hash suffix per target (default; the paper's mode)
  kZero,    // all-zero suffix (probe the subnet anycast-ish address)
  kFixed,   // a caller-provided constant suffix
};

class TargetSpec {
 public:
  TargetSpec() = default;

  // base: the enclosing prefix; window [lo, hi): the bits being enumerated.
  // Requires base.length() <= lo < hi <= 128.
  TargetSpec(net::Ipv6Prefix base, int lo, int hi,
             SuffixPolicy policy = SuffixPolicy::kRandom,
             net::Uint128 fixed_suffix = net::Uint128{})
      : base_(base), lo_(lo), hi_(hi), policy_(policy),
        fixed_suffix_(fixed_suffix) {}

  // Parses "addr/lo-hi" (window form) or "addr/len" (single-probe form,
  // window [len, len]). Returns nullopt on malformed input or lo > hi,
  // hi > 128, lo < 0.
  [[nodiscard]] static std::optional<TargetSpec> parse(
      std::string_view text, SuffixPolicy policy = SuffixPolicy::kRandom);

  [[nodiscard]] const net::Ipv6Prefix& base() const { return base_; }
  [[nodiscard]] int window_lo() const { return lo_; }
  [[nodiscard]] int window_hi() const { return hi_; }
  [[nodiscard]] SuffixPolicy policy() const { return policy_; }

  // Number of probe targets (2^(hi-lo)); hi-lo == 128 is rejected at parse.
  [[nodiscard]] net::Uint128 count() const {
    return net::Uint128::pow2(hi_ - lo_);
  }

  // The probed sub-prefix for window offset i.
  [[nodiscard]] net::Ipv6Prefix nth_prefix(net::Uint128 i) const {
    const net::Uint128 v = base_.address().value() | (i << (128 - hi_));
    return net::Ipv6Prefix{net::Ipv6Address::from_value(v), hi_};
  }

  // The concrete probe address for window offset i: sub-prefix plus suffix
  // per policy. `seed` keys the stateless random suffix.
  [[nodiscard]] net::Ipv6Address nth_address(net::Uint128 i,
                                             std::uint64_t seed) const;

  [[nodiscard]] std::string to_string() const {
    return base_.address().to_string() + "/" + std::to_string(lo_) + "-" +
           std::to_string(hi_);
  }

  friend bool operator==(const TargetSpec&, const TargetSpec&) = default;

 private:
  net::Ipv6Prefix base_;
  int lo_ = 0;
  int hi_ = 0;
  SuffixPolicy policy_ = SuffixPolicy::kRandom;
  net::Uint128 fixed_suffix_;
};

}  // namespace xmap::scan
