#include "xmap/scanner.h"

namespace xmap::scan {

void SimChannelScanner::start() {
  if (started_) return;
  started_ = true;
  spec_state_.resize(config_.targets.size());
  stats_.first_send = network()->now();
  network()->loop().schedule_after(0, [this] { send_tick(); });
}

bool SimChannelScanner::next_target(net::Ipv6Address& out) {
  while (current_spec_ < config_.targets.size()) {
    const TargetSpec& spec = config_.targets[current_spec_];
    SpecState& state = spec_state_[current_spec_];
    if (!state.group) {
      // Per-spec subseed keeps permutations independent across specs.
      const std::uint64_t subseed =
          net::hash_combine64(config_.seed, current_spec_);
      state.group = std::make_unique<CyclicGroup>(spec.count(), subseed);
      state.iter = std::make_unique<CyclicGroup::Iterator>(
          state.group->shard_iterate(config_.shard, config_.shards));
    }
    if (auto offset = state.iter->next()) {
      ++stats_.targets_generated;
      if (progress_ != nullptr) {
        progress_->targets_generated.fetch_add(1, std::memory_order_relaxed);
      }
      out = spec.nth_address(*offset, config_.seed);
      return true;
    }
    ++current_spec_;
  }
  return false;
}

void SimChannelScanner::send_tick() {
  if (config_.max_probes != 0 && stats_.sent >= config_.max_probes) {
    sending_done_ = true;
    return;
  }

  net::Ipv6Address target;
  bool have = false;
  // Skip blocklisted targets without consuming send slots.
  while (next_target(target)) {
    if (config_.blocklist != nullptr && !config_.blocklist->permitted(target)) {
      ++stats_.blocked;
      if (progress_ != nullptr) {
        progress_->blocked.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    have = true;
    break;
  }
  if (!have) {
    sending_done_ = true;
    return;
  }

  const int copies = 1 + (config_.retries > 0 ? config_.retries : 0);
  for (int copy = 0; copy < copies; ++copy) {
    send(iface_, module_.make_probe(config_.source, target, config_.seed));
    ++stats_.sent;
  }
  if (progress_ != nullptr) {
    progress_->sent.fetch_add(static_cast<std::uint64_t>(copies),
                              std::memory_order_relaxed);
  }
  stats_.last_send = network()->now();

  const double pps = config_.probes_per_sec > 0 ? config_.probes_per_sec : 1e9;
  const auto gap = static_cast<sim::SimTime>(
      static_cast<double>(sim::kSecond) / pps);
  network()->loop().schedule_after(gap, [this] { send_tick(); });
}

void SimChannelScanner::receive(const pkt::Bytes& packet, int /*iface*/) {
  ++stats_.received;
  if (progress_ != nullptr) {
    progress_->received.fetch_add(1, std::memory_order_relaxed);
  }
  auto response = module_.classify(packet, config_.source, config_.seed);
  if (!response) {
    ++stats_.discarded;
    if (progress_ != nullptr) {
      progress_->discarded.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  ++stats_.validated;
  if (progress_ != nullptr) {
    progress_->validated.fetch_add(1, std::memory_order_relaxed);
  }
  if (callback_) callback_(*response, network()->now());
}

}  // namespace xmap::scan
