#include "xmap/scanner.h"

#include <algorithm>
#include <cmath>

namespace xmap::scan {
namespace {

// Wire-integrity gate: structurally valid IPv6 with a verifiable
// upper-layer checksum. Fault-injected bit flips land here (`corrupted`)
// instead of being fed to — or worse, validated by — the probe module.
bool wire_intact(const pkt::Bytes& packet) {
  pkt::Ipv6View ip{packet};
  if (!ip.valid()) return false;
  const auto l4 = ip.payload();
  switch (ip.next_header()) {
    case pkt::kProtoIcmpv6: {
      pkt::Icmpv6View icmp{l4};
      return icmp.valid() && icmp.checksum_ok(ip.src(), ip.dst());
    }
    case pkt::kProtoUdp: {
      pkt::UdpView udp{l4};
      return udp.valid() && udp.checksum_ok(ip.src(), ip.dst());
    }
    case pkt::kProtoTcp: {
      pkt::TcpView tcp{l4};
      return tcp.valid() && tcp.checksum_ok(ip.src(), ip.dst());
    }
    default:
      // Unknown upper layer: structurally fine; let classification decide.
      return true;
  }
}

std::uint64_t response_key(const ProbeResponse& r) {
  const net::Uint128 responder = r.responder.value();
  const net::Uint128 probed = r.probe_dst.value();
  std::uint64_t h = net::hash_combine64(responder.hi(), responder.lo());
  h = net::hash_combine64(h, probed.hi());
  h = net::hash_combine64(h, probed.lo());
  return net::hash_combine64(h, static_cast<std::uint64_t>(r.kind));
}

sim::SimTime gap_for(double pps) {
  if (pps <= 0) pps = 1e9;
  const auto gap = static_cast<sim::SimTime>(
      static_cast<double>(sim::kSecond) / pps);
  return gap > 0 ? gap : 1;
}

inline void bump(std::uint64_t* cell) {
  if (cell != nullptr) ++*cell;
}

std::uint64_t addr_key(const net::Ipv6Address& addr) {
  const net::Uint128 v = addr.value();
  return net::hash_combine64(v.hi(), v.lo());
}

// Sim-RTT histogram bounds (ns): 100µs … 1s, roughly log-spaced. The
// simulated topologies put echo RTTs in the hundreds of µs to tens of ms.
const std::vector<std::uint64_t> kRttBoundsNs = {
    100'000,     250'000,     500'000,       1'000'000,   2'500'000,
    5'000'000,   10'000'000,  25'000'000,    50'000'000,  100'000'000,
    250'000'000, 500'000'000, 1'000'000'000,
};

// How long after a probe's last copy every response is assumed to have
// arrived, for the mid-flight stable cursor. Simulated round trips top out
// in the hundreds of milliseconds (link latencies plus bounded jitter);
// two sim-seconds is conservatively past all of them.
constexpr sim::SimTime kStableHorizonNs = 2 * sim::kSecond;

}  // namespace

std::uint64_t compute_budget_cut(const std::vector<TargetSpec>& targets,
                                 std::uint64_t seed,
                                 const Blocklist* blocklist,
                                 std::uint64_t max_targets, int shard,
                                 int shards) {
  if (max_targets == 0) return kNoBudgetCut;
  std::uint64_t permitted = 0;
  std::uint64_t raw_base = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::uint64_t subseed = net::hash_combine64(seed, i);
    const CyclicGroup group{targets[i].count(), subseed};
    CyclicGroup::Iterator iter = group.shard_iterate(shard, shards);
    while (auto offset = iter.next()) {
      if (blocklist != nullptr &&
          !blocklist->permitted(targets[i].nth_address(*offset, seed))) {
        continue;
      }
      if (++permitted == max_targets) {
        const net::Uint128 visited = iter.raw_visited();
        const std::uint64_t local =
            (visited - net::Uint128{1}).to_u64() *
                static_cast<std::uint64_t>(shards) +
            static_cast<std::uint64_t>(shard);
        return raw_base + local + 1;
      }
    }
    const net::Uint128 order = group.prime() - net::Uint128{1};
    raw_base += order.fits_u64() ? order.to_u64() : ~std::uint64_t{0};
  }
  return kNoBudgetCut;  // whole permitted population fits in the budget
}

void SimChannelScanner::set_obs(const obs::ObsConfig& config,
                                obs::TraceBuffer* trace,
                                obs::MetricsShard* metrics,
                                obs::StageProfile* profile) {
  trace_ = config.trace_level != obs::TraceLevel::kOff ? trace : nullptr;
  profile_ = config.profile ? profile : nullptr;
  if (config.metrics && metrics != nullptr) {
    cells_.targets_generated =
        metrics->counter("targets_generated", {},
                         "Targets drawn from the scan permutation");
    cells_.blocked = metrics->counter(
        "targets_blocked", {}, "Targets suppressed by the blocklist");
    cells_.sent = metrics->counter(
        "probes_sent", {}, "Probe packets sent (fresh plus retransmits)");
    cells_.retransmits = metrics->counter("probes_retransmitted", {},
                                          "Retransmit copies sent");
    cells_.received = metrics->counter(
        "responses_received", {}, "Packets arriving at the scanner");
    cells_.validated =
        metrics->counter("responses_validated", {},
                         "Responses accepted by the probe module");
    cells_.duplicates = metrics->counter(
        "responses_duplicate", {}, "Validated responses already seen");
    cells_.discarded = metrics->counter(
        "responses_discarded", {}, "Packets rejected by classification");
    cells_.corrupted =
        metrics->counter("responses_corrupted", {},
                         "Packets failing the wire-integrity gate");
    cells_.late = metrics->counter(
        "responses_late", {}, "Responses after the cooldown deadline");
    cells_.rate_adjustments = metrics->counter(
        "rate_adjustments", {}, "AIMD rate-controller adjustments");
    rtt_hist_ = metrics->histogram(
        "icmp_rtt_sim_ns", kRttBoundsNs, {},
        "Probe-to-validated-response round trip in sim nanoseconds");
  }
  track_rtt_ = rtt_hist_ != nullptr ||
               (trace_ != nullptr && trace_->at(obs::TraceLevel::kScan));
  // Deterministic pacing: send times are analytic, so RTT rides on the
  // slot map instead of a dedicated send-time map.
  rtt_from_slots_ = track_rtt_ && !config_.adaptive_rate;
  if (rtt_from_slots_) track_slots_ = true;
}

void SimChannelScanner::start() {
  if (started_) return;
  started_ = true;

  copies_ = 1 + (config_.retries > 0 ? config_.retries : 0);
  gap_ns_ = gap_for(config_.probes_per_sec);
  // Retry spacing in whole target periods (one period = (1+retries) slots),
  // so retransmit slots interleave with fresh slots without collisions.
  const double spacing_ns =
      std::max(0.0, config_.retry_spacing_ms) *
      static_cast<double>(sim::kMillisecond);
  const double period_ns =
      static_cast<double>(copies_) * static_cast<double>(gap_ns_);
  spacing_periods_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(spacing_ns / period_ns)));

  // Build every spec's permutation up front: raw_base must be known for
  // all specs before the first send so slot positions are globally
  // consistent (and identical across shards and thread counts).
  spec_state_.resize(config_.targets.size());
  std::uint64_t raw_base = 0;
  for (std::size_t i = 0; i < config_.targets.size(); ++i) {
    const std::uint64_t subseed = net::hash_combine64(config_.seed, i);
    SpecState& state = spec_state_[i];
    state.group =
        std::make_unique<CyclicGroup>(config_.targets[i].count(), subseed);
    state.iter = std::make_unique<CyclicGroup::Iterator>(
        state.group->shard_iterate(config_.shard, config_.shards));
    state.raw_base = raw_base;
    const net::Uint128 order = state.group->prime() - net::Uint128{1};
    state.order = order.fits_u64() ? order.to_u64() : ~std::uint64_t{0};
    raw_base += state.order;
    // Resume: jump the iterator to the checkpointed cursor in O(log k)
    // instead of re-walking (and re-sending) the permutation prefix.
    if (i < config_.resume_spec_steps.size()) {
      state.iter->fast_forward(net::Uint128{config_.resume_spec_steps[i]});
    }
  }

  // Translate a target-count budget into its slot-deterministic cut unless
  // the caller (the parallel engine) already computed it for all workers.
  if (config_.max_probes != 0 &&
      config_.budget_cut_raw_slot == kNoBudgetCut) {
    config_.budget_cut_raw_slot =
        compute_budget_cut(config_.targets, config_.seed, config_.blocklist,
                           config_.max_probes, config_.shard, config_.shards);
  }

  // Pre-size the per-probe flat tables: this shard draws at most
  // span/shards targets (raw-cycle span capped by the budget cut), so
  // sizing them here keeps the steady-state scan path heap-free — growth
  // would allocate mid-run. Capped so a huge address window cannot demand
  // a huge up-front table; past the cap the tables grow like any hash map.
  {
    const std::uint64_t span =
        std::min(raw_base, config_.budget_cut_raw_slot);
    const std::uint64_t shards = config_.shards > 0
                                     ? static_cast<std::uint64_t>(config_.shards)
                                     : 1;
    constexpr std::uint64_t kReserveCap = std::uint64_t{1} << 20;
    const std::size_t per_shard =
        static_cast<std::size_t>(std::min(span / shards + 1, kReserveCap));
    // Responses can outnumber targets (routers answer for silent hosts),
    // so the dedup set gets double headroom.
    seen_responses_.reserve(2 * per_shard);
    if (track_slots_) slot_by_addr_.reserve(per_shard);
    if (track_rtt_ && !rtt_from_slots_) first_send_.reserve(per_shard);
  }

  current_pps_ = config_.probes_per_sec > 0 ? config_.probes_per_sec : 1e9;
  window_end_ = network()->now() + sim::kSecond / 2;
  next_fresh_at_ = network()->now();

  // One frame build per scan; send_copy re-aims it per target.
  if (!config_.legacy_hot_path) {
    template_ = module_.make_template(config_.source, config_.seed);
  }

  stats_.first_send = network()->now();
  network()->loop().schedule_after(0, [this] { schedule_fresh(); });
}

bool SimChannelScanner::next_target(net::Ipv6Address& out,
                                    std::uint64_t& raw_slot) {
  while (current_spec_ < config_.targets.size()) {
    const TargetSpec& spec = config_.targets[current_spec_];
    SpecState& state = spec_state_[current_spec_];
    if (!state.iter->raw_remaining().is_zero()) {
      // Peek the next slot *before* consuming it: a stop here must leave
      // the iterator exactly at the frontier so a resumed scan starts with
      // this very target.
      const std::uint64_t next_slot =
          state.raw_base + state.iter->raw_visited().to_u64() *
                               static_cast<std::uint64_t>(config_.shards) +
          static_cast<std::uint64_t>(config_.shard);
      if (next_slot >= config_.budget_cut_raw_slot) return false;
      const bool signal_pending =
          config_.shutdown_flag != nullptr &&
          config_.shutdown_flag->load(std::memory_order_relaxed) != 0;
      if (signal_pending || next_slot >= config_.shutdown_at_raw_slot) {
        interrupted_ = true;
        return false;
      }
    }
    if (auto offset = state.iter->next()) {
      ++stats_.targets_generated;
      bump(cells_.targets_generated);
      if (progress_ != nullptr) {
        progress_->targets_generated.fetch_add(1, std::memory_order_relaxed);
      }
      // Global raw-cycle position of this target: the iterator has consumed
      // raw_visited() steps of its shard-strided walk, so the element just
      // yielded sits at shard-local raw index raw_visited()-1, i.e. global
      // index (raw_visited()-1)*shards + shard within the spec's cycle.
      const net::Uint128 visited = state.iter->raw_visited();
      const std::uint64_t local =
          (visited - net::Uint128{1}).to_u64() *
              static_cast<std::uint64_t>(config_.shards) +
          static_cast<std::uint64_t>(config_.shard);
      raw_slot = state.raw_base + local;
      out = spec.nth_address(*offset, config_.seed);
      return true;
    }
    ++current_spec_;
  }
  return false;
}

bool SimChannelScanner::draw_fresh(net::Ipv6Address& out,
                                   std::uint64_t& raw_slot) {
  // Scan-level lifecycle events are stamped with the target's packet-slot
  // time — a pure function of (seed, targets, rate, retries) — rather than
  // the load-dependent moment this function happens to run, so the trace
  // stays partition-invariant.
  const auto slot_time = [this](std::uint64_t raw) {
    return static_cast<sim::SimTime>(
        raw * static_cast<std::uint64_t>(copies_) * gap_ns_);
  };

  bool have = false;
  // Skip blocklisted targets; their slots stay empty (the schedule is a
  // pure function of the permutation, not of the blocklist).
  while (next_target(out, raw_slot)) {
    if (config_.blocklist != nullptr && !config_.blocklist->permitted(out)) {
      ++stats_.blocked;
      bump(cells_.blocked);
      if (progress_ != nullptr) {
        progress_->blocked.fetch_add(1, std::memory_order_relaxed);
      }
      if (trace_ != nullptr && trace_->at(obs::TraceLevel::kScan)) {
        obs::TraceEvent e;
        e.ts = slot_time(raw_slot);
        e.name = "target_blocked";
        e.cat = "scan";
        e.addr1_key = "target";
        e.addr1 = out;
        trace_->add(e);
      }
      continue;
    }
    have = true;
    break;
  }
  if (!have) return false;
  if (trace_ != nullptr && trace_->at(obs::TraceLevel::kScan)) {
    obs::TraceEvent e;
    e.ts = slot_time(raw_slot);
    e.name = "target_generated";
    e.cat = "scan";
    e.addr1_key = "target";
    e.addr1 = out;
    e.i0 = {"raw_slot", raw_slot};
    trace_->add(e);
  }
  if (track_slots_) slot_by_addr_.insert(addr_key(out), raw_slot);
  if (checkpoint_hook_ && checkpoint_every_ != 0 && !config_.adaptive_rate &&
      ++targets_since_checkpoint_ >= checkpoint_every_) {
    targets_since_checkpoint_ = 0;
    checkpoint_hook_(stable_cursor());
  }
  return true;
}

void SimChannelScanner::schedule_fresh() {
  obs::ScopedStageTimer timer{profile_, obs::Stage::kGenerate};

  net::Ipv6Address target;
  std::uint64_t raw_slot = 0;

  if (config_.adaptive_rate) {
    if (!draw_fresh(target, raw_slot)) {
      fresh_done_ = true;
      maybe_finish_sending();
      return;
    }
    // Load-driven pacing: fresh probes are spaced (1+retries) slots of the
    // *current* rate apart; retransmits ride at fixed offsets after their
    // fresh copy. Aggregate stays below current_pps_.
    adapt_rate();
    const sim::SimTime gap = gap_for(current_pps_);
    const sim::SimTime t0 =
        std::max(next_fresh_at_, network()->now());
    next_fresh_at_ = t0 + static_cast<sim::SimTime>(copies_) * gap;
    const auto spacing = static_cast<sim::SimTime>(
        std::max(0.0, config_.retry_spacing_ms) *
        static_cast<double>(sim::kMillisecond));
    for (int c = 0; c < copies_; ++c) {
      ++pending_sends_;
      const sim::SimTime tc =
          t0 + static_cast<sim::SimTime>(c) * std::max(spacing, gap);
      network()->loop().schedule_at(tc, [this, target, c] {
        send_copy(target, c);
        if (c == 0) schedule_fresh();
      });
    }
    return;
  }

  // Deterministic slot pacing: every copy owns one global packet slot, so
  // send times depend only on (seed, targets, rate, retries) — never on
  // shard count or thread count. Draws come in blocks; the next block is
  // armed on the last target's copy-0 send.
  //
  // Bulk block path: the whole draw batch becomes ONE typed event per copy
  // sweep (see run_block_copy) instead of count*copies closures. Decided on
  // the first dispatch — which runs inside Network::run(), after every
  // connect/install_faults/set_obs call — so the network's bulk verdict is
  // final by now.
  if (use_blocks_ < 0) {
    use_blocks_ = (!config_.adaptive_rate && !config_.legacy_hot_path &&
                   (trace_ == nullptr ||
                    !trace_->at(obs::TraceLevel::kScan)) &&
                   network()->bulk_mode())
                      ? 1
                      : 0;
    if (use_blocks_ != 0) {
      network()->loop().register_handler(sim::kEventScanBlock, this,
                                         &SimChannelScanner::on_block_event);
    }
  }
  if (use_blocks_ != 0) {
    std::uint32_t bidx;
    if (!block_free_.empty()) {
      bidx = block_free_.back();
      block_free_.pop_back();
    } else {
      bidx = static_cast<std::uint32_t>(blocks_.size());
      blocks_.emplace_back();
    }
    SendBlock& blk = blocks_[bidx];
    blk.count = 0;
    bool more = true;
    for (std::uint64_t b = 0; b < kFreshBatch; ++b) {
      if (!draw_fresh(target, raw_slot)) {
        more = false;
        fresh_done_ = true;
        break;
      }
      blk.targets[blk.count] = target;
      blk.raw_slots[blk.count] = raw_slot;
      ++blk.count;
      pending_sends_ += static_cast<std::uint64_t>(copies_);
    }
    if (blk.count == 0) {
      block_free_.push_back(bidx);
      maybe_finish_sending();
      return;
    }
    blk.rearm = more;
    blk.live_copies = static_cast<std::uint32_t>(copies_);
    for (int c = 0; c < copies_; ++c) {
      const sim::SimTime tc =
          copy_time(blk.raw_slots[0], static_cast<std::uint32_t>(c));
      network()->loop().schedule_event(
          tc, sim::kEventScanBlock, bidx,
          static_cast<std::uint64_t>(c) << 32);
    }
    if (!more) maybe_finish_sending();
    return;
  }

  const std::uint64_t batch = config_.legacy_hot_path ? 1 : kFreshBatch;
  for (std::uint64_t b = 0; b < batch; ++b) {
    if (!draw_fresh(target, raw_slot)) {
      fresh_done_ = true;
      maybe_finish_sending();
      return;
    }
    const bool last = b == batch - 1;
    const std::uint64_t period =
        raw_slot * static_cast<std::uint64_t>(copies_);
    for (int c = 0; c < copies_; ++c) {
      ++pending_sends_;
      const std::uint64_t slot =
          period + static_cast<std::uint64_t>(c) *
                       (spacing_periods_ *
                            static_cast<std::uint64_t>(copies_) +
                        1);
      const sim::SimTime tc = slot * gap_ns_;
      const bool rearm = last && c == 0;
      network()->loop().schedule_at(tc, [this, target, c, rearm] {
        send_copy(target, c);
        if (rearm) schedule_fresh();
      });
    }
  }
}

void SimChannelScanner::on_block_event(void* ctx, sim::SimTime /*when*/,
                                       std::uint64_t a, std::uint64_t b) {
  auto* self = static_cast<SimChannelScanner*>(ctx);
  self->run_block_copy(static_cast<std::uint32_t>(a),
                       static_cast<std::uint32_t>(b >> 32),
                       static_cast<std::uint32_t>(b & 0xffffffffu));
}

void SimChannelScanner::run_block_copy(std::uint32_t bidx, std::uint32_t copy,
                                       std::uint32_t idx) {
  sim::EventLoop& loop = network()->loop();
  const sim::SimTime horizon = loop.bulk_horizon();
  SendBlock& blk = blocks_[bidx];
  // A checkpoint hook claims "every record below the cursor is in hand"
  // at the instant it fires (at a block rearm), which only holds if the
  // sweep never overtakes a queued delivery or response. With an order
  // observer registered, cap every send at next_when() — exact global
  // stamp order, the same schedule the per-event path runs. Without one,
  // nothing observes processing order (all stamps are analytic), so the
  // sweep runs free to the horizon and drains batch whole latency-windows
  // of packets.
  const bool strict_order = network()->order_observed();
  while (idx < blk.count) {
    const sim::SimTime tc = copy_time(blk.raw_slots[idx], copy);
    if (tc > horizon || (strict_order && tc > loop.next_when())) {
      // Park the rest of this sweep as a fresh event carrying the resume
      // index.
      loop.schedule_event(tc, sim::kEventScanBlock, bidx,
                          (static_cast<std::uint64_t>(copy) << 32) | idx);
      return;
    }
    // Every send is stamped with its analytic slot time, exactly as the
    // per-copy closure would have been dispatched at.
    loop.set_time(tc);
    send_copy(blk.targets[idx], static_cast<int>(copy));
    ++idx;
  }
  // Sweep complete. Copy 0 of a full block re-arms the draw loop at the
  // last target's copy-0 slot — the same stamp the strict path's rearm
  // closure fires at — so checkpoint cursors and fresh_done_ timing are
  // identical in both modes. Free before re-arming: schedule_fresh may
  // grow blocks_, invalidating `blk`.
  const bool rearm = blk.rearm && copy == 0;
  if (--blk.live_copies == 0) block_free_.push_back(bidx);
  if (rearm) schedule_fresh();
}

std::uint64_t SimChannelScanner::frontier_slot() const {
  for (std::size_t i = current_spec_; i < spec_state_.size(); ++i) {
    const SpecState& state = spec_state_[i];
    if (!state.iter->raw_remaining().is_zero()) {
      return state.raw_base +
             state.iter->raw_visited().to_u64() *
                 static_cast<std::uint64_t>(config_.shards) +
             static_cast<std::uint64_t>(config_.shard);
    }
  }
  if (spec_state_.empty()) return 0;
  return spec_state_.back().raw_base + spec_state_.back().order;
}

ScanCursor SimChannelScanner::cursor() const {
  ScanCursor cursor;
  cursor.spec_steps.reserve(spec_state_.size());
  for (const SpecState& state : spec_state_) {
    cursor.spec_steps.push_back(state.iter->raw_visited().to_u64());
  }
  cursor.frontier_slot = frontier_slot();
  return cursor;
}

ScanCursor SimChannelScanner::cursor_at_slot(std::uint64_t slot) const {
  ScanCursor cursor;
  cursor.spec_steps.reserve(spec_state_.size());
  const auto shard = static_cast<std::uint64_t>(config_.shard);
  const auto shards = static_cast<std::uint64_t>(config_.shards);
  for (const SpecState& state : spec_state_) {
    // Within-spec global raw index the cut falls at, clamped to the spec.
    const std::uint64_t g =
        slot <= state.raw_base
            ? 0
            : std::min(slot - state.raw_base, state.order);
    // Shard-local steps below g: positions k*shards + shard < g.
    cursor.spec_steps.push_back(g > shard ? (g - shard + shards - 1) / shards
                                          : 0);
  }
  cursor.frontier_slot = slot;
  return cursor;
}

ScanCursor SimChannelScanner::stable_cursor() const {
  // The last retransmit copy of fresh slot q fires at
  //   (q*copies + (copies-1)*(spacing_periods*copies+1)) * gap.
  // Find the largest q whose last copy is at least a response horizon in
  // the past; everything at or below it has completed its lifecycle.
  const sim::SimTime now = network()->now();
  const std::uint64_t tail_slots =
      static_cast<std::uint64_t>(copies_ - 1) *
      (spacing_periods_ * static_cast<std::uint64_t>(copies_) + 1);
  const sim::SimTime tail_ns = tail_slots * gap_ns_;
  std::uint64_t frontier = 0;
  if (now > kStableHorizonNs + tail_ns) {
    const sim::SimTime budget = now - kStableHorizonNs - tail_ns;
    frontier =
        budget / (static_cast<std::uint64_t>(copies_) * gap_ns_) + 1;
  }
  frontier = std::min(frontier, frontier_slot());
  return cursor_at_slot(frontier);
}

void SimChannelScanner::send_copy(const net::Ipv6Address& target, int copy) {
  obs::ScopedStageTimer timer{profile_, obs::Stage::kSend};
  --pending_sends_;
  pkt::Bytes probe;
  if (config_.legacy_hot_path) {
    probe = module_.make_probe(config_.source, target, config_.seed);
  } else {
    // Re-aim the cached frame: patch dst + keyed fields, incremental
    // checksum. The copy below recycles a pool block.
    module_.patch_probe(template_, config_.source, target, config_.seed);
    probe = template_.frame();
  }
  if (trace_ != nullptr) {
    if (trace_->at(obs::TraceLevel::kPacket)) {
      obs::TraceEvent e;
      e.ts = network()->now();
      e.name = "probe_encoded";
      e.cat = "scan";
      e.addr1_key = "target";
      e.addr1 = target;
      e.i0 = {"bytes", probe.size()};
      trace_->add(e);
    }
    if (trace_->at(obs::TraceLevel::kScan)) {
      obs::TraceEvent e;
      e.ts = network()->now();
      e.name = copy > 0 ? "probe_retransmit" : "probe_sent";
      e.cat = "scan";
      e.addr1_key = "target";
      e.addr1 = target;
      e.i0 = {"copy", static_cast<std::uint64_t>(copy)};
      trace_->add(e);
    }
  }
  if (track_rtt_ && copy == 0 && !rtt_from_slots_) {
    first_send_.insert(addr_key(target), network()->now());
  }
  send(iface_, std::move(probe));
  ++stats_.sent;
  bump(cells_.sent);
  ++window_sent_;
  if (copy > 0) {
    ++stats_.retransmits;
    bump(cells_.retransmits);
    if (progress_ != nullptr) {
      progress_->retransmits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (progress_ != nullptr) {
    progress_->sent.fetch_add(1, std::memory_order_relaxed);
  }
  // Max, not assignment: block sweeps execute different copies' sends out
  // of global stamp order, and the cooldown deadline must anchor on the
  // latest send stamp either way.
  stats_.last_send = std::max(stats_.last_send, network()->now());
  maybe_finish_sending();
}

void SimChannelScanner::maybe_finish_sending() {
  if (sending_done_ || !fresh_done_ || pending_sends_ != 0) return;
  sending_done_ = true;
  // ZMap cooldown semantics: the receive window stays open for
  // cooldown_secs after the last send, then closes; later arrivals are
  // accounted as `late` instead of validated.
  const double cooldown = std::max(0.0, config_.cooldown_secs);
  recv_deadline_ =
      stats_.last_send + static_cast<sim::SimTime>(
                             cooldown * static_cast<double>(sim::kSecond));
}

void SimChannelScanner::adapt_rate() {
  if (network()->now() < window_end_) return;
  // Evaluate only windows with enough sends for a meaningful rate.
  if (window_sent_ >= 16) {
    const double hr = static_cast<double>(window_validated_) /
                      static_cast<double>(window_sent_);
    if (hr > best_hit_rate_) best_hit_rate_ = hr;
    const double base =
        config_.probes_per_sec > 0 ? config_.probes_per_sec : 1e9;
    const double floor = std::max(1.0, base / 64.0);
    bool adjusted = false;
    if (best_hit_rate_ > 0 && hr < 0.5 * best_hit_rate_ &&
        current_pps_ > floor) {
      // Hit rate collapsed: suspected ICMPv6 rate limiting — back off.
      current_pps_ = std::max(floor, current_pps_ / 2.0);
      adjusted = true;
    } else if (hr >= 0.8 * best_hit_rate_ && current_pps_ < base) {
      current_pps_ = std::min(base, current_pps_ * 1.25);
      adjusted = true;
    }
    if (adjusted) {
      ++stats_.rate_adjustments;
      bump(cells_.rate_adjustments);
      if (progress_ != nullptr) {
        progress_->rate_adjustments.fetch_add(1, std::memory_order_relaxed);
      }
      if (trace_ != nullptr && trace_->at(obs::TraceLevel::kScan)) {
        obs::TraceEvent e;
        e.ts = network()->now();
        e.name = "rate_adjusted";
        e.cat = "scan";
        e.i0 = {"pps", static_cast<std::uint64_t>(current_pps_)};
        trace_->add(e);
      }
    }
  }
  window_sent_ = 0;
  window_validated_ = 0;
  window_end_ = network()->now() + sim::kSecond / 2;
}

void SimChannelScanner::receive(pkt::Bytes packet, int /*iface*/) {
  obs::ScopedStageTimer timer{profile_, obs::Stage::kReceive};
  const bool scan_trace =
      trace_ != nullptr && trace_->at(obs::TraceLevel::kScan);
  ++stats_.received;
  bump(cells_.received);
  if (progress_ != nullptr) {
    progress_->received.fetch_add(1, std::memory_order_relaxed);
  }
  if (sending_done_ && network()->now() > recv_deadline_) {
    ++stats_.late;
    bump(cells_.late);
    if (progress_ != nullptr) {
      progress_->late.fetch_add(1, std::memory_order_relaxed);
    }
    if (scan_trace) {
      obs::TraceEvent e;
      e.ts = network()->now();
      e.name = "response_late";
      e.cat = "scan";
      e.i0 = {"bytes", packet.size()};
      trace_->add(e);
    }
    return;
  }
  if (!wire_intact(packet)) {
    ++stats_.corrupted;
    bump(cells_.corrupted);
    if (progress_ != nullptr) {
      progress_->corrupted.fetch_add(1, std::memory_order_relaxed);
    }
    if (scan_trace) {
      obs::TraceEvent e;
      e.ts = network()->now();
      e.name = "response_corrupted";
      e.cat = "scan";
      e.i0 = {"bytes", packet.size()};
      trace_->add(e);
    }
    return;
  }
  std::optional<ProbeResponse> response;
  {
    obs::ScopedStageTimer classify_timer{profile_, obs::Stage::kClassify};
    response = module_.classify(packet, config_.source, config_.seed);
  }
  if (!response) {
    ++stats_.discarded;
    bump(cells_.discarded);
    if (progress_ != nullptr) {
      progress_->discarded.fetch_add(1, std::memory_order_relaxed);
    }
    if (scan_trace) {
      obs::TraceEvent e;
      e.ts = network()->now();
      e.name = "response_discarded";
      e.cat = "scan";
      e.i0 = {"bytes", packet.size()};
      trace_->add(e);
    }
    return;
  }
  ++stats_.validated;
  bump(cells_.validated);
  ++window_validated_;
  if (progress_ != nullptr) {
    progress_->validated.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t raw_slot = kNoBudgetCut;
  if (track_slots_) {
    const std::uint64_t* slot =
        slot_by_addr_.find(addr_key(response->probe_dst));
    if (slot != nullptr) raw_slot = *slot;
  }
  sim::SimTime rtt = 0;
  bool have_rtt = false;
  if (track_rtt_) {
    sim::SimTime sent = 0;
    bool have_sent = false;
    if (rtt_from_slots_) {
      if (raw_slot != kNoBudgetCut) {
        // Copy 0 owns packet slot raw_slot * copies; its send fired at
        // exactly that slot's boundary (see schedule_fresh).
        sent = static_cast<sim::SimTime>(
            raw_slot * static_cast<std::uint64_t>(copies_) * gap_ns_);
        have_sent = true;
      }
    } else {
      const sim::SimTime* p =
          first_send_.find(addr_key(response->probe_dst));
      if (p != nullptr) {
        sent = *p;
        have_sent = true;
      }
    }
    if (have_sent && network()->now() >= sent) {
      rtt = network()->now() - sent;
      have_rtt = true;
    }
  }
  if (rtt_hist_ != nullptr && have_rtt) rtt_hist_->observe(rtt);
  if (scan_trace) {
    // Renders as a span covering first-send -> validated-response when the
    // send time is known (the Perfetto slice for this probe's round trip).
    obs::TraceEvent e;
    e.ts = have_rtt ? network()->now() - rtt : network()->now();
    e.dur = rtt;
    e.name = "response_validated";
    e.cat = "scan";
    e.addr1_key = "responder";
    e.addr1 = response->responder;
    e.addr2_key = "target";
    e.addr2 = response->probe_dst;
    e.str_key = "kind";
    e.str_val = response_kind_name(response->kind);
    trace_->add(e);
  }
  if (!seen_responses_.insert(response_key(*response))) {
    ++stats_.duplicates;
    bump(cells_.duplicates);
    if (progress_ != nullptr) {
      progress_->duplicates.fetch_add(1, std::memory_order_relaxed);
    }
    if (scan_trace) {
      obs::TraceEvent e;
      e.ts = network()->now();
      e.name = "response_duplicate";
      e.cat = "scan";
      e.addr1_key = "responder";
      e.addr1 = response->responder;
      e.addr2_key = "target";
      e.addr2 = response->probe_dst;
      trace_->add(e);
    }
  }
  if (callback_) {
    callback_(*response, network()->now(), raw_slot);
  }
}

}  // namespace xmap::scan
