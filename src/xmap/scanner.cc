#include "xmap/scanner.h"

#include <algorithm>
#include <cmath>

namespace xmap::scan {
namespace {

// Wire-integrity gate: structurally valid IPv6 with a verifiable
// upper-layer checksum. Fault-injected bit flips land here (`corrupted`)
// instead of being fed to — or worse, validated by — the probe module.
bool wire_intact(const pkt::Bytes& packet) {
  pkt::Ipv6View ip{packet};
  if (!ip.valid()) return false;
  const auto l4 = ip.payload();
  switch (ip.next_header()) {
    case pkt::kProtoIcmpv6: {
      pkt::Icmpv6View icmp{l4};
      return icmp.valid() && icmp.checksum_ok(ip.src(), ip.dst());
    }
    case pkt::kProtoUdp: {
      pkt::UdpView udp{l4};
      return udp.valid() && udp.checksum_ok(ip.src(), ip.dst());
    }
    case pkt::kProtoTcp: {
      pkt::TcpView tcp{l4};
      return tcp.valid() && tcp.checksum_ok(ip.src(), ip.dst());
    }
    default:
      // Unknown upper layer: structurally fine; let classification decide.
      return true;
  }
}

std::uint64_t response_key(const ProbeResponse& r) {
  const net::Uint128 responder = r.responder.value();
  const net::Uint128 probed = r.probe_dst.value();
  std::uint64_t h = net::hash_combine64(responder.hi(), responder.lo());
  h = net::hash_combine64(h, probed.hi());
  h = net::hash_combine64(h, probed.lo());
  return net::hash_combine64(h, static_cast<std::uint64_t>(r.kind));
}

sim::SimTime gap_for(double pps) {
  if (pps <= 0) pps = 1e9;
  const auto gap = static_cast<sim::SimTime>(
      static_cast<double>(sim::kSecond) / pps);
  return gap > 0 ? gap : 1;
}

}  // namespace

void SimChannelScanner::start() {
  if (started_) return;
  started_ = true;

  copies_ = 1 + (config_.retries > 0 ? config_.retries : 0);
  gap_ns_ = gap_for(config_.probes_per_sec);
  // Retry spacing in whole target periods (one period = (1+retries) slots),
  // so retransmit slots interleave with fresh slots without collisions.
  const double spacing_ns =
      std::max(0.0, config_.retry_spacing_ms) *
      static_cast<double>(sim::kMillisecond);
  const double period_ns =
      static_cast<double>(copies_) * static_cast<double>(gap_ns_);
  spacing_periods_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(spacing_ns / period_ns)));

  // Build every spec's permutation up front: raw_base must be known for
  // all specs before the first send so slot positions are globally
  // consistent (and identical across shards and thread counts).
  spec_state_.resize(config_.targets.size());
  std::uint64_t raw_base = 0;
  for (std::size_t i = 0; i < config_.targets.size(); ++i) {
    const std::uint64_t subseed = net::hash_combine64(config_.seed, i);
    SpecState& state = spec_state_[i];
    state.group =
        std::make_unique<CyclicGroup>(config_.targets[i].count(), subseed);
    state.iter = std::make_unique<CyclicGroup::Iterator>(
        state.group->shard_iterate(config_.shard, config_.shards));
    state.raw_base = raw_base;
    const net::Uint128 order = state.group->prime() - net::Uint128{1};
    raw_base += order.fits_u64() ? order.to_u64() : ~std::uint64_t{0};
  }

  current_pps_ = config_.probes_per_sec > 0 ? config_.probes_per_sec : 1e9;
  window_end_ = network()->now() + sim::kSecond / 2;
  next_fresh_at_ = network()->now();

  stats_.first_send = network()->now();
  network()->loop().schedule_after(0, [this] { schedule_fresh(); });
}

bool SimChannelScanner::next_target(net::Ipv6Address& out,
                                    std::uint64_t& raw_slot) {
  while (current_spec_ < config_.targets.size()) {
    const TargetSpec& spec = config_.targets[current_spec_];
    SpecState& state = spec_state_[current_spec_];
    if (auto offset = state.iter->next()) {
      ++stats_.targets_generated;
      if (progress_ != nullptr) {
        progress_->targets_generated.fetch_add(1, std::memory_order_relaxed);
      }
      // Global raw-cycle position of this target: the iterator has consumed
      // raw_visited() steps of its shard-strided walk, so the element just
      // yielded sits at shard-local raw index raw_visited()-1, i.e. global
      // index (raw_visited()-1)*shards + shard within the spec's cycle.
      const net::Uint128 visited = state.iter->raw_visited();
      const std::uint64_t local =
          (visited - net::Uint128{1}).to_u64() *
              static_cast<std::uint64_t>(config_.shards) +
          static_cast<std::uint64_t>(config_.shard);
      raw_slot = state.raw_base + local;
      out = spec.nth_address(*offset, config_.seed);
      return true;
    }
    ++current_spec_;
  }
  return false;
}

void SimChannelScanner::schedule_fresh() {
  if (budget_exhausted()) {
    fresh_done_ = true;
    maybe_finish_sending();
    return;
  }

  net::Ipv6Address target;
  std::uint64_t raw_slot = 0;
  bool have = false;
  // Skip blocklisted targets; their slots stay empty (the schedule is a
  // pure function of the permutation, not of the blocklist).
  while (next_target(target, raw_slot)) {
    if (config_.blocklist != nullptr &&
        !config_.blocklist->permitted(target)) {
      ++stats_.blocked;
      if (progress_ != nullptr) {
        progress_->blocked.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    have = true;
    break;
  }
  if (!have) {
    fresh_done_ = true;
    maybe_finish_sending();
    return;
  }

  if (config_.adaptive_rate) {
    // Load-driven pacing: fresh probes are spaced (1+retries) slots of the
    // *current* rate apart; retransmits ride at fixed offsets after their
    // fresh copy. Aggregate stays below current_pps_.
    adapt_rate();
    const sim::SimTime gap = gap_for(current_pps_);
    const sim::SimTime t0 =
        std::max(next_fresh_at_, network()->now());
    next_fresh_at_ = t0 + static_cast<sim::SimTime>(copies_) * gap;
    const auto spacing = static_cast<sim::SimTime>(
        std::max(0.0, config_.retry_spacing_ms) *
        static_cast<double>(sim::kMillisecond));
    for (int c = 0; c < copies_; ++c) {
      ++pending_sends_;
      const sim::SimTime tc =
          t0 + static_cast<sim::SimTime>(c) * std::max(spacing, gap);
      network()->loop().schedule_at(tc, [this, target, c] {
        send_copy(target, c);
        if (c == 0) schedule_fresh();
      });
    }
    return;
  }

  // Deterministic slot pacing: every copy owns one global packet slot, so
  // send times depend only on (seed, targets, rate, retries) — never on
  // shard count or thread count.
  const std::uint64_t period = raw_slot * static_cast<std::uint64_t>(copies_);
  for (int c = 0; c < copies_; ++c) {
    ++pending_sends_;
    const std::uint64_t slot =
        period + static_cast<std::uint64_t>(c) *
                     (spacing_periods_ * static_cast<std::uint64_t>(copies_) +
                      1);
    const sim::SimTime tc = slot * gap_ns_;
    network()->loop().schedule_at(tc, [this, target, c] {
      send_copy(target, c);
      if (c == 0) schedule_fresh();
    });
  }
}

void SimChannelScanner::send_copy(const net::Ipv6Address& target, int copy) {
  --pending_sends_;
  if (budget_exhausted()) {
    maybe_finish_sending();
    return;
  }
  send(iface_, module_.make_probe(config_.source, target, config_.seed));
  ++stats_.sent;
  ++window_sent_;
  if (copy > 0) {
    ++stats_.retransmits;
    if (progress_ != nullptr) {
      progress_->retransmits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (progress_ != nullptr) {
    progress_->sent.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.last_send = network()->now();
  maybe_finish_sending();
}

void SimChannelScanner::maybe_finish_sending() {
  if (sending_done_ || !fresh_done_ || pending_sends_ != 0) return;
  sending_done_ = true;
  // ZMap cooldown semantics: the receive window stays open for
  // cooldown_secs after the last send, then closes; later arrivals are
  // accounted as `late` instead of validated.
  const double cooldown = std::max(0.0, config_.cooldown_secs);
  recv_deadline_ =
      stats_.last_send + static_cast<sim::SimTime>(
                             cooldown * static_cast<double>(sim::kSecond));
}

void SimChannelScanner::adapt_rate() {
  if (network()->now() < window_end_) return;
  // Evaluate only windows with enough sends for a meaningful rate.
  if (window_sent_ >= 16) {
    const double hr = static_cast<double>(window_validated_) /
                      static_cast<double>(window_sent_);
    if (hr > best_hit_rate_) best_hit_rate_ = hr;
    const double base =
        config_.probes_per_sec > 0 ? config_.probes_per_sec : 1e9;
    const double floor = std::max(1.0, base / 64.0);
    if (best_hit_rate_ > 0 && hr < 0.5 * best_hit_rate_ &&
        current_pps_ > floor) {
      // Hit rate collapsed: suspected ICMPv6 rate limiting — back off.
      current_pps_ = std::max(floor, current_pps_ / 2.0);
      ++stats_.rate_adjustments;
      if (progress_ != nullptr) {
        progress_->rate_adjustments.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (hr >= 0.8 * best_hit_rate_ && current_pps_ < base) {
      current_pps_ = std::min(base, current_pps_ * 1.25);
      ++stats_.rate_adjustments;
      if (progress_ != nullptr) {
        progress_->rate_adjustments.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  window_sent_ = 0;
  window_validated_ = 0;
  window_end_ = network()->now() + sim::kSecond / 2;
}

void SimChannelScanner::receive(const pkt::Bytes& packet, int /*iface*/) {
  ++stats_.received;
  if (progress_ != nullptr) {
    progress_->received.fetch_add(1, std::memory_order_relaxed);
  }
  if (sending_done_ && network()->now() > recv_deadline_) {
    ++stats_.late;
    if (progress_ != nullptr) {
      progress_->late.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (!wire_intact(packet)) {
    ++stats_.corrupted;
    if (progress_ != nullptr) {
      progress_->corrupted.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  auto response = module_.classify(packet, config_.source, config_.seed);
  if (!response) {
    ++stats_.discarded;
    if (progress_ != nullptr) {
      progress_->discarded.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  ++stats_.validated;
  ++window_validated_;
  if (progress_ != nullptr) {
    progress_->validated.fetch_add(1, std::memory_order_relaxed);
  }
  if (!seen_responses_.insert(response_key(*response)).second) {
    ++stats_.duplicates;
    if (progress_ != nullptr) {
      progress_->duplicates.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (callback_) callback_(*response, network()->now());
}

}  // namespace xmap::scan
