#include "xmap/cli.h"

#include <charconv>

namespace xmap::scan {
namespace {

bool parse_int(std::string_view text, long long& out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
  // from_chars for double is not available everywhere; strtod via a copy.
  const std::string copy{text};
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

}  // namespace

std::vector<std::string> probe_module_names() {
  return {"icmp_echo", "icmp_echo:<hoplimit>", "tcp_syn:<port>", "udp_dns",
          "udp_ntp", "traceroute"};
}

std::string cli_usage() {
  return R"(xmap_sim — the XMap scanner driven against the simulated Internet

Usage: xmap_sim [options]

Target selection:
  --target <addr/lo-hi>     scan window spec (repeatable);
                            default: every block of the selected world
  --world paper|bgp:<n>|file:<path>
                            substrate: the 15 calibrated ISP blocks, a
                            synthetic BGP table with <n> ASes, or a JSON
                            spec file (default paper)
  --window-bits <n>         slots per block = 2^n (default 10)

Scanning:
  --probe-module <name>     icmp_echo[:<hoplimit>] | tcp_syn:<port> |
                            udp_dns | udp_ntp | traceroute (default icmp_echo)
  --rate <pps>              probes per (simulated) second (default 25000)
  --seed <n>                permutation & validation seed (default 1)
  --shards <n> --shard <i>  partition the scan zmap-style
  --max-probes <n>          stop after n probes (default: all)
  --retries <n>             send each probe 1+n times (default 0)
  --no-blocklist            do not apply the special-use-prefix blocklist

Parallel engine:
  --threads <n>             scan with n worker threads, each walking a
                            disjoint sub-shard of the permutation (1..64)
  --status-updates-file <path|->
                            live monitor: periodic status lines plus a
                            final JSON metrics summary ('-' = stderr)
  --status-interval-ms <n>  monitor cadence (default 250)

Output:
  --output-format csv|jsonl (default csv)
  --output-file <path>      default: stdout
  --quiet                   suppress the stats footer
  --list-probe-modules      print module names and exit
  --help                    this text
)";
}

CliParseResult parse_cli(int argc, const char* const* argv) {
  CliOptions opts;
  auto fail = [](std::string message) {
    return CliParseResult{std::nullopt, std::move(message)};
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&](std::string_view flag,
                          std::string& out) -> bool {
      if (i + 1 >= argc) {
        out.clear();
        return false;
      }
      (void)flag;
      out = argv[++i];
      return true;
    };

    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--list-probe-modules") {
      opts.list_probe_modules = true;
    } else if (arg == "--quiet" || arg == "-q") {
      opts.quiet = true;
    } else if (arg == "--no-blocklist") {
      opts.use_default_blocklist = false;
    } else if (arg == "--target") {
      std::string value;
      if (!next_value(arg, value)) return fail("--target needs a value");
      auto spec = TargetSpec::parse(value);
      if (!spec) return fail("bad target spec: " + value);
      opts.targets.push_back(*spec);
    } else if (arg == "--probe-module") {
      std::string value;
      if (!next_value(arg, value)) return fail("--probe-module needs a value");
      opts.probe_module = value;
    } else if (arg == "--world") {
      std::string value;
      if (!next_value(arg, value)) return fail("--world needs a value");
      if (value != "paper" && value.rfind("bgp:", 0) != 0 &&
          value.rfind("file:", 0) != 0) {
        return fail("--world must be 'paper', 'bgp:<n>' or 'file:<path>'");
      }
      opts.world = value;
    } else if (arg == "--rate") {
      std::string value;
      if (!next_value(arg, value)) return fail("--rate needs a value");
      if (!parse_double(value, opts.rate_pps) || opts.rate_pps <= 0) {
        return fail("bad --rate: " + value);
      }
    } else if (arg == "--seed") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --seed");
      }
      opts.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--shards") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 1) {
        return fail("bad --shards");
      }
      opts.shards = static_cast<int>(n);
    } else if (arg == "--shard") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --shard");
      }
      opts.shard = static_cast<int>(n);
    } else if (arg == "--retries") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0 || n > 16) {
        return fail("bad --retries (0..16)");
      }
      opts.retries = static_cast<int>(n);
    } else if (arg == "--max-probes") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --max-probes");
      }
      opts.max_probes = static_cast<std::uint64_t>(n);
    } else if (arg == "--threads") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 1 ||
          n > 64) {
        return fail("bad --threads (1..64)");
      }
      opts.threads = static_cast<int>(n);
    } else if (arg == "--status-updates-file") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--status-updates-file needs a value");
      }
      opts.status_updates_file = value;
    } else if (arg == "--status-interval-ms") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 10 ||
          n > 60000) {
        return fail("bad --status-interval-ms (10..60000)");
      }
      opts.status_interval_ms = static_cast<int>(n);
    } else if (arg == "--window-bits") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 4 || n > 20) {
        return fail("bad --window-bits (4..20)");
      }
      opts.window_bits = static_cast<int>(n);
    } else if (arg == "--output-format") {
      std::string value;
      if (!next_value(arg, value)) return fail("--output-format needs a value");
      if (value != "csv" && value != "jsonl" && value != "json") {
        return fail("--output-format must be csv or jsonl");
      }
      opts.output_format = value;
    } else if (arg == "--output-file") {
      std::string value;
      if (!next_value(arg, value)) return fail("--output-file needs a value");
      opts.output_file = value;
    } else {
      return fail("unknown flag: " + std::string{arg});
    }
  }

  if (opts.shard >= opts.shards) {
    return fail("--shard must be < --shards");
  }

  // Validate the probe module selector.
  const std::string& module = opts.probe_module;
  const bool known =
      module == "icmp_echo" || module.rfind("icmp_echo:", 0) == 0 ||
      module.rfind("tcp_syn:", 0) == 0 || module == "udp_dns" ||
      module == "udp_ntp" || module == "traceroute";
  if (!known) return fail("unknown probe module: " + module);
  if (module.rfind("tcp_syn:", 0) == 0) {
    long long port = 0;
    if (!parse_int(module.substr(8), port) || port < 1 || port > 65535) {
      return fail("bad tcp_syn port");
    }
  }
  if (module.rfind("icmp_echo:", 0) == 0) {
    long long hl = 0;
    if (!parse_int(module.substr(10), hl) || hl < 1 || hl > 255) {
      return fail("bad icmp_echo hop limit");
    }
  }
  if (module == "traceroute" &&
      (opts.threads > 0 || !opts.status_updates_file.empty())) {
    return fail(
        "--threads/--status-updates-file need a bulk probe module, not the "
        "traceroute runner");
  }

  return CliParseResult{std::move(opts), {}};
}

}  // namespace xmap::scan
