#include "xmap/cli.h"

#include <charconv>

namespace xmap::scan {
namespace {

bool parse_int(std::string_view text, long long& out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
  // from_chars for double is not available everywhere; strtod via a copy.
  const std::string copy{text};
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

// Splits "a/b[/c...]" into numbers. Accepts min..max fields, fills `out`.
bool parse_slashed(std::string_view text, double* out, int min_fields,
                   int max_fields, int& n_fields) {
  n_fields = 0;
  for (;;) {
    const std::size_t cut = text.find('/');
    if (n_fields == max_fields) return false;  // too many fields
    if (!parse_double(text.substr(0, cut), out[n_fields])) return false;
    ++n_fields;
    if (cut == std::string_view::npos) break;
    text.remove_prefix(cut + 1);
  }
  return n_fields >= min_fields;
}

bool unit_range(double v) { return v >= 0 && v <= 1; }

}  // namespace

std::vector<std::string> probe_module_names() {
  return {"icmp_echo", "icmp_echo:<hoplimit>", "tcp_syn:<port>", "udp_dns",
          "udp_ntp", "traceroute"};
}

std::string cli_usage() {
  return R"(xmap_sim — the XMap scanner driven against the simulated Internet

Usage: xmap_sim [options]

Target selection:
  --target <addr/lo-hi>     scan window spec (repeatable);
                            default: every block of the selected world
  --world paper|bgp:<n>|file:<path>
                            substrate: the 15 calibrated ISP blocks, a
                            synthetic BGP table with <n> ASes, or a JSON
                            spec file (default paper)
  --window-bits <n>         slots per block = 2^n (default 10)

Scanning:
  --probe-module <name>     icmp_echo[:<hoplimit>] | tcp_syn:<port> |
                            udp_dns | udp_ntp | traceroute (default icmp_echo)
  --rate <pps>              probes per (simulated) second (default 25000)
  --seed <n>                permutation & validation seed (default 1)
  --shards <n> --shard <i>  partition the scan zmap-style
  --max-probes <n>          probe at most n targets (each sent 1+retries
                            times); cut at a fixed permutation slot, so the
                            output is identical at any --threads (default:
                            all)
  --retries <n>             send each probe 1+n times (default 0)
  --retry-spacing-ms <ms>   target gap between copies of a probe; rounded
                            to whole pacing slots (default 100)
  --cooldown-secs <s>       keep receiving this long after the last send,
                            zmap-style (default 8)
  --adaptive-rate           AIMD backoff: halve the rate when the hit rate
                            collapses, recover multiplicatively (note:
                            makes results depend on --threads)
  --no-blocklist            do not apply the special-use-prefix blocklist

Fault injection (deterministic, keyed off --fault-seed):
  --fault-seed <n>          fault stream seed (default: the scan seed)
  --access-loss <p>         i.i.d. loss on access links (0..1)
  --core-loss <p>           i.i.d. loss on core links (0..1)
  --burst <r>[/<ms>[/<p>]]  Gilbert-Elliott bursts on access links: r burst
                            starts per link-second, mean ms long, drop
                            probability p inside (defaults 50 ms, p=1)
  --duplicate <p>           access-link duplication probability
  --corrupt <p>             access-link bit-corruption probability
  --jitter-ms <ms>          max extra access-link delay (reorders)
  --flap <period>/<down>[/<frac>]
                            a fraction of access links goes down for
                            down ms out of every period ms
  --silent <frac>[/<start>/<dur_ms>]
                            fraction of CPEs ignores traffic during the
                            window (dur 0 = forever)
  --device-icmp-rate <n>    CPE ICMPv6 error tokens/sec (0 = unlimited)
  --router-icmp-rate <n>    router ICMPv6 error tokens/sec (0 = unlimited)

Parallel engine:
  --threads <n>             scan with n worker threads, each walking a
                            disjoint sub-shard of the permutation (1..64)
  --status-updates-file <path|->
                            live monitor: periodic status lines plus a
                            final JSON metrics summary ('-' = stderr)
  --status-interval-ms <n>  monitor cadence (default 250)

Distributed fabric (src/fabric; see docs/distributed.md):
  --fabric-nodes <n>        scan through the coordinator/worker fabric with
                            n worker engines over the loopback transport
                            (1..32); exits 1 when any shard could not be
                            completed
  --fabric-shards <n>       fabric shard count — the determinism unit: the
                            records equal an engine run at --threads n for
                            any node count (default 8)
  --fabric-heartbeat-ms <n> worker heartbeat cadence (default 25)
  --fabric-heartbeat-timeout-ms <n>
                            silence after which a worker is declared dead
                            and its shard fails over (default 250)
  --fabric-transport <t>    loopback (in-process, default) or tcp: every
                            frame crosses a real socket; workers reconnect
                            after socket death via the rejoin handshake
  --fabric-listen <addr:port>
                            tcp: coordinator bind address (default
                            127.0.0.1:0 — port 0 picks an ephemeral port);
                            bind failures exit 2 naming address and errno
  --fabric-connect <addr:port>
                            tcp: worker connect address (default the
                            coordinator's actual bound address)
  --kill-node-at <node>:<slot>[:close]
                            seeded crash: worker <node> dies when its scan
                            frontier reaches permutation slot <slot>
                            (repeatable); with :close its connection drops
                            immediately, otherwise death is detected by
                            heartbeat timeout
  --fabric-drop-heartbeat <p>
                            P(drop a heartbeat frame) (0..1)
  --fabric-duplicate <p>    P(deliver a fabric frame twice) (0..1)
  --fabric-truncate <p>     P(truncate a fabric frame; the checksum rejects
                            it and retransmission recovers) (0..1)
  --fabric-delay-ms <ms>    max extra fabric frame delay (reorders)
  --fabric-trace-file <path>
                            causal cross-node deployment trace (Perfetto /
                            chrome://tracing JSON): lease grants, probe
                            streams, checkpoints, heartbeat loss, death
                            verdicts, lease migrations, retransmits — wall
                            clock, separate from the deterministic
                            --trace-file
  --fabric-metrics-file <path>
                            Prometheus text export including the wall-clock
                            fabric_* deployment series (per-node labels)
  --fabric-timeline-file <path>
                            health timeline: interval JSONL snapshots of
                            fabric state (live/busy/dead workers, shard
                            phases, retransmits)
  --flight-recorder-events <n>
                            per-node protocol flight recorder ring size
                            (0 = off); rings dump to JSONL on worker death,
                            lease refusal, or a failed fabric
  --flight-recorder-prefix <path>
                            where flight-recorder dumps go (default:
                            <output-file>.flightrec, or fabric.flightrec
                            for stdout output)

Observability:
  --trace-level off|scan|packet
                            deterministic sim-clock event trace: per-target
                            lifecycle (scan) or every substrate event
                            (packet); byte-identical across --threads
  --trace-file <path>       write the trace (implies --trace-level scan)
  --trace-format jsonl|chrome
                            trace serialization; default: chrome when the
                            file ends in .json, else jsonl
  --metrics-file <path>     Prometheus text export of the labeled metrics
                            registry (deterministic series only)
  --profile                 wall-clock stage timing table on stderr at exit

Recovery (see docs/recovery.md):
  --checkpoint-file <path>  where state snapshots go (default:
                            <output-file>.state, or xmap.state for stdout
                            output); SIGINT/SIGTERM always writes one and
                            exits 3 (resumable)
  --checkpoint-interval-probes <n>
                            additionally snapshot every n drawn targets
                            (default 0 = only on shutdown); incompatible
                            with --adaptive-rate
  --resume <path>           continue an interrupted scan from its state
                            file; the run configuration must match the
                            checkpoint's fingerprint exactly, and the
                            combined output is byte-identical to an
                            uninterrupted run
  --shutdown-after-probes <n>
                            deterministic test hook: act as if SIGTERM
                            arrived when the permutation frontier reaches
                            global slot n

Output:
  --output-format csv|jsonl (default csv)
  --output-file <path>      default: stdout
  --store-file <path>       also write a queryable results-store snapshot
                            (xmap_store info/query/agg/diff); byte-identical
                            across --threads for a fixed config
  --quiet                   suppress the stats footer
  --list-probe-modules      print module names and exit
  --help                    this text
)";
}

CliParseResult parse_cli(int argc, const char* const* argv) {
  CliOptions opts;
  auto fail = [](std::string message) {
    return CliParseResult{std::nullopt, std::move(message)};
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&](std::string_view flag,
                          std::string& out) -> bool {
      if (i + 1 >= argc) {
        out.clear();
        return false;
      }
      (void)flag;
      out = argv[++i];
      return true;
    };

    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--list-probe-modules") {
      opts.list_probe_modules = true;
    } else if (arg == "--quiet" || arg == "-q") {
      opts.quiet = true;
    } else if (arg == "--no-blocklist") {
      opts.use_default_blocklist = false;
    } else if (arg == "--target") {
      std::string value;
      if (!next_value(arg, value)) return fail("--target needs a value");
      auto spec = TargetSpec::parse(value);
      if (!spec) return fail("bad target spec: " + value);
      opts.targets.push_back(*spec);
    } else if (arg == "--probe-module") {
      std::string value;
      if (!next_value(arg, value)) return fail("--probe-module needs a value");
      opts.probe_module = value;
    } else if (arg == "--world") {
      std::string value;
      if (!next_value(arg, value)) return fail("--world needs a value");
      if (value != "paper" && value.rfind("bgp:", 0) != 0 &&
          value.rfind("file:", 0) != 0) {
        return fail("--world must be 'paper', 'bgp:<n>' or 'file:<path>'");
      }
      opts.world = value;
    } else if (arg == "--rate") {
      std::string value;
      if (!next_value(arg, value)) return fail("--rate needs a value");
      if (!parse_double(value, opts.rate_pps) || opts.rate_pps <= 0) {
        return fail("bad --rate: " + value);
      }
    } else if (arg == "--seed") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --seed");
      }
      opts.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--shards") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 1) {
        return fail("bad --shards");
      }
      opts.shards = static_cast<int>(n);
    } else if (arg == "--shard") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --shard");
      }
      opts.shard = static_cast<int>(n);
    } else if (arg == "--retries") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0 || n > 16) {
        return fail("bad --retries (0..16)");
      }
      opts.retries = static_cast<int>(n);
    } else if (arg == "--max-probes") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --max-probes");
      }
      opts.max_probes = static_cast<std::uint64_t>(n);
    } else if (arg == "--resume") {
      std::string value;
      if (!next_value(arg, value)) return fail("--resume needs a value");
      opts.resume_file = value;
    } else if (arg == "--checkpoint-file") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--checkpoint-file needs a value");
      }
      opts.checkpoint_file = value;
    } else if (arg == "--checkpoint-interval-probes") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --checkpoint-interval-probes");
      }
      opts.checkpoint_interval = static_cast<std::uint64_t>(n);
    } else if (arg == "--shutdown-after-probes") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --shutdown-after-probes");
      }
      opts.shutdown_after_probes = static_cast<std::uint64_t>(n);
    } else if (arg == "--threads") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 1 ||
          n > 64) {
        return fail("bad --threads (1..64)");
      }
      opts.threads = static_cast<int>(n);
    } else if (arg == "--status-updates-file") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--status-updates-file needs a value");
      }
      opts.status_updates_file = value;
    } else if (arg == "--status-interval-ms") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 10 ||
          n > 60000) {
        return fail("bad --status-interval-ms (10..60000)");
      }
      opts.status_interval_ms = static_cast<int>(n);
    } else if (arg == "--window-bits") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 4 || n > 20) {
        return fail("bad --window-bits (4..20)");
      }
      opts.window_bits = static_cast<int>(n);
    } else if (arg == "--output-format") {
      std::string value;
      if (!next_value(arg, value)) return fail("--output-format needs a value");
      if (value != "csv" && value != "jsonl" && value != "json") {
        return fail("--output-format must be csv or jsonl");
      }
      opts.output_format = value;
    } else if (arg == "--output-file") {
      std::string value;
      if (!next_value(arg, value)) return fail("--output-file needs a value");
      opts.output_file = value;
    } else if (arg == "--store-file") {
      std::string value;
      if (!next_value(arg, value)) return fail("--store-file needs a value");
      opts.store_file = value;
    } else if (arg == "--trace-file") {
      std::string value;
      if (!next_value(arg, value)) return fail("--trace-file needs a value");
      opts.trace_file = value;
    } else if (arg == "--trace-format") {
      std::string value;
      if (!next_value(arg, value)) return fail("--trace-format needs a value");
      if (value != "jsonl" && value != "chrome") {
        return fail("--trace-format must be jsonl or chrome");
      }
      opts.trace_format = value;
    } else if (arg == "--trace-level") {
      std::string value;
      obs::TraceLevel level = obs::TraceLevel::kOff;
      if (!next_value(arg, value) ||
          !obs::trace_level_from_string(value, level)) {
        return fail("--trace-level must be off, scan or packet");
      }
      opts.trace_level = level;
    } else if (arg == "--metrics-file") {
      std::string value;
      if (!next_value(arg, value)) return fail("--metrics-file needs a value");
      opts.metrics_file = value;
    } else if (arg == "--profile") {
      opts.profile = true;
    } else if (arg == "--retry-spacing-ms") {
      std::string value;
      if (!next_value(arg, value) ||
          !parse_double(value, opts.retry_spacing_ms) ||
          opts.retry_spacing_ms < 0 || opts.retry_spacing_ms > 60000) {
        return fail("bad --retry-spacing-ms (0..60000)");
      }
    } else if (arg == "--cooldown-secs") {
      std::string value;
      if (!next_value(arg, value) ||
          !parse_double(value, opts.cooldown_secs) ||
          opts.cooldown_secs < 0 || opts.cooldown_secs > 3600) {
        return fail("bad --cooldown-secs (0..3600)");
      }
    } else if (arg == "--adaptive-rate") {
      opts.adaptive_rate = true;
    } else if (arg == "--fault-seed") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0) {
        return fail("bad --fault-seed");
      }
      opts.faults.seed = static_cast<std::uint64_t>(n);
      opts.faults_given = true;
    } else if (arg == "--access-loss" || arg == "--core-loss" ||
               arg == "--duplicate" || arg == "--corrupt") {
      std::string value;
      double p = 0;
      if (!next_value(arg, value) || !parse_double(value, p) ||
          !unit_range(p)) {
        return fail("bad " + std::string{arg} + " (probability in 0..1)");
      }
      if (arg == "--access-loss") opts.faults.access.loss = p;
      if (arg == "--core-loss") opts.faults.core.loss = p;
      if (arg == "--duplicate") opts.faults.access.duplicate = p;
      if (arg == "--corrupt") opts.faults.access.corrupt = p;
      opts.faults_given = true;
    } else if (arg == "--jitter-ms") {
      std::string value;
      if (!next_value(arg, value) ||
          !parse_double(value, opts.faults.access.jitter_ms) ||
          opts.faults.access.jitter_ms < 0) {
        return fail("bad --jitter-ms");
      }
      opts.faults_given = true;
    } else if (arg == "--burst") {
      std::string value;
      double f[3] = {0, 50, 1};
      int n = 0;
      if (!next_value(arg, value) || !parse_slashed(value, f, 1, 3, n) ||
          f[0] < 0 || (n > 1 && f[1] <= 0) || (n > 2 && !unit_range(f[2]))) {
        return fail("bad --burst (<rate_per_sec>[/<mean_ms>[/<loss>]])");
      }
      opts.faults.access.burst.rate_per_sec = f[0];
      if (n > 1) opts.faults.access.burst.mean_ms = f[1];
      if (n > 2) opts.faults.access.burst.loss = f[2];
      opts.faults_given = true;
    } else if (arg == "--flap") {
      std::string value;
      double f[3] = {0, 0, 1};
      int n = 0;
      if (!next_value(arg, value) || !parse_slashed(value, f, 2, 3, n) ||
          f[0] < 0 || f[1] < 0 || f[1] > f[0] ||
          (n > 2 && !unit_range(f[2]))) {
        return fail("bad --flap (<period_ms>/<down_ms>[/<fraction>])");
      }
      opts.faults.access.flap.period_ms = f[0];
      opts.faults.access.flap.down_ms = f[1];
      if (n > 2) opts.faults.access.flap.fraction = f[2];
      opts.faults_given = true;
    } else if (arg == "--silent") {
      std::string value;
      double f[3] = {0, 0, 0};
      int n = 0;
      if (!next_value(arg, value) || !parse_slashed(value, f, 1, 3, n) ||
          !unit_range(f[0]) || f[1] < 0 || f[2] < 0) {
        return fail("bad --silent (<fraction>[/<start_ms>/<duration_ms>])");
      }
      opts.faults.silent.fraction = f[0];
      opts.faults.silent.start_ms = f[1];
      opts.faults.silent.duration_ms = f[2];
      opts.faults_given = true;
    } else if (arg == "--fabric-nodes") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 1 ||
          n > 32) {
        return fail("bad --fabric-nodes (1..32)");
      }
      opts.fabric_nodes = static_cast<int>(n);
    } else if (arg == "--fabric-shards") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 1 ||
          n > 1024) {
        return fail("bad --fabric-shards (1..1024)");
      }
      opts.fabric_shards = static_cast<int>(n);
    } else if (arg == "--fabric-heartbeat-ms") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 1 ||
          n > 10000) {
        return fail("bad --fabric-heartbeat-ms (1..10000)");
      }
      opts.fabric_heartbeat_ms = static_cast<int>(n);
    } else if (arg == "--fabric-heartbeat-timeout-ms") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 2 ||
          n > 60000) {
        return fail("bad --fabric-heartbeat-timeout-ms (2..60000)");
      }
      opts.fabric_heartbeat_timeout_ms = static_cast<int>(n);
    } else if (arg == "--fabric-transport") {
      std::string value;
      if (!next_value(arg, value) ||
          (value != "loopback" && value != "tcp")) {
        return fail("bad --fabric-transport (loopback|tcp)");
      }
      opts.fabric_transport = value;
    } else if (arg == "--fabric-listen") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--fabric-listen needs <addr:port>");
      }
      opts.fabric_listen = value;
    } else if (arg == "--fabric-connect") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--fabric-connect needs <addr:port>");
      }
      opts.fabric_connect = value;
    } else if (arg == "--fabric-trace-file") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--fabric-trace-file needs a value");
      }
      opts.fabric_trace_file = value;
    } else if (arg == "--fabric-metrics-file") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--fabric-metrics-file needs a value");
      }
      opts.fabric_metrics_file = value;
    } else if (arg == "--fabric-timeline-file") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--fabric-timeline-file needs a value");
      }
      opts.fabric_timeline_file = value;
    } else if (arg == "--flight-recorder-events") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0 ||
          n > 1000000) {
        return fail("bad --flight-recorder-events (0..1000000)");
      }
      opts.flight_recorder_events = static_cast<std::size_t>(n);
    } else if (arg == "--flight-recorder-prefix") {
      std::string value;
      if (!next_value(arg, value)) {
        return fail("--flight-recorder-prefix needs a value");
      }
      opts.flight_recorder_prefix = value;
    } else if (arg == "--kill-node-at") {
      std::string value;
      if (!next_value(arg, value)) return fail("--kill-node-at needs a value");
      sim::FabricFaultPlan::Kill kill;
      std::string_view text = value;
      bool ok = true;
      const std::size_t first = text.find(':');
      long long node = 0;
      long long slot = 0;
      if (first == std::string_view::npos ||
          !parse_int(text.substr(0, first), node) || node < 0) {
        ok = false;
      } else {
        text.remove_prefix(first + 1);
        const std::size_t second = text.find(':');
        if (!parse_int(text.substr(0, second), slot) || slot < 1) {
          ok = false;
        } else if (second != std::string_view::npos) {
          if (text.substr(second + 1) != "close") ok = false;
          kill.close_transport = true;
        }
      }
      if (!ok) return fail("bad --kill-node-at (<node>:<slot>[:close])");
      kill.node = static_cast<int>(node);
      kill.at_slot = static_cast<std::uint64_t>(slot);
      opts.fabric_faults.kills.push_back(kill);
    } else if (arg == "--fabric-drop-heartbeat" ||
               arg == "--fabric-duplicate" || arg == "--fabric-truncate") {
      std::string value;
      double p = 0;
      if (!next_value(arg, value) || !parse_double(value, p) ||
          !unit_range(p)) {
        return fail("bad " + std::string{arg} + " (probability in 0..1)");
      }
      if (arg == "--fabric-drop-heartbeat") {
        opts.fabric_faults.messages.drop_heartbeat = p;
      }
      if (arg == "--fabric-duplicate") {
        opts.fabric_faults.messages.duplicate = p;
      }
      if (arg == "--fabric-truncate") opts.fabric_faults.messages.truncate = p;
    } else if (arg == "--fabric-delay-ms") {
      std::string value;
      if (!next_value(arg, value) ||
          !parse_double(value, opts.fabric_faults.messages.delay_ms) ||
          opts.fabric_faults.messages.delay_ms < 0) {
        return fail("bad --fabric-delay-ms");
      }
    } else if (arg == "--device-icmp-rate" || arg == "--router-icmp-rate") {
      std::string value;
      long long n = 0;
      if (!next_value(arg, value) || !parse_int(value, n) || n < 0 ||
          n > 1000000) {
        return fail("bad " + std::string{arg} + " (0..1000000 tokens/sec)");
      }
      if (arg == "--device-icmp-rate") {
        opts.device_icmp_rate = static_cast<std::uint32_t>(n);
      } else {
        opts.router_icmp_rate = static_cast<std::uint32_t>(n);
      }
    } else {
      return fail("unknown flag: " + std::string{arg});
    }
  }

  if (opts.shard >= opts.shards) {
    return fail("--shard must be < --shards");
  }

  // Validate the probe module selector.
  const std::string& module = opts.probe_module;
  const bool known =
      module == "icmp_echo" || module.rfind("icmp_echo:", 0) == 0 ||
      module.rfind("tcp_syn:", 0) == 0 || module == "udp_dns" ||
      module == "udp_ntp" || module == "traceroute";
  if (!known) return fail("unknown probe module: " + module);
  if (module.rfind("tcp_syn:", 0) == 0) {
    long long port = 0;
    if (!parse_int(module.substr(8), port) || port < 1 || port > 65535) {
      return fail("bad tcp_syn port");
    }
  }
  if (module.rfind("icmp_echo:", 0) == 0) {
    long long hl = 0;
    if (!parse_int(module.substr(10), hl) || hl < 1 || hl > 255) {
      return fail("bad icmp_echo hop limit");
    }
  }
  if (module == "traceroute" &&
      (opts.threads > 0 || !opts.status_updates_file.empty())) {
    return fail(
        "--threads/--status-updates-file need a bulk probe module, not the "
        "traceroute runner");
  }
  if (module == "traceroute" &&
      (!opts.trace_file.empty() || !opts.metrics_file.empty() ||
       opts.profile || opts.trace_level.has_value())) {
    return fail(
        "observability flags need a bulk probe module, not the traceroute "
        "runner");
  }
  if (module == "traceroute" &&
      (!opts.resume_file.empty() || !opts.checkpoint_file.empty() ||
       opts.checkpoint_interval != 0 || opts.shutdown_after_probes != 0)) {
    return fail(
        "checkpoint/resume flags need a bulk probe module, not the "
        "traceroute runner");
  }
  if (opts.fabric_nodes == 0 && opts.fabric_faults.any()) {
    return fail("fabric fault flags need --fabric-nodes");
  }
  if (opts.fabric_nodes == 0 &&
      (!opts.fabric_trace_file.empty() || !opts.fabric_metrics_file.empty() ||
       !opts.fabric_timeline_file.empty() || opts.flight_recorder_events > 0 ||
       !opts.flight_recorder_prefix.empty())) {
    return fail(
        "--fabric-trace-file/--fabric-metrics-file/--fabric-timeline-file/"
        "--flight-recorder-* need --fabric-nodes");
  }
  if (opts.fabric_nodes > 0) {
    if (opts.threads > 0 || !opts.status_updates_file.empty()) {
      return fail(
          "--fabric-nodes and --threads are different executors; fabric "
          "parallelism is --fabric-shards");
    }
    if (module == "traceroute") {
      return fail("--fabric-nodes needs a bulk probe module, not the "
                  "traceroute runner");
    }
    if (opts.adaptive_rate) {
      return fail(
          "--fabric-nodes is incompatible with --adaptive-rate (no stable "
          "cursor to hand over on failover under AIMD pacing)");
    }
    if (!opts.resume_file.empty() || !opts.checkpoint_file.empty() ||
        opts.shutdown_after_probes != 0) {
      return fail(
          "--resume/--checkpoint-file/--shutdown-after-probes are "
          "single-machine recovery flags; the fabric checkpoints shard "
          "leases internally (--checkpoint-interval-probes sets the "
          "cadence)");
    }
    for (const auto& kill : opts.fabric_faults.kills) {
      if (kill.node >= opts.fabric_nodes) {
        return fail("--kill-node-at names node " + std::to_string(kill.node) +
                    " but there are only " +
                    std::to_string(opts.fabric_nodes) + " fabric nodes");
      }
    }
    if (opts.fabric_transport == "tcp" && opts.fabric_faults.messages.any()) {
      return fail(
          "--fabric-drop-heartbeat/-duplicate/-truncate/-delay-ms are "
          "loopback message faults; with --fabric-transport tcp the chaos "
          "proxy is the fault substrate (--kill-node-at still applies)");
    }
  }
  if (opts.fabric_nodes == 0 &&
      (opts.fabric_transport != "loopback" ||
       opts.fabric_listen != "127.0.0.1:0" || !opts.fabric_connect.empty())) {
    return fail(
        "--fabric-transport/--fabric-listen/--fabric-connect need "
        "--fabric-nodes");
  }
  if (opts.checkpoint_interval != 0 && opts.adaptive_rate) {
    // AIMD pacing makes the send schedule state-dependent, so there is no
    // analytically stable mid-flight cursor; only the quiescent shutdown
    // checkpoint is well-defined under --adaptive-rate.
    return fail(
        "--checkpoint-interval-probes is incompatible with --adaptive-rate "
        "(no stable mid-flight cursor under AIMD pacing)");
  }

  return CliParseResult{std::move(opts), {}};
}

}  // namespace xmap::scan
