#include "xmap/output.h"

namespace xmap::scan {

void CsvWriter::begin() {
  out_ << "saddr,probe_dst,classification,icmp_code,hlim,timestamp_us\n";
}

void CsvWriter::record(const ProbeResponse& response, sim::SimTime when) {
  out_ << response.responder.to_string() << ','
       << response.probe_dst.to_string() << ','
       << response_kind_name(response.kind) << ','
       << static_cast<int>(response.icmp_code) << ','
       << static_cast<int>(response.hop_limit) << ','
       << when / sim::kMicrosecond << '\n';
}

void JsonlWriter::record(const ProbeResponse& response, sim::SimTime when) {
  // All emitted values are addresses, enum names and integers — no JSON
  // string escaping is required for this fixed vocabulary.
  out_ << "{\"saddr\":\"" << response.responder.to_string()
       << "\",\"probe_dst\":\"" << response.probe_dst.to_string()
       << "\",\"classification\":\"" << response_kind_name(response.kind)
       << "\",\"icmp_code\":" << static_cast<int>(response.icmp_code)
       << ",\"hlim\":" << static_cast<int>(response.hop_limit)
       << ",\"timestamp_us\":" << when / sim::kMicrosecond << "}\n";
}

std::unique_ptr<ResultWriter> make_writer(const std::string& format,
                                          std::ostream& out) {
  if (format == "csv") return std::make_unique<CsvWriter>(out);
  if (format == "jsonl" || format == "json") {
    return std::make_unique<JsonlWriter>(out);
  }
  return nullptr;
}

}  // namespace xmap::scan
