#include "xmap/cyclic_group.h"

#include <array>

namespace xmap::scan {
namespace {

using net::Uint128;

// Miller-Rabin witness round: returns true when `a` proves n composite.
bool witness_says_composite(Uint128 a, Uint128 d, int r, Uint128 n) {
  Uint128 x = Uint128::powmod(a, d, n);
  if (x == Uint128{1} || x == n - Uint128{1}) return false;
  for (int i = 1; i < r; ++i) {
    x = Uint128::mulmod(x, x, n);
    if (x == n - Uint128{1}) return false;
  }
  return true;
}

Uint128 pollard_rho(Uint128 n, net::Rng& rng) {
  if (!n.bit(0)) return Uint128{2};
  while (true) {
    const Uint128 c = Uint128{rng.next()} % n + Uint128{1};
    auto f = [&](Uint128 x) {
      return (Uint128::mulmod(x, x, n) + c) % n;
    };
    Uint128 x{2}, y{2}, d{1};
    while (d == Uint128{1}) {
      x = f(x);
      y = f(f(y));
      const Uint128 diff = x > y ? x - y : y - x;
      if (diff.is_zero()) break;  // cycle without factor; retry with new c
      // gcd(diff, n)
      Uint128 a = diff, b = n;
      while (!b.is_zero()) {
        const Uint128 t = a % b;
        a = b;
        b = t;
      }
      d = a;
    }
    if (d != Uint128{1} && d != n) return d;
  }
}

void factor_into(Uint128 n, std::vector<Uint128>& out, net::Rng& rng) {
  if (n <= Uint128{1}) return;
  if (is_prime(n)) {
    out.push_back(n);
    return;
  }
  const Uint128 d = pollard_rho(n, rng);
  factor_into(d, out, rng);
  factor_into(n / d, out, rng);
}

}  // namespace

bool is_prime(Uint128 n) {
  if (n < Uint128{2}) return false;
  static constexpr std::uint64_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13,
                                                   17, 19, 23, 29, 31, 37};
  for (std::uint64_t p : kSmallPrimes) {
    if (n == Uint128{p}) return true;
    if ((n % Uint128{p}).is_zero()) return false;
  }
  // n - 1 = d * 2^r with d odd.
  Uint128 d = n - Uint128{1};
  int r = 0;
  while (!d.bit(0)) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 3.3e24 (~2^81).
  for (std::uint64_t a : kSmallPrimes) {
    if (witness_says_composite(Uint128{a}, d, r, n)) return false;
  }
  return true;
}

Uint128 next_prime(Uint128 n) {
  if (n <= Uint128{2}) return Uint128{2};
  if (!n.bit(0)) ++n;
  while (!is_prime(n)) n += Uint128{2};
  return n;
}

std::vector<Uint128> distinct_prime_factors(Uint128 n) {
  std::vector<Uint128> all;
  net::Rng rng{0x9d2c5680u};  // fixed: factorisation must be deterministic
  // Strip small factors first to keep Pollard's rho fast.
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL, 41ULL, 43ULL, 47ULL}) {
    const Uint128 pp{p};
    if ((n % pp).is_zero()) {
      all.push_back(pp);
      while ((n % pp).is_zero()) n /= pp;
    }
  }
  std::vector<Uint128> rest;
  factor_into(n, rest, rng);
  for (const Uint128& f : rest) {
    bool seen = false;
    for (const Uint128& g : all) seen = seen || g == f;
    if (!seen) all.push_back(f);
  }
  return all;
}

CyclicGroup::CyclicGroup(Uint128 size, std::uint64_t seed) : size_(size) {
  if (size_.is_zero()) size_ = Uint128{1};
  p_ = next_prime(size_ + Uint128{1});

  if (p_ == Uint128{2}) {
    g_ = Uint128{1};  // trivial group
    start_ = Uint128{1};
    return;
  }

  // Smallest primitive root mod p (deterministic for a given p).
  const Uint128 order = p_ - Uint128{1};
  const auto factors = distinct_prime_factors(order);
  for (Uint128 candidate{2};; ++candidate) {
    bool primitive = true;
    for (const Uint128& q : factors) {
      if (Uint128::powmod(candidate, order / q, p_) == Uint128{1}) {
        primitive = false;
        break;
      }
    }
    if (primitive) {
      g_ = candidate;
      break;
    }
  }

  // Random starting element g^e, e derived from the seed.
  const Uint128 e = Uint128{net::mix64(seed)} % order;
  start_ = Uint128::powmod(g_, e, p_);
}

CyclicGroup::Iterator CyclicGroup::shard_iterate(int shard, int shards) const {
  if (shards < 1) shards = 1;
  if (shard < 0 || shard >= shards) shard = 0;

  if (p_ == Uint128{2}) {
    Iterator it{this, Uint128{1}, Uint128{1}};
    it.yielded_ = Uint128{0};
    it.raw_remaining_ = shard == 0 ? Uint128{1} : Uint128{0};
    return it;
  }

  const Uint128 order = p_ - Uint128{1};
  const Uint128 shard_start =
      Uint128::mulmod(start_, Uint128::powmod(g_, Uint128{static_cast<std::uint64_t>(shard)}, p_), p_);
  const Uint128 step =
      Uint128::powmod(g_, Uint128{static_cast<std::uint64_t>(shards)}, p_);

  Iterator it{this, shard_start, step};
  // Raw positions visited by this shard: k in [0, order) with
  // k ≡ shard (mod shards).
  const Uint128 s{static_cast<std::uint64_t>(shard)};
  const Uint128 m{static_cast<std::uint64_t>(shards)};
  it.raw_remaining_ =
      order > s ? (order - s + m - Uint128{1}) / m : Uint128{0};
  return it;
}

void CyclicGroup::Iterator::fast_forward(Uint128 raw_steps) {
  if (raw_steps > raw_remaining_) raw_steps = raw_remaining_;
  if (raw_steps.is_zero()) return;
  x_ = Uint128::mulmod(x_, Uint128::powmod(step_, raw_steps, group_->p_),
                       group_->p_);
  raw_remaining_ -= raw_steps;
  raw_visited_ += raw_steps;
}

std::optional<Uint128> CyclicGroup::Iterator::next() {
  while (!raw_remaining_.is_zero()) {
    const Uint128 cur = x_;
    x_ = Uint128::mulmod(x_, step_, group_->p_);
    raw_remaining_ -= Uint128{1};
    raw_visited_ += Uint128{1};
    const Uint128 offset = cur - Uint128{1};
    if (offset < group_->size_) {
      ++yielded_;
      return offset;
    }
  }
  return std::nullopt;
}

}  // namespace xmap::scan
