#include "xmap/blocklist.h"

namespace xmap::scan {

bool Blocklist::permitted(const net::Ipv6Address& addr) const {
  const bool blocked = blocked_.lookup(addr) != nullptr;
  if (!has_allowlist_) return !blocked;
  const bool allowed = allowed_.lookup(addr) != nullptr;
  // With an allowlist, a target must be allowed; an explicit block still
  // wins (ZMap's "blacklist overrides whitelist" behaviour).
  return allowed && !blocked;
}

Blocklist Blocklist::well_behaved_defaults() {
  Blocklist list;
  for (const char* prefix :
       {"::/128",         // unspecified
        "::1/128",        // loopback
        "::ffff:0:0/96",  // IPv4-mapped
        "64:ff9b::/96",   // NAT64 well-known
        "100::/64",       // discard-only
        "2001::/32",      // Teredo
        "2001:db8::/32",  // documentation
        "fc00::/7",       // unique-local
        "fe80::/10",      // link-local
        "ff00::/8"}) {    // multicast
    list.block(*net::Ipv6Prefix::parse(prefix));
  }
  return list;
}

}  // namespace xmap::scan
